//! Facade crate for the Anole reproduction workspace.
//!
//! Re-exports the per-subsystem crates under one name so the examples and
//! cross-crate integration tests can `use anole::...`. Downstream users who
//! only need one subsystem should depend on that crate directly.
//!
//! # Examples
//!
//! ```
//! use anole::core::AnoleConfig;
//!
//! let config = AnoleConfig::default();
//! assert!(config.repository.target_models >= 2);
//! ```

pub use anole_bandit as bandit;
pub use anole_cache as cache;
pub use anole_cluster as cluster;
pub use anole_core as core;
pub use anole_data as data;
pub use anole_detect as detect;
pub use anole_device as device;
pub use anole_nn as nn;
pub use anole_obs as obs;
pub use anole_tensor as tensor;
