//! Fixed-capacity caches with pluggable eviction, backing Anole's
//! cache-based model deployment (paper §V-B).
//!
//! The paper keeps a handful of compressed models resident in GPU memory and
//! evicts with Least-Frequently-Used when the decision model requests a model
//! that is not loaded. This crate provides the cache itself — LFU as in the
//! paper, plus LRU and FIFO for the eviction-policy ablation — together with
//! hit/miss accounting used by Fig. 7b.
//!
//! # Examples
//!
//! ```
//! use anole_cache::{EvictionPolicy, SlotCache};
//!
//! let mut cache: SlotCache<&str> = SlotCache::new(2, EvictionPolicy::Lfu);
//! cache.insert("a");
//! cache.insert("b");
//! cache.touch(&"a"); // "a" now more frequently used than "b"
//! let evicted = cache.insert("c");
//! assert_eq!(evicted, Some("b"));
//! assert!(cache.contains(&"a"));
//! ```

pub mod prefetch;
mod sharded;
mod slot_cache;
mod stats;

pub use prefetch::TransitionModel;
pub use sharded::{FrequencySketch, ShardedSlotCache};
pub use slot_cache::{EvictionPolicy, SlotCache};
pub use stats::CacheStats;
