//! A fixed-slot cache with pluggable eviction.

use std::collections::HashMap;
use std::hash::Hash;

use serde::{Deserialize, Serialize};

use crate::CacheStats;

/// Eviction policy of a [`SlotCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EvictionPolicy {
    /// Least frequently used, ties broken by least recently used — the
    /// paper's choice (§V-B).
    Lfu,
    /// Least recently used.
    Lru,
    /// First in, first out.
    Fifo,
}

impl std::fmt::Display for EvictionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            EvictionPolicy::Lfu => "LFU",
            EvictionPolicy::Lru => "LRU",
            EvictionPolicy::Fifo => "FIFO",
        };
        f.write_str(name)
    }
}

#[derive(Debug, Clone, Copy)]
struct EntryMeta {
    frequency: u64,
    last_used: u64,
    inserted: u64,
    bytes: u64,
}

/// A cache holding at most `capacity` keys, evicting per the configured
/// policy. Values are not stored — in the reproduction the cached "payload"
/// is a model kept resident in simulated GPU memory, and residency is what
/// the deployment logic needs to know.
///
/// Frequency counters persist across evictions for LFU ("least frequently
/// used over the run so far"), matching the OS-textbook LFU the paper cites.
///
/// # Examples
///
/// See the crate-level example.
#[derive(Debug, Clone)]
pub struct SlotCache<K> {
    capacity: usize,
    policy: EvictionPolicy,
    /// Optional resident-byte ceiling enforced alongside the slot count by
    /// [`SlotCache::insert_weighted`]; `None` disables byte accounting.
    byte_budget: Option<u64>,
    entries: HashMap<K, EntryMeta>,
    lifetime_frequency: HashMap<K, u64>,
    clock: u64,
    stats: CacheStats,
}

impl<K: Eq + Hash + Clone> SlotCache<K> {
    /// Creates a cache with the given slot count and policy.
    ///
    /// A zero-capacity cache is permitted (everything misses), matching the
    /// "no cache" point of the Fig. 7b sweep.
    pub fn new(capacity: usize, policy: EvictionPolicy) -> Self {
        Self {
            capacity,
            policy,
            byte_budget: None,
            entries: HashMap::new(),
            lifetime_frequency: HashMap::new(),
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Creates a cache bounded by both a slot count and a resident-byte
    /// budget. [`SlotCache::insert_weighted`] evicts until both hold;
    /// per-model byte weights let mixed-precision models share one cache
    /// fairly (an int8 model charges ~¼ the bytes of its f32 twin, so the
    /// same budget holds ~4× as many of them).
    pub fn with_byte_budget(capacity: usize, policy: EvictionPolicy, byte_budget: u64) -> Self {
        let mut cache = Self::new(capacity, policy);
        cache.byte_budget = Some(byte_budget);
        cache
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resident-byte ceiling, if byte accounting is enabled.
    pub fn byte_budget(&self) -> Option<u64> {
        self.byte_budget
    }

    /// Bytes currently charged by resident entries.
    pub fn resident_bytes(&self) -> u64 {
        self.stats.resident_bytes
    }

    /// The eviction policy.
    pub fn policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// Number of resident keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `key` is resident. Does not touch accounting.
    pub fn contains(&self, key: &K) -> bool {
        self.entries.contains_key(key)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Iterates over the resident keys in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &K> {
        self.entries.keys()
    }

    /// Bumps `key`'s lifetime frequency (which persists across evictions)
    /// and returns the new count.
    fn bump_lifetime(&mut self, key: &K) -> u64 {
        let count = self.lifetime_frequency.entry(key.clone()).or_insert(0);
        *count += 1;
        *count
    }

    /// Marks a use of a resident `key`: bumps its in-cache frequency and
    /// recency plus its lifetime frequency. Returns whether the key was
    /// resident (a non-resident key is left untouched).
    fn record_use(&mut self, key: &K) -> bool {
        if let Some(meta) = self.entries.get_mut(key) {
            meta.frequency += 1;
            meta.last_used = self.clock;
            self.bump_lifetime(key);
            true
        } else {
            false
        }
    }

    /// Looks up `key`, recording a hit or miss and updating recency /
    /// frequency on a hit. Returns whether the key was resident.
    pub fn touch(&mut self, key: &K) -> bool {
        self.clock += 1;
        if self.record_use(key) {
            self.stats.record_hit();
            anole_obs::counter_add!("cache.hits", 1);
            true
        } else {
            self.stats.record_miss();
            anole_obs::counter_add!("cache.misses", 1);
            false
        }
    }

    /// Inserts `key`, evicting if at capacity. Returns the evicted key, if
    /// any. Inserting a resident key refreshes it and evicts nothing.
    ///
    /// The entry charges 0 bytes; use [`SlotCache::insert_weighted`] when a
    /// byte budget should constrain residency.
    pub fn insert(&mut self, key: K) -> Option<K> {
        self.insert_weighted(key, 0).into_iter().next()
    }

    /// Inserts `key` charging `bytes` against the byte budget (if one is
    /// configured), evicting per the configured policy until both the slot
    /// count and the budget hold. Returns the evicted keys in eviction
    /// order.
    ///
    /// Re-inserting a resident key refreshes it, re-charges it at `bytes`
    /// (a model reloaded at a different precision changes weight), and then
    /// evicts other entries if the new weight overflows the budget. A key
    /// whose weight alone exceeds the budget is not admitted.
    pub fn insert_weighted(&mut self, key: K, bytes: u64) -> Vec<K> {
        self.clock += 1;
        self.stats.insertions += 1;
        anole_obs::counter_add!("cache.insertions", 1);
        let lifetime = self.bump_lifetime(&key);
        let mut evicted = Vec::new();
        if let Some(meta) = self.entries.get_mut(&key) {
            meta.frequency += 1;
            meta.last_used = self.clock;
            self.stats.resident_bytes = self.stats.resident_bytes - meta.bytes + bytes;
            meta.bytes = bytes;
        } else {
            if self.capacity == 0 || self.byte_budget.is_some_and(|budget| bytes > budget) {
                return evicted;
            }
            while self.entries.len() >= self.capacity
                || self
                    .byte_budget
                    .is_some_and(|budget| self.stats.resident_bytes + bytes > budget)
            {
                match self.pick_victim() {
                    Some(victim) => {
                        self.evict_entry(&victim);
                        evicted.push(victim);
                    }
                    None => break,
                }
            }
            self.stats.resident_bytes += bytes;
            self.entries.insert(
                key,
                EntryMeta {
                    frequency: lifetime,
                    last_used: self.clock,
                    inserted: self.clock,
                    bytes,
                },
            );
        }
        self.stats.peak_resident_bytes =
            self.stats.peak_resident_bytes.max(self.stats.resident_bytes);
        evicted
    }

    /// Removes `victim` and settles its eviction accounting.
    fn evict_entry(&mut self, victim: &K) {
        if let Some(meta) = self.entries.remove(victim) {
            self.stats.resident_bytes -= meta.bytes;
            self.stats.evictions += 1;
            anole_obs::counter_add!("cache.evictions", 1);
        }
    }

    /// Bumps `key`'s frequency and recency without touching hit/miss
    /// statistics. Returns whether the key was resident.
    ///
    /// Used when a lookup for one key is *served* by another resident entry
    /// (Anole's best-cached fallback): the fallback's usage must count for
    /// eviction purposes, but the lookup was already accounted against the
    /// requested key.
    pub fn refresh(&mut self, key: &K) -> bool {
        self.clock += 1;
        self.record_use(key)
    }

    /// Removes `key` if resident, returning whether it was.
    pub fn remove(&mut self, key: &K) -> bool {
        match self.entries.remove(key) {
            Some(meta) => {
                self.stats.resident_bytes -= meta.bytes;
                true
            }
            None => false,
        }
    }

    /// Resizes the cache to `capacity` slots, evicting per the configured
    /// policy until the resident set fits. Returns the evicted keys in
    /// eviction order (empty when growing or already within bounds).
    ///
    /// This models a memory-pressure event on the device: the OS reclaims
    /// GPU memory mid-stream and the deployment layer must shed resident
    /// models without restarting.
    pub fn set_capacity(&mut self, capacity: usize) -> Vec<K> {
        self.capacity = capacity;
        let mut evicted = Vec::new();
        while self.entries.len() > self.capacity {
            match self.pick_victim() {
                Some(victim) => {
                    self.evict_entry(&victim);
                    self.stats.capacity_evictions += 1;
                    anole_obs::counter_add!("cache.capacity_evictions", 1);
                    evicted.push(victim);
                }
                None => break,
            }
        }
        evicted
    }

    /// Removes every resident key (statistics are kept; resident bytes drop
    /// to zero).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.stats.resident_bytes = 0;
    }

    /// The key the policy would evict next, without evicting it. `None`
    /// when the cache is empty.
    pub fn peek_victim(&self) -> Option<K> {
        self.pick_victim()
    }

    /// Whether inserting a new (non-resident) entry charging `bytes` would
    /// force at least one eviction right now.
    pub fn would_evict(&self, bytes: u64) -> bool {
        self.entries.len() >= self.capacity
            || self
                .byte_budget
                .is_some_and(|budget| self.stats.resident_bytes + bytes > budget)
    }

    fn pick_victim(&self) -> Option<K> {
        let best = self.entries.iter().min_by(|(_, a), (_, b)| match self.policy {
            EvictionPolicy::Lfu => a
                .frequency
                .cmp(&b.frequency)
                .then(a.last_used.cmp(&b.last_used)),
            EvictionPolicy::Lru => a.last_used.cmp(&b.last_used),
            EvictionPolicy::Fifo => a.inserted.cmp(&b.inserted),
        });
        best.map(|(k, _)| k.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lfu_evicts_least_frequent() {
        let mut c = SlotCache::new(2, EvictionPolicy::Lfu);
        c.insert("a");
        c.insert("b");
        c.touch(&"a");
        c.touch(&"a");
        c.touch(&"b");
        assert_eq!(c.insert("c"), Some("b"));
        assert!(c.contains(&"a") && c.contains(&"c"));
    }

    #[test]
    fn lfu_ties_break_by_recency() {
        let mut c = SlotCache::new(2, EvictionPolicy::Lfu);
        c.insert("a");
        c.insert("b");
        c.touch(&"a");
        c.touch(&"b"); // equal frequency, b more recent
        assert_eq!(c.insert("c"), Some("a"));
    }

    #[test]
    fn lfu_frequency_survives_eviction() {
        // "a" is popular, gets evicted, returns: its lifetime frequency
        // should protect it from immediate re-eviction.
        let mut c = SlotCache::new(2, EvictionPolicy::Lfu);
        c.insert("a");
        for _ in 0..10 {
            c.touch(&"a");
        }
        c.insert("b");
        c.remove(&"a");
        c.insert("c");
        c.insert("a"); // cache now {b or c, a}
        assert!(c.contains(&"a"));
        // Insert d: victim must not be "a" (lifetime frequency 12).
        let evicted = c.insert("d").unwrap();
        assert_ne!(evicted, "a");
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = SlotCache::new(2, EvictionPolicy::Lru);
        c.insert(1);
        c.insert(2);
        c.touch(&1);
        assert_eq!(c.insert(3), Some(2));
    }

    #[test]
    fn fifo_evicts_oldest_insertion() {
        let mut c = SlotCache::new(2, EvictionPolicy::Fifo);
        c.insert(1);
        c.insert(2);
        c.touch(&1); // recency must not matter
        assert_eq!(c.insert(3), Some(1));
    }

    #[test]
    fn reinserting_resident_key_evicts_nothing() {
        let mut c = SlotCache::new(1, EvictionPolicy::Lfu);
        c.insert("a");
        assert_eq!(c.insert("a"), None);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn zero_capacity_cache_holds_nothing() {
        let mut c = SlotCache::new(0, EvictionPolicy::Lfu);
        assert_eq!(c.insert("a"), None);
        assert!(!c.contains(&"a"));
        assert!(c.is_empty());
        assert!(!c.touch(&"a"));
    }

    #[test]
    fn stats_track_hits_misses_evictions() {
        let mut c = SlotCache::new(1, EvictionPolicy::Lru);
        c.touch(&"a"); // miss
        c.insert("a");
        c.touch(&"a"); // hit
        c.insert("b"); // evicts a
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.insertions, 2);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let mut c = SlotCache::new(3, EvictionPolicy::Lfu);
        for i in 0..100 {
            c.insert(i % 7);
            assert!(c.len() <= 3);
        }
    }

    #[test]
    fn shrinking_capacity_evicts_by_policy() {
        let mut c = SlotCache::new(4, EvictionPolicy::Lfu);
        for key in ["a", "b", "c", "d"] {
            c.insert(key);
        }
        for _ in 0..3 {
            c.touch(&"a");
        }
        c.touch(&"b");
        c.touch(&"b");
        c.touch(&"c");
        // Shrink to 2: the least-frequent keys ("d" then "c") must go.
        let evicted = c.set_capacity(2);
        assert_eq!(evicted, vec!["d", "c"]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.capacity(), 2);
        assert!(c.contains(&"a") && c.contains(&"b"));
        assert_eq!(c.stats().evictions, 2);
        // Inserts now respect the reduced capacity.
        c.insert("e");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn growing_capacity_evicts_nothing() {
        let mut c = SlotCache::new(1, EvictionPolicy::Lru);
        c.insert(1);
        assert!(c.set_capacity(3).is_empty());
        c.insert(2);
        c.insert(3);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn shrinking_to_zero_empties_the_cache() {
        let mut c = SlotCache::new(3, EvictionPolicy::Fifo);
        c.insert(1);
        c.insert(2);
        let evicted = c.set_capacity(0);
        assert_eq!(evicted.len(), 2);
        assert!(c.is_empty());
        // A zero-capacity cache rejects further inserts.
        c.insert(4);
        assert!(c.is_empty());
    }

    #[test]
    fn remove_and_clear() {
        let mut c = SlotCache::new(2, EvictionPolicy::Lru);
        c.insert(1);
        assert!(c.remove(&1));
        assert!(!c.remove(&1));
        c.insert(2);
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn byte_budget_evicts_until_the_new_entry_fits() {
        // Budget of 100 bytes, generous slot count: three 40-byte entries
        // cannot coexist, so the third insert evicts the least-recent.
        let mut c = SlotCache::with_byte_budget(10, EvictionPolicy::Lru, 100);
        assert!(c.insert_weighted("a", 40).is_empty());
        assert!(c.insert_weighted("b", 40).is_empty());
        assert_eq!(c.resident_bytes(), 80);
        assert_eq!(c.insert_weighted("c", 40), vec!["a"]);
        assert_eq!(c.resident_bytes(), 80);
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().peak_resident_bytes, 80);
    }

    #[test]
    fn quarter_weight_entries_quadruple_occupancy() {
        // The int8 story: at equal byte budget, entries charging a quarter
        // of the f32 weight pack 4x as many models into the cache.
        let budget = 400u64;
        let mut fp32 = SlotCache::with_byte_budget(64, EvictionPolicy::Lfu, budget);
        let mut int8 = SlotCache::with_byte_budget(64, EvictionPolicy::Lfu, budget);
        for i in 0..16 {
            fp32.insert_weighted(i, 100);
            int8.insert_weighted(i, 25);
        }
        assert_eq!(fp32.len(), 4);
        assert_eq!(int8.len(), 16);
        assert!(int8.len() >= 3 * fp32.len());
        assert!(fp32.resident_bytes() <= budget);
        assert!(int8.resident_bytes() <= budget);
    }

    #[test]
    fn oversized_entry_is_not_admitted() {
        let mut c = SlotCache::with_byte_budget(4, EvictionPolicy::Lru, 50);
        c.insert_weighted("a", 30);
        let evicted = c.insert_weighted("huge", 60);
        assert!(evicted.is_empty());
        assert!(!c.contains(&"huge"));
        assert!(c.contains(&"a"));
        assert_eq!(c.resident_bytes(), 30);
    }

    #[test]
    fn reinserting_at_a_new_weight_recharges_the_entry() {
        // A model re-admitted at int8 precision shrinks its charge.
        let mut c = SlotCache::with_byte_budget(4, EvictionPolicy::Lru, 100);
        c.insert_weighted("m", 80);
        assert_eq!(c.resident_bytes(), 80);
        assert!(c.insert_weighted("m", 20).is_empty());
        assert_eq!(c.resident_bytes(), 20);
        assert_eq!(c.len(), 1);
        // The freed budget now admits more entries.
        assert!(c.insert_weighted("n", 80).is_empty());
        assert_eq!(c.resident_bytes(), 100);
    }

    #[test]
    fn remove_and_clear_release_resident_bytes() {
        let mut c = SlotCache::with_byte_budget(4, EvictionPolicy::Fifo, 100);
        c.insert_weighted(1, 30);
        c.insert_weighted(2, 30);
        assert!(c.remove(&1));
        assert_eq!(c.resident_bytes(), 30);
        c.clear();
        assert_eq!(c.resident_bytes(), 0);
        assert_eq!(c.stats().peak_resident_bytes, 60);
    }

    #[test]
    fn unweighted_inserts_keep_slot_semantics_and_charge_nothing() {
        let mut c = SlotCache::new(2, EvictionPolicy::Lru);
        c.insert("a");
        c.insert("b");
        assert_eq!(c.insert("c"), Some("a"));
        assert_eq!(c.resident_bytes(), 0);
        assert_eq!(c.byte_budget(), None);
    }

    #[test]
    fn policies_differ_on_a_distinguishing_trace() {
        // Trace: insert a, b; touch a 3x; insert c.
        // LFU evicts b (freq 1 < a's 4); LRU evicts b (older); FIFO evicts a.
        let run = |policy| {
            let mut c = SlotCache::new(2, policy);
            c.insert("a");
            c.insert("b");
            for _ in 0..3 {
                c.touch(&"a");
            }
            c.insert("c").unwrap()
        };
        assert_eq!(run(EvictionPolicy::Lfu), "b");
        assert_eq!(run(EvictionPolicy::Lru), "b");
        assert_eq!(run(EvictionPolicy::Fifo), "a");
    }
}
