//! A sharded slot cache with an optional shared admission filter.
//!
//! [`ShardedSlotCache`] splits one logical cache into N power-of-two
//! [`SlotCache`] shards keyed by a deterministic FNV-1a hash of the key, so
//! concurrent engines (or one engine under a prefetcher that inserts
//! speculatively) contend on a fraction of the resident set instead of all
//! of it. A 1-shard cache degenerates to exactly today's [`SlotCache`] —
//! every operation forwards verbatim — which is property-tested in
//! `tests/prop_sharded.rs`.
//!
//! The optional admission filter is a TinyLFU-style counting sketch shared
//! across shards: an insert into a full shard is rejected when the
//! candidate's estimated access frequency is below the would-be victim's,
//! so one-hit-wonder prefetches cannot evict proven residents.

use std::hash::{Hash, Hasher};

use crate::{CacheStats, EvictionPolicy, SlotCache};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over the bytes fed by a key's `Hash` impl. Deterministic
/// across processes (unlike `DefaultHasher`'s unspecified initial state
/// guarantee), so shard layouts are stable run to run.
struct FnvHasher(u64);

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// Hashes `key` with the given salt folded into the FNV basis. Distinct
/// salts give distinct (still deterministic) shard layouts, so a fleet of
/// engines salted by session seed does not send every copy of one hot model
/// to the same shard index.
fn salted_hash<K: Hash>(salt: u64, key: &K) -> u64 {
    let mut h = FnvHasher(FNV_OFFSET ^ salt.wrapping_mul(FNV_PRIME));
    key.hash(&mut h);
    h.finish()
}

/// A TinyLFU-style frequency sketch: a 4-row count-min sketch of `u8`
/// saturating counters with periodic halving ("aging"), so estimates track
/// recent popularity rather than all-time counts. Deterministic — indexes
/// derive from the key hash and fixed row seeds.
#[derive(Debug, Clone)]
pub struct FrequencySketch {
    /// `DEPTH` rows of `width` counters, flattened row-major.
    counters: Vec<u8>,
    mask: u64,
    ops: u64,
    sample: u64,
}

const DEPTH: usize = 4;
const ROW_SEEDS: [u64; DEPTH] = [
    0x9e37_79b9_7f4a_7c15,
    0xc2b2_ae3d_27d4_eb4f,
    0x1656_67b1_9e37_79f9,
    0x27d4_eb2f_1656_67c5,
];

impl FrequencySketch {
    /// Creates a sketch with `width` counters per row (rounded up to a
    /// power of two, minimum 16). Aging halves every counter once
    /// `10 × width` increments accumulate.
    pub fn new(width: usize) -> Self {
        let width = width.max(16).next_power_of_two();
        Self {
            counters: vec![0; DEPTH * width],
            mask: width as u64 - 1,
            ops: 0,
            sample: 10 * width as u64,
        }
    }

    fn index(&self, hash: u64, row: usize) -> usize {
        let mixed = (hash ^ ROW_SEEDS[row]).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let width = self.mask as usize + 1;
        row * width + ((mixed >> 32) & self.mask) as usize
    }

    /// Records one access of the key hashing to `hash`.
    pub fn increment(&mut self, hash: u64) {
        for row in 0..DEPTH {
            let i = self.index(hash, row);
            self.counters[i] = self.counters[i].saturating_add(1);
        }
        self.ops += 1;
        if self.ops >= self.sample {
            self.age();
        }
    }

    /// Estimated access count (count-min: minimum across rows, an upper
    /// bound on the true count since the last few agings).
    pub fn estimate(&self, hash: u64) -> u8 {
        (0..DEPTH)
            .map(|row| self.counters[self.index(hash, row)])
            .min()
            .unwrap_or(0)
    }

    fn age(&mut self) {
        for c in &mut self.counters {
            *c >>= 1;
        }
        self.ops >>= 1;
    }
}

/// N power-of-two [`SlotCache`] shards behind the [`SlotCache`] API, with
/// slots and byte budget split evenly across shards and an optional shared
/// admission filter.
///
/// With one shard (the default deployment configuration) every operation
/// forwards to the single inner [`SlotCache`] unchanged, so behaviour —
/// hits, evictions, statistics — is bit-identical to the unsharded cache.
///
/// # Examples
///
/// ```
/// use anole_cache::{EvictionPolicy, ShardedSlotCache};
///
/// let mut cache: ShardedSlotCache<usize> =
///     ShardedSlotCache::new(4, 8, EvictionPolicy::Lfu);
/// assert_eq!(cache.shard_count(), 4);
/// assert_eq!(cache.capacity(), 8);
/// cache.insert_weighted(3, 100);
/// assert!(cache.contains(&3));
/// assert!(cache.touch(&3));
/// ```
#[derive(Debug, Clone)]
pub struct ShardedSlotCache<K> {
    shards: Vec<SlotCache<K>>,
    mask: u64,
    salt: u64,
    filter: Option<FrequencySketch>,
    admission_rejects: u64,
}

impl<K: Eq + Hash + Clone> ShardedSlotCache<K> {
    /// Creates a cache of `shards` shards (rounded up to a power of two,
    /// minimum 1) sharing `capacity` total slots, split as evenly as
    /// possible with the remainder going to the lowest-index shards.
    pub fn new(shards: usize, capacity: usize, policy: EvictionPolicy) -> Self {
        let shards = shards.max(1).next_power_of_two();
        let caches = (0..shards)
            .map(|i| SlotCache::new(Self::split(capacity, shards, i), policy))
            .collect();
        Self {
            shards: caches,
            mask: shards as u64 - 1,
            salt: 0,
            filter: None,
            admission_rejects: 0,
        }
    }

    /// Creates a sharded cache bounded by both total slots and a total
    /// resident-byte budget, each split evenly across shards.
    pub fn with_byte_budget(
        shards: usize,
        capacity: usize,
        policy: EvictionPolicy,
        byte_budget: u64,
    ) -> Self {
        let shards = shards.max(1).next_power_of_two();
        let caches = (0..shards)
            .map(|i| {
                SlotCache::with_byte_budget(
                    Self::split(capacity, shards, i),
                    policy,
                    Self::split_u64(byte_budget, shards, i),
                )
            })
            .collect();
        Self {
            shards: caches,
            mask: shards as u64 - 1,
            salt: 0,
            filter: None,
            admission_rejects: 0,
        }
    }

    /// Shard `i`'s share of `total` split across `shards`.
    fn split(total: usize, shards: usize, i: usize) -> usize {
        total / shards + usize::from(i < total % shards)
    }

    fn split_u64(total: u64, shards: usize, i: usize) -> u64 {
        let shards = shards as u64;
        total / shards + u64::from((i as u64) < total % shards)
    }

    /// Sets the hash salt, remapping which shard each key lands in. Give
    /// each engine in a fleet a distinct salt (e.g. its session seed) so
    /// concurrent sessions hit disjoint shards for the same hot model IDs.
    /// No effect on a 1-shard cache.
    pub fn with_hash_salt(mut self, salt: u64) -> Self {
        self.salt = salt;
        self
    }

    /// Enables the shared admission filter with `width` counters per sketch
    /// row. See [`FrequencySketch`].
    pub fn with_admission_filter(mut self, width: usize) -> Self {
        self.filter = Some(FrequencySketch::new(width));
        self
    }

    /// Number of shards (a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `key` maps to.
    pub fn shard_of(&self, key: &K) -> usize {
        (salted_hash(self.salt, key) & self.mask) as usize
    }

    /// Total slot count across shards.
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(SlotCache::capacity).sum()
    }

    /// Total resident-byte ceiling across shards, if byte accounting is on.
    pub fn byte_budget(&self) -> Option<u64> {
        self.shards.iter().map(SlotCache::byte_budget).sum()
    }

    /// Bytes currently charged across all shards.
    pub fn resident_bytes(&self) -> u64 {
        self.shards.iter().map(SlotCache::resident_bytes).sum()
    }

    /// The eviction policy (identical across shards).
    pub fn policy(&self) -> EvictionPolicy {
        self.shards[0].policy()
    }

    /// Number of resident keys across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(SlotCache::len).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(SlotCache::is_empty)
    }

    /// Whether `key` is resident in its shard. Does not touch accounting.
    pub fn contains(&self, key: &K) -> bool {
        self.shards[self.shard_of(key)].contains(key)
    }

    /// Statistics aggregated across shards. `peak_resident_bytes` is the
    /// sum of per-shard peaks — an upper bound on the true simultaneous
    /// peak (exact for one shard).
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            total.merge(&shard.stats());
        }
        total
    }

    /// Inserts rejected by the admission filter so far.
    pub fn admission_rejects(&self) -> u64 {
        self.admission_rejects
    }

    /// Iterates over resident keys, shard by shard, in unspecified order
    /// within each shard.
    pub fn iter(&self) -> impl Iterator<Item = &K> {
        self.shards.iter().flat_map(SlotCache::iter)
    }

    /// Looks up `key` in its shard, recording a hit or miss there.
    pub fn touch(&mut self, key: &K) -> bool {
        let hash = salted_hash(self.salt, key);
        if let Some(filter) = &mut self.filter {
            filter.increment(hash);
        }
        self.shards[(hash & self.mask) as usize].touch(key)
    }

    /// Inserts `key` charging 0 bytes. Returns the first evicted key.
    pub fn insert(&mut self, key: K) -> Option<K> {
        self.insert_weighted(key, 0).into_iter().next()
    }

    /// Inserts `key` into its shard charging `bytes`, evicting within that
    /// shard per policy. Returns the evicted keys in eviction order.
    ///
    /// With the admission filter enabled, a non-resident key that would
    /// force an eviction is admitted only if its sketch frequency is at
    /// least the would-be victim's; otherwise the insert is dropped (the
    /// returned list is empty and nothing is evicted).
    pub fn insert_weighted(&mut self, key: K, bytes: u64) -> Vec<K> {
        let hash = salted_hash(self.salt, &key);
        let idx = (hash & self.mask) as usize;
        if let Some(filter) = &mut self.filter {
            filter.increment(hash);
            let shard = &self.shards[idx];
            if !shard.contains(&key) && shard.would_evict(bytes) {
                if let Some(victim) = shard.peek_victim() {
                    let victim_hash = salted_hash(self.salt, &victim);
                    let filter = self.filter.as_ref().expect("filter checked above");
                    if filter.estimate(hash) < filter.estimate(victim_hash) {
                        self.admission_rejects += 1;
                        anole_obs::counter_add!("cache.admission_rejects", 1);
                        return Vec::new();
                    }
                }
            }
        }
        self.shards[idx].insert_weighted(key, bytes)
    }

    /// Bumps `key`'s frequency and recency in its shard without hit/miss
    /// accounting (see [`SlotCache::refresh`]).
    pub fn refresh(&mut self, key: &K) -> bool {
        let hash = salted_hash(self.salt, key);
        if let Some(filter) = &mut self.filter {
            filter.increment(hash);
        }
        self.shards[(hash & self.mask) as usize].refresh(key)
    }

    /// Removes `key` from its shard if resident.
    pub fn remove(&mut self, key: &K) -> bool {
        let idx = self.shard_of(key);
        self.shards[idx].remove(key)
    }

    /// Resizes the cache to `capacity` total slots, re-split evenly across
    /// shards, evicting per policy in each shard. Returns evicted keys in
    /// shard order (eviction order within a shard).
    pub fn set_capacity(&mut self, capacity: usize) -> Vec<K> {
        let shards = self.shards.len();
        let mut evicted = Vec::new();
        for (i, shard) in self.shards.iter_mut().enumerate() {
            evicted.extend(shard.set_capacity(Self::split(capacity, shards, i)));
        }
        evicted
    }

    /// Removes every resident key from every shard (statistics are kept).
    pub fn clear(&mut self) {
        for shard in &mut self.shards {
            shard.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shard_forwards_to_a_single_slot_cache() {
        let mut sharded: ShardedSlotCache<&str> = ShardedSlotCache::new(1, 2, EvictionPolicy::Lfu);
        let mut plain: SlotCache<&str> = SlotCache::new(2, EvictionPolicy::Lfu);
        sharded.insert("a");
        plain.insert("a");
        sharded.insert("b");
        plain.insert("b");
        sharded.touch(&"a");
        plain.touch(&"a");
        assert_eq!(sharded.insert("c"), plain.insert("c"));
        assert_eq!(sharded.stats(), plain.stats());
        assert_eq!(sharded.len(), plain.len());
    }

    #[test]
    fn shard_count_rounds_up_to_a_power_of_two() {
        let c: ShardedSlotCache<usize> = ShardedSlotCache::new(3, 8, EvictionPolicy::Lfu);
        assert_eq!(c.shard_count(), 4);
        let c: ShardedSlotCache<usize> = ShardedSlotCache::new(0, 8, EvictionPolicy::Lfu);
        assert_eq!(c.shard_count(), 1);
    }

    #[test]
    fn capacity_splits_evenly_with_remainder_to_low_shards() {
        let c: ShardedSlotCache<usize> = ShardedSlotCache::new(4, 10, EvictionPolicy::Lfu);
        assert_eq!(c.capacity(), 10);
        let c: ShardedSlotCache<usize> = ShardedSlotCache::with_byte_budget(
            2,
            4,
            EvictionPolicy::Lfu,
            101,
        );
        assert_eq!(c.byte_budget(), Some(101));
    }

    #[test]
    fn keys_route_to_stable_shards() {
        let c: ShardedSlotCache<usize> = ShardedSlotCache::new(4, 16, EvictionPolicy::Lfu);
        let d: ShardedSlotCache<usize> = ShardedSlotCache::new(4, 16, EvictionPolicy::Lfu);
        for key in 0..64 {
            assert_eq!(c.shard_of(&key), d.shard_of(&key));
            assert!(c.shard_of(&key) < 4);
        }
    }

    #[test]
    fn salts_remap_shard_layouts() {
        let a: ShardedSlotCache<usize> =
            ShardedSlotCache::new(8, 64, EvictionPolicy::Lfu).with_hash_salt(1);
        let b: ShardedSlotCache<usize> =
            ShardedSlotCache::new(8, 64, EvictionPolicy::Lfu).with_hash_salt(2);
        let moved = (0..256).filter(|k| a.shard_of(k) != b.shard_of(k)).count();
        assert!(moved > 0, "distinct salts must change some shard mappings");
    }

    #[test]
    fn inserts_land_in_the_key_shard_and_evict_locally() {
        let mut c: ShardedSlotCache<usize> = ShardedSlotCache::new(4, 4, EvictionPolicy::Lru);
        // One slot per shard: inserting two keys of the same shard evicts
        // the first; keys of different shards coexist.
        let keys: Vec<usize> = (0..64).collect();
        let same: Vec<usize> = keys
            .iter()
            .copied()
            .filter(|k| c.shard_of(k) == c.shard_of(&keys[0]))
            .take(2)
            .collect();
        assert_eq!(same.len(), 2);
        c.insert(same[0]);
        let evicted = c.insert(same[1]);
        assert_eq!(evicted, Some(same[0]));
        let other = keys.iter().copied().find(|k| c.shard_of(k) != c.shard_of(&same[1]));
        if let Some(other) = other {
            assert!(c.insert(other).is_none());
            assert_eq!(c.len(), 2);
        }
    }

    #[test]
    fn admission_filter_rejects_cold_keys_and_protects_residents() {
        let mut c: ShardedSlotCache<usize> =
            ShardedSlotCache::new(1, 2, EvictionPolicy::Lfu).with_admission_filter(64);
        // Make 1 and 2 proven residents.
        c.insert(1);
        c.insert(2);
        for _ in 0..8 {
            c.touch(&1);
            c.touch(&2);
        }
        // A cold key cannot displace them...
        let evicted = c.insert(99);
        assert!(evicted.is_none());
        assert!(!c.contains(&99));
        assert!(c.contains(&1) && c.contains(&2));
        assert_eq!(c.admission_rejects(), 1);
        // ...but a key that becomes hot (via repeated lookups feeding the
        // sketch) eventually out-scores a resident and is admitted.
        for _ in 0..32 {
            c.touch(&99); // misses, but feeds the sketch
        }
        c.insert(99);
        assert!(c.contains(&99));
    }

    #[test]
    fn set_capacity_resplits_across_shards() {
        let mut c: ShardedSlotCache<usize> = ShardedSlotCache::new(2, 8, EvictionPolicy::Lfu);
        for k in 0..32 {
            c.insert(k);
        }
        assert!(c.len() <= 8);
        let before = c.len();
        let evicted = c.set_capacity(2);
        assert_eq!(c.capacity(), 2);
        assert!(c.len() <= 2);
        assert_eq!(evicted.len(), before - c.len());
        // Growing back evicts nothing.
        assert!(c.set_capacity(8).is_empty());
    }

    #[test]
    fn sketch_estimates_track_and_age() {
        let mut sketch = FrequencySketch::new(64);
        let (a, b) = (salted_hash(0, &1usize), salted_hash(0, &2usize));
        for _ in 0..10 {
            sketch.increment(a);
        }
        sketch.increment(b);
        assert!(sketch.estimate(a) > sketch.estimate(b));
        assert!(sketch.estimate(a) >= 10);
        // Saturates rather than wrapping.
        for _ in 0..300 {
            sketch.increment(a);
        }
        assert!(sketch.estimate(a) <= u8::MAX);
    }

    #[test]
    fn zero_capacity_sharded_cache_rejects_inserts() {
        let mut c: ShardedSlotCache<usize> = ShardedSlotCache::new(4, 0, EvictionPolicy::Lfu);
        assert!(c.insert(1).is_none());
        assert!(c.is_empty());
        assert_eq!(c.capacity(), 0);
    }
}
