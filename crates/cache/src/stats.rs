//! Hit/miss accounting for cache experiments.

use serde::{Deserialize, Serialize};

/// Counters accumulated by a cache over its lifetime.
///
/// # Examples
///
/// ```
/// let mut stats = anole_cache::CacheStats::default();
/// stats.record_hit();
/// stats.record_miss();
/// assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
/// assert!((stats.miss_rate() - 0.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that found the key resident.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Insertions that displaced a resident entry.
    pub evictions: u64,
    /// Total insertions.
    pub insertions: u64,
    /// Evictions forced by a capacity shrink ([`set_capacity`]) rather than
    /// an insertion — the memory-pressure path. A subset of `evictions`.
    /// Deserializes to 0 from logs written before this counter existed.
    ///
    /// [`set_capacity`]: crate::SlotCache::set_capacity
    #[serde(default)]
    pub capacity_evictions: u64,
    /// Bytes currently charged by resident entries (entries inserted through
    /// the unweighted [`insert`] count 0). Deserializes to 0 from logs
    /// written before byte accounting existed.
    ///
    /// [`insert`]: crate::SlotCache::insert
    #[serde(default)]
    pub resident_bytes: u64,
    /// High-water mark of `resident_bytes` over the cache's lifetime.
    #[serde(default)]
    pub peak_resident_bytes: u64,
}

impl CacheStats {
    /// Total lookups recorded.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups that hit; 0.0 before any lookup.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// Fraction of lookups that missed; 0.0 before any lookup.
    pub fn miss_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.misses as f64 / self.lookups() as f64
        }
    }

    /// Records a hit.
    pub fn record_hit(&mut self) {
        self.hits += 1;
    }

    /// Records a miss.
    pub fn record_miss(&mut self) {
        self.misses += 1;
    }

    /// Accumulates `other` into `self`, counter by counter — aggregation
    /// across shards or across a fleet of caches. `peak_resident_bytes`
    /// becomes the sum of per-cache peaks: an upper bound on the aggregate
    /// peak, since independent caches need not peak simultaneously.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.insertions += other.insertions;
        self.capacity_evictions += other.capacity_evictions;
        self.resident_bytes += other.resident_bytes;
        self.peak_resident_bytes += other.peak_resident_bytes;
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hits={} misses={} evictions={} hit_rate={:.3}",
            self.hits,
            self.misses,
            self.evictions,
            self.hit_rate()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_on_empty_stats_are_zero() {
        let s = CacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.lookups(), 0);
    }

    #[test]
    fn rates_sum_to_one_after_traffic() {
        let mut s = CacheStats::default();
        for _ in 0..3 {
            s.record_hit();
        }
        s.record_miss();
        assert_eq!(s.lookups(), 4);
        assert!((s.hit_rate() + s.miss_rate() - 1.0).abs() < 1e-12);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn display_is_informative() {
        let mut s = CacheStats::default();
        s.record_hit();
        let text = s.to_string();
        assert!(text.contains("hits=1"));
        assert!(text.contains("hit_rate=1.000"));
    }
}
