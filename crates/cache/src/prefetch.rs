//! Predictive prefetch support: a first-order Markov model over model IDs.
//!
//! The paper's CMD stage is purely reactive — every scene change pays a cold
//! model load on the critical path (Fig. 4a). [`TransitionModel`] learns
//! which model tends to follow which from the decision model's top-ranked ID
//! per frame, so the deployment layer can load the likely-next model during
//! idle frame budget instead of stalling on the next miss.
//!
//! The model is deterministic by construction: predictions are the argmax of
//! Laplace-smoothed transition counts with ties broken toward the lowest
//! model ID, so two replicas fed the same ID stream predict identically. It
//! serializes with serde so a model learned from offline clip telemetry can
//! ship inside a deployment bundle and warm-start the on-device copy.

use serde::{Deserialize, Serialize};

/// First-order Markov scene-transition model over `states` model IDs.
///
/// Counts are Laplace-smoothed when converted to probabilities, updates are
/// O(1) per observation, and the struct is plain data (serde-serializable)
/// so it can ride in a bundle artifact.
///
/// # Examples
///
/// ```
/// use anole_cache::prefetch::TransitionModel;
///
/// let mut tm = TransitionModel::new(3);
/// // A clip that alternates between model 0 and model 2.
/// for &id in &[0, 2, 0, 2, 0, 2] {
///     tm.observe(id);
/// }
/// assert_eq!(tm.predict_next(0), Some(2));
/// assert_eq!(tm.predict_next(2), Some(0));
/// assert_eq!(tm.predict_next(1), None); // never seen leaving state 1
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransitionModel {
    states: usize,
    /// Laplace smoothing constant added to every transition count when
    /// computing probabilities.
    smoothing: f64,
    /// Row-major `states × states` transition counts.
    counts: Vec<u64>,
    row_totals: Vec<u64>,
    /// Previous observed ID, if any — the context for the next update.
    last: Option<usize>,
    observations: u64,
}

impl TransitionModel {
    /// Creates a model over `states` IDs with Laplace smoothing of 1.
    pub fn new(states: usize) -> Self {
        Self::with_smoothing(states, 1.0)
    }

    /// Creates a model with an explicit Laplace smoothing constant.
    /// Non-finite or negative values are clamped to 0.
    pub fn with_smoothing(states: usize, smoothing: f64) -> Self {
        let smoothing = if smoothing.is_finite() && smoothing > 0.0 {
            smoothing
        } else {
            0.0
        };
        Self {
            states,
            smoothing,
            counts: vec![0; states * states],
            row_totals: vec![0; states],
            last: None,
            observations: 0,
        }
    }

    /// Number of states (model IDs) the model covers.
    pub fn states(&self) -> usize {
        self.states
    }

    /// Total number of transitions observed.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Records that `id` was the top-ranked model this frame. The first
    /// observation (or the first after [`TransitionModel::reset_context`])
    /// only establishes context; each later one counts one transition.
    /// Out-of-range IDs are ignored. O(1).
    pub fn observe(&mut self, id: usize) {
        if id >= self.states {
            return;
        }
        if let Some(prev) = self.last {
            self.counts[prev * self.states + id] += 1;
            self.row_totals[prev] += 1;
            self.observations += 1;
        }
        self.last = Some(id);
    }

    /// Forgets the previous observation, so the next [`observe`] call starts
    /// a fresh chain. Call between independent clips when warm-starting from
    /// offline telemetry — the last frame of one clip does not precede the
    /// first frame of the next.
    ///
    /// [`observe`]: TransitionModel::observe
    pub fn reset_context(&mut self) {
        self.last = None;
    }

    /// Observes a whole clip's ID sequence, then resets context.
    pub fn observe_clip(&mut self, ids: &[usize]) {
        self.reset_context();
        for &id in ids {
            self.observe(id);
        }
        self.reset_context();
    }

    /// The most likely next ID after `current`, or `None` when `current` is
    /// out of range or has no observed outgoing transitions (smoothing alone
    /// carries no signal). Ties break toward the lowest ID, so predictions
    /// are deterministic.
    pub fn predict_next(&self, current: usize) -> Option<usize> {
        if current >= self.states || self.row_totals[current] == 0 {
            return None;
        }
        let row = &self.counts[current * self.states..(current + 1) * self.states];
        let (best, _) = row
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| a.cmp(b).then(ib.cmp(ia)))?;
        Some(best)
    }

    /// Laplace-smoothed probability of transitioning `from → to`. Returns 0
    /// for out-of-range IDs; with no observations and positive smoothing the
    /// row is uniform.
    pub fn probability(&self, from: usize, to: usize) -> f64 {
        if from >= self.states || to >= self.states {
            return 0.0;
        }
        let total = self.row_totals[from] as f64 + self.smoothing * self.states as f64;
        if total == 0.0 {
            return 0.0;
        }
        (self.counts[from * self.states + to] as f64 + self.smoothing) / total
    }

    /// [`predict_next`] gated on its smoothed probability: `None` unless the
    /// best transition's probability reaches `min_probability`.
    ///
    /// [`predict_next`]: TransitionModel::predict_next
    pub fn predict_confident(&self, current: usize, min_probability: f64) -> Option<usize> {
        let next = self.predict_next(current)?;
        (self.probability(current, next) >= min_probability).then_some(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_model_predicts_nothing() {
        let tm = TransitionModel::new(4);
        for id in 0..4 {
            assert_eq!(tm.predict_next(id), None);
        }
        assert_eq!(tm.predict_next(99), None);
        assert_eq!(tm.observations(), 0);
    }

    #[test]
    fn learns_a_dominant_transition() {
        let mut tm = TransitionModel::new(3);
        for _ in 0..5 {
            tm.observe(0);
            tm.observe(1);
        }
        tm.observe(0);
        tm.observe(2); // one stray 0 → 2
        assert_eq!(tm.predict_next(0), Some(1));
        assert!(tm.probability(0, 1) > tm.probability(0, 2));
    }

    #[test]
    fn ties_break_toward_the_lowest_id() {
        let mut tm = TransitionModel::new(3);
        tm.observe_clip(&[0, 2]);
        tm.observe_clip(&[0, 1]);
        // 0 → 1 and 0 → 2 both seen once.
        assert_eq!(tm.predict_next(0), Some(1));
    }

    #[test]
    fn reset_context_breaks_the_chain() {
        let mut tm = TransitionModel::new(3);
        tm.observe(0);
        tm.reset_context();
        tm.observe(1);
        // No transition was counted: 0 → 1 never happened within a chain.
        assert_eq!(tm.observations(), 0);
        assert_eq!(tm.predict_next(0), None);
    }

    #[test]
    fn out_of_range_ids_are_ignored() {
        let mut tm = TransitionModel::new(2);
        tm.observe(0);
        tm.observe(7); // dropped, context stays at 0
        tm.observe(1);
        assert_eq!(tm.observations(), 1);
        assert_eq!(tm.predict_next(0), Some(1));
    }

    #[test]
    fn probabilities_are_laplace_smoothed() {
        let mut tm = TransitionModel::new(2);
        tm.observe_clip(&[0, 1]);
        // Row 0: counts [0, 1], smoothing 1 → probs [1/3, 2/3].
        assert!((tm.probability(0, 0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((tm.probability(0, 1) - 2.0 / 3.0).abs() < 1e-12);
        let row_sum = tm.probability(0, 0) + tm.probability(0, 1);
        assert!((row_sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn confidence_gate_filters_weak_predictions() {
        let mut tm = TransitionModel::new(4);
        tm.observe_clip(&[0, 1]);
        // p(0 → 1) = 2/5 with 4 states: confident at 0.3, not at 0.5.
        assert_eq!(tm.predict_confident(0, 0.3), Some(1));
        assert_eq!(tm.predict_confident(0, 0.5), None);
    }

    #[test]
    fn serde_round_trip_preserves_predictions() {
        let mut tm = TransitionModel::new(5);
        tm.observe_clip(&[0, 1, 2, 1, 0, 3, 4, 3]);
        let json = serde_json::to_string(&tm).unwrap();
        let back: TransitionModel = serde_json::from_str(&json).unwrap();
        assert_eq!(tm, back);
        for id in 0..5 {
            assert_eq!(tm.predict_next(id), back.predict_next(id));
        }
    }

    #[test]
    fn same_stream_yields_identical_models() {
        let stream = [0usize, 1, 2, 2, 1, 0, 1, 2, 0, 0, 1];
        let mut a = TransitionModel::new(3);
        let mut b = TransitionModel::new(3);
        for &id in &stream {
            a.observe(id);
            b.observe(id);
        }
        assert_eq!(a, b);
        for id in 0..3 {
            assert_eq!(a.predict_next(id), b.predict_next(id));
        }
    }

    #[test]
    fn zero_state_model_is_inert() {
        let mut tm = TransitionModel::new(0);
        tm.observe(0);
        assert_eq!(tm.predict_next(0), None);
        assert_eq!(tm.probability(0, 0), 0.0);
    }
}
