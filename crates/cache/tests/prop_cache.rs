//! Property-based tests of the slot cache: invariants that must hold for
//! every policy under arbitrary traces.

use anole_cache::{EvictionPolicy, ShardedSlotCache, SlotCache};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Touch(u8),
    Insert(u8),
    Remove(u8),
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u8..20).prop_map(Op::Touch),
            (0u8..20).prop_map(Op::Insert),
            (0u8..20).prop_map(Op::Remove),
        ],
        1..200,
    )
}

fn policies() -> [EvictionPolicy; 3] {
    [EvictionPolicy::Lfu, EvictionPolicy::Lru, EvictionPolicy::Fifo]
}

proptest! {
    /// Capacity is never exceeded, and stats stay consistent, for any trace
    /// under any policy.
    #[test]
    fn capacity_and_stats_invariants(ops in ops_strategy(), capacity in 0usize..6) {
        for policy in policies() {
            let mut cache = SlotCache::new(capacity, policy);
            let mut touches = 0u64;
            let mut inserts = 0u64;
            for op in &ops {
                match op {
                    Op::Touch(k) => {
                        cache.touch(k);
                        touches += 1;
                    }
                    Op::Insert(k) => {
                        let evicted = cache.insert(*k);
                        inserts += 1;
                        if capacity == 0 {
                            prop_assert!(evicted.is_none());
                        }
                    }
                    Op::Remove(k) => {
                        cache.remove(k);
                    }
                }
                prop_assert!(cache.len() <= capacity);
            }
            let stats = cache.stats();
            prop_assert_eq!(stats.lookups(), touches);
            prop_assert_eq!(stats.insertions, inserts);
            prop_assert!(stats.hit_rate() >= 0.0 && stats.hit_rate() <= 1.0);
            prop_assert!((stats.hit_rate() + stats.miss_rate() - 1.0).abs() < 1e-9 || touches == 0);
        }
    }

    /// A touch immediately after an insert always hits (capacity ≥ 1).
    #[test]
    fn insert_then_touch_hits(key in 0u8..50, capacity in 1usize..8) {
        for policy in policies() {
            let mut cache = SlotCache::new(capacity, policy);
            cache.insert(key);
            prop_assert!(cache.touch(&key), "{policy}");
        }
    }

    /// Evicted keys are no longer resident, and the evicted key differs from
    /// the inserted one.
    #[test]
    fn eviction_removes_exactly_one_other_key(keys in proptest::collection::vec(0u8..30, 1..60)) {
        for policy in policies() {
            let mut cache = SlotCache::new(3, policy);
            for &k in &keys {
                let was_resident = cache.contains(&k);
                if let Some(evicted) = cache.insert(k) {
                    prop_assert_ne!(evicted, k);
                    prop_assert!(!was_resident);
                    prop_assert!(!cache.contains(&evicted));
                }
                prop_assert!(cache.contains(&k) || cache.capacity() == 0);
            }
        }
    }

    /// LFU never evicts the strictly most-frequently-used resident key.
    #[test]
    fn lfu_protects_the_hottest_key(cold in proptest::collection::vec(1u8..30, 1..40)) {
        let mut cache = SlotCache::new(2, EvictionPolicy::Lfu);
        cache.insert(0);
        for _ in 0..100 {
            cache.touch(&0);
        }
        for &k in &cold {
            if k == 0 {
                continue;
            }
            let evicted = cache.insert(k);
            prop_assert_ne!(evicted, Some(0));
            prop_assert!(cache.contains(&0));
        }
    }

    /// A one-shard `ShardedSlotCache` (no salt, no admission filter) is
    /// observably identical to a plain `SlotCache`: same return value for
    /// every operation in any trace, same residency, same stats.
    #[test]
    fn one_shard_sharded_cache_matches_slot_cache(
        ops in ops_strategy(),
        capacity in 0usize..6,
    ) {
        for policy in policies() {
            let mut plain = SlotCache::new(capacity, policy);
            let mut sharded = ShardedSlotCache::new(1, capacity, policy);
            for op in &ops {
                match op {
                    Op::Touch(k) => {
                        prop_assert_eq!(plain.touch(k), sharded.touch(k));
                    }
                    Op::Insert(k) => {
                        prop_assert_eq!(plain.insert(*k), sharded.insert(*k));
                    }
                    Op::Remove(k) => {
                        prop_assert_eq!(plain.remove(k), sharded.remove(k));
                    }
                }
                prop_assert_eq!(plain.len(), sharded.len());
            }
            let mut resident: Vec<u8> = sharded.iter().copied().collect();
            resident.sort_unstable();
            for k in &resident {
                prop_assert!(plain.contains(k));
            }
            prop_assert_eq!(plain.len(), resident.len());
            prop_assert_eq!(plain.stats(), sharded.stats());
        }
    }
}
