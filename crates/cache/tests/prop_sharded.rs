//! Hand-rolled property sweeps for [`ShardedSlotCache`]: seeded random op
//! traces instead of a proptest strategy, so the sweeps stay dependency-free
//! and deterministic (same failures on every machine, no shrinking step).
//!
//! The central contract: a one-shard cache with no salt and no admission
//! filter is *observably identical* to a plain [`SlotCache`] — every return
//! value of every operation, the resident set, and the statistics all match
//! over arbitrary weighted traces. Multi-shard configurations keep the
//! global invariants (capacity, routing stability, no duplicate residents)
//! for any shard count and salt.

use anole_cache::{EvictionPolicy, ShardedSlotCache, SlotCache};

/// xorshift64* — deterministic trace generator with no external deps.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        Self(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const POLICIES: [EvictionPolicy; 3] =
    [EvictionPolicy::Lfu, EvictionPolicy::Lru, EvictionPolicy::Fifo];

/// One random operation applied to both caches, asserting identical
/// observable results. Keys are drawn from a small domain so traces collide
/// constantly; weights exercise the byte-budget path.
fn step_twins(
    rng: &mut XorShift,
    plain: &mut SlotCache<u16>,
    sharded: &mut ShardedSlotCache<u16>,
) {
    let key = rng.below(24) as u16;
    match rng.below(10) {
        0..=3 => assert_eq!(plain.touch(&key), sharded.touch(&key), "touch({key})"),
        4..=6 => {
            let bytes = rng.below(4);
            assert_eq!(
                plain.insert_weighted(key, bytes),
                sharded.insert_weighted(key, bytes),
                "insert_weighted({key}, {bytes})"
            );
        }
        7 => assert_eq!(plain.refresh(&key), sharded.refresh(&key), "refresh({key})"),
        8 => assert_eq!(plain.remove(&key), sharded.remove(&key), "remove({key})"),
        _ => {
            let cap = rng.below(7) as usize;
            assert_eq!(plain.set_capacity(cap), sharded.set_capacity(cap), "set_capacity({cap})");
        }
    }
}

fn assert_twins_equal(plain: &SlotCache<u16>, sharded: &ShardedSlotCache<u16>) {
    assert_eq!(plain.len(), sharded.len());
    assert_eq!(plain.stats(), sharded.stats());
    assert_eq!(plain.resident_bytes(), sharded.resident_bytes());
    let mut a: Vec<u16> = plain.iter().copied().collect();
    let mut b: Vec<u16> = sharded.iter().copied().collect();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "resident sets diverged");
}

#[test]
fn one_shard_weighted_traces_match_slot_cache_exactly() {
    for policy in POLICIES {
        for seed in 0..12u64 {
            let capacity = (seed % 6) as usize;
            let mut plain = SlotCache::new(capacity, policy);
            let mut sharded = ShardedSlotCache::new(1, capacity, policy);
            let mut rng = XorShift::new(0xA001 + seed * 7919);
            for _ in 0..400 {
                step_twins(&mut rng, &mut plain, &mut sharded);
            }
            assert_twins_equal(&plain, &sharded);
        }
    }
}

#[test]
fn one_shard_byte_budget_traces_match_slot_cache_exactly() {
    for policy in POLICIES {
        for seed in 0..8u64 {
            let budget = 2 + seed;
            let mut plain = SlotCache::with_byte_budget(4, policy, budget);
            let mut sharded = ShardedSlotCache::with_byte_budget(1, 4, policy, budget);
            let mut rng = XorShift::new(0xB001 + seed * 104_729);
            for _ in 0..400 {
                step_twins(&mut rng, &mut plain, &mut sharded);
            }
            assert_twins_equal(&plain, &sharded);
        }
    }
}

/// Multi-shard invariants over random traces: the global slot capacity is
/// never exceeded, no key is resident twice, `contains` agrees with `iter`,
/// and every resident key actually lives in the shard `shard_of` names.
#[test]
fn multi_shard_traces_keep_global_invariants() {
    for &shards in &[1usize, 2, 4, 8] {
        for &salt in &[0u64, 17, 0xDEAD_BEEF] {
            let mut cache: ShardedSlotCache<u16> =
                ShardedSlotCache::new(shards, 12, EvictionPolicy::Lfu).with_hash_salt(salt);
            let mut rng = XorShift::new(0xC001 ^ (shards as u64) << 8 ^ salt);
            let mut inserts = 0u64;
            for _ in 0..600 {
                let key = rng.below(40) as u16;
                match rng.below(8) {
                    0..=3 => {
                        cache.touch(&key);
                    }
                    4..=6 => {
                        cache.insert_weighted(key, rng.below(3));
                        inserts += 1;
                    }
                    _ => {
                        cache.remove(&key);
                    }
                }
                assert!(cache.len() <= cache.capacity());
            }
            let resident: Vec<u16> = cache.iter().copied().collect();
            let mut sorted = resident.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), resident.len(), "a key is resident in two shards");
            for key in 0..40u16 {
                assert_eq!(cache.contains(&key), resident.contains(&key));
                assert!(cache.shard_of(&key) < cache.shard_count());
            }
            let stats = cache.stats();
            assert_eq!(stats.insertions, inserts);
            assert!(stats.evictions <= stats.insertions);
        }
    }
}

/// Shard routing is a pure function of (salt, key): two caches with the
/// same salt agree everywhere, and a trace never moves a key between
/// shards.
#[test]
fn shard_routing_is_stable_under_traffic() {
    let mut cache: ShardedSlotCache<u16> =
        ShardedSlotCache::new(4, 16, EvictionPolicy::Lru).with_hash_salt(99);
    let oracle: ShardedSlotCache<u16> =
        ShardedSlotCache::new(4, 16, EvictionPolicy::Lru).with_hash_salt(99);
    let before: Vec<usize> = (0..64u16).map(|k| oracle.shard_of(&k)).collect();
    let mut rng = XorShift::new(0xD001);
    for _ in 0..500 {
        let key = rng.below(64) as u16;
        match rng.below(3) {
            0 => {
                cache.touch(&key);
            }
            1 => {
                cache.insert_weighted(key, 1);
            }
            _ => {
                cache.remove(&key);
            }
        }
    }
    for key in 0..64u16 {
        assert_eq!(cache.shard_of(&key), before[key as usize]);
    }
}

/// With the admission filter on, every `insert_weighted` call either
/// reaches its shard (counted in `stats().insertions`) or is rejected
/// (counted in `admission_rejects()`) — no call vanishes, and rejections
/// never evict anyone.
#[test]
fn admission_filter_accounts_for_every_insert() {
    for seed in 0..8u64 {
        let mut cache: ShardedSlotCache<u16> =
            ShardedSlotCache::new(2, 4, EvictionPolicy::Lfu).with_admission_filter(64);
        let mut rng = XorShift::new(0xE001 + seed);
        let mut insert_calls = 0u64;
        for _ in 0..500 {
            let key = rng.below(32) as u16;
            if rng.below(2) == 0 {
                cache.touch(&key);
            } else {
                let evicted = cache.insert_weighted(key, 0);
                insert_calls += 1;
                if !cache.contains(&key) {
                    // Rejected: the filter must have dropped it without
                    // collateral damage.
                    assert!(evicted.is_empty());
                }
            }
            assert!(cache.len() <= cache.capacity());
        }
        assert_eq!(
            cache.stats().insertions + cache.admission_rejects(),
            insert_calls,
            "seed {seed}: inserts neither admitted nor rejected"
        );
    }
}
