//! Element-wise activation functions with their derivatives.

use anole_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// An element-wise activation function applied after a dense layer.
///
/// # Examples
///
/// ```
/// use anole_nn::Activation;
/// use anole_tensor::Matrix;
///
/// let z = Matrix::row_vector(&[-1.0, 2.0]);
/// let a = Activation::Relu.forward(&z);
/// assert_eq!(a.as_slice(), &[0.0, 2.0]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// `max(0, x)` — used in hidden layers throughout the reproduction.
    Relu,
    /// Logistic sigmoid — used by multi-label detector heads.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Pass-through, used by logit-producing output layers.
    Identity,
}

impl Activation {
    /// Applies the activation to every entry of `z`.
    pub fn forward(&self, z: &Matrix) -> Matrix {
        match self {
            Activation::Relu => z.map(|v| v.max(0.0)),
            Activation::Sigmoid => z.map(stable_sigmoid),
            Activation::Tanh => z.map(f32::tanh),
            Activation::Identity => z.clone(),
        }
    }

    /// [`Activation::forward`] writing into a caller-provided buffer.
    ///
    /// `out` is reshaped with [`Matrix::resize_scratch`] and fully
    /// overwritten; values are bit-identical to the allocating variant.
    pub fn forward_into(&self, z: &Matrix, out: &mut Matrix) {
        out.resize_scratch(z.rows(), z.cols());
        let src = z.as_slice();
        let dst = out.as_mut_slice();
        match self {
            Activation::Relu => {
                for (o, &v) in dst.iter_mut().zip(src.iter()) {
                    *o = v.max(0.0);
                }
            }
            Activation::Sigmoid => {
                for (o, &v) in dst.iter_mut().zip(src.iter()) {
                    *o = stable_sigmoid(v);
                }
            }
            Activation::Tanh => {
                for (o, &v) in dst.iter_mut().zip(src.iter()) {
                    *o = v.tanh();
                }
            }
            Activation::Identity => dst.copy_from_slice(src),
        }
    }

    /// Computes `d activation / d z` given the pre-activation `z` and the
    /// post-activation `a` (some derivatives are cheaper from one or the
    /// other).
    pub fn derivative(&self, z: &Matrix, a: &Matrix) -> Matrix {
        match self {
            Activation::Relu => z.map(|v| if v > 0.0 { 1.0 } else { 0.0 }),
            Activation::Sigmoid => a.map(|s| s * (1.0 - s)),
            Activation::Tanh => a.map(|t| 1.0 - t * t),
            Activation::Identity => Matrix::filled(z.rows(), z.cols(), 1.0),
        }
    }

    /// Multiplies `d` element-wise by the derivative, in place.
    ///
    /// Equivalent to `d.hadamard(&self.derivative(z, a))` without the two
    /// intermediate matrices, and bit-identical to it: each element computes
    /// the same `d · d'` product (for ReLU the masked factor is the literal
    /// `1.0`/`0.0` the allocating path produced, preserving `-0.0` results
    /// where `d` is negative and the unit is inactive; for Identity the
    /// factor `1.0` is exact, so the pass is skipped entirely).
    ///
    /// # Panics
    ///
    /// Debug-asserts that `d`, `z`, and `a` share a shape.
    pub fn apply_derivative_inplace(&self, z: &Matrix, a: &Matrix, d: &mut Matrix) {
        debug_assert_eq!(z.shape(), d.shape(), "derivative shape mismatch");
        debug_assert_eq!(a.shape(), d.shape(), "derivative shape mismatch");
        let dst = d.as_mut_slice();
        match self {
            Activation::Relu => {
                for (dv, &zv) in dst.iter_mut().zip(z.as_slice().iter()) {
                    *dv *= if zv > 0.0 { 1.0 } else { 0.0 };
                }
            }
            Activation::Sigmoid => {
                for (dv, &av) in dst.iter_mut().zip(a.as_slice().iter()) {
                    *dv *= av * (1.0 - av);
                }
            }
            Activation::Tanh => {
                for (dv, &av) in dst.iter_mut().zip(a.as_slice().iter()) {
                    *dv *= 1.0 - av * av;
                }
            }
            Activation::Identity => {}
        }
    }
}

impl std::fmt::Display for Activation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Activation::Relu => "relu",
            Activation::Sigmoid => "sigmoid",
            Activation::Tanh => "tanh",
            Activation::Identity => "identity",
        };
        f.write_str(name)
    }
}

/// Numerically stable logistic sigmoid.
fn stable_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let z = Matrix::row_vector(&[-3.0, 0.0, 4.5]);
        assert_eq!(Activation::Relu.forward(&z).as_slice(), &[0.0, 0.0, 4.5]);
    }

    #[test]
    fn sigmoid_is_bounded_and_centered() {
        let z = Matrix::row_vector(&[-100.0, 0.0, 100.0]);
        let a = Activation::Sigmoid.forward(&z);
        assert!(a.get(0, 0) >= 0.0 && a.get(0, 0) < 1e-6);
        assert!((a.get(0, 1) - 0.5).abs() < 1e-6);
        assert!(a.get(0, 2) > 1.0 - 1e-6 && a.get(0, 2) <= 1.0);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-3f32;
        for act in [
            Activation::Relu,
            Activation::Sigmoid,
            Activation::Tanh,
            Activation::Identity,
        ] {
            for &x in &[-1.5f32, -0.2, 0.3, 2.0] {
                let z = Matrix::row_vector(&[x]);
                let a = act.forward(&z);
                let d = act.derivative(&z, &a).get(0, 0);
                let fp = act.forward(&Matrix::row_vector(&[x + eps])).get(0, 0);
                let fm = act.forward(&Matrix::row_vector(&[x - eps])).get(0, 0);
                let numeric = (fp - fm) / (2.0 * eps);
                assert!(
                    (d - numeric).abs() < 5e-2,
                    "{act} at {x}: analytic {d} vs numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Activation::Relu.to_string(), "relu");
        assert_eq!(Activation::Identity.to_string(), "identity");
    }
}
