//! Reusable scratch buffers backing the zero-allocation training hot path.
//!
//! A [`Workspace`] owns every intermediate buffer one trainer needs — the
//! gathered mini-batch, per-layer pre/post-activations, the loss gradient,
//! backprop ping-pong buffers, and per-layer weight/bias gradients — so the
//! inner loop can run arbitrarily many mini-batches without touching the heap
//! once the buffers have grown to their steady-state sizes (the *warm-up*
//! allocations of the first batch of each shape).
//!
//! Buffers are reshaped per batch with [`Matrix::resize_scratch`], which
//! reuses capacity; every kernel writing into them fully overwrites its
//! output, so stale contents can never leak into results. Reuse is purely an
//! allocator-traffic optimisation: the workspace-threaded forward/backward
//! paths produce bit-identical results to the allocating reference paths
//! (`Mlp::forward_cached` / `Mlp::backward` / `Optimizer::step_reference`),
//! which is asserted by property tests.

use anole_tensor::{Matrix, QuantMatrix};

/// Scratch buffers for one forward/backward pass over one mini-batch.
///
/// The chunked gradient-accumulation path owns one of these per
/// [`GRAD_CHUNK_ROWS`](crate::GRAD_CHUNK_ROWS)-row chunk so chunks can be
/// processed on independent threads without sharing mutable state.
#[derive(Debug, Default)]
pub(crate) struct BatchWorkspace {
    /// Gathered input rows of the current mini-batch.
    pub x: Matrix,
    /// Gathered hard labels (classification path).
    pub labels: Vec<usize>,
    /// Gathered dense target rows (soft / multi-label paths).
    pub targets: Matrix,
    /// Per-layer pre-activations (`z = x·W + b`).
    pub zs: Vec<Matrix>,
    /// Per-layer post-activations; the last entry is the logits.
    pub acts: Vec<Matrix>,
    /// Loss gradient w.r.t. the logits, produced by the loss-into functions.
    pub d_logits: Matrix,
    /// Backprop's running upstream gradient (swapped with `d_logits` on
    /// entry, then ping-ponged with `d_prev` per layer).
    pub d_next: Matrix,
    /// Ping-pong partner of `d_next` holding the next layer-input gradient.
    pub d_prev: Matrix,
    /// Packed `rhsᵀ` scratch for [`Matrix::matmul_nt_into`] in backprop.
    pub nt_pack: Matrix,
    /// Per-layer `(d_weights, d_bias)` written by the backward pass.
    pub grads: Vec<(Matrix, Matrix)>,
}

impl BatchWorkspace {
    /// Sizes the per-layer buffer vectors for an `n`-layer model.
    ///
    /// Growing pushes default (empty) matrices — a warm-up allocation the
    /// first time a model shape is seen; shrinking truncates so `grads`
    /// always lines up 1:1 with the model's layers.
    pub fn ensure_layers(&mut self, n: usize) {
        self.zs.resize_with(n, Matrix::default);
        self.acts.resize_with(n, Matrix::default);
        self.grads.resize_with(n, Default::default);
    }

    /// The network output of the last [`Mlp::forward_ws`](crate::Mlp) pass.
    ///
    /// # Panics
    ///
    /// Panics if no forward pass has populated the workspace.
    pub fn logits(&self) -> &Matrix {
        self.acts.last().expect("forward_ws must run before logits()")
    }

    /// Disjoint borrows of the buffers the loss functions need: the logits,
    /// the `d_logits` output, and the label/target gather scratch.
    pub fn loss_parts(&mut self) -> (&Matrix, &mut Matrix, &mut Vec<usize>, &mut Matrix) {
        (
            self.acts.last().expect("forward_ws must run before the loss"),
            &mut self.d_logits,
            &mut self.labels,
            &mut self.targets,
        )
    }
}

/// Reusable scratch arena for [`Trainer`](crate::Trainer) runs.
///
/// Create one per training thread and pass it to the `_ws` fit variants
/// ([`Trainer::fit_classifier_ws`](crate::Trainer::fit_classifier_ws) and
/// friends) to amortise every per-batch buffer across batches, epochs, and
/// whole training runs. The convenience fit methods without a workspace
/// argument create a fresh one internally, so results never depend on reuse
/// — a recycled workspace trains bit-identically to a fresh one.
///
/// A workspace may be reused across models of different shapes; buffers grow
/// to the largest shape seen (per-layer vectors shrink to keep gradient
/// indices aligned).
///
/// # Examples
///
/// ```
/// use anole_nn::{Activation, Mlp, TrainConfig, Trainer, Workspace};
/// use anole_tensor::{Matrix, Seed};
///
/// let x = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]])?;
/// let y = vec![0, 1, 1, 1];
/// let trainer = Trainer::new(TrainConfig { epochs: 50, batch_size: 4, ..TrainConfig::default() });
/// let mut ws = Workspace::new();
/// // One warm-up, then both runs reuse the same buffers.
/// for seed in [1, 2] {
///     let mut model = Mlp::builder(2).hidden(8, Activation::Relu).output(2).build(Seed(seed));
///     trainer.fit_classifier_ws(&mut model, &x, &y, Seed(seed + 10), &mut ws)?;
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Default)]
pub struct Workspace {
    /// Scratch for the classic (single-pass) batch path.
    pub(crate) main: BatchWorkspace,
    /// One scratch per gradient-accumulation chunk; `chunks[0]` also holds
    /// the reduced gradients after the in-place tree reduction.
    pub(crate) chunks: Vec<BatchWorkspace>,
    /// Per-chunk pre-scaled losses, reduced alongside the gradients.
    pub(crate) chunk_losses: Vec<f32>,
    /// Output buffer for the workspace-backed serving paths
    /// ([`Mlp::predict_proba_batch`](crate::Mlp::predict_proba_batch) and
    /// friends): softmax/sigmoid results land here so inference allocates
    /// nothing once warm.
    pub(crate) infer_out: Matrix,
    /// Row-quantization scratch for the int8 serving path
    /// ([`QuantizedMlp`](crate::QuantizedMlp)): each quantized layer
    /// overwrites it with the i8 image of its input batch.
    pub(crate) quant_in: QuantMatrix,
}

impl Workspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        anole_obs::counter_add!("nn.workspace.created", 1);
        Self::default()
    }

    /// Grows the chunk pool to at least `n` entries (warm-up only).
    pub(crate) fn ensure_chunks(&mut self, n: usize) {
        if self.chunks.len() < n {
            self.chunks.resize_with(n, BatchWorkspace::default);
        }
        self.chunk_losses.clear();
        self.chunk_losses.resize(n, 0.0);
    }
}
