//! Error type shared by the neural-network crate.

use anole_tensor::ShapeError;

/// Error returned by network construction, training, and inference.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// A matrix operation received incompatible shapes.
    Shape(ShapeError),
    /// The input width does not match the network's expected input width.
    InputWidth {
        /// Width the network was built for.
        expected: usize,
        /// Width actually supplied.
        actual: usize,
    },
    /// A label index is out of range for the output layer.
    LabelOutOfRange {
        /// Offending label.
        label: usize,
        /// Number of classes the network predicts.
        classes: usize,
    },
    /// The numbers of samples and labels disagree.
    SampleCount {
        /// Number of feature rows.
        samples: usize,
        /// Number of labels supplied.
        labels: usize,
    },
    /// Training was requested on an empty dataset.
    EmptyDataset,
}

impl std::fmt::Display for NnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NnError::Shape(e) => write!(f, "shape error: {e}"),
            NnError::InputWidth { expected, actual } => {
                write!(f, "input width {actual} does not match network input {expected}")
            }
            NnError::LabelOutOfRange { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
            NnError::SampleCount { samples, labels } => {
                write!(f, "{samples} samples but {labels} labels")
            }
            NnError::EmptyDataset => write!(f, "training dataset is empty"),
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Shape(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ShapeError> for NnError {
    fn from(e: ShapeError) -> Self {
        NnError::Shape(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = NnError::InputWidth { expected: 4, actual: 3 };
        assert!(e.to_string().contains("3"));
        assert!(e.to_string().contains("4"));
        let e = NnError::LabelOutOfRange { label: 9, classes: 5 };
        assert!(e.to_string().contains("9"));
        assert!(NnError::EmptyDataset.to_string().contains("empty"));
    }

    #[test]
    fn shape_error_converts_and_sources() {
        use std::error::Error;
        let shape_err = anole_tensor::Matrix::zeros(1, 2)
            .matmul(&anole_tensor::Matrix::zeros(3, 1))
            .unwrap_err();
        let e: NnError = shape_err.into();
        assert!(e.source().is_some());
    }
}
