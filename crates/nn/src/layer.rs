//! A fully connected layer with manual backpropagation.

use anole_tensor::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{Activation, NnError};

/// A dense (fully connected) layer: `a = act(x · W + b)`.
///
/// Weights are `in_dim × out_dim`, initialized with He/Xavier-style scaling
/// depending on the activation. The layer caches nothing; the caller (the
/// [`Mlp`](crate::Mlp)) keeps the activations needed for backpropagation so
/// that inference stays allocation-lean.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    weights: Matrix,
    bias: Matrix,
    activation: Activation,
}

/// Gradients of a dense layer produced by [`Dense::backward`].
#[derive(Debug, Clone, PartialEq)]
pub struct DenseGrads {
    /// Gradient w.r.t. the weights, same shape as the weight matrix.
    pub d_weights: Matrix,
    /// Gradient w.r.t. the bias, shape `1 × out_dim`.
    pub d_bias: Matrix,
    /// Gradient w.r.t. the layer input, for propagating to earlier layers.
    pub d_input: Matrix,
}

impl Dense {
    /// Creates a layer with activation-appropriate random initialization.
    ///
    /// He initialization for ReLU, Xavier for the rest.
    pub fn new<R: Rng + ?Sized>(
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
        rng: &mut R,
    ) -> Self {
        let scale = match activation {
            Activation::Relu => (2.0 / in_dim as f32).sqrt(),
            _ => (1.0 / in_dim as f32).sqrt(),
        };
        Self {
            weights: Matrix::random_normal(in_dim, out_dim, scale, rng),
            bias: Matrix::zeros(1, out_dim),
            activation,
        }
    }

    /// Input width the layer expects.
    pub fn in_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Output width the layer produces.
    pub fn out_dim(&self) -> usize {
        self.weights.cols()
    }

    /// The layer's activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Borrows the weight matrix.
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Borrows the bias row.
    pub fn bias(&self) -> &Matrix {
        &self.bias
    }

    /// Number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    /// Multiply–add FLOPs of one forward pass on a single sample.
    pub fn flops_per_sample(&self) -> u64 {
        // x·W: in*out multiplies + in*out adds; bias add: out; activation: out.
        (2 * self.in_dim() as u64 + 2) * self.out_dim() as u64
    }

    /// Forward pass returning `(pre_activation, post_activation)`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputWidth`] if `x` is not `n × in_dim`.
    pub fn forward(&self, x: &Matrix) -> Result<(Matrix, Matrix), NnError> {
        let mut z = Matrix::default();
        let mut a = Matrix::default();
        self.forward_into(x, &mut z, &mut a)?;
        Ok((z, a))
    }

    /// [`Dense::forward`] writing into caller-provided buffers.
    ///
    /// `z` and `a` are reshaped with [`Matrix::resize_scratch`] and fully
    /// overwritten, so the pass is allocation-free once they have warm
    /// capacity. Bit-identical to the allocating wrapper (which is this
    /// method on fresh matrices).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputWidth`] if `x` is not `n × in_dim`.
    pub fn forward_into(&self, x: &Matrix, z: &mut Matrix, a: &mut Matrix) -> Result<(), NnError> {
        if x.cols() != self.in_dim() {
            return Err(NnError::InputWidth {
                expected: self.in_dim(),
                actual: x.cols(),
            });
        }
        x.matmul_into(&self.weights, z)?;
        z.add_row_broadcast_assign(&self.bias)?;
        self.activation.forward_into(z, a);
        Ok(())
    }

    /// Backward pass.
    ///
    /// `x` is the input that produced `(z, a)` in [`Dense::forward`];
    /// `d_out` is the loss gradient w.r.t. the post-activation output.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the cached matrices are inconsistent.
    pub fn backward(
        &self,
        x: &Matrix,
        z: &Matrix,
        a: &Matrix,
        d_out: &Matrix,
    ) -> Result<DenseGrads, NnError> {
        let dz = d_out.hadamard(&self.activation.derivative(z, a))?;
        let d_weights = x.matmul_tn(&dz)?;
        let d_bias = dz.sum_rows();
        let d_input = dz.matmul_nt(&self.weights)?;
        Ok(DenseGrads {
            d_weights,
            d_bias,
            d_input,
        })
    }

    /// [`Dense::backward`] writing into caller-provided buffers.
    ///
    /// `d_out` arrives as `dL/da` and is turned into `dL/dz` **in place**
    /// (the hadamard with the activation derivative fuses into one pass);
    /// `d_weights`/`d_bias` receive the parameter gradients. When
    /// `d_input` is `Some((d_in, nt_pack))`, the input gradient is written
    /// to `d_in` using `nt_pack` as the [`Matrix::matmul_nt_into`] transpose
    /// scratch; the first layer passes `None` and skips the product whose
    /// result backprop would discard anyway.
    ///
    /// Bit-identical to [`Dense::backward`] output-for-output.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the cached matrices are inconsistent.
    pub(crate) fn backward_ws(
        &self,
        x: &Matrix,
        z: &Matrix,
        a: &Matrix,
        d_out: &mut Matrix,
        d_weights: &mut Matrix,
        d_bias: &mut Matrix,
        d_input: Option<(&mut Matrix, &mut Matrix)>,
    ) -> Result<(), NnError> {
        self.activation.apply_derivative_inplace(z, a, d_out);
        x.matmul_tn_into(d_out, d_weights)?;
        d_out.sum_rows_into(d_bias);
        if let Some((d_in, nt_pack)) = d_input {
            d_out.matmul_nt_into(&self.weights, nt_pack, d_in)?;
        }
        Ok(())
    }

    /// Applies a parameter update: `W += dw`, `b += db` (caller pre-scales).
    ///
    /// # Errors
    ///
    /// Returns a shape error if update shapes disagree with the parameters.
    pub fn apply_update(&mut self, dw: &Matrix, db: &Matrix) -> Result<(), NnError> {
        self.weights.axpy(1.0, dw)?;
        self.bias.axpy(1.0, db)?;
        Ok(())
    }

    /// Mutable access to `(weights, bias)` for the fused optimizer kernels.
    pub(crate) fn params_mut(&mut self) -> (&mut Matrix, &mut Matrix) {
        (&mut self.weights, &mut self.bias)
    }

    /// Scales all parameters by `s` (used in tests and weight decay).
    ///
    /// In place — the trainer calls this every mini-batch when weight decay
    /// is on, so it must not touch the allocator.
    pub fn scale_parameters(&mut self, s: f32) {
        self.weights.map_inplace(|v| v * s);
        self.bias.map_inplace(|v| v * s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anole_tensor::{rng_from_seed, Seed};

    fn layer(in_dim: usize, out_dim: usize, act: Activation) -> Dense {
        let mut rng = rng_from_seed(Seed(11));
        Dense::new(in_dim, out_dim, act, &mut rng)
    }

    #[test]
    fn forward_shape_and_width_check() {
        let l = layer(3, 5, Activation::Relu);
        let x = Matrix::zeros(4, 3);
        let (z, a) = l.forward(&x).unwrap();
        assert_eq!(z.shape(), (4, 5));
        assert_eq!(a.shape(), (4, 5));
        let bad = Matrix::zeros(4, 2);
        assert!(matches!(
            l.forward(&bad),
            Err(NnError::InputWidth { expected: 3, actual: 2 })
        ));
    }

    #[test]
    fn zero_input_passes_bias_through_identity() {
        let mut l = layer(2, 2, Activation::Identity);
        l.apply_update(&Matrix::zeros(2, 2), &Matrix::row_vector(&[1.0, -1.0]))
            .unwrap();
        let (_, a) = l.forward(&Matrix::zeros(1, 2)).unwrap();
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(0, 1), -1.0);
    }

    #[test]
    fn gradient_check_weights() {
        // Finite-difference check of dW on a scalar loss L = sum(a).
        let l = layer(3, 2, Activation::Tanh);
        let mut rng = rng_from_seed(Seed(5));
        let x = Matrix::random_normal(4, 3, 1.0, &mut rng);
        let (z, a) = l.forward(&x).unwrap();
        let d_out = Matrix::filled(4, 2, 1.0); // dL/da = 1
        let grads = l.backward(&x, &z, &a, &d_out).unwrap();

        let eps = 1e-2f32;
        for (wi, wj) in [(0usize, 0usize), (1, 1), (2, 0)] {
            let mut lp = l.clone();
            let mut bump = Matrix::zeros(3, 2);
            bump.set(wi, wj, eps);
            lp.apply_update(&bump, &Matrix::zeros(1, 2)).unwrap();
            let (_, ap) = lp.forward(&x).unwrap();

            let mut lm = l.clone();
            let bump_m = bump.scale(-1.0);
            lm.apply_update(&bump_m, &Matrix::zeros(1, 2)).unwrap();
            let (_, am) = lm.forward(&x).unwrap();

            let numeric =
                (ap.iter().sum::<f32>() - am.iter().sum::<f32>()) / (2.0 * eps);
            let analytic = grads.d_weights.get(wi, wj);
            assert!(
                (numeric - analytic).abs() < 2e-2,
                "dW[{wi},{wj}] numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn gradient_check_input() {
        let l = layer(3, 2, Activation::Sigmoid);
        let mut rng = rng_from_seed(Seed(6));
        let x = Matrix::random_normal(1, 3, 1.0, &mut rng);
        let (z, a) = l.forward(&x).unwrap();
        let d_out = Matrix::filled(1, 2, 1.0);
        let grads = l.backward(&x, &z, &a, &d_out).unwrap();

        let eps = 1e-2f32;
        for j in 0..3 {
            let mut xp = x.clone();
            xp.set(0, j, x.get(0, j) + eps);
            let mut xm = x.clone();
            xm.set(0, j, x.get(0, j) - eps);
            let (_, ap) = l.forward(&xp).unwrap();
            let (_, am) = l.forward(&xm).unwrap();
            let numeric = (ap.iter().sum::<f32>() - am.iter().sum::<f32>()) / (2.0 * eps);
            assert!(
                (numeric - grads.d_input.get(0, j)).abs() < 2e-2,
                "dX[{j}] mismatch"
            );
        }
    }

    #[test]
    fn parameter_and_flop_accounting() {
        let l = layer(10, 4, Activation::Relu);
        assert_eq!(l.parameter_count(), 10 * 4 + 4);
        assert_eq!(l.flops_per_sample(), (2 * 10 + 2) * 4);
    }
}
