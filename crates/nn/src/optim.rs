//! First-order optimizers: SGD with momentum and Adam.

use anole_tensor::Matrix;
use serde::{Deserialize, Serialize};

use crate::{Mlp, NnError};

/// Declarative optimizer choice carried by
/// [`TrainConfig`](crate::TrainConfig).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// Stochastic gradient descent with momentum.
    Sgd {
        /// Learning rate.
        lr: f32,
        /// Momentum coefficient in `[0, 1)`.
        momentum: f32,
    },
    /// Adam with default `(β₁, β₂) = (0.9, 0.999)`.
    Adam {
        /// Learning rate.
        lr: f32,
    },
}

impl OptimizerKind {
    /// Instantiates the optimizer state for a training run.
    pub fn build(self) -> Optimizer {
        match self {
            OptimizerKind::Sgd { lr, momentum } => Optimizer::Sgd(Sgd::new(lr, momentum)),
            OptimizerKind::Adam { lr } => Optimizer::Adam(Adam::new(lr)),
        }
    }
}

impl Default for OptimizerKind {
    /// Adam at `lr = 1e-2`, a robust default for the small networks here.
    fn default() -> Self {
        OptimizerKind::Adam { lr: 1e-2 }
    }
}

/// Stateful optimizer applied by the trainer each mini-batch.
#[derive(Debug, Clone)]
pub enum Optimizer {
    /// See [`Sgd`].
    Sgd(Sgd),
    /// See [`Adam`].
    Adam(Adam),
}

impl Optimizer {
    /// Applies one update step given per-layer `(d_weights, d_bias)` grads.
    ///
    /// Layers within the model's frozen prefix are left untouched.
    ///
    /// # Errors
    ///
    /// Returns a shape error if gradient shapes disagree with the parameters.
    pub fn step(&mut self, model: &mut Mlp, grads: &[(Matrix, Matrix)]) -> Result<(), NnError> {
        match self {
            Optimizer::Sgd(s) => s.step(model, grads),
            Optimizer::Adam(a) => a.step(model, grads),
        }
    }
}

/// SGD with classical momentum: `v ← μv − lr·g`, `θ ← θ + v`.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<(Matrix, Matrix)>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Applies one SGD step; see [`Optimizer::step`].
    ///
    /// # Errors
    ///
    /// Returns a shape error if gradient shapes disagree with the parameters.
    pub fn step(&mut self, model: &mut Mlp, grads: &[(Matrix, Matrix)]) -> Result<(), NnError> {
        if self.velocity.is_empty() {
            self.velocity = grads
                .iter()
                .map(|(dw, db)| (Matrix::zeros(dw.rows(), dw.cols()), Matrix::zeros(db.rows(), db.cols())))
                .collect();
        }
        let frozen = model.frozen_prefix();
        for (idx, layer) in model.layers_mut().iter_mut().enumerate() {
            if idx < frozen {
                continue;
            }
            let (dw, db) = &grads[idx];
            let (vw, vb) = &mut self.velocity[idx];
            *vw = vw.scale(self.momentum);
            vw.axpy(-self.lr, dw)?;
            *vb = vb.scale(self.momentum);
            vb.axpy(-self.lr, db)?;
            layer.apply_update(&vw.clone(), &vb.clone())?;
        }
        Ok(())
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u32,
    first: Vec<(Matrix, Matrix)>,
    second: Vec<(Matrix, Matrix)>,
}

impl Adam {
    /// Creates an Adam optimizer with standard moment coefficients.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            first: Vec::new(),
            second: Vec::new(),
        }
    }

    /// Applies one Adam step; see [`Optimizer::step`].
    ///
    /// # Errors
    ///
    /// Returns a shape error if gradient shapes disagree with the parameters.
    pub fn step(&mut self, model: &mut Mlp, grads: &[(Matrix, Matrix)]) -> Result<(), NnError> {
        if self.first.is_empty() {
            let zeros = |m: &Matrix| Matrix::zeros(m.rows(), m.cols());
            self.first = grads.iter().map(|(dw, db)| (zeros(dw), zeros(db))).collect();
            self.second = grads.iter().map(|(dw, db)| (zeros(dw), zeros(db))).collect();
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let frozen = model.frozen_prefix();
        for (idx, layer) in model.layers_mut().iter_mut().enumerate() {
            if idx < frozen {
                continue;
            }
            let (dw, db) = &grads[idx];
            let update_w = self.moment_update(idx, true, dw, bc1, bc2);
            let update_b = self.moment_update(idx, false, db, bc1, bc2);
            layer.apply_update(&update_w, &update_b)?;
        }
        Ok(())
    }

    fn moment_update(&mut self, idx: usize, weights: bool, g: &Matrix, bc1: f32, bc2: f32) -> Matrix {
        let (m, v) = if weights {
            (&mut self.first[idx].0, &mut self.second[idx].0)
        } else {
            (&mut self.first[idx].1, &mut self.second[idx].1)
        };
        let mut update = Matrix::zeros(g.rows(), g.cols());
        for i in 0..g.len() {
            let gi = g.as_slice()[i];
            let mi = self.beta1 * m.as_slice()[i] + (1.0 - self.beta1) * gi;
            let vi = self.beta2 * v.as_slice()[i] + (1.0 - self.beta2) * gi * gi;
            m.as_mut_slice()[i] = mi;
            v.as_mut_slice()[i] = vi;
            let m_hat = mi / bc1;
            let v_hat = vi / bc2;
            update.as_mut_slice()[i] = -self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
        update
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{softmax_cross_entropy, Activation, Mlp};
    use anole_tensor::{Matrix, Seed};

    fn tiny_problem() -> (Mlp, Matrix, Vec<usize>) {
        let model = Mlp::builder(2).hidden(8, Activation::Tanh).output(2).build(Seed(3));
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]).unwrap();
        let y = vec![0usize, 1, 1, 0]; // XOR
        (model, x, y)
    }

    fn loss_of(model: &Mlp, x: &Matrix, y: &[usize]) -> f32 {
        softmax_cross_entropy(&model.forward(x).unwrap(), y).unwrap().loss
    }

    fn run_steps(mut opt: Optimizer, steps: usize) -> f32 {
        let (mut model, x, y) = tiny_problem();
        for _ in 0..steps {
            let cache = model.forward_cached(&x).unwrap();
            let lv = softmax_cross_entropy(cache.output(), &y).unwrap();
            let grads = model.backward(&cache, &lv.d_logits).unwrap();
            opt.step(&mut model, &grads).unwrap();
        }
        loss_of(&model, &x, &y)
    }

    #[test]
    fn sgd_reduces_xor_loss() {
        let initial = {
            let (model, x, y) = tiny_problem();
            loss_of(&model, &x, &y)
        };
        let final_loss = run_steps(OptimizerKind::Sgd { lr: 0.5, momentum: 0.9 }.build(), 400);
        assert!(final_loss < initial * 0.2, "{final_loss} vs {initial}");
    }

    #[test]
    fn adam_solves_xor() {
        let final_loss = run_steps(OptimizerKind::Adam { lr: 0.05 }.build(), 400);
        assert!(final_loss < 0.05, "adam final loss {final_loss}");
    }

    #[test]
    fn frozen_prefix_layers_do_not_move() {
        let (mut model, x, y) = tiny_problem();
        model.set_frozen_prefix(1);
        let before = model.layers()[0].weights().clone();
        let mut opt = OptimizerKind::Adam { lr: 0.05 }.build();
        let initial = loss_of(&model, &x, &y);
        for _ in 0..200 {
            let cache = model.forward_cached(&x).unwrap();
            let lv = softmax_cross_entropy(cache.output(), &y).unwrap();
            let grads = model.backward(&cache, &lv.d_logits).unwrap();
            opt.step(&mut model, &grads).unwrap();
        }
        assert_eq!(model.layers()[0].weights(), &before);
        // The head must still have moved and improved the loss.
        assert!(loss_of(&model, &x, &y) < initial);
    }

    #[test]
    fn default_kind_is_adam() {
        assert!(matches!(OptimizerKind::default(), OptimizerKind::Adam { .. }));
    }
}
