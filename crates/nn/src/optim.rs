//! First-order optimizers: SGD with momentum and Adam.
//!
//! Each optimizer has two update paths that produce bit-identical weights:
//! the fused `step` used by the trainer — a single pass over `[parameters,
//! optimizer state]` slices in lockstep, allocation-free after the lazy
//! state initialisation — and the historical `step_reference` kept as the
//! plainly-auditable specification the property tests compare against.

use anole_tensor::parallel::for_each_row_chunk_n;
use anole_tensor::{parallel_config, Matrix, ShapeError};
use serde::{Deserialize, Serialize};

use crate::{Mlp, NnError};

/// Declarative optimizer choice carried by
/// [`TrainConfig`](crate::TrainConfig).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// Stochastic gradient descent with momentum.
    Sgd {
        /// Learning rate.
        lr: f32,
        /// Momentum coefficient in `[0, 1)`.
        momentum: f32,
    },
    /// Adam with default `(β₁, β₂) = (0.9, 0.999)`.
    Adam {
        /// Learning rate.
        lr: f32,
    },
}

impl OptimizerKind {
    /// Instantiates the optimizer state for a training run.
    pub fn build(self) -> Optimizer {
        match self {
            OptimizerKind::Sgd { lr, momentum } => Optimizer::Sgd(Sgd::new(lr, momentum)),
            OptimizerKind::Adam { lr } => Optimizer::Adam(Adam::new(lr)),
        }
    }
}

impl Default for OptimizerKind {
    /// Adam at `lr = 1e-2`, a robust default for the small networks here.
    fn default() -> Self {
        OptimizerKind::Adam { lr: 1e-2 }
    }
}

/// Stateful optimizer applied by the trainer each mini-batch.
#[derive(Debug, Clone)]
pub enum Optimizer {
    /// See [`Sgd`].
    Sgd(Sgd),
    /// See [`Adam`].
    Adam(Adam),
}

impl Optimizer {
    /// Applies one update step given per-layer `(d_weights, d_bias)` grads.
    ///
    /// Layers within the model's frozen prefix are left untouched. Uses the
    /// fused single-pass kernels; allocation-free after the first call's
    /// lazy state initialisation.
    ///
    /// # Errors
    ///
    /// Returns a shape error if gradient shapes disagree with the parameters.
    pub fn step(&mut self, model: &mut Mlp, grads: &[(Matrix, Matrix)]) -> Result<(), NnError> {
        match self {
            Optimizer::Sgd(s) => s.step(model, grads),
            Optimizer::Adam(a) => a.step(model, grads),
        }
    }

    /// The original multi-pass update, kept as the bit-identity reference
    /// for [`Optimizer::step`]. Same state, same results, more allocations.
    ///
    /// # Errors
    ///
    /// Returns a shape error if gradient shapes disagree with the parameters.
    pub fn step_reference(
        &mut self,
        model: &mut Mlp,
        grads: &[(Matrix, Matrix)],
    ) -> Result<(), NnError> {
        match self {
            Optimizer::Sgd(s) => s.step_reference(model, grads),
            Optimizer::Adam(a) => a.step_reference(model, grads),
        }
    }
}

/// Fused SGD-with-momentum update on one parameter matrix:
/// `v ← μv + (−lr)·g; θ ← θ + v` in a single pass over `[θ, v]`.
///
/// Rounds identically to the reference scale-then-axpy sequence: both
/// evaluate `round(round(v·μ) + round((−lr)·g))` per element, and the
/// reference's `apply_update` adds `1.0·v` which is exact.
fn fused_sgd(
    param: &mut Matrix,
    velocity: &mut Matrix,
    grad: &Matrix,
    lr: f32,
    momentum: f32,
) -> Result<(), NnError> {
    if grad.shape() != param.shape() || velocity.shape() != param.shape() {
        return Err(ShapeError::new("fused_sgd", param.shape(), grad.shape()).into());
    }
    let cols = param.cols();
    let rows = param.rows();
    let threads = parallel_config().threads_for(param.len());
    let g = grad.as_slice();
    for_each_row_chunk_n(
        [param.as_mut_slice(), velocity.as_mut_slice()],
        cols,
        rows,
        threads,
        |range, [w, v]| {
            let g = &g[range.start * cols..range.end * cols];
            for ((wv, vv), &gv) in w.iter_mut().zip(v.iter_mut()).zip(g.iter()) {
                let vn = *vv * momentum + (-lr) * gv;
                *vv = vn;
                *wv += vn;
            }
        },
    );
    Ok(())
}

/// Fused Adam update on one parameter matrix: moment updates, bias
/// correction, and the parameter step in a single pass over `[θ, m, v]`.
///
/// Per-element arithmetic is copied verbatim from the reference
/// `moment_update`, so results are bit-identical (the reference's final
/// `apply_update` adds `1.0·update`, which is exact).
#[allow(clippy::too_many_arguments)]
fn fused_adam(
    param: &mut Matrix,
    first: &mut Matrix,
    second: &mut Matrix,
    grad: &Matrix,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    bc1: f32,
    bc2: f32,
) -> Result<(), NnError> {
    if grad.shape() != param.shape()
        || first.shape() != param.shape()
        || second.shape() != param.shape()
    {
        return Err(ShapeError::new("fused_adam", param.shape(), grad.shape()).into());
    }
    let cols = param.cols();
    let rows = param.rows();
    let threads = parallel_config().threads_for(param.len());
    let g = grad.as_slice();
    for_each_row_chunk_n(
        [param.as_mut_slice(), first.as_mut_slice(), second.as_mut_slice()],
        cols,
        rows,
        threads,
        |range, [w, m, v]| {
            let g = &g[range.start * cols..range.end * cols];
            for i in 0..g.len() {
                let gi = g[i];
                let mi = beta1 * m[i] + (1.0 - beta1) * gi;
                let vi = beta2 * v[i] + (1.0 - beta2) * gi * gi;
                m[i] = mi;
                v[i] = vi;
                let m_hat = mi / bc1;
                let v_hat = vi / bc2;
                w[i] += -lr * m_hat / (v_hat.sqrt() + eps);
            }
        },
    );
    Ok(())
}

/// SGD with classical momentum: `v ← μv − lr·g`, `θ ← θ + v`.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<(Matrix, Matrix)>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Applies one fused SGD step; see [`Optimizer::step`].
    ///
    /// # Errors
    ///
    /// Returns a shape error if gradient shapes disagree with the parameters.
    pub fn step(&mut self, model: &mut Mlp, grads: &[(Matrix, Matrix)]) -> Result<(), NnError> {
        self.ensure_velocity(grads);
        let frozen = model.frozen_prefix();
        for (idx, layer) in model.layers_mut().iter_mut().enumerate() {
            if idx < frozen {
                continue;
            }
            let (dw, db) = &grads[idx];
            let (vw, vb) = &mut self.velocity[idx];
            let (w, b) = layer.params_mut();
            fused_sgd(w, vw, dw, self.lr, self.momentum)?;
            fused_sgd(b, vb, db, self.lr, self.momentum)?;
        }
        Ok(())
    }

    /// The original scale/axpy/clone update; see [`Optimizer::step_reference`].
    ///
    /// # Errors
    ///
    /// Returns a shape error if gradient shapes disagree with the parameters.
    pub fn step_reference(
        &mut self,
        model: &mut Mlp,
        grads: &[(Matrix, Matrix)],
    ) -> Result<(), NnError> {
        self.ensure_velocity(grads);
        let frozen = model.frozen_prefix();
        for (idx, layer) in model.layers_mut().iter_mut().enumerate() {
            if idx < frozen {
                continue;
            }
            let (dw, db) = &grads[idx];
            let (vw, vb) = &mut self.velocity[idx];
            *vw = vw.scale(self.momentum);
            vw.axpy(-self.lr, dw)?;
            *vb = vb.scale(self.momentum);
            vb.axpy(-self.lr, db)?;
            layer.apply_update(&vw.clone(), &vb.clone())?;
        }
        Ok(())
    }

    /// Lazily sizes the velocity state to the gradient shapes (warm-up
    /// allocation; every later step reuses it).
    fn ensure_velocity(&mut self, grads: &[(Matrix, Matrix)]) {
        if self.velocity.is_empty() {
            self.velocity = grads
                .iter()
                .map(|(dw, db)| (Matrix::zeros(dw.rows(), dw.cols()), Matrix::zeros(db.rows(), db.cols())))
                .collect();
        }
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u32,
    first: Vec<(Matrix, Matrix)>,
    second: Vec<(Matrix, Matrix)>,
}

impl Adam {
    /// Creates an Adam optimizer with standard moment coefficients.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            first: Vec::new(),
            second: Vec::new(),
        }
    }

    /// Applies one fused Adam step; see [`Optimizer::step`].
    ///
    /// # Errors
    ///
    /// Returns a shape error if gradient shapes disagree with the parameters.
    pub fn step(&mut self, model: &mut Mlp, grads: &[(Matrix, Matrix)]) -> Result<(), NnError> {
        self.ensure_moments(grads);
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let frozen = model.frozen_prefix();
        for (idx, layer) in model.layers_mut().iter_mut().enumerate() {
            if idx < frozen {
                continue;
            }
            let (dw, db) = &grads[idx];
            let (mw, mb) = &mut self.first[idx];
            let (vw, vb) = &mut self.second[idx];
            let (w, b) = layer.params_mut();
            fused_adam(w, mw, vw, dw, self.lr, self.beta1, self.beta2, self.eps, bc1, bc2)?;
            fused_adam(b, mb, vb, db, self.lr, self.beta1, self.beta2, self.eps, bc1, bc2)?;
        }
        Ok(())
    }

    /// The original allocate-an-update-matrix step; see
    /// [`Optimizer::step_reference`].
    ///
    /// # Errors
    ///
    /// Returns a shape error if gradient shapes disagree with the parameters.
    pub fn step_reference(
        &mut self,
        model: &mut Mlp,
        grads: &[(Matrix, Matrix)],
    ) -> Result<(), NnError> {
        self.ensure_moments(grads);
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let frozen = model.frozen_prefix();
        for (idx, layer) in model.layers_mut().iter_mut().enumerate() {
            if idx < frozen {
                continue;
            }
            let (dw, db) = &grads[idx];
            let update_w = self.moment_update(idx, true, dw, bc1, bc2);
            let update_b = self.moment_update(idx, false, db, bc1, bc2);
            layer.apply_update(&update_w, &update_b)?;
        }
        Ok(())
    }

    /// Lazily sizes the moment state to the gradient shapes (warm-up
    /// allocation; every later step reuses it).
    fn ensure_moments(&mut self, grads: &[(Matrix, Matrix)]) {
        if self.first.is_empty() {
            let zeros = |m: &Matrix| Matrix::zeros(m.rows(), m.cols());
            self.first = grads.iter().map(|(dw, db)| (zeros(dw), zeros(db))).collect();
            self.second = grads.iter().map(|(dw, db)| (zeros(dw), zeros(db))).collect();
        }
    }

    fn moment_update(&mut self, idx: usize, weights: bool, g: &Matrix, bc1: f32, bc2: f32) -> Matrix {
        let (m, v) = if weights {
            (&mut self.first[idx].0, &mut self.second[idx].0)
        } else {
            (&mut self.first[idx].1, &mut self.second[idx].1)
        };
        let mut update = Matrix::zeros(g.rows(), g.cols());
        for i in 0..g.len() {
            let gi = g.as_slice()[i];
            let mi = self.beta1 * m.as_slice()[i] + (1.0 - self.beta1) * gi;
            let vi = self.beta2 * v.as_slice()[i] + (1.0 - self.beta2) * gi * gi;
            m.as_mut_slice()[i] = mi;
            v.as_mut_slice()[i] = vi;
            let m_hat = mi / bc1;
            let v_hat = vi / bc2;
            update.as_mut_slice()[i] = -self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
        update
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{softmax_cross_entropy, Activation, Mlp};
    use anole_tensor::{Matrix, Seed};

    fn tiny_problem() -> (Mlp, Matrix, Vec<usize>) {
        let model = Mlp::builder(2).hidden(8, Activation::Tanh).output(2).build(Seed(3));
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]).unwrap();
        let y = vec![0usize, 1, 1, 0]; // XOR
        (model, x, y)
    }

    fn loss_of(model: &Mlp, x: &Matrix, y: &[usize]) -> f32 {
        softmax_cross_entropy(&model.forward(x).unwrap(), y).unwrap().loss
    }

    fn run_steps(mut opt: Optimizer, steps: usize) -> f32 {
        let (mut model, x, y) = tiny_problem();
        for _ in 0..steps {
            let cache = model.forward_cached(&x).unwrap();
            let lv = softmax_cross_entropy(cache.output(), &y).unwrap();
            let grads = model.backward(&cache, &lv.d_logits).unwrap();
            opt.step(&mut model, &grads).unwrap();
        }
        loss_of(&model, &x, &y)
    }

    #[test]
    fn sgd_reduces_xor_loss() {
        let initial = {
            let (model, x, y) = tiny_problem();
            loss_of(&model, &x, &y)
        };
        let final_loss = run_steps(OptimizerKind::Sgd { lr: 0.5, momentum: 0.9 }.build(), 400);
        assert!(final_loss < initial * 0.2, "{final_loss} vs {initial}");
    }

    #[test]
    fn adam_solves_xor() {
        let final_loss = run_steps(OptimizerKind::Adam { lr: 0.05 }.build(), 400);
        assert!(final_loss < 0.05, "adam final loss {final_loss}");
    }

    #[test]
    fn frozen_prefix_layers_do_not_move() {
        let (mut model, x, y) = tiny_problem();
        model.set_frozen_prefix(1);
        let before = model.layers()[0].weights().clone();
        let mut opt = OptimizerKind::Adam { lr: 0.05 }.build();
        let initial = loss_of(&model, &x, &y);
        for _ in 0..200 {
            let cache = model.forward_cached(&x).unwrap();
            let lv = softmax_cross_entropy(cache.output(), &y).unwrap();
            let grads = model.backward(&cache, &lv.d_logits).unwrap();
            opt.step(&mut model, &grads).unwrap();
        }
        assert_eq!(model.layers()[0].weights(), &before);
        // The head must still have moved and improved the loss.
        assert!(loss_of(&model, &x, &y) < initial);
    }

    #[test]
    fn default_kind_is_adam() {
        assert!(matches!(OptimizerKind::default(), OptimizerKind::Adam { .. }));
    }

    #[test]
    fn fused_step_matches_reference_bitwise() {
        for kind in [
            OptimizerKind::Sgd { lr: 0.1, momentum: 0.9 },
            OptimizerKind::Adam { lr: 0.01 },
        ] {
            let (mut m_fused, x, y) = tiny_problem();
            let mut m_ref = m_fused.clone();
            let mut opt_fused = kind.build();
            let mut opt_ref = kind.build();
            for _ in 0..25 {
                let cache = m_fused.forward_cached(&x).unwrap();
                let lv = softmax_cross_entropy(cache.output(), &y).unwrap();
                let grads = m_fused.backward(&cache, &lv.d_logits).unwrap();
                opt_fused.step(&mut m_fused, &grads).unwrap();

                let cache = m_ref.forward_cached(&x).unwrap();
                let lv = softmax_cross_entropy(cache.output(), &y).unwrap();
                let grads = m_ref.backward(&cache, &lv.d_logits).unwrap();
                opt_ref.step_reference(&mut m_ref, &grads).unwrap();
            }
            assert_eq!(m_fused, m_ref, "{kind:?} fused vs reference diverged");
        }
    }
}
