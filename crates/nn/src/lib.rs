//! A minimal, dependency-light neural-network library for the Anole
//! reproduction.
//!
//! The paper trains three kinds of networks: a ResNet18 scene encoder
//! (`M_scene`), a two-layer MLP decision model (`M_decision`), and a pack of
//! YOLOv3-tiny detectors. This crate provides the common substrate: dense
//! layers with manual backpropagation, softmax/sigmoid losses, SGD and Adam
//! optimizers, a mini-batch trainer, and FLOP/weight accounting used both for
//! Table II and to drive the device-latency simulator.
//!
//! All computation is deterministic given a [`Seed`](anole_tensor::Seed).
//!
//! # Examples
//!
//! Train a tiny classifier on a linearly separable problem:
//!
//! ```
//! use anole_nn::{Activation, Mlp, TrainConfig, Trainer};
//! use anole_tensor::{Matrix, Seed};
//!
//! let x = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]])?;
//! let y = vec![0, 1, 1, 1]; // logical OR
//! let mut model = Mlp::builder(2)
//!     .hidden(8, Activation::Relu)
//!     .output(2)
//!     .build(anole_tensor::Seed(1));
//! let cfg = TrainConfig { epochs: 200, batch_size: 4, ..TrainConfig::default() };
//! Trainer::new(cfg).fit_classifier(&mut model, &x, &y, anole_tensor::Seed(2))?;
//! assert_eq!(model.classify(&x)?, y);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod activation;
#[cfg(feature = "alloc-count")]
pub mod alloc_count;
mod error;
mod layer;
mod loss;
mod mlp;
mod optim;
mod profile;
pub mod quant;
mod trainer;
mod workspace;

pub use activation::Activation;
pub use error::NnError;
pub use layer::Dense;
pub use loss::{
    bce_with_logits, bce_with_logits_into, sigmoid, sigmoid_into, soft_cross_entropy,
    soft_cross_entropy_into, softmax, softmax_cross_entropy, softmax_cross_entropy_into,
    softmax_into, LossValue,
};
pub use mlp::{Mlp, MlpBuilder};
pub use optim::{Adam, Optimizer, OptimizerKind, Sgd};
pub use profile::{ModelProfile, ReferenceModel};
pub use quant::{Precision, Predictor, QuantizedDense, QuantizedMlp};
pub use trainer::{TrainConfig, TrainReport, Trainer, GRAD_CHUNK_ROWS};
pub use workspace::Workspace;
