//! Thread-aware heap-allocation counting for the zero-allocation tests.
//!
//! Only compiled under the `alloc-count` feature. A test binary installs
//! [`CountingAllocator`] as its `#[global_allocator]` and brackets the code
//! under test with [`measure`]; every `alloc`/`alloc_zeroed`/`realloc` issued
//! *by that thread* while the bracket is active is counted. Worker threads
//! spawned inside the bracket are deliberately not counted — the zero-alloc
//! contract covers the training thread's steady state, and the thread-local
//! counters keep concurrently running tests from polluting each other.
//!
//! `dealloc` is never counted: freeing warm buffers is not an allocation, and
//! counting it would double-bill reallocation.
//!
//! ```ignore
//! use anole_nn::alloc_count::{measure, CountingAllocator};
//!
//! #[global_allocator]
//! static ALLOC: CountingAllocator = CountingAllocator;
//!
//! let (result, allocs) = measure(|| expensive_training_step());
//! assert_eq!(allocs, 0);
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    /// Whether this thread is inside a [`measure`] bracket.
    static TRACKING: Cell<bool> = const { Cell::new(false) };
    /// Allocations observed on this thread while tracking was on.
    static COUNT: Cell<u64> = const { Cell::new(0) };
}

/// A [`System`]-delegating allocator that counts allocations made by threads
/// inside a [`measure`] bracket.
pub struct CountingAllocator;

impl CountingAllocator {
    #[inline]
    fn record() {
        // Const-initialised thread-locals have no destructor, so this is safe
        // to call even during thread teardown.
        if TRACKING.get() {
            COUNT.set(COUNT.get() + 1);
        }
    }
}

// SAFETY: every method delegates verbatim to `System`; the bookkeeping
// around the delegation performs no allocation itself (Cell reads/writes on
// const-initialised thread-locals).
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        Self::record();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        Self::record();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        Self::record();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// Runs `f` with allocation counting enabled on the current thread and
/// returns `(f's result, allocations observed)`.
///
/// Only meaningful in a binary whose `#[global_allocator]` is
/// [`CountingAllocator`]; under any other allocator the count is always 0.
/// Nested brackets are allowed — the inner bracket reports its own span and
/// the outer bracket's total includes it.
pub fn measure<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let was_tracking = TRACKING.replace(true);
    let before = COUNT.get();
    let result = f();
    let after = COUNT.get();
    TRACKING.set(was_tracking);
    let allocs = after - before;
    // Bridge into the observability layer (no-op unless `obs` is enabled)
    // so alloc regressions show up next to the rest of the metrics. Counted
    // outside the bracket so the counter's own bookkeeping is not billed.
    anole_obs::counter_add!("nn.alloc.measured_allocs", allocs);
    (result, allocs)
}
