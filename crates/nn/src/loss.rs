//! Loss functions: softmax cross-entropy (classification) and
//! binary-cross-entropy-with-logits (multi-label detection heads).

use anole_tensor::Matrix;

use crate::NnError;

/// A scalar loss together with its gradient w.r.t. the logits.
#[derive(Debug, Clone, PartialEq)]
pub struct LossValue {
    /// Mean loss over the batch.
    pub loss: f32,
    /// `d loss / d logits`, same shape as the logits.
    pub d_logits: Matrix,
}

/// Row-wise softmax with the max-subtraction trick.
///
/// # Examples
///
/// ```
/// use anole_tensor::Matrix;
///
/// let p = anole_nn::softmax(&Matrix::row_vector(&[0.0, 0.0]));
/// assert!((p.get(0, 0) - 0.5).abs() < 1e-6);
/// ```
pub fn softmax(logits: &Matrix) -> Matrix {
    let mut out = Matrix::default();
    softmax_into(logits, &mut out);
    out
}

/// [`softmax`] writing into a caller-provided buffer.
///
/// `out` is reshaped with [`Matrix::resize_scratch`] and fully overwritten;
/// values are bit-identical to the allocating variant (which is this function
/// on a fresh matrix).
pub fn softmax_into(logits: &Matrix, out: &mut Matrix) {
    out.copy_from(logits);
    for i in 0..out.rows() {
        let row = out.row_mut(i);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

/// Element-wise logistic sigmoid of a matrix.
pub fn sigmoid(logits: &Matrix) -> Matrix {
    let mut out = Matrix::default();
    sigmoid_into(logits, &mut out);
    out
}

/// [`sigmoid`] writing into a caller-provided buffer.
///
/// Same reshape-and-overwrite contract (and bit-identity guarantee) as
/// [`softmax_into`].
pub fn sigmoid_into(logits: &Matrix, out: &mut Matrix) {
    out.resize_scratch(logits.rows(), logits.cols());
    for (o, &x) in out.as_mut_slice().iter_mut().zip(logits.as_slice().iter()) {
        *o = if x >= 0.0 {
            1.0 / (1.0 + (-x).exp())
        } else {
            let e = x.exp();
            e / (1.0 + e)
        };
    }
}

/// Softmax cross-entropy against integer class labels (the paper's §IV-C
/// decision-model loss).
///
/// Returns the mean loss and its gradient `softmax(logits) − one_hot(labels)`
/// scaled by `1/batch`.
///
/// # Errors
///
/// * [`NnError::SampleCount`] if `labels.len() != logits.rows()`.
/// * [`NnError::LabelOutOfRange`] if any label `>= logits.cols()`.
pub fn softmax_cross_entropy(logits: &Matrix, labels: &[usize]) -> Result<LossValue, NnError> {
    let mut d = Matrix::default();
    let loss = softmax_cross_entropy_into(logits, labels, &mut d)?;
    Ok(LossValue { loss, d_logits: d })
}

/// [`softmax_cross_entropy`] writing the gradient into a caller-provided
/// buffer and returning only the scalar loss.
///
/// `d_logits` doubles as the softmax scratch, so the whole loss runs without
/// allocating once the buffer has warm capacity. Bit-identical to the
/// allocating variant, which is this function on a fresh matrix.
///
/// # Errors
///
/// Same as [`softmax_cross_entropy`].
pub fn softmax_cross_entropy_into(
    logits: &Matrix,
    labels: &[usize],
    d_logits: &mut Matrix,
) -> Result<f32, NnError> {
    if labels.len() != logits.rows() {
        return Err(NnError::SampleCount {
            samples: logits.rows(),
            labels: labels.len(),
        });
    }
    let classes = logits.cols();
    for &l in labels {
        if l >= classes {
            return Err(NnError::LabelOutOfRange { label: l, classes });
        }
    }
    softmax_into(logits, d_logits);
    let batch = logits.rows().max(1) as f32;
    let mut loss = 0.0;
    for (i, &label) in labels.iter().enumerate() {
        let p = d_logits.get(i, label).max(1e-12);
        loss -= p.ln();
        d_logits.set(i, label, d_logits.get(i, label) - 1.0);
    }
    let inv_batch = 1.0 / batch;
    d_logits.map_inplace(|v| v * inv_batch);
    Ok(loss / batch)
}

/// Softmax cross-entropy against *soft* target distributions (rows of
/// `targets` should sum to 1). This is the loss the paper's §IV-C uses with
/// the (normalized) multi-hot model-allocation vector `v^x`.
///
/// # Errors
///
/// Returns an error if `targets` and `logits` have different shapes.
pub fn soft_cross_entropy(logits: &Matrix, targets: &Matrix) -> Result<LossValue, NnError> {
    let mut d = Matrix::default();
    let loss = soft_cross_entropy_into(logits, targets, &mut d)?;
    Ok(LossValue { loss, d_logits: d })
}

/// [`soft_cross_entropy`] writing the gradient into a caller-provided buffer
/// and returning only the scalar loss.
///
/// `d_logits` holds the softmax probabilities first, then each element is
/// read once and replaced by its gradient `(p − t)/batch` — one buffer, no
/// allocation with warm capacity, bit-identical to the allocating variant.
///
/// # Errors
///
/// Same as [`soft_cross_entropy`].
pub fn soft_cross_entropy_into(
    logits: &Matrix,
    targets: &Matrix,
    d_logits: &mut Matrix,
) -> Result<f32, NnError> {
    if logits.shape() != targets.shape() {
        return Err(NnError::SampleCount {
            samples: logits.rows(),
            labels: targets.rows(),
        });
    }
    softmax_into(logits, d_logits);
    let batch = logits.rows().max(1) as f32;
    let mut loss = 0.0;
    for i in 0..logits.rows() {
        for j in 0..logits.cols() {
            let t = targets.get(i, j);
            let raw = d_logits.get(i, j);
            let p = raw.max(1e-12);
            if t > 0.0 {
                loss -= t * p.ln();
            }
            d_logits.set(i, j, (raw - t) / batch);
        }
    }
    Ok(loss / batch)
}

/// Binary cross-entropy with logits against dense 0/1 targets, used by the
/// multi-label grid detectors. `pos_weight > 1` up-weights positive cells,
/// countering the sparsity of objects in a frame.
///
/// # Errors
///
/// Returns a shape error if `targets` and `logits` have different shapes.
pub fn bce_with_logits(
    logits: &Matrix,
    targets: &Matrix,
    pos_weight: f32,
) -> Result<LossValue, NnError> {
    let mut d = Matrix::default();
    let loss = bce_with_logits_into(logits, targets, pos_weight, &mut d)?;
    Ok(LossValue { loss, d_logits: d })
}

/// [`bce_with_logits`] writing the gradient into a caller-provided buffer
/// and returning only the scalar loss.
///
/// Like [`soft_cross_entropy_into`], `d_logits` holds the sigmoid
/// probabilities first and is rewritten element-by-element into the
/// gradient. Bit-identical to the allocating variant.
///
/// # Errors
///
/// Same as [`bce_with_logits`].
pub fn bce_with_logits_into(
    logits: &Matrix,
    targets: &Matrix,
    pos_weight: f32,
    d_logits: &mut Matrix,
) -> Result<f32, NnError> {
    if logits.shape() != targets.shape() {
        return Err(NnError::SampleCount {
            samples: logits.rows(),
            labels: targets.rows(),
        });
    }
    sigmoid_into(logits, d_logits);
    let n = logits.len().max(1) as f32;
    let mut loss = 0.0;
    for i in 0..logits.rows() {
        for j in 0..logits.cols() {
            let p = d_logits.get(i, j).clamp(1e-7, 1.0 - 1e-7);
            let t = targets.get(i, j);
            let w = if t > 0.5 { pos_weight } else { 1.0 };
            loss -= w * (t * p.ln() + (1.0 - t) * (1.0 - p).ln());
            d_logits.set(i, j, w * (p - t) / n);
        }
    }
    Ok(loss / n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]).unwrap();
        let p = softmax(&logits);
        for i in 0..2 {
            let s: f32 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        assert!(p.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn softmax_handles_large_logits() {
        let p = softmax(&Matrix::row_vector(&[1000.0, 1000.0]));
        assert!((p.get(0, 0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let logits = Matrix::from_rows(&[&[20.0, 0.0], &[0.0, 20.0]]).unwrap();
        let lv = softmax_cross_entropy(&logits, &[0, 1]).unwrap();
        assert!(lv.loss < 1e-6);
        assert!(lv.d_logits.max_abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_uniform_is_log_classes() {
        let logits = Matrix::zeros(1, 4);
        let lv = softmax_cross_entropy(&logits, &[2]).unwrap();
        assert!((lv.loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let logits = Matrix::from_rows(&[&[0.5, -0.3, 0.8]]).unwrap();
        let labels = [1usize];
        let lv = softmax_cross_entropy(&logits, &labels).unwrap();
        let eps = 1e-3f32;
        for j in 0..3 {
            let mut lp = logits.clone();
            lp.set(0, j, logits.get(0, j) + eps);
            let mut lm = logits.clone();
            lm.set(0, j, logits.get(0, j) - eps);
            let fp = softmax_cross_entropy(&lp, &labels).unwrap().loss;
            let fm = softmax_cross_entropy(&lm, &labels).unwrap().loss;
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - lv.d_logits.get(0, j)).abs() < 1e-3,
                "grad[{j}] numeric {numeric} vs {}",
                lv.d_logits.get(0, j)
            );
        }
    }

    #[test]
    fn cross_entropy_rejects_bad_labels() {
        let logits = Matrix::zeros(2, 3);
        assert!(matches!(
            softmax_cross_entropy(&logits, &[0]),
            Err(NnError::SampleCount { .. })
        ));
        assert!(matches!(
            softmax_cross_entropy(&logits, &[0, 3]),
            Err(NnError::LabelOutOfRange { label: 3, classes: 3 })
        ));
    }

    #[test]
    fn soft_cross_entropy_reduces_to_hard_on_one_hot() {
        let logits = Matrix::from_rows(&[&[0.5, -0.3, 0.8], &[1.0, 0.0, -1.0]]).unwrap();
        let hard = softmax_cross_entropy(&logits, &[1, 0]).unwrap();
        let one_hot =
            Matrix::from_rows(&[&[0.0, 1.0, 0.0], &[1.0, 0.0, 0.0]]).unwrap();
        let soft = soft_cross_entropy(&logits, &one_hot).unwrap();
        assert!((hard.loss - soft.loss).abs() < 1e-5);
        for (a, b) in hard.d_logits.iter().zip(soft.d_logits.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn soft_cross_entropy_gradient_matches_finite_difference() {
        let logits = Matrix::from_rows(&[&[0.2, -0.5, 1.1]]).unwrap();
        let targets = Matrix::from_rows(&[&[0.5, 0.0, 0.5]]).unwrap();
        let lv = soft_cross_entropy(&logits, &targets).unwrap();
        let eps = 1e-3f32;
        for j in 0..3 {
            let mut lp = logits.clone();
            lp.set(0, j, logits.get(0, j) + eps);
            let mut lm = logits.clone();
            lm.set(0, j, logits.get(0, j) - eps);
            let fp = soft_cross_entropy(&lp, &targets).unwrap().loss;
            let fm = soft_cross_entropy(&lm, &targets).unwrap().loss;
            let numeric = (fp - fm) / (2.0 * eps);
            assert!((numeric - lv.d_logits.get(0, j)).abs() < 1e-3);
        }
    }

    #[test]
    fn soft_cross_entropy_shape_mismatch_errors() {
        assert!(soft_cross_entropy(&Matrix::zeros(2, 3), &Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn bce_gradient_matches_finite_difference() {
        let logits = Matrix::from_rows(&[&[0.3, -1.2], &[2.0, 0.1]]).unwrap();
        let targets = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]).unwrap();
        let lv = bce_with_logits(&logits, &targets, 2.0).unwrap();
        let eps = 1e-3f32;
        for i in 0..2 {
            for j in 0..2 {
                let mut lp = logits.clone();
                lp.set(i, j, logits.get(i, j) + eps);
                let mut lm = logits.clone();
                lm.set(i, j, logits.get(i, j) - eps);
                let fp = bce_with_logits(&lp, &targets, 2.0).unwrap().loss;
                let fm = bce_with_logits(&lm, &targets, 2.0).unwrap().loss;
                let numeric = (fp - fm) / (2.0 * eps);
                assert!(
                    (numeric - lv.d_logits.get(i, j)).abs() < 1e-3,
                    "bce grad[{i},{j}]"
                );
            }
        }
    }

    #[test]
    fn bce_pos_weight_upweights_positives() {
        let logits = Matrix::row_vector(&[0.0]);
        let pos = Matrix::row_vector(&[1.0]);
        let l1 = bce_with_logits(&logits, &pos, 1.0).unwrap().loss;
        let l4 = bce_with_logits(&logits, &pos, 4.0).unwrap().loss;
        assert!((l4 - 4.0 * l1).abs() < 1e-5);
    }

    #[test]
    fn bce_shape_mismatch_errors() {
        let logits = Matrix::zeros(2, 2);
        let targets = Matrix::zeros(3, 2);
        assert!(bce_with_logits(&logits, &targets, 1.0).is_err());
    }
}
