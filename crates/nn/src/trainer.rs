//! Mini-batch training loops for classifiers and multi-label heads.
//!
//! The inner loop is allocation-free after warm-up: every per-batch buffer
//! (gathered batch, activations, loss gradient, per-layer gradients) lives in
//! a [`Workspace`] that is reused across batches and epochs. The convenience
//! `fit_*` methods create a workspace internally; the `fit_*_ws` variants
//! accept one from the caller so repeated training runs (e.g. the OSP
//! repository's candidate fan-out) can amortise warm-up across runs. Both are
//! bit-identical — buffer reuse never changes results.

use anole_tensor::{parallel_config, rng_from_seed, Matrix, Seed};
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

use crate::workspace::{BatchWorkspace, Workspace};
use crate::{
    bce_with_logits_into, soft_cross_entropy_into, softmax_cross_entropy_into, Mlp, NnError,
    OptimizerKind,
};

/// Fixed row count of one gradient-accumulation chunk.
///
/// Batches of at least `2 * GRAD_CHUNK_ROWS` rows are split into chunks of
/// this size whose loss/gradient contributions are computed independently
/// (possibly on different threads, each into its own per-chunk workspace) and
/// combined with a pairwise tree reduction. Both the chunk boundaries and the
/// reduction order depend only on the batch size — never on the thread count
/// — so training is bit-identical for any [`anole_tensor::ParallelConfig`].
/// Smaller batches keep the classic single-pass path, which preserves the
/// exact numerics of earlier releases for every configuration shipped in this
/// repository.
pub const GRAD_CHUNK_ROWS: usize = 64;

/// Hyper-parameters of a training run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size (clamped to the dataset size).
    pub batch_size: usize,
    /// Optimizer to use.
    pub optimizer: OptimizerKind,
    /// Positive-cell weight for multi-label training (ignored by
    /// classification).
    pub pos_weight: f32,
    /// Decoupled weight decay applied to non-frozen layers before each
    /// optimizer step (`θ ← θ·(1 − weight_decay)`); `0.0` disables it.
    pub weight_decay: f32,
    /// Stop early once the epoch loss drops below this value; `0.0` disables.
    pub target_loss: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 30,
            batch_size: 32,
            optimizer: OptimizerKind::default(),
            pos_weight: 1.0,
            weight_decay: 0.0,
            target_loss: 0.0,
        }
    }
}

/// Summary of a completed training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean loss of each completed epoch.
    pub epoch_losses: Vec<f32>,
    /// Loss of the final epoch.
    pub final_loss: f32,
    /// Number of epochs actually run (early stopping may cut this short).
    pub epochs_run: usize,
}

/// Which supervision signal a training run optimises.
///
/// Borrowed views into the caller's dataset; `Copy` so the chunked path can
/// hand one to each worker thread.
#[derive(Clone, Copy)]
enum LossSource<'a> {
    /// Hard class labels → softmax cross-entropy.
    Hard { labels: &'a [usize] },
    /// Soft target distributions → soft cross-entropy.
    Soft { targets: &'a Matrix },
    /// Dense 0/1 targets → sigmoid BCE with a positive-cell weight.
    Multi { targets: &'a Matrix, pos_weight: f32 },
}

impl LossSource<'_> {
    /// Gathers this batch's supervision into the workspace, evaluates the
    /// loss against `bws`'s logits, and leaves `dL/d(logits)` in
    /// `bws.d_logits`. Bit-identical to the historical closure-based path
    /// (gather + allocating loss call) for each variant.
    fn loss_into(&self, idx: &[usize], bws: &mut BatchWorkspace) -> Result<f32, NnError> {
        let (logits, d_logits, labels_buf, targets_buf) = bws.loss_parts();
        match self {
            LossSource::Hard { labels } => {
                labels_buf.clear();
                labels_buf.extend(idx.iter().map(|&i| labels[i]));
                softmax_cross_entropy_into(logits, labels_buf, d_logits)
            }
            LossSource::Soft { targets } => {
                targets.gather_rows_into(idx, targets_buf);
                soft_cross_entropy_into(logits, targets_buf, d_logits)
            }
            LossSource::Multi { targets, pos_weight } => {
                targets.gather_rows_into(idx, targets_buf);
                bce_with_logits_into(logits, targets_buf, *pos_weight, d_logits)
            }
        }
    }
}

/// Mini-batch trainer driving an [`Mlp`] with a [`TrainConfig`].
///
/// # Examples
///
/// See the crate-level example.
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer with the given configuration.
    pub fn new(config: TrainConfig) -> Self {
        Self { config }
    }

    /// The trainer's configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Trains `model` as a softmax classifier on `(x, labels)`.
    ///
    /// # Errors
    ///
    /// * [`NnError::EmptyDataset`] if `x` has no rows.
    /// * [`NnError::SampleCount`] if `labels.len() != x.rows()`.
    /// * Width/label errors surfaced from the forward and loss passes.
    pub fn fit_classifier(
        &self,
        model: &mut Mlp,
        x: &Matrix,
        labels: &[usize],
        seed: Seed,
    ) -> Result<TrainReport, NnError> {
        self.fit_classifier_ws(model, x, labels, seed, &mut Workspace::new())
    }

    /// [`Trainer::fit_classifier`] reusing a caller-provided [`Workspace`].
    ///
    /// # Errors
    ///
    /// Same as [`Trainer::fit_classifier`].
    pub fn fit_classifier_ws(
        &self,
        model: &mut Mlp,
        x: &Matrix,
        labels: &[usize],
        seed: Seed,
        ws: &mut Workspace,
    ) -> Result<TrainReport, NnError> {
        if x.rows() == 0 {
            return Err(NnError::EmptyDataset);
        }
        if labels.len() != x.rows() {
            return Err(NnError::SampleCount {
                samples: x.rows(),
                labels: labels.len(),
            });
        }
        self.run(model, x, seed, LossSource::Hard { labels }, ws)
    }

    /// Trains `model` as a classifier against *soft* target distributions
    /// (one row per sample, rows summing to 1).
    ///
    /// # Errors
    ///
    /// * [`NnError::EmptyDataset`] if `x` has no rows.
    /// * [`NnError::SampleCount`] if target rows disagree with `x`.
    pub fn fit_soft_classifier(
        &self,
        model: &mut Mlp,
        x: &Matrix,
        targets: &Matrix,
        seed: Seed,
    ) -> Result<TrainReport, NnError> {
        self.fit_soft_classifier_ws(model, x, targets, seed, &mut Workspace::new())
    }

    /// [`Trainer::fit_soft_classifier`] reusing a caller-provided
    /// [`Workspace`].
    ///
    /// # Errors
    ///
    /// Same as [`Trainer::fit_soft_classifier`].
    pub fn fit_soft_classifier_ws(
        &self,
        model: &mut Mlp,
        x: &Matrix,
        targets: &Matrix,
        seed: Seed,
        ws: &mut Workspace,
    ) -> Result<TrainReport, NnError> {
        if x.rows() == 0 {
            return Err(NnError::EmptyDataset);
        }
        if targets.rows() != x.rows() {
            return Err(NnError::SampleCount {
                samples: x.rows(),
                labels: targets.rows(),
            });
        }
        self.run(model, x, seed, LossSource::Soft { targets }, ws)
    }

    /// Trains `model` as a multi-label (sigmoid) predictor against dense 0/1
    /// `targets` with the configured positive weight.
    ///
    /// # Errors
    ///
    /// * [`NnError::EmptyDataset`] if `x` has no rows.
    /// * [`NnError::SampleCount`] if target rows disagree with `x`.
    pub fn fit_multilabel(
        &self,
        model: &mut Mlp,
        x: &Matrix,
        targets: &Matrix,
        seed: Seed,
    ) -> Result<TrainReport, NnError> {
        self.fit_multilabel_ws(model, x, targets, seed, &mut Workspace::new())
    }

    /// [`Trainer::fit_multilabel`] reusing a caller-provided [`Workspace`].
    ///
    /// # Errors
    ///
    /// Same as [`Trainer::fit_multilabel`].
    pub fn fit_multilabel_ws(
        &self,
        model: &mut Mlp,
        x: &Matrix,
        targets: &Matrix,
        seed: Seed,
        ws: &mut Workspace,
    ) -> Result<TrainReport, NnError> {
        if x.rows() == 0 {
            return Err(NnError::EmptyDataset);
        }
        if targets.rows() != x.rows() {
            return Err(NnError::SampleCount {
                samples: x.rows(),
                labels: targets.rows(),
            });
        }
        let pos_weight = self.config.pos_weight;
        self.run(model, x, seed, LossSource::Multi { targets, pos_weight }, ws)
    }

    fn run(
        &self,
        model: &mut Mlp,
        x: &Matrix,
        seed: Seed,
        src: LossSource<'_>,
        ws: &mut Workspace,
    ) -> Result<TrainReport, NnError> {
        let _span = anole_obs::span!("nn.trainer.fit");
        anole_obs::counter_add!("nn.train.runs", 1);
        let mut rng = rng_from_seed(seed);
        let mut optimizer = self.config.optimizer.build();
        let n = x.rows();
        let batch = self.config.batch_size.clamp(1, n);
        let mut order: Vec<usize> = (0..n).collect();
        let mut epoch_losses = Vec::with_capacity(self.config.epochs);
        let mut last_chunked = false;

        for _ in 0..self.config.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0;
            for chunk in order.chunks(batch) {
                let use_chunked = chunk.len() >= 2 * GRAD_CHUNK_ROWS;
                last_chunked = use_chunked;
                let loss = if use_chunked {
                    accumulate_grads_chunked_ws(model, x, chunk, src, ws)?
                } else {
                    let bws = &mut ws.main;
                    x.gather_rows_into(chunk, &mut bws.x);
                    model.forward_ws(bws)?;
                    let loss = src.loss_into(chunk, bws)?;
                    model.backward_ws(bws)?;
                    loss
                };
                if self.config.weight_decay > 0.0 {
                    let keep = 1.0 - self.config.weight_decay;
                    let frozen = model.frozen_prefix();
                    for layer in model.layers_mut().iter_mut().skip(frozen) {
                        layer.scale_parameters(keep);
                    }
                }
                let grads: &[(Matrix, Matrix)] = if use_chunked {
                    &ws.chunks[0].grads
                } else {
                    &ws.main.grads
                };
                optimizer.step(model, grads)?;
                epoch_loss += loss;
                batches += 1;
            }
            let mean_loss = epoch_loss / batches.max(1) as f32;
            epoch_losses.push(mean_loss);
            anole_obs::counter_add!("nn.train.epochs", 1);
            anole_obs::counter_add!("nn.train.batches", batches as u64);
            anole_obs::gauge_set!("nn.train.epoch_loss", f64::from(mean_loss));
            if anole_obs::enabled() {
                // Gradient norm of the epoch's last batch — purely
                // observational, never fed back into training.
                let grads = if last_chunked {
                    &ws.chunks[0].grads
                } else {
                    &ws.main.grads
                };
                anole_obs::gauge_set!("nn.train.grad_norm", grad_frobenius_norm(grads));
            }
            if self.config.target_loss > 0.0 && mean_loss < self.config.target_loss {
                break;
            }
        }

        let final_loss = *epoch_losses.last().unwrap_or(&f32::NAN);
        Ok(TrainReport {
            epochs_run: epoch_losses.len(),
            epoch_losses,
            final_loss,
        })
    }
}

/// Frobenius norm over every `(d_weights, d_bias)` pair, accumulated in f64.
/// Only evaluated when observability is enabled (feeds the
/// `nn.train.grad_norm` gauge); never part of the training computation.
fn grad_frobenius_norm(grads: &[(Matrix, Matrix)]) -> f64 {
    let mut sum = 0.0f64;
    for (dw, db) in grads {
        for &v in dw.as_slice() {
            sum += f64::from(v) * f64::from(v);
        }
        for &v in db.as_slice() {
            sum += f64::from(v) * f64::from(v);
        }
    }
    sum.sqrt()
}

/// Loss and per-layer gradients (left in `bws.grads`) of one fixed-size
/// sub-chunk, pre-scaled by `chunk_rows / batch_rows` so the per-chunk
/// contributions sum to the batch-mean loss and gradient.
fn chunk_grad_ws(
    model: &Mlp,
    x: &Matrix,
    idx: &[usize],
    src: LossSource<'_>,
    batch_rows: f32,
    bws: &mut BatchWorkspace,
) -> Result<f32, NnError> {
    x.gather_rows_into(idx, &mut bws.x);
    model.forward_ws(bws)?;
    let loss = src.loss_into(idx, bws)?;
    let weight = idx.len() as f32 / batch_rows;
    bws.d_logits.map_inplace(|v| v * weight);
    model.backward_ws(bws)?;
    Ok(loss * weight)
}

/// Splits `batch_idx` into [`GRAD_CHUNK_ROWS`]-row chunks, computes each
/// chunk's loss/gradients independently into its per-chunk workspace (fanning
/// out to the [`anole_tensor::parallel_config`] thread pool when it pays),
/// and combines them with a pairwise tree reduction in fixed chunk order.
/// The reduced gradients end up in `ws.chunks[0].grads`; the batch-mean loss
/// is returned.
///
/// Chunk boundaries and the reduction tree depend only on `batch_idx.len()`,
/// so the result is bit-identical for every thread count; only scheduling
/// changes. The serial path (1 thread) performs no allocations once the
/// chunk workspaces are warm; the fan-out path allocates only for thread
/// scaffolding, never for numerics.
fn accumulate_grads_chunked_ws(
    model: &Mlp,
    x: &Matrix,
    batch_idx: &[usize],
    src: LossSource<'_>,
    ws: &mut Workspace,
) -> Result<f32, NnError> {
    let batch_rows = batch_idx.len() as f32;
    let n_chunks = batch_idx.len().div_ceil(GRAD_CHUNK_ROWS);
    ws.ensure_chunks(n_chunks);
    let work = batch_idx.len().saturating_mul(model.parameter_count());
    let threads = parallel_config().threads_for(work).min(n_chunks);

    if threads <= 1 {
        for (i, idx) in batch_idx.chunks(GRAD_CHUNK_ROWS).enumerate() {
            ws.chunk_losses[i] = chunk_grad_ws(model, x, idx, src, batch_rows, &mut ws.chunks[i])?;
        }
    } else {
        let idx_chunks: Vec<&[usize]> = batch_idx.chunks(GRAD_CHUNK_ROWS).collect();
        let per_worker = n_chunks.div_ceil(threads);
        let chunk_ws = &mut ws.chunks[..n_chunks];
        let losses = &mut ws.chunk_losses[..n_chunks];
        // Workers own contiguous chunk groups in order; each reports its
        // first error, and the first erroring worker wins — i.e. the error of
        // the lowest-indexed failing chunk, matching the serial path.
        let first_err = std::thread::scope(|scope| {
            let handles: Vec<_> = chunk_ws
                .chunks_mut(per_worker)
                .zip(losses.chunks_mut(per_worker))
                .zip(idx_chunks.chunks(per_worker))
                .map(|((ws_group, loss_group), idx_group)| {
                    scope.spawn(move || -> Result<(), NnError> {
                        for ((bws, loss_slot), idx) in
                            ws_group.iter_mut().zip(loss_group.iter_mut()).zip(idx_group)
                        {
                            *loss_slot = chunk_grad_ws(model, x, idx, src, batch_rows, bws)?;
                        }
                        Ok(())
                    })
                })
                .collect();
            let mut err = None;
            for h in handles {
                let r = h.join().expect("gradient worker panicked");
                if let (None, Err(e)) = (&err, r) {
                    err = Some(e);
                }
            }
            err
        });
        if let Some(e) = first_err {
            return Err(e);
        }
    }

    // In-place pairwise tree reduction: stride 1 combines (0,1), (2,3), …;
    // stride 2 combines the survivors, and so on — the same tree the
    // historical round-based reduction built, for any chunk count.
    let mut stride = 1;
    while stride < n_chunks {
        let mut i = 0;
        while i + stride < n_chunks {
            let (left, right) = ws.chunks.split_at_mut(i + stride);
            for ((lw, lb), (rw, rb)) in left[i].grads.iter_mut().zip(right[0].grads.iter()) {
                *lw += rw;
                *lb += rb;
            }
            ws.chunk_losses[i] += ws.chunk_losses[i + stride];
            i += 2 * stride;
        }
        stride *= 2;
    }
    Ok(ws.chunk_losses[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Activation;

    fn blobs(n_per_class: usize, seed: Seed) -> (Matrix, Vec<usize>) {
        // Two well-separated Gaussian blobs in 2-D.
        let mut rng = rng_from_seed(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for class in 0..2usize {
            let center = if class == 0 { -2.0 } else { 2.0 };
            for _ in 0..n_per_class {
                let jitter = Matrix::random_normal(1, 2, 0.5, &mut rng);
                rows.push(vec![center + jitter.get(0, 0), center + jitter.get(0, 1)]);
                labels.push(class);
            }
        }
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        (Matrix::from_rows(&refs).unwrap(), labels)
    }

    #[test]
    fn classifier_learns_blobs() {
        let (x, y) = blobs(50, Seed(7));
        let mut model = Mlp::builder(2).hidden(8, Activation::Relu).output(2).build(Seed(8));
        let report = Trainer::new(TrainConfig {
            epochs: 40,
            batch_size: 16,
            ..TrainConfig::default()
        })
        .fit_classifier(&mut model, &x, &y, Seed(9))
        .unwrap();
        assert!(report.final_loss < 0.1, "loss {}", report.final_loss);
        let preds = model.classify(&x).unwrap();
        let correct = preds.iter().zip(y.iter()).filter(|(a, b)| a == b).count();
        assert!(correct as f32 / y.len() as f32 > 0.95);
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let (x, y) = blobs(40, Seed(17));
        let mut model = Mlp::builder(2).hidden(6, Activation::Tanh).output(2).build(Seed(18));
        let report = Trainer::new(TrainConfig {
            epochs: 20,
            batch_size: 8,
            ..TrainConfig::default()
        })
        .fit_classifier(&mut model, &x, &y, Seed(19))
        .unwrap();
        let first = report.epoch_losses.first().unwrap();
        let last = report.epoch_losses.last().unwrap();
        assert!(last < first);
    }

    #[test]
    fn early_stopping_cuts_epochs() {
        let (x, y) = blobs(40, Seed(27));
        let mut model = Mlp::builder(2).hidden(8, Activation::Relu).output(2).build(Seed(28));
        let report = Trainer::new(TrainConfig {
            epochs: 500,
            batch_size: 16,
            target_loss: 0.2,
            ..TrainConfig::default()
        })
        .fit_classifier(&mut model, &x, &y, Seed(29))
        .unwrap();
        assert!(report.epochs_run < 500);
        assert!(report.final_loss < 0.2);
    }

    #[test]
    fn multilabel_learns_identity_pattern() {
        // Target = which half of the input carries signal.
        let mut rng = rng_from_seed(Seed(31));
        let n = 120;
        let mut x = Matrix::random_normal(n, 4, 0.1, &mut rng);
        let mut t = Matrix::zeros(n, 2);
        for i in 0..n {
            if i % 2 == 0 {
                x.set(i, 0, x.get(i, 0) + 2.0);
                t.set(i, 0, 1.0);
            } else {
                x.set(i, 2, x.get(i, 2) + 2.0);
                t.set(i, 1, 1.0);
            }
        }
        let mut model = Mlp::builder(4).hidden(8, Activation::Relu).output(2).build(Seed(32));
        let report = Trainer::new(TrainConfig {
            epochs: 60,
            batch_size: 16,
            pos_weight: 1.0,
            ..TrainConfig::default()
        })
        .fit_multilabel(&mut model, &x, &t, Seed(33))
        .unwrap();
        assert!(report.final_loss < 0.1, "loss {}", report.final_loss);
        let probs = crate::sigmoid(&model.forward(&x).unwrap());
        let mut correct = 0;
        for i in 0..n {
            let want = if i % 2 == 0 { 0 } else { 1 };
            if probs.get(i, want) > 0.5 && probs.get(i, 1 - want) < 0.5 {
                correct += 1;
            }
        }
        assert!(correct as f32 / n as f32 > 0.9);
    }

    #[test]
    fn soft_classifier_matches_hard_labels_on_one_hot_targets() {
        let (x, y) = blobs(40, Seed(47));
        let mut one_hot = Matrix::zeros(x.rows(), 2);
        for (i, &label) in y.iter().enumerate() {
            one_hot.set(i, label, 1.0);
        }
        let cfg = TrainConfig {
            epochs: 30,
            batch_size: 16,
            ..TrainConfig::default()
        };
        let mut soft_model = Mlp::builder(2).hidden(8, Activation::Relu).output(2).build(Seed(48));
        let report = Trainer::new(cfg)
            .fit_soft_classifier(&mut soft_model, &x, &one_hot, Seed(49))
            .unwrap();
        assert!(report.final_loss < 0.15, "loss {}", report.final_loss);
        let preds = soft_model.classify(&x).unwrap();
        let correct = preds.iter().zip(y.iter()).filter(|(a, b)| a == b).count();
        assert!(correct as f32 / y.len() as f32 > 0.9);
    }

    #[test]
    fn soft_classifier_rejects_mismatched_targets() {
        let mut model = Mlp::builder(2).output(2).build(Seed(1));
        let err = Trainer::new(TrainConfig::default())
            .fit_soft_classifier(&mut model, &Matrix::zeros(3, 2), &Matrix::zeros(2, 2), Seed(2))
            .unwrap_err();
        assert!(matches!(err, NnError::SampleCount { .. }));
    }

    #[test]
    fn empty_dataset_is_rejected() {
        let mut model = Mlp::builder(2).output(2).build(Seed(1));
        let err = Trainer::new(TrainConfig::default())
            .fit_classifier(&mut model, &Matrix::zeros(0, 2), &[], Seed(2))
            .unwrap_err();
        assert_eq!(err, NnError::EmptyDataset);
    }

    #[test]
    fn label_count_mismatch_is_rejected() {
        let mut model = Mlp::builder(2).output(2).build(Seed(1));
        let err = Trainer::new(TrainConfig::default())
            .fit_classifier(&mut model, &Matrix::zeros(3, 2), &[0, 1], Seed(2))
            .unwrap_err();
        assert!(matches!(err, NnError::SampleCount { samples: 3, labels: 2 }));
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let (x, y) = blobs(40, Seed(61));
        let cfg = |decay| TrainConfig {
            epochs: 15,
            batch_size: 8,
            weight_decay: decay,
            ..TrainConfig::default()
        };
        let norm = |m: &Mlp| {
            m.layers()
                .iter()
                .map(|l| l.weights().frobenius_norm())
                .sum::<f32>()
        };
        let mut plain = Mlp::builder(2).hidden(8, Activation::Relu).output(2).build(Seed(62));
        Trainer::new(cfg(0.0)).fit_classifier(&mut plain, &x, &y, Seed(63)).unwrap();
        let mut decayed = Mlp::builder(2).hidden(8, Activation::Relu).output(2).build(Seed(62));
        let report = Trainer::new(cfg(0.01))
            .fit_classifier(&mut decayed, &x, &y, Seed(63))
            .unwrap();
        assert!(norm(&decayed) < norm(&plain), "{} vs {}", norm(&decayed), norm(&plain));
        // Mild decay must not destroy the fit.
        assert!(report.final_loss < 0.5, "loss {}", report.final_loss);
    }

    #[test]
    fn training_is_deterministic_given_seeds() {
        let (x, y) = blobs(30, Seed(41));
        let mut m1 = Mlp::builder(2).hidden(4, Activation::Relu).output(2).build(Seed(42));
        let mut m2 = Mlp::builder(2).hidden(4, Activation::Relu).output(2).build(Seed(42));
        let cfg = TrainConfig {
            epochs: 5,
            batch_size: 8,
            ..TrainConfig::default()
        };
        let r1 = Trainer::new(cfg).fit_classifier(&mut m1, &x, &y, Seed(43)).unwrap();
        let r2 = Trainer::new(cfg).fit_classifier(&mut m2, &x, &y, Seed(43)).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(m1, m2);
    }

    #[test]
    fn workspace_reuse_is_bit_identical() {
        // A workspace recycled across runs (even across loss kinds and the
        // chunked path) must train exactly like a fresh one.
        let (x, y) = blobs(80, Seed(71)); // 160 rows → batch 160 hits the chunked path
        let cfg = TrainConfig {
            epochs: 4,
            batch_size: 160,
            ..TrainConfig::default()
        };
        let build = || Mlp::builder(2).hidden(6, Activation::Relu).output(2).build(Seed(72));
        let mut ws = Workspace::new();

        // Warm the workspace on an unrelated multilabel run.
        let mut warm = Mlp::builder(2).hidden(3, Activation::Tanh).output(2).build(Seed(73));
        let t = Matrix::zeros(x.rows(), 2);
        Trainer::new(TrainConfig { epochs: 1, ..cfg })
            .fit_multilabel_ws(&mut warm, &x, &t, Seed(74), &mut ws)
            .unwrap();

        let mut fresh_model = build();
        let fresh = Trainer::new(cfg)
            .fit_classifier(&mut fresh_model, &x, &y, Seed(75))
            .unwrap();
        let mut reused_model = build();
        let reused = Trainer::new(cfg)
            .fit_classifier_ws(&mut reused_model, &x, &y, Seed(75), &mut ws)
            .unwrap();
        assert_eq!(fresh, reused);
        assert_eq!(fresh_model, reused_model);
    }
}
