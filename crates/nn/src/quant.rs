//! Quantized int8 inference path: per-layer i8 weights with per-output-neuron
//! scales, served through the same workspace machinery as the f32 models.
//!
//! [`Mlp::quantize`] converts a trained network into a [`QuantizedMlp`] whose
//! layers store the **transpose** of each weight matrix as a
//! [`QuantMatrix`](anole_tensor::QuantMatrix) — row `j` of the transposed
//! matrix is output neuron `j`'s weight vector, so the per-row scales of the
//! quantized format become per-output-neuron scales and the forward pass maps
//! onto the NT-shaped [`QuantMatrix::matmul_i8`] kernel directly:
//!
//! ```text
//! z[i][j] = dot_i32(x_q.row(i), w_t.row(j)) * x_scale[i] * w_scale[j] + b[j]
//! ```
//!
//! Activations are quantized dynamically per batch row at serve time (one
//! [`quantize_row`](anole_tensor::quantize_row) pass per layer input), so no
//! calibration set is needed. Biases and activations stay f32: the i8 kernel
//! dequantizes on writeback, and everything after the matmul is identical to
//! the f32 path.
//!
//! Both serving entry points — the allocating [`QuantizedMlp::forward`] and
//! the workspace-threaded `predict_*_batch` family — run the same kernel and
//! are bit-identical to each other (the integer matmul is exact; see the
//! determinism notes on `matmul_i8`). They are *not* bit-identical to the
//! f32 model: quantization is lossy. The acceptance gate that decides whether
//! a given model may serve at int8 lives in `anole-core`.

use std::fmt;

use anole_tensor::{Matrix, QuantMatrix};
use serde::{Deserialize, Serialize};

use crate::workspace::{BatchWorkspace, Workspace};
use crate::{Activation, Dense, Mlp, NnError};

/// Numeric precision of a served model's weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Precision {
    /// Full-precision f32 weights (the training format).
    #[default]
    Fp32,
    /// Symmetric per-row int8 weights with f32 scales.
    Int8,
}

impl Precision {
    /// Short lowercase label used in telemetry columns (`fp32` / `i8`).
    pub fn label(self) -> &'static str {
        match self {
            Precision::Fp32 => "fp32",
            Precision::Int8 => "i8",
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A dense layer with int8 weights: `a = act(dequant(x_q · W_qᵀ) + b)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedDense {
    /// `out_dim × in_dim` transposed weights; row `j`'s scale is output
    /// neuron `j`'s dequantization factor.
    weights_t: QuantMatrix,
    bias: Matrix,
    activation: Activation,
}

impl QuantizedDense {
    /// Quantizes a trained dense layer (weights transposed, bias copied).
    pub fn from_dense(layer: &Dense) -> Self {
        Self {
            weights_t: QuantMatrix::quantize(&layer.weights().transpose()),
            bias: layer.bias().clone(),
            activation: layer.activation(),
        }
    }

    /// Input width the layer expects.
    pub fn in_dim(&self) -> usize {
        self.weights_t.cols()
    }

    /// Output width the layer produces.
    pub fn out_dim(&self) -> usize {
        self.weights_t.rows()
    }

    /// The layer's activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Bytes this layer holds resident: i8 payload + scales + f32 bias.
    pub fn storage_bytes(&self) -> u64 {
        self.weights_t.storage_bytes() + self.bias.len() as u64 * 4
    }

    /// Forward pass into caller-provided buffers: quantizes `x` row-wise
    /// into `x_q`, runs the i8 kernel into `z`, adds the bias, applies the
    /// activation into `a`. Allocation-free once the buffers are warm.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputWidth`] if `x` is not `n × in_dim`.
    pub fn forward_into(
        &self,
        x: &Matrix,
        x_q: &mut QuantMatrix,
        z: &mut Matrix,
        a: &mut Matrix,
    ) -> Result<(), NnError> {
        if x.cols() != self.in_dim() {
            return Err(NnError::InputWidth {
                expected: self.in_dim(),
                actual: x.cols(),
            });
        }
        x_q.quantize_from(x);
        x_q.matmul_i8_into(&self.weights_t, z)?;
        z.add_row_broadcast_assign(&self.bias)?;
        self.activation.forward_into(z, a);
        Ok(())
    }
}

/// An [`Mlp`] converted to the int8 serving format by [`Mlp::quantize`].
///
/// Inference-only: quantization discards the gradient machinery, so a
/// `QuantizedMlp` cannot be trained further. Re-quantize from the f32 model
/// after any retraining.
///
/// # Examples
///
/// ```
/// use anole_nn::{Activation, Mlp, Workspace};
/// use anole_tensor::{Matrix, Seed};
///
/// let model = Mlp::builder(4).hidden(8, Activation::Relu).output(3).build(Seed(0));
/// let quant = model.quantize();
/// assert!(quant.weight_bytes() < model.weight_bytes() / 3);
/// let mut ws = Workspace::new();
/// let probs = quant.predict_proba_batch(&Matrix::zeros(2, 4), &mut ws)?;
/// assert_eq!(probs.shape(), (2, 3));
/// # Ok::<(), anole_nn::NnError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedMlp {
    layers: Vec<QuantizedDense>,
}

impl QuantizedMlp {
    /// Input width the network expects.
    pub fn input_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output width (number of classes / detection cells).
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Borrows the layers.
    pub fn layers(&self) -> &[QuantizedDense] {
        &self.layers
    }

    /// Bytes the quantized network holds resident (i8 payloads, per-row
    /// scales, and f32 biases) — the value the slot cache charges against
    /// device memory, roughly a quarter of the f32 [`Mlp::weight_bytes`].
    pub fn weight_bytes(&self) -> u64 {
        self.layers.iter().map(QuantizedDense::storage_bytes).sum()
    }

    /// Allocating forward pass returning the network output.
    ///
    /// Bit-identical to the workspace paths (same kernel, fresh buffers).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputWidth`] when `x` has the wrong width.
    pub fn forward(&self, x: &Matrix) -> Result<Matrix, NnError> {
        let mut x_q = QuantMatrix::default();
        let mut a = x.clone();
        for layer in &self.layers {
            let mut z = Matrix::default();
            let mut next = Matrix::default();
            layer.forward_into(&a, &mut x_q, &mut z, &mut next)?;
            a = next;
        }
        Ok(a)
    }

    /// Workspace-backed forward pass over the batch staged in `main.x`,
    /// mirroring `Mlp::forward_ws`: per-layer pre/post-activations land in
    /// `main.zs`/`main.acts`, and `x_q` is the shared row-quantization
    /// scratch (each layer fully overwrites it).
    fn forward_ws(&self, main: &mut BatchWorkspace, x_q: &mut QuantMatrix) -> Result<(), NnError> {
        main.ensure_layers(self.layers.len());
        for (idx, layer) in self.layers.iter().enumerate() {
            let (before, rest) = main.acts.split_at_mut(idx);
            let input = if idx == 0 { &main.x } else { &before[idx - 1] };
            layer.forward_into(input, x_q, &mut main.zs[idx], &mut rest[0])?;
        }
        Ok(())
    }

    /// Workspace-backed batch forward returning the raw logits, still owned
    /// by the workspace. Allocation-free once warm; bit-identical to
    /// [`QuantizedMlp::forward`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputWidth`] when `x` has the wrong width.
    pub fn predict_batch<'w>(
        &self,
        x: &Matrix,
        ws: &'w mut Workspace,
    ) -> Result<&'w Matrix, NnError> {
        let main = &mut ws.main;
        main.x.copy_from(x);
        self.forward_ws(main, &mut ws.quant_in)?;
        Ok(main.logits())
    }

    /// Workspace-backed row-wise softmax of the logits.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputWidth`] when `x` has the wrong width.
    pub fn predict_proba_batch<'w>(
        &self,
        x: &Matrix,
        ws: &'w mut Workspace,
    ) -> Result<&'w Matrix, NnError> {
        let main = &mut ws.main;
        main.x.copy_from(x);
        self.forward_ws(main, &mut ws.quant_in)?;
        crate::softmax_into(main.logits(), &mut ws.infer_out);
        Ok(&ws.infer_out)
    }

    /// Workspace-backed element-wise sigmoid of the logits (detector heads).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputWidth`] when `x` has the wrong width.
    pub fn predict_sigmoid_batch<'w>(
        &self,
        x: &Matrix,
        ws: &'w mut Workspace,
    ) -> Result<&'w Matrix, NnError> {
        let main = &mut ws.main;
        main.x.copy_from(x);
        self.forward_ws(main, &mut ws.quant_in)?;
        crate::sigmoid_into(main.logits(), &mut ws.infer_out);
        Ok(&ws.infer_out)
    }
}

impl Mlp {
    /// Converts the trained network into the int8 serving format: each
    /// layer's weights are transposed and quantized symmetrically per output
    /// neuron; biases stay f32. See the [`quant`](crate::quant) module docs
    /// for the format and accuracy contract.
    pub fn quantize(&self) -> QuantizedMlp {
        QuantizedMlp {
            layers: self.layers().iter().map(QuantizedDense::from_dense).collect(),
        }
    }
}

/// Precision-agnostic serving interface.
///
/// `M_decision` and each specialist detector opt into int8 independently —
/// the acceptance gate in `anole-core` keeps a model at f32 when quantization
/// costs it more than ε of F1 — so serving code dispatches through this trait
/// instead of hard-coding a weight format.
pub trait Predictor {
    /// The weight format this predictor serves at.
    fn precision(&self) -> Precision;

    /// Output width (number of classes / detection cells).
    fn output_dim(&self) -> usize;

    /// Bytes held resident while the model is serving.
    fn resident_bytes(&self) -> u64;

    /// Workspace-backed row-wise softmax over the batch.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputWidth`] when `x` has the wrong width.
    fn predict_proba_batch<'w>(
        &self,
        x: &Matrix,
        ws: &'w mut Workspace,
    ) -> Result<&'w Matrix, NnError>;

    /// Workspace-backed element-wise sigmoid over the batch.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputWidth`] when `x` has the wrong width.
    fn predict_sigmoid_batch<'w>(
        &self,
        x: &Matrix,
        ws: &'w mut Workspace,
    ) -> Result<&'w Matrix, NnError>;
}

impl Predictor for Mlp {
    fn precision(&self) -> Precision {
        Precision::Fp32
    }

    fn output_dim(&self) -> usize {
        self.output_dim()
    }

    fn resident_bytes(&self) -> u64 {
        self.weight_bytes()
    }

    fn predict_proba_batch<'w>(
        &self,
        x: &Matrix,
        ws: &'w mut Workspace,
    ) -> Result<&'w Matrix, NnError> {
        Mlp::predict_proba_batch(self, x, ws)
    }

    fn predict_sigmoid_batch<'w>(
        &self,
        x: &Matrix,
        ws: &'w mut Workspace,
    ) -> Result<&'w Matrix, NnError> {
        Mlp::predict_sigmoid_batch(self, x, ws)
    }
}

impl Predictor for QuantizedMlp {
    fn precision(&self) -> Precision {
        Precision::Int8
    }

    fn output_dim(&self) -> usize {
        self.output_dim()
    }

    fn resident_bytes(&self) -> u64 {
        self.weight_bytes()
    }

    fn predict_proba_batch<'w>(
        &self,
        x: &Matrix,
        ws: &'w mut Workspace,
    ) -> Result<&'w Matrix, NnError> {
        QuantizedMlp::predict_proba_batch(self, x, ws)
    }

    fn predict_sigmoid_batch<'w>(
        &self,
        x: &Matrix,
        ws: &'w mut Workspace,
    ) -> Result<&'w Matrix, NnError> {
        QuantizedMlp::predict_sigmoid_batch(self, x, ws)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anole_tensor::{rng_from_seed, Seed};

    fn model() -> Mlp {
        Mlp::builder(6)
            .hidden(16, Activation::Relu)
            .hidden(8, Activation::Tanh)
            .output(3)
            .build(Seed(21))
    }

    fn input(rows: usize, seed: u64) -> Matrix {
        Matrix::random_normal(rows, 6, 1.0, &mut rng_from_seed(Seed(seed)))
    }

    #[test]
    fn quantized_forward_tracks_fp32_forward() {
        let m = model();
        let q = m.quantize();
        let x = input(8, 1);
        let f = m.forward(&x).unwrap();
        let g = q.forward(&x).unwrap();
        assert_eq!(f.shape(), g.shape());
        for i in 0..f.rows() {
            for j in 0..f.cols() {
                let (a, b) = (f.get(i, j), g.get(i, j));
                assert!(
                    (a - b).abs() < 0.35,
                    "[{i},{j}] fp32 {a} vs i8 {b} drifted too far"
                );
            }
        }
    }

    #[test]
    fn workspace_paths_match_allocating_forward_exactly() {
        let m = model();
        let q = m.quantize();
        let x = input(5, 2);
        let mut ws = Workspace::new();
        let logits = q.forward(&x).unwrap();
        assert_eq!(q.predict_batch(&x, &mut ws).unwrap(), &logits);
        assert_eq!(
            q.predict_proba_batch(&x, &mut ws).unwrap(),
            &crate::softmax(&logits)
        );
        assert_eq!(
            q.predict_sigmoid_batch(&x, &mut ws).unwrap(),
            &crate::sigmoid(&logits)
        );
    }

    #[test]
    fn quantized_storage_is_about_a_quarter() {
        let m = model();
        let q = m.quantize();
        assert!(
            q.weight_bytes() * 3 < m.weight_bytes(),
            "quantized {} bytes vs fp32 {} bytes",
            q.weight_bytes(),
            m.weight_bytes()
        );
        // Lower bound too: payload + scales + f32 bias can't shrink below 1/5.
        assert!(q.weight_bytes() * 5 > m.weight_bytes());
    }

    #[test]
    fn predictor_trait_dispatches_both_precisions() {
        let m = model();
        let q = m.quantize();
        let x = input(3, 3);
        let mut ws = Workspace::new();
        let serving: Vec<&dyn Predictor> = vec![&m, &q];
        for p in serving {
            let probs = p.predict_proba_batch(&x, &mut ws).unwrap();
            assert_eq!(probs.shape(), (3, p.output_dim()));
            match p.precision() {
                Precision::Fp32 => assert_eq!(p.resident_bytes(), m.weight_bytes()),
                Precision::Int8 => assert_eq!(p.resident_bytes(), q.weight_bytes()),
            }
        }
    }

    #[test]
    fn wrong_input_width_is_reported() {
        let q = model().quantize();
        let err = q.forward(&Matrix::zeros(1, 9)).unwrap_err();
        assert!(matches!(err, NnError::InputWidth { expected: 6, actual: 9 }));
        let mut ws = Workspace::new();
        let err = q.predict_batch(&Matrix::zeros(1, 9), &mut ws).unwrap_err();
        assert!(matches!(err, NnError::InputWidth { expected: 6, actual: 9 }));
    }

    #[test]
    fn precision_labels_are_stable() {
        assert_eq!(Precision::Fp32.label(), "fp32");
        assert_eq!(Precision::Int8.label(), "i8");
        assert_eq!(Precision::default(), Precision::Fp32);
        assert_eq!(format!("{}", Precision::Int8), "i8");
    }

    #[test]
    fn serde_round_trip_preserves_outputs() {
        let q = model().quantize();
        let json = serde_json::to_string(&q).unwrap();
        let back: QuantizedMlp = serde_json::from_str(&json).unwrap();
        let x = input(2, 4);
        assert_eq!(q.forward(&x).unwrap(), back.forward(&x).unwrap());
    }
}
