//! Multi-layer perceptron with a builder, cached forward pass, and manual
//! backpropagation.

use anole_tensor::{rng_from_seed, Matrix, Seed};
use serde::{Deserialize, Serialize};

use crate::workspace::{BatchWorkspace, Workspace};
use crate::{Activation, Dense, NnError};

/// A feed-forward network of dense layers.
///
/// The reproduction uses `Mlp` for all three network roles in the paper:
/// scene encoder (`M_scene`), decision model (`M_decision`, whose backbone
/// layers are frozen during training, §IV-C), and the compressed / deep
/// detectors.
///
/// # Examples
///
/// ```
/// use anole_nn::{Activation, Mlp};
/// use anole_tensor::{Matrix, Seed};
///
/// let model = Mlp::builder(4).hidden(8, Activation::Relu).output(3).build(Seed(0));
/// let probs = model.predict_proba(&Matrix::zeros(2, 4))?;
/// assert_eq!(probs.shape(), (2, 3));
/// # Ok::<(), anole_nn::NnError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
    frozen_prefix: usize,
}

/// Builder for [`Mlp`]; see [`Mlp::builder`].
#[derive(Debug, Clone)]
pub struct MlpBuilder {
    input_dim: usize,
    specs: Vec<(usize, Activation)>,
}

impl MlpBuilder {
    /// Appends a hidden layer of `width` units.
    pub fn hidden(mut self, width: usize, activation: Activation) -> Self {
        self.specs.push((width, activation));
        self
    }

    /// Appends the output layer producing `classes` raw logits.
    pub fn output(mut self, classes: usize) -> Self {
        self.specs.push((classes, Activation::Identity));
        self
    }

    /// Appends an output layer with an explicit activation (e.g. sigmoid
    /// heads; note the losses in this crate expect raw logits).
    pub fn output_with_activation(mut self, classes: usize, activation: Activation) -> Self {
        self.specs.push((classes, activation));
        self
    }

    /// Builds the network with deterministic initialization from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if no layers were specified.
    pub fn build(self, seed: Seed) -> Mlp {
        assert!(!self.specs.is_empty(), "an Mlp needs at least one layer");
        let mut rng = rng_from_seed(seed);
        let mut layers = Vec::with_capacity(self.specs.len());
        let mut in_dim = self.input_dim;
        for (width, activation) in self.specs {
            layers.push(Dense::new(in_dim, width, activation, &mut rng));
            in_dim = width;
        }
        Mlp {
            layers,
            frozen_prefix: 0,
        }
    }
}

/// Per-layer activations cached by [`Mlp::forward_cached`] for backprop.
#[derive(Debug, Clone)]
pub struct ForwardCache {
    /// Input to each layer (`inputs[0]` is the batch itself).
    pub inputs: Vec<Matrix>,
    /// Pre-activation of each layer.
    pub zs: Vec<Matrix>,
    /// Post-activation of each layer (`activations.last()` is the output).
    pub activations: Vec<Matrix>,
}

impl ForwardCache {
    /// The network output (post-activation of the last layer).
    ///
    /// # Panics
    ///
    /// Panics if the cache is empty, which cannot happen for caches produced
    /// by [`Mlp::forward_cached`].
    pub fn output(&self) -> &Matrix {
        self.activations.last().expect("non-empty cache")
    }
}

impl Mlp {
    /// Starts building a network that consumes `input_dim`-wide samples.
    pub fn builder(input_dim: usize) -> MlpBuilder {
        MlpBuilder {
            input_dim,
            specs: Vec::new(),
        }
    }

    /// Builds a network from pre-constructed layers.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or consecutive widths disagree.
    pub fn from_layers(layers: Vec<Dense>) -> Self {
        assert!(!layers.is_empty(), "an Mlp needs at least one layer");
        for w in layers.windows(2) {
            assert_eq!(
                w[0].out_dim(),
                w[1].in_dim(),
                "layer widths must chain: {} vs {}",
                w[0].out_dim(),
                w[1].in_dim()
            );
        }
        Self {
            layers,
            frozen_prefix: 0,
        }
    }

    /// Input width the network expects.
    pub fn input_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output width (number of classes / detection cells).
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Borrows the layers.
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Mutably borrows the layers (used by optimizers).
    pub fn layers_mut(&mut self) -> &mut [Dense] {
        &mut self.layers
    }

    /// Number of leading layers excluded from training updates.
    ///
    /// The paper freezes the `M_scene` backbone while training `M_decision`
    /// (§IV-C); the trainer consults this value and skips updates for the
    /// first `frozen_prefix` layers.
    pub fn frozen_prefix(&self) -> usize {
        self.frozen_prefix
    }

    /// Freezes the first `layers` layers against training updates.
    ///
    /// # Panics
    ///
    /// Panics if `layers` exceeds the layer count.
    pub fn set_frozen_prefix(&mut self, layers: usize) {
        assert!(layers <= self.layers.len(), "cannot freeze {layers} layers");
        self.frozen_prefix = layers;
    }

    /// Total number of trainable parameters (frozen layers included).
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(Dense::parameter_count).sum()
    }

    /// Size of the serialized weights in bytes (4 bytes per parameter).
    pub fn weight_bytes(&self) -> u64 {
        self.parameter_count() as u64 * 4
    }

    /// Multiply–add FLOPs of a single-sample forward pass.
    pub fn flops_per_sample(&self) -> u64 {
        self.layers.iter().map(Dense::flops_per_sample).sum()
    }

    /// Plain forward pass returning the network output.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputWidth`] when `x` has the wrong width.
    pub fn forward(&self, x: &Matrix) -> Result<Matrix, NnError> {
        let mut a = x.clone();
        for layer in &self.layers {
            let (_, next) = layer.forward(&a)?;
            a = next;
        }
        Ok(a)
    }

    /// Forward pass retaining the intermediate activations for backprop.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputWidth`] when `x` has the wrong width.
    pub fn forward_cached(&self, x: &Matrix) -> Result<ForwardCache, NnError> {
        let mut inputs = Vec::with_capacity(self.layers.len());
        let mut zs = Vec::with_capacity(self.layers.len());
        let mut activations = Vec::with_capacity(self.layers.len());
        let mut a = x.clone();
        for layer in &self.layers {
            let (z, next) = layer.forward(&a)?;
            inputs.push(a);
            zs.push(z);
            activations.push(next.clone());
            a = next;
        }
        Ok(ForwardCache {
            inputs,
            zs,
            activations,
        })
    }

    /// Backpropagates `d_output` through the network, returning per-layer
    /// `(d_weights, d_bias)` pairs in layer order.
    ///
    /// Frozen layers still receive gradient entries (so indices line up) but
    /// the trainer skips applying them.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `d_output` does not match the cached output.
    pub fn backward(
        &self,
        cache: &ForwardCache,
        d_output: &Matrix,
    ) -> Result<Vec<(Matrix, Matrix)>, NnError> {
        let mut grads = vec![(Matrix::default(), Matrix::default()); self.layers.len()];
        let mut d = d_output.clone();
        for (idx, layer) in self.layers.iter().enumerate().rev() {
            let g = layer.backward(&cache.inputs[idx], &cache.zs[idx], &cache.activations[idx], &d)?;
            grads[idx] = (g.d_weights, g.d_bias);
            d = g.d_input;
        }
        Ok(grads)
    }

    /// Workspace-backed forward pass over the batch staged in `ws.x`.
    ///
    /// Writes per-layer pre/post-activations into `ws.zs`/`ws.acts`
    /// (the last entry of `ws.acts` is the logits) without allocating once
    /// the buffers are warm. Bit-identical to [`Mlp::forward_cached`]: each
    /// layer consumes the previous layer's post-activation buffer, exactly
    /// the matrix the allocating path moves into `inputs`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputWidth`] when `ws.x` has the wrong width.
    pub(crate) fn forward_ws(&self, ws: &mut BatchWorkspace) -> Result<(), NnError> {
        ws.ensure_layers(self.layers.len());
        for (idx, layer) in self.layers.iter().enumerate() {
            let (before, rest) = ws.acts.split_at_mut(idx);
            let input = if idx == 0 { &ws.x } else { &before[idx - 1] };
            layer.forward_into(input, &mut ws.zs[idx], &mut rest[0])?;
        }
        Ok(())
    }

    /// Workspace-backed backprop of the gradient staged in `ws.d_logits`.
    ///
    /// Consumes `ws.d_logits` (via buffer swap — its contents are stale
    /// afterwards) and leaves per-layer `(d_weights, d_bias)` in `ws.grads`.
    /// The upstream gradient ping-pongs between `ws.d_next` and `ws.d_prev`
    /// so the whole pass reuses two buffers regardless of depth.
    ///
    /// Bit-identical to [`Mlp::backward`] for every gradient entry; the one
    /// intentional difference is that the input gradient of layer 0 — which
    /// the allocating path computes and immediately discards — is skipped.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the staged buffers are inconsistent.
    pub(crate) fn backward_ws(&self, ws: &mut BatchWorkspace) -> Result<(), NnError> {
        std::mem::swap(&mut ws.d_next, &mut ws.d_logits);
        for (idx, layer) in self.layers.iter().enumerate().rev() {
            let input = if idx == 0 { &ws.x } else { &ws.acts[idx - 1] };
            let (dw, db) = &mut ws.grads[idx];
            let d_input = if idx > 0 {
                Some((&mut ws.d_prev, &mut ws.nt_pack))
            } else {
                None
            };
            layer.backward_ws(
                input,
                &ws.zs[idx],
                &ws.acts[idx],
                &mut ws.d_next,
                dw,
                db,
                d_input,
            )?;
            if idx > 0 {
                std::mem::swap(&mut ws.d_next, &mut ws.d_prev);
            }
        }
        Ok(())
    }

    /// Embedding of each sample: the activation feeding the final layer.
    ///
    /// For a single-layer network this is the input itself. This is how
    /// `M_scene` produces the scene representation `H_i` of Algorithm 1.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputWidth`] when `x` has the wrong width.
    pub fn embed(&self, x: &Matrix) -> Result<Matrix, NnError> {
        let mut a = x.clone();
        for layer in &self.layers[..self.layers.len() - 1] {
            let (_, next) = layer.forward(&a)?;
            a = next;
        }
        Ok(a)
    }

    /// Width of the embedding produced by [`Mlp::embed`].
    pub fn embedding_dim(&self) -> usize {
        self.layers.last().expect("non-empty").in_dim()
    }

    /// Row-wise softmax of the logits.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputWidth`] when `x` has the wrong width.
    pub fn predict_proba(&self, x: &Matrix) -> Result<Matrix, NnError> {
        Ok(crate::softmax(&self.forward(x)?))
    }

    /// Argmax class per sample.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputWidth`] when `x` has the wrong width.
    pub fn classify(&self, x: &Matrix) -> Result<Vec<usize>, NnError> {
        let logits = self.forward(x)?;
        Ok((0..logits.rows())
            .map(|i| anole_tensor::argmax(logits.row(i)).expect("non-empty row"))
            .collect())
    }

    /// Workspace-backed batch forward for serving: stages `x` into `ws`,
    /// runs [`Mlp::forward_ws`], and returns the logits still owned by the
    /// workspace. Allocation-free once `ws` is warm for this model shape,
    /// and bit-identical to [`Mlp::forward`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputWidth`] when `x` has the wrong width.
    pub fn predict_batch<'w>(&self, x: &Matrix, ws: &'w mut Workspace) -> Result<&'w Matrix, NnError> {
        let main = &mut ws.main;
        main.x.copy_from(x);
        self.forward_ws(main)?;
        Ok(main.logits())
    }

    /// Workspace-backed [`Mlp::predict_proba`]: row-wise softmax of the
    /// logits, written into the workspace's inference buffer. Bit-identical
    /// to the allocating path and allocation-free once warm.
    ///
    /// # Examples
    ///
    /// ```
    /// use anole_nn::{Activation, Mlp, Workspace};
    /// use anole_tensor::{Matrix, Seed};
    ///
    /// let model = Mlp::builder(4).hidden(8, Activation::Relu).output(3).build(Seed(0));
    /// let x = Matrix::zeros(2, 4);
    /// let mut ws = Workspace::new();
    /// let from_ws = model.predict_proba_batch(&x, &mut ws)?.clone();
    /// assert_eq!(from_ws, model.predict_proba(&x)?);
    /// # Ok::<(), anole_nn::NnError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputWidth`] when `x` has the wrong width.
    pub fn predict_proba_batch<'w>(
        &self,
        x: &Matrix,
        ws: &'w mut Workspace,
    ) -> Result<&'w Matrix, NnError> {
        let main = &mut ws.main;
        main.x.copy_from(x);
        self.forward_ws(main)?;
        crate::softmax_into(main.logits(), &mut ws.infer_out);
        Ok(&ws.infer_out)
    }

    /// Workspace-backed element-wise sigmoid of the logits (the detector
    /// heads' activation), written into the workspace's inference buffer.
    /// Bit-identical to `sigmoid(&self.forward(x)?)` and allocation-free
    /// once warm.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputWidth`] when `x` has the wrong width.
    pub fn predict_sigmoid_batch<'w>(
        &self,
        x: &Matrix,
        ws: &'w mut Workspace,
    ) -> Result<&'w Matrix, NnError> {
        let main = &mut ws.main;
        main.x.copy_from(x);
        self.forward_ws(main)?;
        crate::sigmoid_into(main.logits(), &mut ws.infer_out);
        Ok(&ws.infer_out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> Mlp {
        Mlp::builder(3)
            .hidden(5, Activation::Relu)
            .hidden(4, Activation::Tanh)
            .output(2)
            .build(Seed(42))
    }

    #[test]
    fn builder_chains_widths() {
        let m = model();
        assert_eq!(m.input_dim(), 3);
        assert_eq!(m.output_dim(), 2);
        assert_eq!(m.embedding_dim(), 4);
        assert_eq!(m.layers().len(), 3);
        assert_eq!(m.parameter_count(), (3 * 5 + 5) + (5 * 4 + 4) + (4 * 2 + 2));
    }

    #[test]
    fn forward_and_cache_agree() {
        let m = model();
        let x = Matrix::random_normal(4, 3, 1.0, &mut rng_from_seed(Seed(1)));
        let plain = m.forward(&x).unwrap();
        let cache = m.forward_cached(&x).unwrap();
        assert_eq!(&plain, cache.output());
        assert_eq!(cache.inputs.len(), 3);
        assert_eq!(cache.inputs[0], x);
    }

    #[test]
    fn embed_matches_manual_prefix_forward() {
        let m = model();
        let x = Matrix::random_normal(2, 3, 1.0, &mut rng_from_seed(Seed(2)));
        let cache = m.forward_cached(&x).unwrap();
        let emb = m.embed(&x).unwrap();
        assert_eq!(emb, cache.activations[1]);
        assert_eq!(emb.cols(), m.embedding_dim());
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn full_network_gradient_check() {
        let m = model();
        let x = Matrix::random_normal(3, 3, 1.0, &mut rng_from_seed(Seed(3)));
        let labels = vec![0usize, 1, 0];
        let cache = m.forward_cached(&x).unwrap();
        let lv = crate::softmax_cross_entropy(cache.output(), &labels).unwrap();
        let grads = m.backward(&cache, &lv.d_logits).unwrap();

        let eps = 1e-2f32;
        // Check one weight in every layer.
        for layer_idx in 0..3 {
            let w_shape = m.layers()[layer_idx].weights().shape();
            let (wi, wj) = (w_shape.0 - 1, w_shape.1 - 1);

            let mut bump = Matrix::zeros(w_shape.0, w_shape.1);
            bump.set(wi, wj, eps);
            let mut mp = m.clone();
            mp.layers_mut()[layer_idx]
                .apply_update(&bump, &Matrix::zeros(1, w_shape.1))
                .unwrap();
            let mut mm = m.clone();
            mm.layers_mut()[layer_idx]
                .apply_update(&bump.scale(-1.0), &Matrix::zeros(1, w_shape.1))
                .unwrap();

            let fp = crate::softmax_cross_entropy(&mp.forward(&x).unwrap(), &labels)
                .unwrap()
                .loss;
            let fm = crate::softmax_cross_entropy(&mm.forward(&x).unwrap(), &labels)
                .unwrap()
                .loss;
            let numeric = (fp - fm) / (2.0 * eps);
            let analytic = grads[layer_idx].0.get(wi, wj);
            assert!(
                (numeric - analytic).abs() < 2e-2,
                "layer {layer_idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn frozen_prefix_guard() {
        let mut m = model();
        m.set_frozen_prefix(2);
        assert_eq!(m.frozen_prefix(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot freeze")]
    fn frozen_prefix_rejects_too_many() {
        let mut m = model();
        m.set_frozen_prefix(7);
    }

    #[test]
    fn classify_is_argmax_of_proba() {
        let m = model();
        let x = Matrix::random_normal(5, 3, 1.0, &mut rng_from_seed(Seed(4)));
        let proba = m.predict_proba(&x).unwrap();
        let classes = m.classify(&x).unwrap();
        for (i, &c) in classes.iter().enumerate() {
            assert_eq!(anole_tensor::argmax(proba.row(i)), Some(c));
        }
    }

    #[test]
    fn serde_round_trip_preserves_outputs() {
        let m = model();
        let json = serde_json::to_string(&m).unwrap();
        let back: Mlp = serde_json::from_str(&json).unwrap();
        let x = Matrix::random_normal(2, 3, 1.0, &mut rng_from_seed(Seed(5)));
        assert_eq!(m.forward(&x).unwrap(), back.forward(&x).unwrap());
    }

    #[test]
    fn wrong_input_width_is_reported() {
        let m = model();
        let err = m.forward(&Matrix::zeros(1, 7)).unwrap_err();
        assert!(matches!(err, NnError::InputWidth { expected: 3, actual: 7 }));
    }

    #[test]
    fn workspace_serving_paths_match_allocating_paths() {
        let m = model();
        let x = Matrix::random_normal(6, 3, 1.0, &mut rng_from_seed(Seed(9)));
        let mut ws = Workspace::new();
        let logits = m.forward(&x).unwrap();
        assert_eq!(m.predict_batch(&x, &mut ws).unwrap(), &logits);
        let proba = m.predict_proba(&x).unwrap();
        assert_eq!(m.predict_proba_batch(&x, &mut ws).unwrap(), &proba);
        let sig = crate::sigmoid(&logits);
        assert_eq!(m.predict_sigmoid_batch(&x, &mut ws).unwrap(), &sig);
    }

    #[test]
    fn one_workspace_serves_models_of_different_shapes() {
        let a = model();
        let b = Mlp::builder(5)
            .hidden(7, Activation::Relu)
            .output(4)
            .build(Seed(11));
        let xa = Matrix::random_normal(2, 3, 1.0, &mut rng_from_seed(Seed(12)));
        let xb = Matrix::random_normal(3, 5, 1.0, &mut rng_from_seed(Seed(13)));
        let mut ws = Workspace::new();
        for _ in 0..2 {
            let pa = a.predict_proba(&xa).unwrap();
            assert_eq!(a.predict_proba_batch(&xa, &mut ws).unwrap(), &pa);
            let pb = b.predict_proba(&xb).unwrap();
            assert_eq!(b.predict_proba_batch(&xb, &mut ws).unwrap(), &pb);
        }
    }

    #[test]
    fn workspace_serving_reports_wrong_width() {
        let m = model();
        let mut ws = Workspace::new();
        let err = m.predict_batch(&Matrix::zeros(1, 7), &mut ws).unwrap_err();
        assert!(matches!(err, NnError::InputWidth { expected: 3, actual: 7 }));
    }
}
