//! FLOP and weight accounting (paper Table II).
//!
//! The simulated networks in this reproduction are far smaller than the CNNs
//! the paper deploys, so each trained model carries a *reference profile*
//! describing the paper-scale model it stands in for. The device simulator
//! prices latency, memory, and energy from the reference profile, keeping
//! Tables II/IV and Figures 4/11 at the paper's scale, while accuracy comes
//! from the actually-trained simulated network.

use serde::{Deserialize, Serialize};

/// The paper-scale model class a simulated network stands in for
/// (paper Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReferenceModel {
    /// YOLOv3-tiny — the compressed per-scene detectors.
    Yolov3Tiny,
    /// ResNet18 — the scene encoder `M_scene`.
    Resnet18,
    /// Two-layer MLP — the decision model `M_decision`.
    DecisionMlp,
    /// Full YOLOv3 — the deep baseline (SDM).
    Yolov3,
}

impl ReferenceModel {
    /// All reference models in Table II order.
    pub const ALL: [ReferenceModel; 4] = [
        ReferenceModel::Yolov3Tiny,
        ReferenceModel::Resnet18,
        ReferenceModel::DecisionMlp,
        ReferenceModel::Yolov3,
    ];

    /// Display name used in regenerated tables.
    pub fn name(&self) -> &'static str {
        match self {
            ReferenceModel::Yolov3Tiny => "YOLOv3-tiny",
            ReferenceModel::Resnet18 => "Resnet18",
            ReferenceModel::DecisionMlp => "MLP",
            ReferenceModel::Yolov3 => "YOLOv3",
        }
    }

    /// Role string as printed in Table II.
    pub fn role(&self) -> &'static str {
        match self {
            ReferenceModel::Yolov3Tiny => "Compress model",
            ReferenceModel::Resnet18 => "M_scene",
            ReferenceModel::DecisionMlp => "M_decision",
            ReferenceModel::Yolov3 => "Deep model",
        }
    }

    /// Forward-pass FLOPs per frame (Table II, "FLOPS" column).
    pub fn flops(&self) -> u64 {
        match self {
            ReferenceModel::Yolov3Tiny => 5_560_000_000,
            ReferenceModel::Resnet18 => 4_690_000_000,
            ReferenceModel::DecisionMlp => 3_600_000,
            ReferenceModel::Yolov3 => 65_860_000_000,
        }
    }

    /// Serialized weight size in bytes (Table II, "Weights" column).
    pub fn weight_bytes(&self) -> u64 {
        const MB: u64 = 1_000_000;
        match self {
            ReferenceModel::Yolov3Tiny => 34 * MB,
            ReferenceModel::Resnet18 => 44 * MB,
            ReferenceModel::DecisionMlp => 935_000,
            ReferenceModel::Yolov3 => 237 * MB,
        }
    }

    /// Resident GPU memory during batch-1 inference in bytes
    /// (Table IV, "Execution" column; the deep model also dominates there).
    pub fn execution_bytes(&self) -> u64 {
        const MB: u64 = 1_000_000;
        match self {
            ReferenceModel::Yolov3Tiny => 1_120 * MB,
            ReferenceModel::Resnet18 | ReferenceModel::DecisionMlp => 584 * MB,
            ReferenceModel::Yolov3 => 1_730 * MB,
        }
    }
}

impl std::fmt::Display for ReferenceModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Cost profile of a deployable model: what the device simulator prices.
///
/// `simulated_*` fields describe the network actually trained in this
/// reproduction; `reference` pins the paper-scale class used for latency,
/// memory, and energy accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Paper-scale class this model stands in for.
    pub reference: ReferenceModel,
    /// FLOPs of the simulated network's forward pass.
    pub simulated_flops: u64,
    /// Parameter bytes of the simulated network.
    pub simulated_weight_bytes: u64,
}

impl ModelProfile {
    /// Builds a profile for a simulated network standing in for `reference`.
    pub fn new(reference: ReferenceModel, simulated_flops: u64, simulated_weight_bytes: u64) -> Self {
        Self {
            reference,
            simulated_flops,
            simulated_weight_bytes,
        }
    }

    /// Builds a profile straight from a trained [`Mlp`](crate::Mlp).
    pub fn of_mlp(reference: ReferenceModel, mlp: &crate::Mlp) -> Self {
        Self::new(reference, mlp.flops_per_sample(), mlp.weight_bytes())
    }

    /// FLOPs used for device pricing (the reference scale).
    pub fn flops(&self) -> u64 {
        self.reference.flops()
    }

    /// Weight bytes used for device pricing (the reference scale).
    pub fn weight_bytes(&self) -> u64 {
        self.reference.weight_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, Mlp};
    use anole_tensor::Seed;

    #[test]
    fn table_ii_flops_ratio_holds() {
        // The paper highlights that YOLOv3 is ~10x the FLOPs of the tiny
        // model and ResNet18.
        let deep = ReferenceModel::Yolov3.flops() as f64;
        let tiny = ReferenceModel::Yolov3Tiny.flops() as f64;
        let resnet = ReferenceModel::Resnet18.flops() as f64;
        assert!(deep / tiny > 10.0);
        assert!(deep / resnet > 10.0);
    }

    #[test]
    fn decision_mlp_is_tiny() {
        assert!(ReferenceModel::DecisionMlp.flops() < ReferenceModel::Yolov3Tiny.flops() / 1000);
        assert!(ReferenceModel::DecisionMlp.weight_bytes() < 1_000_000);
    }

    #[test]
    fn names_and_roles_cover_all() {
        for m in ReferenceModel::ALL {
            assert!(!m.name().is_empty());
            assert!(!m.role().is_empty());
            assert!(m.flops() > 0);
            assert!(m.weight_bytes() > 0);
            assert!(m.execution_bytes() >= m.weight_bytes());
        }
    }

    #[test]
    fn profile_of_mlp_records_simulated_costs() {
        let mlp = Mlp::builder(16).hidden(8, Activation::Relu).output(4).build(Seed(0));
        let p = ModelProfile::of_mlp(ReferenceModel::Yolov3Tiny, &mlp);
        assert_eq!(p.simulated_flops, mlp.flops_per_sample());
        assert_eq!(p.simulated_weight_bytes, mlp.weight_bytes());
        assert_eq!(p.flops(), ReferenceModel::Yolov3Tiny.flops());
    }
}
