//! Zero-allocation contract of the training hot path.
//!
//! Runs only with `--features alloc-count`: this binary installs the
//! counting global allocator and measures training differentially. Two fits
//! on a warm [`Workspace`] that differ only in epoch count must allocate the
//! *same* number of times — the per-fit allocations (index order vector,
//! epoch-loss vector, optimizer state warm-up) cancel, so any difference
//! would be a per-batch allocation in the inner loop. With E vs E+4 epochs
//! over many mini-batches each, equality proves the steady-state loop never
//! touches the heap.
//!
//! Threads are pinned to 1: spawning scoped workers allocates on the
//! spawning thread by design, so the zero-alloc contract covers the serial
//! hot path (the parallel path allocates only thread scaffolding).
#![cfg(feature = "alloc-count")]

use anole_nn::alloc_count::{measure, CountingAllocator};
use anole_nn::{Activation, Mlp, TrainConfig, Trainer, Workspace};
use anole_tensor::{rng_from_seed, set_parallel_config, Matrix, ParallelConfig, Seed};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn dataset(n: usize, dim: usize, classes: usize) -> (Matrix, Vec<usize>, Matrix) {
    let mut rng = rng_from_seed(Seed(80));
    let x = Matrix::random_normal(n, dim, 1.0, &mut rng);
    let labels: Vec<usize> = (0..n).map(|i| i % classes).collect();
    let mut targets = Matrix::zeros(n, classes);
    for (i, &l) in labels.iter().enumerate() {
        targets.set(i, l, 1.0);
    }
    (x, labels, targets)
}

fn build_model() -> Mlp {
    Mlp::builder(7)
        .hidden(10, Activation::Relu)
        .output(3)
        .build(Seed(81))
}

fn classifier_allocs(epochs: usize, batch_size: usize, ws: &mut Workspace, x: &Matrix, y: &[usize]) -> u64 {
    let mut model = build_model();
    let trainer = Trainer::new(TrainConfig {
        epochs,
        batch_size,
        ..TrainConfig::default()
    });
    let (result, allocs) = measure(|| trainer.fit_classifier_ws(&mut model, x, y, Seed(82), ws));
    result.unwrap();
    allocs
}

fn multilabel_allocs(epochs: usize, batch_size: usize, ws: &mut Workspace, x: &Matrix, t: &Matrix) -> u64 {
    let mut model = build_model();
    let trainer = Trainer::new(TrainConfig {
        epochs,
        batch_size,
        ..TrainConfig::default()
    });
    let (result, allocs) = measure(|| trainer.fit_multilabel_ws(&mut model, x, t, Seed(82), ws));
    result.unwrap();
    allocs
}

#[test]
fn warm_workspace_serving_allocates_nothing() {
    set_parallel_config(ParallelConfig {
        threads: 1,
        ..ParallelConfig::default()
    });
    let (x, _, _) = dataset(64, 7, 3);
    let model = build_model();
    let mut ws = Workspace::new();

    // Warm up every buffer the serving paths touch, then the steady state
    // must be allocation-free no matter how many calls follow.
    model.predict_proba_batch(&x, &mut ws).unwrap();
    model.predict_sigmoid_batch(&x, &mut ws).unwrap();
    let (_, allocs) = measure(|| {
        for _ in 0..8 {
            model.predict_batch(&x, &mut ws).unwrap();
            model.predict_proba_batch(&x, &mut ws).unwrap();
            model.predict_sigmoid_batch(&x, &mut ws).unwrap();
        }
    });
    assert_eq!(allocs, 0, "warm workspace serving allocated {allocs} times");

    // The allocating reference path really does hit the heap, so the
    // counter is live and the workspace variant is a measured win.
    let (_, ref_allocs) = measure(|| {
        model.predict_proba(&x).unwrap();
    });
    assert!(ref_allocs > 0, "reference path should allocate");
}

#[test]
fn steady_state_mini_batches_allocate_nothing() {
    set_parallel_config(ParallelConfig {
        threads: 1,
        ..ParallelConfig::default()
    });
    let (x, labels, targets) = dataset(200, 7, 3);

    // Classic path (batch 25 < 2 * GRAD_CHUNK_ROWS) and chunked path
    // (batch 160), for both a gather-labels and a gather-targets loss.
    for batch_size in [25usize, 160] {
        let mut ws = Workspace::new();
        classifier_allocs(2, batch_size, &mut ws, &x, &labels); // warm-up
        let base = classifier_allocs(2, batch_size, &mut ws, &x, &labels);
        assert!(base > 0, "counting allocator is not measuring");
        let longer = classifier_allocs(6, batch_size, &mut ws, &x, &labels);
        assert_eq!(
            longer, base,
            "classifier batch={batch_size}: 4 extra epochs allocated {} extra times",
            longer as i64 - base as i64
        );

        let mut ws = Workspace::new();
        multilabel_allocs(2, batch_size, &mut ws, &x, &targets); // warm-up
        let base = multilabel_allocs(2, batch_size, &mut ws, &x, &targets);
        let longer = multilabel_allocs(6, batch_size, &mut ws, &x, &targets);
        assert_eq!(
            longer, base,
            "multilabel batch={batch_size}: 4 extra epochs allocated {} extra times",
            longer as i64 - base as i64
        );
    }
}
