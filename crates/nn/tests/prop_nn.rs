//! Property-based tests of the neural-network substrate.

use anole_nn::{
    bce_with_logits, bce_with_logits_into, sigmoid, soft_cross_entropy, soft_cross_entropy_into,
    softmax, softmax_cross_entropy, softmax_cross_entropy_into, Activation, Mlp,
};
use anole_tensor::{Matrix, Seed};
use proptest::prelude::*;

fn logits_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-8.0f32..8.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data).expect("sized"))
}

proptest! {
    /// Softmax rows are probability distributions for any finite logits.
    #[test]
    fn softmax_rows_are_distributions(logits in logits_strategy(4, 6)) {
        let p = softmax(&logits);
        for i in 0..p.rows() {
            let sum: f32 = p.row(i).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(p.row(i).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    /// Softmax is invariant to per-row constant shifts.
    #[test]
    fn softmax_shift_invariance(logits in logits_strategy(3, 5), shift in -5.0f32..5.0) {
        let shifted = logits.map(|v| v + shift);
        let a = softmax(&logits);
        let b = softmax(&shifted);
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Cross-entropy is minimized (over labels) at the argmax class.
    #[test]
    fn cross_entropy_prefers_argmax_label(logits in logits_strategy(1, 5)) {
        let best = anole_tensor::argmax(logits.row(0)).unwrap();
        let best_loss = softmax_cross_entropy(&logits, &[best]).unwrap().loss;
        for label in 0..5 {
            let loss = softmax_cross_entropy(&logits, &[label]).unwrap().loss;
            prop_assert!(best_loss <= loss + 1e-5);
        }
    }

    /// Soft cross-entropy against the softmax itself equals its entropy, the
    /// minimum over target distributions with the same support.
    #[test]
    fn soft_ce_gradient_zero_at_self(logits in logits_strategy(2, 4)) {
        let p = softmax(&logits);
        let lv = soft_cross_entropy(&logits, &p).unwrap();
        prop_assert!(lv.d_logits.max_abs() < 1e-5, "grad {}", lv.d_logits.max_abs());
    }

    /// Sigmoid outputs lie in (0, 1) and BCE loss is non-negative.
    #[test]
    fn bce_is_nonnegative(logits in logits_strategy(3, 4)) {
        let probs = sigmoid(&logits);
        prop_assert!(probs.iter().all(|&v| (0.0..=1.0).contains(&v)));
        let targets = logits.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
        let lv = bce_with_logits(&logits, &targets, 1.5).unwrap();
        prop_assert!(lv.loss >= 0.0);
    }

    /// Forward passes are deterministic and batch-consistent: stacking two
    /// batches equals concatenating their outputs.
    #[test]
    fn forward_is_batch_consistent(
        a in logits_strategy(2, 6),
        b in logits_strategy(3, 6),
        seed in 0u64..100,
    ) {
        let model = Mlp::builder(6).hidden(5, Activation::Tanh).output(3).build(Seed(seed));
        let out_a = model.forward(&a).unwrap();
        let out_b = model.forward(&b).unwrap();
        let stacked = Matrix::vstack(&[&a, &b]).unwrap();
        let out = model.forward(&stacked).unwrap();
        for i in 0..2 {
            for j in 0..3 {
                prop_assert!((out.get(i, j) - out_a.get(i, j)).abs() < 1e-5);
            }
        }
        for i in 0..3 {
            for j in 0..3 {
                prop_assert!((out.get(i + 2, j) - out_b.get(i, j)).abs() < 1e-5);
            }
        }
    }

    /// Gradients from backward() match finite differences on random nets.
    #[test]
    fn backward_matches_finite_difference(
        x in logits_strategy(2, 3),
        seed in 0u64..50,
        label in 0usize..2,
    ) {
        let model = Mlp::builder(3).hidden(4, Activation::Tanh).output(2).build(Seed(seed));
        let labels = [label, 1 - label];
        let cache = model.forward_cached(&x).unwrap();
        let lv = softmax_cross_entropy(cache.output(), &labels).unwrap();
        let grads = model.backward(&cache, &lv.d_logits).unwrap();

        // Probe one random-ish weight in the first layer.
        let eps = 1e-2f32;
        let (wi, wj) = (seed as usize % 3, (seed as usize / 3) % 4);
        let mut bump = Matrix::zeros(3, 4);
        bump.set(wi, wj, eps);
        let mut plus = model.clone();
        plus.layers_mut()[0].apply_update(&bump, &Matrix::zeros(1, 4)).unwrap();
        let mut minus = model.clone();
        minus.layers_mut()[0].apply_update(&bump.scale(-1.0), &Matrix::zeros(1, 4)).unwrap();
        let fp = softmax_cross_entropy(&plus.forward(&x).unwrap(), &labels).unwrap().loss;
        let fm = softmax_cross_entropy(&minus.forward(&x).unwrap(), &labels).unwrap().loss;
        let numeric = (fp - fm) / (2.0 * eps);
        prop_assert!((numeric - grads[0].0.get(wi, wj)).abs() < 5e-2);
    }

    /// The `_into` losses reuse a warm, wrong-shaped gradient buffer and must
    /// still match the allocating paths bit for bit (loss and gradient).
    #[test]
    fn into_losses_match_allocating_bitwise(
        logits in logits_strategy(4, 5),
        labels in proptest::collection::vec(0usize..5, 4),
        stale_rows in 0usize..7,
    ) {
        let mut d = Matrix::filled(stale_rows, 3, f32::NAN);
        let bits = |m: &Matrix| m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();

        let lv = softmax_cross_entropy(&logits, &labels).unwrap();
        let loss = softmax_cross_entropy_into(&logits, &labels, &mut d).unwrap();
        prop_assert_eq!(loss.to_bits(), lv.loss.to_bits());
        prop_assert_eq!(bits(&d), bits(&lv.d_logits));

        let targets = softmax(&logits);
        let lv = soft_cross_entropy(&logits, &targets).unwrap();
        let loss = soft_cross_entropy_into(&logits, &targets, &mut d).unwrap();
        prop_assert_eq!(loss.to_bits(), lv.loss.to_bits());
        prop_assert_eq!(bits(&d), bits(&lv.d_logits));

        let hard = logits.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
        let lv = bce_with_logits(&logits, &hard, 1.5).unwrap();
        let loss = bce_with_logits_into(&logits, &hard, 1.5, &mut d).unwrap();
        prop_assert_eq!(loss.to_bits(), lv.loss.to_bits());
        prop_assert_eq!(bits(&d), bits(&lv.d_logits));
    }

    /// Parameter/FLOP accounting is consistent with architecture arithmetic.
    #[test]
    fn accounting_matches_architecture(
        input in 1usize..16,
        hidden in 1usize..16,
        out in 1usize..8,
        seed in 0u64..20,
    ) {
        let model = Mlp::builder(input).hidden(hidden, Activation::Relu).output(out).build(Seed(seed));
        prop_assert_eq!(model.parameter_count(), input * hidden + hidden + hidden * out + out);
        prop_assert_eq!(model.weight_bytes(), model.parameter_count() as u64 * 4);
        prop_assert_eq!(
            model.flops_per_sample(),
            ((2 * input + 2) * hidden + (2 * hidden + 2) * out) as u64
        );
    }
}
