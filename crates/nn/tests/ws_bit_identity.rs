//! Bit-identity of the workspace-reusing training hot path against a
//! reference trainer reimplemented from the allocating public APIs.
//!
//! The reference loop below replays the historical trainer verbatim —
//! `select_rows` gathers, `forward_cached`, the allocating loss functions,
//! `Mlp::backward`, the round-based pairwise tree reduction, and
//! `Optimizer::step_reference` — using the same seed discipline. The real
//! trainer must match it bit for bit (`f32::to_bits`, not `==`) across loss
//! kinds, batch sizes (classic and chunked paths), optimizers, frozen
//! prefixes, and thread counts.

use anole_nn::{
    bce_with_logits, soft_cross_entropy, softmax_cross_entropy, Activation, LossValue, Mlp,
    OptimizerKind, TrainConfig, Trainer, Workspace, GRAD_CHUNK_ROWS,
};
use anole_tensor::{
    parallel_config, rng_from_seed, set_parallel_config, Matrix, ParallelConfig, Seed,
};
use rand::seq::SliceRandom;

#[derive(Clone, Copy)]
enum RefLoss<'a> {
    Hard(&'a [usize]),
    Soft(&'a Matrix),
    Multi(&'a Matrix, f32),
}

fn loss_of(logits: &Matrix, idx: &[usize], src: RefLoss<'_>) -> LossValue {
    match src {
        RefLoss::Hard(labels) => {
            let batch_labels: Vec<usize> = idx.iter().map(|&i| labels[i]).collect();
            softmax_cross_entropy(logits, &batch_labels).unwrap()
        }
        RefLoss::Soft(targets) => soft_cross_entropy(logits, &targets.select_rows(idx)).unwrap(),
        RefLoss::Multi(targets, pos_weight) => {
            bce_with_logits(logits, &targets.select_rows(idx), pos_weight).unwrap()
        }
    }
}

fn chunked_grads(
    model: &Mlp,
    x: &Matrix,
    batch_idx: &[usize],
    src: RefLoss<'_>,
) -> (f32, Vec<(Matrix, Matrix)>) {
    let batch_rows = batch_idx.len() as f32;
    let mut partials: Vec<(f32, Vec<(Matrix, Matrix)>)> = batch_idx
        .chunks(GRAD_CHUNK_ROWS)
        .map(|idx| {
            let bx = x.select_rows(idx);
            let cache = model.forward_cached(&bx).unwrap();
            let lv = loss_of(cache.output(), idx, src);
            let weight = idx.len() as f32 / batch_rows;
            let d_logits = lv.d_logits.scale(weight);
            let grads = model.backward(&cache, &d_logits).unwrap();
            (lv.loss * weight, grads)
        })
        .collect();
    // Round-based pairwise tree reduction, exactly as the historical trainer.
    while partials.len() > 1 {
        let mut next = Vec::with_capacity(partials.len().div_ceil(2));
        let mut it = partials.into_iter();
        while let Some(mut left) = it.next() {
            if let Some(right) = it.next() {
                left.0 += right.0;
                for ((lw, lb), (rw, rb)) in left.1.iter_mut().zip(right.1) {
                    *lw += &rw;
                    *lb += &rb;
                }
            }
            next.push(left);
        }
        partials = next;
    }
    partials.pop().unwrap()
}

/// The historical training loop, rebuilt on the allocating public APIs.
fn reference_fit(
    cfg: &TrainConfig,
    model: &mut Mlp,
    x: &Matrix,
    src: RefLoss<'_>,
    seed: Seed,
) -> Vec<f32> {
    let mut rng = rng_from_seed(seed);
    let mut optimizer = cfg.optimizer.build();
    let n = x.rows();
    let batch = cfg.batch_size.clamp(1, n);
    let mut order: Vec<usize> = (0..n).collect();
    let mut epoch_losses = Vec::new();
    for _ in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        let mut batches = 0;
        for chunk in order.chunks(batch) {
            let (loss, grads) = if chunk.len() >= 2 * GRAD_CHUNK_ROWS {
                chunked_grads(model, x, chunk, src)
            } else {
                let bx = x.select_rows(chunk);
                let cache = model.forward_cached(&bx).unwrap();
                let lv = loss_of(cache.output(), chunk, src);
                let grads = model.backward(&cache, &lv.d_logits).unwrap();
                (lv.loss, grads)
            };
            if cfg.weight_decay > 0.0 {
                let keep = 1.0 - cfg.weight_decay;
                let frozen = model.frozen_prefix();
                for layer in model.layers_mut().iter_mut().skip(frozen) {
                    layer.scale_parameters(keep);
                }
            }
            optimizer.step_reference(model, &grads).unwrap();
            epoch_loss += loss;
            batches += 1;
        }
        let mean = epoch_loss / batches.max(1) as f32;
        epoch_losses.push(mean);
        if cfg.target_loss > 0.0 && mean < cfg.target_loss {
            break;
        }
    }
    epoch_losses
}

fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn assert_bitwise_eq(a: &Mlp, b: &Mlp, context: &str) {
    for (i, (la, lb)) in a.layers().iter().zip(b.layers()).enumerate() {
        assert_eq!(bits(la.weights()), bits(lb.weights()), "{context}: layer {i} weights");
        assert_eq!(bits(la.bias()), bits(lb.bias()), "{context}: layer {i} bias");
    }
}

fn dataset(n: usize, dim: usize, classes: usize, seed: Seed) -> (Matrix, Vec<usize>, Matrix) {
    let mut rng = rng_from_seed(seed);
    let x = Matrix::random_normal(n, dim, 1.0, &mut rng);
    let labels: Vec<usize> = (0..n).map(|i| i % classes).collect();
    let mut targets = Matrix::zeros(n, classes);
    for (i, &l) in labels.iter().enumerate() {
        targets.set(i, l, 1.0);
    }
    (x, labels, targets)
}

fn build_model(dim: usize, classes: usize, seed: u64) -> Mlp {
    Mlp::builder(dim)
        .hidden(10, Activation::Relu)
        .hidden(6, Activation::Tanh)
        .output(classes)
        .build(Seed(seed))
}

#[test]
fn workspace_trainer_matches_reference_across_losses_batches_and_seeds() {
    let (x, labels, targets) = dataset(200, 7, 3, Seed(90));
    for seed in [5u64, 6] {
        // Batch 24 stays on the classic path; 160 engages chunked
        // accumulation (≥ 2 * GRAD_CHUNK_ROWS).
        for batch_size in [24usize, 160] {
            let cfg = TrainConfig {
                epochs: 3,
                batch_size,
                ..TrainConfig::default()
            };
            let cases: [(&str, RefLoss<'_>); 3] = [
                ("hard", RefLoss::Hard(&labels)),
                ("soft", RefLoss::Soft(&targets)),
                ("multi", RefLoss::Multi(&targets, 1.5)),
            ];
            for (name, src) in cases {
                let mut expect = build_model(7, 3, seed);
                let ref_losses = reference_fit(&cfg, &mut expect, &x, src, Seed(seed + 50));

                let mut got = build_model(7, 3, seed);
                let trainer = Trainer::new(TrainConfig {
                    pos_weight: 1.5,
                    ..cfg
                });
                let report = match src {
                    RefLoss::Hard(_) => trainer
                        .fit_classifier(&mut got, &x, &labels, Seed(seed + 50))
                        .unwrap(),
                    RefLoss::Soft(_) => trainer
                        .fit_soft_classifier(&mut got, &x, &targets, Seed(seed + 50))
                        .unwrap(),
                    RefLoss::Multi(..) => trainer
                        .fit_multilabel(&mut got, &x, &targets, Seed(seed + 50))
                        .unwrap(),
                };
                let ctx = format!("{name} seed={seed} batch={batch_size}");
                let got_bits: Vec<u32> = report.epoch_losses.iter().map(|v| v.to_bits()).collect();
                let ref_bits: Vec<u32> = ref_losses.iter().map(|v| v.to_bits()).collect();
                assert_eq!(got_bits, ref_bits, "{ctx}: epoch losses");
                assert_bitwise_eq(&got, &expect, &ctx);
            }
        }
    }
}

#[test]
fn workspace_trainer_matches_reference_across_thread_counts() {
    // The config is process-global, but every training path is
    // thread-count-invariant by contract, so concurrent tests mutating it
    // cannot perturb this one.
    let baseline = parallel_config();
    let (x, labels, _) = dataset(200, 7, 3, Seed(91));
    let cfg = TrainConfig {
        epochs: 3,
        batch_size: 160,
        optimizer: OptimizerKind::Sgd { lr: 0.05, momentum: 0.9 },
        weight_decay: 0.001,
        ..TrainConfig::default()
    };

    let mut expect = build_model(7, 3, 11);
    reference_fit(&cfg, &mut expect, &x, RefLoss::Hard(&labels), Seed(61));

    for threads in [1usize, 2, 4] {
        set_parallel_config(ParallelConfig {
            threads,
            tile: 32,
            min_par_elems: 1,
        });
        let mut got = build_model(7, 3, 11);
        Trainer::new(cfg)
            .fit_classifier(&mut got, &x, &labels, Seed(61))
            .unwrap();
        assert_bitwise_eq(&got, &expect, &format!("threads={threads}"));
    }
    set_parallel_config(baseline);
}

#[test]
fn workspace_trainer_matches_reference_with_frozen_prefix() {
    let (x, _, targets) = dataset(96, 7, 3, Seed(92));
    let cfg = TrainConfig {
        epochs: 4,
        batch_size: 32,
        ..TrainConfig::default()
    };

    let mut expect = build_model(7, 3, 13);
    expect.set_frozen_prefix(1);
    reference_fit(&cfg, &mut expect, &x, RefLoss::Soft(&targets), Seed(62));

    let mut got = build_model(7, 3, 13);
    got.set_frozen_prefix(1);
    let mut ws = Workspace::new();
    Trainer::new(cfg)
        .fit_soft_classifier_ws(&mut got, &x, &targets, Seed(62), &mut ws)
        .unwrap();
    assert_bitwise_eq(&got, &expect, "frozen prefix");
}
