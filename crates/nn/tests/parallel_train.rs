//! Bit-identity of chunked parallel gradient accumulation across thread
//! counts (threads ∈ {1, 2, 8}).
//!
//! Uses a batch ≥ `2 * GRAD_CHUNK_ROWS` so the chunked path engages, and the
//! full training loop (shuffling, optimizer state, weight decay) as the
//! observable: if any gradient bit differed the trained weights would
//! diverge.

use anole_nn::{Activation, Mlp, Trainer, TrainConfig};
use anole_tensor::{
    parallel_config, rng_from_seed, set_parallel_config, Matrix, ParallelConfig, Seed,
};

fn dataset(n: usize, dim: usize, classes: usize, seed: Seed) -> (Matrix, Vec<usize>) {
    let mut rng = rng_from_seed(seed);
    let x = Matrix::random_normal(n, dim, 1.0, &mut rng);
    let labels = (0..n).map(|i| i % classes).collect();
    (x, labels)
}

fn train_with_threads(threads: usize, x: &Matrix, labels: &[usize]) -> (Mlp, Vec<f32>) {
    set_parallel_config(ParallelConfig {
        threads,
        tile: 32,
        min_par_elems: 1,
    });
    let mut model = Mlp::builder(x.cols())
        .hidden(16, Activation::Relu)
        .output(4)
        .build(Seed(21));
    let report = Trainer::new(TrainConfig {
        epochs: 3,
        batch_size: 192, // ≥ 2 * GRAD_CHUNK_ROWS → chunked accumulation
        weight_decay: 0.001,
        ..TrainConfig::default()
    })
    .fit_classifier(&mut model, x, labels, Seed(22))
    .unwrap();
    (model, report.epoch_losses)
}

#[test]
fn chunked_grad_accumulation_is_bit_identical_across_threads() {
    let baseline = parallel_config();
    let (x, labels) = dataset(200, 8, 4, Seed(20));

    let (model_ref, losses_ref) = train_with_threads(1, &x, &labels);
    for threads in [2usize, 8] {
        let (model, losses) = train_with_threads(threads, &x, &labels);
        assert_eq!(losses, losses_ref, "epoch losses diverged at threads={threads}");
        assert_eq!(model, model_ref, "weights diverged at threads={threads}");
    }

    set_parallel_config(baseline);
}

#[test]
fn chunked_and_classic_paths_agree_when_batch_is_small() {
    // Batches below the chunking cutover must keep the exact historical
    // numerics regardless of the parallel configuration.
    let baseline = parallel_config();
    let (x, labels) = dataset(96, 6, 3, Seed(30));

    let mut runs = Vec::new();
    for threads in [1usize, 4] {
        set_parallel_config(ParallelConfig {
            threads,
            tile: 64,
            min_par_elems: 1,
        });
        let mut model = Mlp::builder(6)
            .hidden(8, Activation::Tanh)
            .output(3)
            .build(Seed(31));
        let report = Trainer::new(TrainConfig {
            epochs: 4,
            batch_size: 32,
            ..TrainConfig::default()
        })
        .fit_classifier(&mut model, &x, &labels, Seed(32))
        .unwrap();
        runs.push((model, report));
    }
    assert_eq!(runs[0], runs[1]);

    set_parallel_config(baseline);
}
