//! Confusion matrices for the scene encoder and decision model (Fig. 6).

use serde::{Deserialize, Serialize};

/// An `n × n` confusion matrix of integer counts: rows are true classes,
/// columns predicted classes.
///
/// # Examples
///
/// ```
/// let mut cm = anole_detect::ConfusionMatrix::new(2);
/// cm.record(0, 0);
/// cm.record(0, 1);
/// cm.record(1, 1);
/// assert!((cm.accuracy() - 2.0 / 3.0).abs() < 1e-6);
/// assert_eq!(cm.count(0, 1), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix over `classes` classes.
    pub fn new(classes: usize) -> Self {
        Self {
            classes,
            counts: vec![0; classes * classes],
        }
    }

    /// Builds a matrix from parallel true/predicted label slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or any label is out of range.
    pub fn from_labels(classes: usize, truth: &[usize], predicted: &[usize]) -> Self {
        assert_eq!(truth.len(), predicted.len(), "label count mismatch");
        let mut cm = Self::new(classes);
        for (&t, &p) in truth.iter().zip(predicted.iter()) {
            cm.record(t, p);
        }
        cm
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if either label is out of range.
    pub fn record(&mut self, truth: usize, predicted: usize) {
        assert!(truth < self.classes && predicted < self.classes, "label out of range");
        self.counts[truth * self.classes + predicted] += 1;
    }

    /// Count at `(truth, predicted)`.
    ///
    /// # Panics
    ///
    /// Panics if either label is out of range.
    pub fn count(&self, truth: usize, predicted: usize) -> u64 {
        assert!(truth < self.classes && predicted < self.classes, "label out of range");
        self.counts[truth * self.classes + predicted]
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy (diagonal mass / total); 0.0 when empty.
    pub fn accuracy(&self) -> f32 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let diag: u64 = (0..self.classes).map(|i| self.count(i, i)).sum();
        diag as f32 / total as f32
    }

    /// Row-normalized matrix: `P(predicted | true)`. Rows with no
    /// observations are all-zero.
    pub fn row_normalized(&self) -> Vec<Vec<f32>> {
        (0..self.classes)
            .map(|t| {
                let row_sum: u64 = (0..self.classes).map(|p| self.count(t, p)).sum();
                (0..self.classes)
                    .map(|p| {
                        if row_sum == 0 {
                            0.0
                        } else {
                            self.count(t, p) as f32 / row_sum as f32
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Per-class recall (diagonal of the row-normalized matrix).
    pub fn per_class_recall(&self) -> Vec<f32> {
        self.row_normalized()
            .iter()
            .enumerate()
            .map(|(i, row)| row[i])
            .collect()
    }

    /// Fraction of observations on the diagonal or one of the `band`
    /// nearest off-diagonals — useful for judging "near miss" structure.
    pub fn band_accuracy(&self, band: usize) -> f32 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let mut near = 0u64;
        for t in 0..self.classes {
            for p in 0..self.classes {
                if t.abs_diff(p) <= band {
                    near += self.count(t, p);
                }
            }
        }
        near as f32 / total as f32
    }
}

impl std::fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "confusion ({} classes, acc {:.3}):", self.classes, self.accuracy())?;
        let norm = self.row_normalized();
        for row in norm.iter().take(24) {
            write!(f, "  ")?;
            for v in row.iter().take(24) {
                write!(f, "{:5.2}", v)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let mut cm = ConfusionMatrix::new(3);
        cm.record(0, 0);
        cm.record(1, 2);
        cm.record(1, 2);
        assert_eq!(cm.count(1, 2), 2);
        assert_eq!(cm.total(), 3);
        assert!((cm.accuracy() - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn from_labels_matches_manual_recording() {
        let cm = ConfusionMatrix::from_labels(2, &[0, 1, 1], &[0, 1, 0]);
        assert_eq!(cm.count(0, 0), 1);
        assert_eq!(cm.count(1, 1), 1);
        assert_eq!(cm.count(1, 0), 1);
    }

    #[test]
    fn row_normalization_sums_to_one_or_zero() {
        let cm = ConfusionMatrix::from_labels(3, &[0, 0, 1], &[0, 1, 1]);
        let norm = cm.row_normalized();
        let sum0: f32 = norm[0].iter().sum();
        let sum2: f32 = norm[2].iter().sum();
        assert!((sum0 - 1.0).abs() < 1e-6);
        assert_eq!(sum2, 0.0);
    }

    #[test]
    fn per_class_recall_diagonal() {
        let cm = ConfusionMatrix::from_labels(2, &[0, 0, 1, 1], &[0, 1, 1, 1]);
        let recall = cm.per_class_recall();
        assert!((recall[0] - 0.5).abs() < 1e-6);
        assert!((recall[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn band_accuracy_grows_with_band() {
        let cm = ConfusionMatrix::from_labels(4, &[0, 1, 2, 3], &[1, 0, 3, 0]);
        assert!(cm.band_accuracy(0) <= cm.band_accuracy(1));
        assert!((cm.band_accuracy(1) - 0.75).abs() < 1e-6);
        assert_eq!(cm.band_accuracy(3), 1.0);
    }

    #[test]
    fn empty_matrix_metrics_are_zero() {
        let cm = ConfusionMatrix::new(4);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.band_accuracy(1), 0.0);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn record_rejects_out_of_range() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(2, 0);
    }

    #[test]
    fn display_shows_accuracy() {
        let cm = ConfusionMatrix::from_labels(2, &[0, 1], &[0, 1]);
        assert!(cm.to_string().contains("acc 1.000"));
    }
}
