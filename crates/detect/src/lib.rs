//! Detection task metrics for the Anole reproduction: grid-cell detection
//! counts, precision / recall / F1 (the paper's §VI-A4 metric), windowed F1
//! series, and confusion matrices (Fig. 6).
//!
//! Detectors in this reproduction predict per-grid-cell object occupancy;
//! a predicted-occupied cell that is truly occupied is a true positive, so
//! precision/recall/F1 behave exactly like box-level detection metrics at
//! the grid granularity.
//!
//! # Examples
//!
//! ```
//! use anole_detect::DetectionCounts;
//!
//! let mut counts = DetectionCounts::default();
//! counts.accumulate(&[true, true, false, false], &[true, false, true, false]);
//! assert_eq!((counts.true_positives, counts.false_positives, counts.false_negatives), (1, 1, 1));
//! assert!((counts.f1() - 0.5).abs() < 1e-6);
//! ```

mod confusion;
mod metrics;

pub use confusion::ConfusionMatrix;
pub use metrics::{threshold_probs, windowed_f1, DetectionCounts};
