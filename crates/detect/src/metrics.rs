//! Precision / recall / F1 over grid-cell detections.

use serde::{Deserialize, Serialize};

/// Accumulated detection outcomes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectionCounts {
    /// Predicted occupied, truly occupied.
    pub true_positives: u64,
    /// Predicted occupied, truly empty.
    pub false_positives: u64,
    /// Predicted empty, truly occupied.
    pub false_negatives: u64,
    /// Predicted empty, truly empty.
    pub true_negatives: u64,
}

impl DetectionCounts {
    /// Accumulates one frame's cell-wise predictions against ground truth.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn accumulate(&mut self, predicted: &[bool], truth: &[bool]) {
        assert_eq!(predicted.len(), truth.len(), "cell count mismatch");
        for (&p, &t) in predicted.iter().zip(truth.iter()) {
            match (p, t) {
                (true, true) => self.true_positives += 1,
                (true, false) => self.false_positives += 1,
                (false, true) => self.false_negatives += 1,
                (false, false) => self.true_negatives += 1,
            }
        }
    }

    /// Merges another set of counts into this one.
    pub fn merge(&mut self, other: &DetectionCounts) {
        self.true_positives += other.true_positives;
        self.false_positives += other.false_positives;
        self.false_negatives += other.false_negatives;
        self.true_negatives += other.true_negatives;
    }

    /// Precision `tp / (tp + fp)`; 0.0 when nothing was predicted positive.
    pub fn precision(&self) -> f32 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            0.0
        } else {
            self.true_positives as f32 / denom as f32
        }
    }

    /// Recall `tp / (tp + fn)`; 0.0 when nothing was truly positive.
    pub fn recall(&self) -> f32 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            0.0
        } else {
            self.true_positives as f32 / denom as f32
        }
    }

    /// F1 = `2pr / (p + r)` (paper §VI-A4); 0.0 when undefined.
    pub fn f1(&self) -> f32 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Total cells counted.
    pub fn total(&self) -> u64 {
        self.true_positives + self.false_positives + self.false_negatives + self.true_negatives
    }
}

impl std::fmt::Display for DetectionCounts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "P={:.3} R={:.3} F1={:.3} (tp={} fp={} fn={})",
            self.precision(),
            self.recall(),
            self.f1(),
            self.true_positives,
            self.false_positives,
            self.false_negatives
        )
    }
}

/// Thresholds per-cell probabilities into boolean detections.
///
/// # Examples
///
/// ```
/// let det = anole_detect::threshold_probs(&[0.9, 0.2, 0.5], 0.5);
/// assert_eq!(det, vec![true, false, true]);
/// ```
pub fn threshold_probs(probs: &[f32], threshold: f32) -> Vec<bool> {
    probs.iter().map(|&p| p >= threshold).collect()
}

/// F1 computed over consecutive windows of `window` frames, the paper's
/// "F1 score is calculated every ten frames" protocol (§VI-D). Each element
/// of `frames` is a `(predicted, truth)` cell-vector pair. A trailing
/// partial window is scored too.
///
/// # Panics
///
/// Panics if `window == 0`.
pub fn windowed_f1(frames: &[(Vec<bool>, Vec<bool>)], window: usize) -> Vec<f32> {
    assert!(window > 0, "window must be positive");
    frames
        .chunks(window)
        .map(|chunk| {
            let mut counts = DetectionCounts::default();
            for (pred, truth) in chunk {
                counts.accumulate(pred, truth);
            }
            counts.f1()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_scores_one() {
        let mut c = DetectionCounts::default();
        c.accumulate(&[true, false, true], &[true, false, true]);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.f1(), 1.0);
    }

    #[test]
    fn all_wrong_scores_zero() {
        let mut c = DetectionCounts::default();
        c.accumulate(&[true, false], &[false, true]);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn empty_everything_is_zero_not_nan() {
        let c = DetectionCounts::default();
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn known_f1_value() {
        // tp=2, fp=1, fn=1 → P=2/3, R=2/3, F1=2/3.
        let mut c = DetectionCounts::default();
        c.accumulate(&[true, true, true, false, false], &[true, true, false, true, false]);
        assert!((c.f1() - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn merge_equals_joint_accumulation() {
        let pred_a = [true, false, true];
        let truth_a = [true, true, false];
        let pred_b = [false, false, true];
        let truth_b = [false, true, true];

        let mut joint = DetectionCounts::default();
        joint.accumulate(&pred_a, &truth_a);
        joint.accumulate(&pred_b, &truth_b);

        let mut a = DetectionCounts::default();
        a.accumulate(&pred_a, &truth_a);
        let mut b = DetectionCounts::default();
        b.accumulate(&pred_b, &truth_b);
        a.merge(&b);
        assert_eq!(a, joint);
    }

    #[test]
    fn threshold_is_inclusive() {
        assert_eq!(threshold_probs(&[0.5], 0.5), vec![true]);
        assert_eq!(threshold_probs(&[0.4999], 0.5), vec![false]);
    }

    #[test]
    fn windowed_f1_scores_each_window() {
        let perfect = (vec![true, false], vec![true, false]);
        let wrong = (vec![true, false], vec![false, true]);
        let frames = vec![perfect.clone(), perfect.clone(), wrong.clone(), wrong.clone()];
        let series = windowed_f1(&frames, 2);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0], 1.0);
        assert_eq!(series[1], 0.0);
    }

    #[test]
    fn windowed_f1_handles_partial_tail() {
        let perfect = (vec![true], vec![true]);
        let series = windowed_f1(&[perfect.clone(), perfect.clone(), perfect], 2);
        assert_eq!(series.len(), 2);
        assert_eq!(series[1], 1.0);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn windowed_f1_rejects_zero_window() {
        let _ = windowed_f1(&[], 0);
    }

    #[test]
    #[should_panic(expected = "cell count mismatch")]
    fn accumulate_rejects_length_mismatch() {
        let mut c = DetectionCounts::default();
        c.accumulate(&[true], &[true, false]);
    }

    #[test]
    fn display_mentions_scores() {
        let mut c = DetectionCounts::default();
        c.accumulate(&[true], &[true]);
        let text = c.to_string();
        assert!(text.contains("F1=1.000"));
    }
}
