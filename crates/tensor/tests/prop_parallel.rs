//! Bit-identity properties of the parallel/tiled matrix kernels.
//!
//! The determinism contract (see `docs/performance.md`) promises that every
//! `threads`/`tile` setting produces bit-identical results for all three
//! matmul variants. These tests pin the global [`ParallelConfig`] to a
//! baseline, capture reference products, then sweep threads ∈ {1, 2, 8} and
//! assorted tile sizes with the parallel cutover forced to zero so the
//! threaded code path actually runs, comparing with exact `==`.
//!
//! The whole sweep lives in one `#[test]` per property because the config is
//! process-global: proptest's own shrinking loop plus Rust's threaded test
//! runner would otherwise interleave config writes. Interleaving is *safe*
//! (that is the point of the contract) but would make a failure harder to
//! attribute, so the sweep is kept single-owner here and `serial_guard`
//! serializes the two tests.

use std::sync::{Mutex, MutexGuard, OnceLock};

use anole_tensor::{
    parallel_config, rng_from_seed, set_parallel_config, Matrix, ParallelConfig, Seed,
};

fn serial_guard() -> MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    GUARD
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Shapes chosen to exercise ragged tiles (not multiples of any tile size),
/// degenerate rows/columns, and sizes larger than one thread chunk.
const SHAPES: &[(usize, usize, usize)] = &[
    (1, 1, 1),
    (3, 5, 2),
    (17, 9, 13),
    (33, 47, 29),
    (64, 64, 64),
    (70, 1, 70),
];

fn cases(rows: usize, inner: usize, cols: usize) -> Vec<(Matrix, Matrix)> {
    let mut rng = rng_from_seed(Seed(0xC0FFEE ^ (rows * 1_000_003 + inner * 1_009 + cols) as u64));
    let dense_a = Matrix::random_normal(rows, inner, 1.0, &mut rng);
    let dense_b = Matrix::random_normal(inner, cols, 1.0, &mut rng);
    // A mostly-zero left operand drives the kernels down the sparse path.
    let sparse_a = dense_a.map(|v| if v < 0.35 { 0.0 } else { v });
    vec![(dense_a, dense_b.clone()), (sparse_a, dense_b)]
}

#[test]
fn matmul_variants_are_bit_identical_across_threads_and_tiles() {
    let _guard = serial_guard();
    let baseline = parallel_config();

    for &(rows, inner, cols) in SHAPES {
        for (case, (a, b)) in cases(rows, inner, cols).into_iter().enumerate() {
            // Reference: serial run under the default configuration.
            set_parallel_config(ParallelConfig {
                threads: 1,
                ..ParallelConfig::default()
            });
            let nn_ref = a.matmul(&b).unwrap();
            let tn_ref = a.matmul_tn(&b).unwrap();
            let nt_ref = a.matmul_nt(&b.transpose()).unwrap();
            let t_ref = a.transpose();

            for threads in [1usize, 2, 8] {
                for tile in [4usize, 7, 64, 1024] {
                    set_parallel_config(ParallelConfig {
                        threads,
                        tile,
                        min_par_elems: 1,
                    });
                    let label = format!(
                        "{rows}x{inner}x{cols} case={case} threads={threads} tile={tile}"
                    );
                    assert_eq!(a.matmul(&b).unwrap(), nn_ref, "matmul {label}");
                    assert_eq!(a.matmul_tn(&b).unwrap(), tn_ref, "matmul_tn {label}");
                    assert_eq!(
                        a.matmul_nt(&b.transpose()).unwrap(),
                        nt_ref,
                        "matmul_nt {label}"
                    );
                    assert_eq!(a.transpose(), t_ref, "transpose {label}");
                }
            }
        }
    }

    set_parallel_config(baseline);
}

#[test]
fn sparse_and_dense_paths_agree_on_finite_data() {
    let _guard = serial_guard();
    let baseline = parallel_config();
    set_parallel_config(ParallelConfig {
        threads: 2,
        tile: 16,
        min_par_elems: 1,
    });

    // Exactly at / around the sparsity threshold the kernel may pick either
    // path; on finite data both must agree bitwise because x + 0.0·b == x.
    let mut rng = rng_from_seed(Seed(99));
    let b = Matrix::random_normal(12, 10, 1.0, &mut rng);
    for zero_fraction in [0.0f32, 0.2, 0.25, 0.3, 0.9] {
        let mut a = Matrix::random_normal(9, 12, 1.0, &mut rng);
        let total = a.len();
        for idx in 0..((total as f32 * zero_fraction) as usize) {
            let (r, c) = (idx / a.cols(), idx % a.cols());
            a.set(r, c, 0.0);
        }
        // Dense reference computed by hand in the same i-k-j ascending order.
        let mut want = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for k in 0..a.cols() {
                let a_ik = a.get(i, k);
                for j in 0..b.cols() {
                    if a_ik != 0.0 {
                        want.set(i, j, want.get(i, j) + a_ik * b.get(k, j));
                    }
                }
            }
        }
        let got = a.matmul(&b).unwrap();
        assert_eq!(got, want, "zero_fraction={zero_fraction}");
    }

    set_parallel_config(baseline);
}
