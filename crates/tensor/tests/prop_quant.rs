//! Properties of the int8 quantization path: round-trip error bounds,
//! closeness of the i8 matmul to its f32 reference, and bit-identity across
//! every `threads`/`tile` setting.
//!
//! The i8 kernel accumulates in exact `i32` arithmetic, so — unlike the f32
//! kernels, which only promise identity for a pinned addition order — its
//! bit-identity sweep also checks exact equality against a naive scalar
//! reference computed here by hand. As in `prop_parallel.rs`, the sweeps
//! live in single `#[test]`s and `serial_guard` serializes them because
//! [`ParallelConfig`] is process-global.

use std::sync::{Mutex, MutexGuard, OnceLock};

use anole_tensor::{
    parallel_config, rng_from_seed, set_parallel_config, Matrix, ParallelConfig, QuantMatrix, Seed,
};

fn serial_guard() -> MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    GUARD
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Shapes chosen to exercise ragged tiles, degenerate rows/columns, odd k
/// (SIMD tail lanes), and sizes larger than one thread chunk.
const SHAPES: &[(usize, usize, usize)] = &[
    (1, 1, 1),
    (3, 5, 2),
    (17, 9, 13),
    (33, 47, 29),
    (64, 64, 64),
    (70, 1, 70),
    (5, 131, 3),
];

fn cases(rows: usize, inner: usize, cols: usize) -> Vec<(Matrix, Matrix)> {
    let mut rng = rng_from_seed(Seed(0x1_8BAD ^ (rows * 1_000_003 + inner * 1_009 + cols) as u64));
    let dense_a = Matrix::random_normal(rows, inner, 1.0, &mut rng);
    // NT shape: b is row-major over the shared k axis (inner columns).
    let dense_b = Matrix::random_normal(cols, inner, 1.0, &mut rng);
    // A mostly-zero left operand produces all-zero rows (scale 0) at small
    // shapes and exercises the clamp/round path near zero.
    let sparse_a = dense_a.map(|v| if v < 0.35 { 0.0 } else { v });
    vec![(dense_a, dense_b.clone()), (sparse_a, dense_b)]
}

fn max_abs_row(m: &Matrix, i: usize) -> f32 {
    m.row(i).iter().fold(0.0f32, |acc, v| acc.max(v.abs()))
}

#[test]
fn quantize_dequantize_round_trip_is_bounded_by_half_a_scale() {
    for &(rows, inner, _) in SHAPES {
        for (case, (a, _)) in cases(rows, inner, 1).into_iter().enumerate() {
            let q = QuantMatrix::quantize(&a);
            let back = q.dequantize();
            assert_eq!(back.rows(), a.rows());
            assert_eq!(back.cols(), a.cols());
            for i in 0..a.rows() {
                let scale = q.scales()[i];
                // scale = max_abs / 127 and values round to the nearest
                // step, so per-element error is at most scale / 2 (plus a
                // float-rounding whisker).
                let bound = scale / 2.0 + 1e-5 + scale * 1e-4;
                for j in 0..a.cols() {
                    let err = (back.get(i, j) - a.get(i, j)).abs();
                    assert!(
                        err <= bound,
                        "{rows}x{inner} case={case} ({i},{j}): err {err} > bound {bound}"
                    );
                }
                // An all-zero row must quantize to scale 0 exactly.
                if max_abs_row(&a, i) == 0.0 {
                    assert_eq!(scale, 0.0);
                }
            }
        }
    }
}

#[test]
fn matmul_i8_tracks_the_f32_product_within_quantization_error() {
    let _guard = serial_guard();
    let baseline = parallel_config();
    set_parallel_config(ParallelConfig {
        threads: 1,
        ..ParallelConfig::default()
    });

    for &(rows, inner, cols) in SHAPES {
        for (case, (a, b)) in cases(rows, inner, cols).into_iter().enumerate() {
            let aq = QuantMatrix::quantize(&a);
            let bq = QuantMatrix::quantize(&b);
            let got = aq.matmul_i8(&bq).unwrap();
            let want = a.matmul_nt(&b).unwrap();
            assert_eq!(got.shape(), want.shape());
            for i in 0..rows {
                for j in 0..cols {
                    // Per-element quantization error is ≤ scale/2, so the
                    // k-term dot drifts by at most
                    //   k · (max|a_i| · sb/2 + (max|b_j| + sb/2) · sa/2).
                    let (sa, sb) = (aq.scales()[i], bq.scales()[j]);
                    let (amax, bmax) = (max_abs_row(&a, i), max_abs_row(&b, j));
                    let tol =
                        inner as f32 * (amax * sb / 2.0 + (bmax + sb / 2.0) * sa / 2.0) + 1e-5;
                    let err = (got.get(i, j) - want.get(i, j)).abs();
                    assert!(
                        err <= tol,
                        "{rows}x{inner}x{cols} case={case} ({i},{j}): err {err} > tol {tol}"
                    );
                }
            }
        }
    }

    set_parallel_config(baseline);
}

#[test]
fn matmul_i8_is_bit_identical_across_threads_and_tiles() {
    let _guard = serial_guard();
    let baseline = parallel_config();

    for &(rows, inner, cols) in SHAPES {
        for (case, (a, b)) in cases(rows, inner, cols).into_iter().enumerate() {
            let aq = QuantMatrix::quantize(&a);
            let bq = QuantMatrix::quantize(&b);

            // Naive scalar reference: the exact i32 dot, dequantized the
            // same way the kernel does. Integer accumulation is exact, so
            // the kernel must match it bit for bit — including the runtime
            // SIMD path when the host has one.
            let mut want = Matrix::zeros(rows, cols);
            for i in 0..rows {
                for j in 0..cols {
                    let acc: i32 = aq
                        .row(i)
                        .iter()
                        .zip(bq.row(j))
                        .map(|(&x, &y)| i32::from(x) * i32::from(y))
                        .sum();
                    want.set(i, j, acc as f32 * aq.scales()[i] * bq.scales()[j]);
                }
            }

            for threads in [1usize, 2, 8] {
                for tile in [4usize, 7, 64, 1024] {
                    set_parallel_config(ParallelConfig {
                        threads,
                        tile,
                        min_par_elems: 1,
                    });
                    let label =
                        format!("{rows}x{inner}x{cols} case={case} threads={threads} tile={tile}");
                    assert_eq!(aq.matmul_i8(&bq).unwrap(), want, "matmul_i8 {label}");
                }
            }
        }
    }

    set_parallel_config(baseline);
}
