//! Property-based tests for the matrix kernels.

use anole_tensor::{argmax, cosine_similarity, empirical_cdf, l2_distance, Matrix};
use proptest::prelude::*;

fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data).expect("sized vec"))
}

fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// The historical `matmul_nt` kernel: per output element, a single
/// accumulator over ascending k of `a[i,k] * b[j,k]`.
fn naive_nt(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.rows());
    for i in 0..a.rows() {
        for j in 0..b.rows() {
            let mut acc = 0.0f32;
            for k in 0..a.cols() {
                acc += a.get(i, k) * b.get(j, k);
            }
            out.set(i, j, acc);
        }
    }
    out
}

proptest! {
    #[test]
    fn matmul_is_associative(
        a in matrix_strategy(3, 4),
        b in matrix_strategy(4, 2),
        c in matrix_strategy(2, 5),
    ) {
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        for (x, y) in left.iter().zip(right.iter()) {
            prop_assert!((x - y).abs() < 1e-2, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in matrix_strategy(3, 3),
        b in matrix_strategy(3, 3),
        c in matrix_strategy(3, 3),
    ) {
        let left = a.matmul(&(&b + &c)).unwrap();
        let right = &a.matmul(&b).unwrap() + &a.matmul(&c).unwrap();
        for (x, y) in left.iter().zip(right.iter()) {
            prop_assert!((x - y).abs() < 1e-2);
        }
    }

    #[test]
    fn transpose_swaps_matmul_order(a in matrix_strategy(3, 4), b in matrix_strategy(4, 2)) {
        let left = a.matmul(&b).unwrap().transpose();
        let right = b.transpose().matmul(&a.transpose()).unwrap();
        for (x, y) in left.iter().zip(right.iter()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn fused_transpose_kernels_agree(a in matrix_strategy(4, 3), b in matrix_strategy(4, 5)) {
        let fused = a.matmul_tn(&b).unwrap();
        let explicit = a.transpose().matmul(&b).unwrap();
        for (x, y) in fused.iter().zip(explicit.iter()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn l2_distance_satisfies_triangle_inequality(
        a in proptest::collection::vec(-100.0f32..100.0, 8),
        b in proptest::collection::vec(-100.0f32..100.0, 8),
        c in proptest::collection::vec(-100.0f32..100.0, 8),
    ) {
        let ab = l2_distance(&a, &b);
        let bc = l2_distance(&b, &c);
        let ac = l2_distance(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-3);
    }

    #[test]
    fn cosine_similarity_is_bounded(
        a in proptest::collection::vec(-100.0f32..100.0, 8),
        b in proptest::collection::vec(-100.0f32..100.0, 8),
    ) {
        let s = cosine_similarity(&a, &b);
        prop_assert!((-1.0 - 1e-4..=1.0 + 1e-4).contains(&s));
    }

    #[test]
    fn argmax_returns_a_maximum(values in proptest::collection::vec(-1e6f32..1e6, 1..64)) {
        let idx = argmax(&values).unwrap();
        for &v in &values {
            prop_assert!(values[idx] >= v);
        }
    }

    #[test]
    fn empirical_cdf_is_monotone(
        values in proptest::collection::vec(-1e4f32..1e4, 1..200),
        steps in 1usize..50,
    ) {
        let cdf = empirical_cdf(&values, steps);
        prop_assert_eq!(cdf.len(), steps);
        for w in cdf.windows(2) {
            prop_assert!(w[1].value >= w[0].value);
        }
        let max = values.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        prop_assert_eq!(cdf.last().unwrap().value, max);
    }

    #[test]
    fn scale_then_norm_scales_norm(m in matrix_strategy(4, 4), s in 0.0f32..10.0) {
        let scaled = m.scale(s);
        prop_assert!((scaled.frobenius_norm() - s * m.frobenius_norm()).abs() < 1e-1);
    }

    /// The `_into` kernels write into warm scratch without reading it: a
    /// buffer poisoned with NaN and a mismatched shape must yield results
    /// bit-identical to the allocating paths.
    #[test]
    fn into_kernels_ignore_stale_scratch(
        a in matrix_strategy(5, 4),
        b in matrix_strategy(4, 3),
        c in matrix_strategy(5, 6),
        stale_rows in 0usize..9,
        stale_cols in 0usize..9,
    ) {
        let mut out = Matrix::filled(stale_rows, stale_cols, f32::NAN);

        a.matmul_into(&b, &mut out).unwrap();
        prop_assert_eq!(bits(&out), bits(&a.matmul(&b).unwrap()));

        a.matmul_tn_into(&c, &mut out).unwrap();
        prop_assert_eq!(bits(&out), bits(&a.matmul_tn(&c).unwrap()));

        let mut rhs_t = Matrix::filled(stale_cols, stale_rows, f32::NAN);
        let bt = b.transpose();
        a.matmul_nt_into(&bt, &mut rhs_t, &mut out).unwrap();
        prop_assert_eq!(bits(&out), bits(&a.matmul_nt(&bt).unwrap()));

        a.transpose_into(&mut out);
        prop_assert_eq!(bits(&out), bits(&a.transpose()));
    }

    /// `matmul_nt` packs the right-hand side and reuses the tiled kernel,
    /// which must reproduce the historical row-dot kernel bit for bit.
    #[test]
    fn matmul_nt_matches_row_dot_reference(
        a in matrix_strategy(5, 6),
        b in matrix_strategy(4, 6),
    ) {
        let got = a.matmul_nt(&b).unwrap();
        prop_assert_eq!(bits(&got), bits(&naive_nt(&a, &b)));
    }

    /// The shared sparsity gate may skip zero lhs terms; skipping an exact
    /// zero can only flip the sign of a zero sum, so values (under `==`,
    /// which identifies -0.0 and 0.0) must survive a mostly-zero lhs.
    #[test]
    fn sparse_lhs_preserves_nt_values(
        a in matrix_strategy(6, 8),
        b in matrix_strategy(5, 8),
        mask in proptest::collection::vec(proptest::bool::weighted(0.8), 48),
    ) {
        let mut sparse = a.clone();
        for (i, zero) in mask.iter().enumerate() {
            if *zero {
                sparse.set(i / 8, i % 8, 0.0);
            }
        }
        let got = sparse.matmul_nt(&b).unwrap();
        let expect = naive_nt(&sparse, &b);
        for (x, y) in got.iter().zip(expect.iter()) {
            prop_assert_eq!(x, y);
        }
    }

    #[test]
    fn gather_rows_into_matches_select_rows(
        m in matrix_strategy(6, 5),
        idx in proptest::collection::vec(0usize..6, 1..12),
        stale_rows in 0usize..9,
    ) {
        let mut out = Matrix::filled(stale_rows, 2, f32::NAN);
        m.gather_rows_into(&idx, &mut out);
        prop_assert_eq!(bits(&out), bits(&m.select_rows(&idx)));
    }
}
