//! Property-based tests for the matrix kernels.

use anole_tensor::{argmax, cosine_similarity, empirical_cdf, l2_distance, Matrix};
use proptest::prelude::*;

fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data).expect("sized vec"))
}

proptest! {
    #[test]
    fn matmul_is_associative(
        a in matrix_strategy(3, 4),
        b in matrix_strategy(4, 2),
        c in matrix_strategy(2, 5),
    ) {
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        for (x, y) in left.iter().zip(right.iter()) {
            prop_assert!((x - y).abs() < 1e-2, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in matrix_strategy(3, 3),
        b in matrix_strategy(3, 3),
        c in matrix_strategy(3, 3),
    ) {
        let left = a.matmul(&(&b + &c)).unwrap();
        let right = &a.matmul(&b).unwrap() + &a.matmul(&c).unwrap();
        for (x, y) in left.iter().zip(right.iter()) {
            prop_assert!((x - y).abs() < 1e-2);
        }
    }

    #[test]
    fn transpose_swaps_matmul_order(a in matrix_strategy(3, 4), b in matrix_strategy(4, 2)) {
        let left = a.matmul(&b).unwrap().transpose();
        let right = b.transpose().matmul(&a.transpose()).unwrap();
        for (x, y) in left.iter().zip(right.iter()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn fused_transpose_kernels_agree(a in matrix_strategy(4, 3), b in matrix_strategy(4, 5)) {
        let fused = a.matmul_tn(&b).unwrap();
        let explicit = a.transpose().matmul(&b).unwrap();
        for (x, y) in fused.iter().zip(explicit.iter()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn l2_distance_satisfies_triangle_inequality(
        a in proptest::collection::vec(-100.0f32..100.0, 8),
        b in proptest::collection::vec(-100.0f32..100.0, 8),
        c in proptest::collection::vec(-100.0f32..100.0, 8),
    ) {
        let ab = l2_distance(&a, &b);
        let bc = l2_distance(&b, &c);
        let ac = l2_distance(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-3);
    }

    #[test]
    fn cosine_similarity_is_bounded(
        a in proptest::collection::vec(-100.0f32..100.0, 8),
        b in proptest::collection::vec(-100.0f32..100.0, 8),
    ) {
        let s = cosine_similarity(&a, &b);
        prop_assert!((-1.0 - 1e-4..=1.0 + 1e-4).contains(&s));
    }

    #[test]
    fn argmax_returns_a_maximum(values in proptest::collection::vec(-1e6f32..1e6, 1..64)) {
        let idx = argmax(&values).unwrap();
        for &v in &values {
            prop_assert!(values[idx] >= v);
        }
    }

    #[test]
    fn empirical_cdf_is_monotone(
        values in proptest::collection::vec(-1e4f32..1e4, 1..200),
        steps in 1usize..50,
    ) {
        let cdf = empirical_cdf(&values, steps);
        prop_assert_eq!(cdf.len(), steps);
        for w in cdf.windows(2) {
            prop_assert!(w[1].value >= w[0].value);
        }
        let max = values.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        prop_assert_eq!(cdf.last().unwrap().value, max);
    }

    #[test]
    fn scale_then_norm_scales_norm(m in matrix_strategy(4, 4), s in 0.0f32..10.0) {
        let scaled = m.scale(s);
        prop_assert!((scaled.frobenius_norm() - s * m.frobenius_norm()).abs() < 1e-1);
    }
}
