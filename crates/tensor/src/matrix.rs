//! Row-major dense `f32` matrix with the kernels the reproduction needs.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Error returned when matrix shapes are incompatible for an operation.
///
/// # Examples
///
/// ```
/// use anole_tensor::Matrix;
///
/// let a = Matrix::zeros(2, 3);
/// let b = Matrix::zeros(2, 3);
/// assert!(a.matmul(&b).is_err()); // inner dimensions 3 vs 2 disagree
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    op: &'static str,
    lhs: (usize, usize),
    rhs: (usize, usize),
}

impl ShapeError {
    /// Creates a shape error for operation `op` between shapes `lhs`/`rhs`.
    ///
    /// Public so downstream crates building fused kernels on raw slices can
    /// report mismatches with the same error type as the matrix operations.
    pub fn new(op: &'static str, lhs: (usize, usize), rhs: (usize, usize)) -> Self {
        Self { op, lhs, rhs }
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "incompatible shapes for {}: {}x{} vs {}x{}",
            self.op, self.lhs.0, self.lhs.1, self.rhs.0, self.rhs.1
        )
    }
}

impl std::error::Error for ShapeError {}

/// Fraction of exact zeros in the left operand above which the matmul kernels
/// use the skip-zero inner branch.
///
/// Post-ReLU activations are typically ≥ 50% zeros, where skipping a whole
/// inner row per zero pays handsomely; on dense data the branch is pure
/// misprediction overhead, so it is compiled in only when a cheap O(len) scan
/// (amortized against the O(rows·cols·n) product) says the matrix qualifies.
/// Both paths are bit-identical on finite data (`x + 0.0·b == x`), and the
/// choice depends only on the operand's contents — never on the thread count —
/// so determinism is preserved.
pub const SPARSE_SKIP_THRESHOLD: f32 = 0.25;

fn zero_fraction(data: &[f32]) -> f32 {
    if data.is_empty() {
        return 0.0;
    }
    let zeros = data.iter().filter(|&&v| v == 0.0).count();
    zeros as f32 / data.len() as f32
}

/// A row-major dense matrix of `f32` values.
///
/// `Matrix` is the workhorse of the reproduction: network activations,
/// weights, scene embeddings, and cluster centroids are all `Matrix` values.
/// Rows index samples, columns index features, matching the convention of the
/// neural-network crate.
///
/// # Examples
///
/// ```
/// use anole_tensor::Matrix;
///
/// let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0])?;
/// assert_eq!(m.get(1, 0), 3.0);
/// assert_eq!(m.row(1), &[3.0, 4.0]);
/// # Ok::<(), anole_tensor::ShapeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix of zeros with the given shape.
    ///
    /// # Examples
    ///
    /// ```
    /// let m = anole_tensor::Matrix::zeros(2, 3);
    /// assert_eq!(m.shape(), (2, 3));
    /// assert!(m.iter().all(|&v| v == 0.0));
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n`×`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError::new("from_vec", (rows, cols), (data.len(), 1)));
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the rows have differing lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Result<Self, ShapeError> {
        if rows.is_empty() {
            return Ok(Self::zeros(0, 0));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(ShapeError::new("from_rows", (rows.len(), cols), (1, r.len())));
            }
            data.extend_from_slice(r);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a single-row matrix from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Self {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Creates a matrix with entries drawn uniformly from `[lo, hi)`.
    pub fn random_uniform<R: Rng + ?Sized>(
        rows: usize,
        cols: usize,
        lo: f32,
        hi: f32,
        rng: &mut R,
    ) -> Self {
        let data = (0..rows * cols).map(|_| rng.gen_range(lo..hi)).collect();
        Self { rows, cols, data }
    }

    /// Creates a matrix with standard-normal entries scaled by `scale`.
    ///
    /// Uses the Box–Muller transform so the only dependency is a uniform RNG.
    pub fn random_normal<R: Rng + ?Sized>(
        rows: usize,
        cols: usize,
        scale: f32,
        rng: &mut R,
    ) -> Self {
        let n = rows * cols;
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * scale);
            if data.len() < n {
                data.push(r * theta.sin() * scale);
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows()` or `col >= cols()`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows()` or `col >= cols()`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Borrows row `row` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows()`.
    #[inline]
    pub fn row(&self, row: usize) -> &[f32] {
        assert!(row < self.rows, "row index out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutably borrows row `row` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows()`.
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        assert!(row < self.rows, "row index out of bounds");
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Iterates over all entries in row-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, f32> {
        self.data.iter()
    }

    /// Borrows the underlying row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the row-major data vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reshapes `self` to `rows`×`cols`, reusing the existing allocation.
    ///
    /// The resulting contents are **unspecified** (a mix of old values and
    /// zeros); callers must fully overwrite the matrix before reading it.
    /// This is the workhorse of the workspace-reuse pattern: once a scratch
    /// matrix has been grown to its steady-state size, reshaping it again is
    /// allocation-free because [`Vec::resize`] within capacity does not touch
    /// the allocator.
    pub fn resize_scratch(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Makes `self` a copy of `src`, reusing the existing allocation.
    pub fn copy_from(&mut self, src: &Matrix) {
        self.resize_scratch(src.rows, src.cols);
        self.data.copy_from_slice(&src.data);
    }

    /// Returns a new matrix holding the selected rows, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Self {
        let mut out = Self::default();
        self.gather_rows_into(indices, &mut out);
        out
    }

    /// Writes the selected rows, in order, into `out` (reusing its buffer).
    ///
    /// Allocation-free once `out` has reached its steady-state capacity; the
    /// trainer uses this instead of [`Matrix::select_rows`] so mini-batch
    /// gathers stop materialising a fresh matrix per step.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather_rows_into(&self, indices: &[usize], out: &mut Matrix) {
        out.resize_scratch(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
    }

    /// Stacks matrices vertically.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if column counts disagree.
    pub fn vstack(parts: &[&Matrix]) -> Result<Self, ShapeError> {
        let parts: Vec<&&Matrix> = parts.iter().filter(|m| m.rows > 0).collect();
        if parts.is_empty() {
            return Ok(Self::zeros(0, 0));
        }
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|m| m.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for m in parts {
            if m.cols != cols {
                return Err(ShapeError::new("vstack", (rows, cols), m.shape()));
            }
            data.extend_from_slice(&m.data);
        }
        Ok(Self { rows, cols, data })
    }

    /// Matrix product `self · rhs`.
    ///
    /// Cache-blocked i-k-j kernel: output rows are tiled, the shared `rhs`
    /// panel is re-streamed per k-block, and large products are row-partitioned
    /// across the [`crate::parallel_config`] thread pool. Each output element
    /// accumulates its `k` terms in ascending order into a single accumulator,
    /// so results are bit-identical for every `threads`/`tile` setting.
    ///
    /// When `self` is mostly zeros (≥ [`SPARSE_SKIP_THRESHOLD`], common for
    /// post-ReLU activations), zero entries skip their inner loop; on dense
    /// data the branch is elided entirely so it cannot mispredict.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, ShapeError> {
        let mut out = Matrix::default();
        self.matmul_into(rhs, &mut out)?;
        Ok(out)
    }

    /// [`Matrix::matmul`] writing into a caller-provided buffer.
    ///
    /// `out` is reshaped with [`Matrix::resize_scratch`] and fully
    /// overwritten, so the call is allocation-free once `out` has warm
    /// capacity. Results are bit-identical to [`Matrix::matmul`] — the
    /// allocating wrapper is this method on a fresh matrix.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `self.cols() != rhs.rows()`.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) -> Result<(), ShapeError> {
        if self.cols != rhs.rows {
            return Err(ShapeError::new("matmul", self.shape(), rhs.shape()));
        }
        out.resize_scratch(self.rows, rhs.cols);
        out.data.fill(0.0);
        if self.data.is_empty() || rhs.data.is_empty() {
            return Ok(());
        }
        let cfg = crate::parallel_config();
        let sparse = zero_fraction(&self.data) >= SPARSE_SKIP_THRESHOLD;
        let threads = cfg.threads_for(self.rows.saturating_mul(self.cols).saturating_mul(rhs.cols));
        let n = rhs.cols;
        crate::parallel::for_each_row_chunk(
            &mut out.data,
            n,
            self.rows,
            threads,
            |range, chunk| {
                let tile = cfg.tile;
                let kk = self.cols;
                for i0 in range.clone().step_by(tile) {
                    let i1 = (i0 + tile).min(range.end);
                    for k0 in (0..kk).step_by(tile) {
                        let k1 = (k0 + tile).min(kk);
                        for i in i0..i1 {
                            let a_row = &self.row(i)[k0..k1];
                            let out_row =
                                &mut chunk[(i - range.start) * n..(i - range.start + 1) * n];
                            for (k, &a_ik) in a_row.iter().enumerate() {
                                if sparse && a_ik == 0.0 {
                                    continue;
                                }
                                let b_row = rhs.row(k0 + k);
                                for (o, &b_kj) in out_row.iter_mut().zip(b_row.iter()) {
                                    *o += a_ik * b_kj;
                                }
                            }
                        }
                    }
                }
            },
        );
        Ok(())
    }

    /// Matrix product `selfᵀ · rhs` without materializing the transpose.
    ///
    /// Output rows (columns of `self`) are partitioned across threads; each
    /// thread streams `self` and `rhs` row-contiguously and touches only its
    /// own output rows, accumulating `k` terms in ascending order — the same
    /// determinism contract as [`Matrix::matmul`].
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `self.rows() != rhs.rows()`.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Result<Matrix, ShapeError> {
        let mut out = Matrix::default();
        self.matmul_tn_into(rhs, &mut out)?;
        Ok(out)
    }

    /// [`Matrix::matmul_tn`] writing into a caller-provided buffer.
    ///
    /// Same reshape-and-overwrite contract as [`Matrix::matmul_into`]:
    /// allocation-free with warm capacity, bit-identical to the allocating
    /// wrapper.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `self.rows() != rhs.rows()`.
    pub fn matmul_tn_into(&self, rhs: &Matrix, out: &mut Matrix) -> Result<(), ShapeError> {
        if self.rows != rhs.rows {
            return Err(ShapeError::new("matmul_tn", self.shape(), rhs.shape()));
        }
        out.resize_scratch(self.cols, rhs.cols);
        out.data.fill(0.0);
        if self.data.is_empty() || rhs.data.is_empty() {
            return Ok(());
        }
        let cfg = crate::parallel_config();
        let sparse = zero_fraction(&self.data) >= SPARSE_SKIP_THRESHOLD;
        let threads = cfg.threads_for(self.rows.saturating_mul(self.cols).saturating_mul(rhs.cols));
        let n = rhs.cols;
        crate::parallel::for_each_row_chunk(
            &mut out.data,
            n,
            self.cols,
            threads,
            |range, chunk| {
                for k in 0..self.rows {
                    let a_row = &self.row(k)[range.clone()];
                    let b_row = rhs.row(k);
                    for (i, &a_ki) in a_row.iter().enumerate() {
                        if sparse && a_ki == 0.0 {
                            continue;
                        }
                        let out_row = &mut chunk[i * n..(i + 1) * n];
                        for (o, &b_kj) in out_row.iter_mut().zip(b_row.iter()) {
                            *o += a_ki * b_kj;
                        }
                    }
                }
            },
        );
        Ok(())
    }

    /// Matrix product `self · rhsᵀ` without the caller materializing the
    /// transpose.
    ///
    /// Packs `rhsᵀ` into an internal scratch and runs the k-blocked
    /// [`Matrix::matmul`] kernel over it, so the backward-pass product gets
    /// the exact same tile treatment (and [`SPARSE_SKIP_THRESHOLD`]
    /// zero-fraction gate on `self`) as the forward kernel. The earlier
    /// blocked dot-product kernel streamed the full `k` extent per output
    /// element, which fell out of L1 for large `k` and its single-accumulator
    /// dependency chain defeated vectorisation — 4.3× slower than `matmul`
    /// at 256³. Packing costs one O(rows·cols) transpose against an
    /// O(rows·cols·n) product.
    ///
    /// Bit-identical to the previous kernel on dense operands: each output
    /// element still accumulates its `k` terms in ascending order into a
    /// single accumulator (a memory accumulator rounds identically to a
    /// register one when terms are added one at a time in the same order).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `self.cols() != rhs.cols()`.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Result<Matrix, ShapeError> {
        let mut rhs_t = Matrix::default();
        let mut out = Matrix::default();
        self.matmul_nt_into(rhs, &mut rhs_t, &mut out)?;
        Ok(out)
    }

    /// [`Matrix::matmul_nt`] writing into caller-provided buffers.
    ///
    /// `rhs_t` receives the packed transpose of `rhs` and `out` the product;
    /// both are reshaped with [`Matrix::resize_scratch`], so the call is
    /// allocation-free once they have warm capacity.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `self.cols() != rhs.cols()`.
    pub fn matmul_nt_into(
        &self,
        rhs: &Matrix,
        rhs_t: &mut Matrix,
        out: &mut Matrix,
    ) -> Result<(), ShapeError> {
        if self.cols != rhs.cols {
            return Err(ShapeError::new("matmul_nt", self.shape(), rhs.shape()));
        }
        rhs.transpose_into(rhs_t);
        self.matmul_into(rhs_t, out)
    }

    /// Returns the transpose.
    ///
    /// Blocked into `tile`×`tile` squares so both source reads and destination
    /// writes stay within a cache-resident window instead of striding the full
    /// matrix per element.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::default();
        self.transpose_into(&mut out);
        out
    }

    /// [`Matrix::transpose`] writing into a caller-provided buffer.
    pub fn transpose_into(&self, out: &mut Matrix) {
        out.resize_scratch(self.cols, self.rows);
        let tile = crate::parallel_config().tile;
        for i0 in (0..self.rows).step_by(tile) {
            let i1 = (i0 + tile).min(self.rows);
            for j0 in (0..self.cols).step_by(tile) {
                let j1 = (j0 + tile).min(self.cols);
                for i in i0..i1 {
                    for j in j0..j1 {
                        out.data[j * self.rows + i] = self.data[i * self.cols + j];
                    }
                }
            }
        }
    }

    /// Adds `row` (a 1×cols matrix, typically a bias) to every row.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `row` is not a single row of matching width.
    pub fn add_row_broadcast(&self, row: &Matrix) -> Result<Matrix, ShapeError> {
        let mut out = self.clone();
        out.add_row_broadcast_assign(row)?;
        Ok(out)
    }

    /// Adds `row` (a 1×cols matrix, typically a bias) to every row in place.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `row` is not a single row of matching width.
    pub fn add_row_broadcast_assign(&mut self, row: &Matrix) -> Result<(), ShapeError> {
        if row.rows != 1 || row.cols != self.cols {
            return Err(ShapeError::new("add_row_broadcast", self.shape(), row.shape()));
        }
        for i in 0..self.rows {
            let cols = self.cols;
            let r = &mut self.data[i * cols..(i + 1) * cols];
            for (o, &b) in r.iter_mut().zip(row.data.iter()) {
                *o += b;
            }
        }
        Ok(())
    }

    /// Sums the rows into a 1×cols matrix.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::default();
        self.sum_rows_into(&mut out);
        out
    }

    /// [`Matrix::sum_rows`] writing into a caller-provided 1×cols buffer.
    pub fn sum_rows_into(&self, out: &mut Matrix) {
        out.resize_scratch(1, self.cols);
        out.data.fill(0.0);
        for i in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row(i).iter()) {
                *o += v;
            }
        }
    }

    /// Applies `f` to every entry, returning a new matrix.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` to every entry in place.
    pub fn map_inplace<F: Fn(f32) -> f32>(&mut self, f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Element-wise product (Hadamard).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if shapes disagree.
    pub fn hadamard(&self, rhs: &Matrix) -> Result<Matrix, ShapeError> {
        if self.shape() != rhs.shape() {
            return Err(ShapeError::new("hadamard", self.shape(), rhs.shape()));
        }
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(&a, &b)| a * b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Multiplies every entry by `s`, returning a new matrix.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|v| v * s)
    }

    /// In-place `self += other * s` (AXPY).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if shapes disagree.
    pub fn axpy(&mut self, s: f32, other: &Matrix) -> Result<(), ShapeError> {
        if self.shape() != other.shape() {
            return Err(ShapeError::new("axpy", self.shape(), other.shape()));
        }
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += s * b;
        }
        Ok(())
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Maximum absolute entry, or 0.0 for an empty matrix.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }
}

impl Default for Matrix {
    fn default() -> Self {
        Self::zeros(0, 0)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.4}", self.get(i, j))?;
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    /// # Panics
    ///
    /// Panics if shapes disagree; use [`Matrix::axpy`] for a fallible variant.
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix addition shape mismatch");
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(&a, &b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    /// # Panics
    ///
    /// Panics if shapes disagree.
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix subtraction shape mismatch");
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(&a, &b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Mul<f32> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: f32) -> Matrix {
        self.scale(rhs)
    }
}

impl AddAssign<&Matrix> for Matrix {
    /// # Panics
    ///
    /// Panics if shapes disagree.
    fn add_assign(&mut self, rhs: &Matrix) {
        self.axpy(1.0, rhs).expect("matrix += shape mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_matmul_is_identity_map() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let id = Matrix::identity(3);
        assert_eq!(a.matmul(&id).unwrap(), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap());
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let err = a.matmul(&b).unwrap_err();
        assert!(err.to_string().contains("matmul"));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let a = Matrix::random_normal(4, 3, 1.0, &mut rng);
        let b = Matrix::random_normal(4, 5, 1.0, &mut rng);
        let fast = a.matmul_tn(&b).unwrap();
        let slow = a.transpose().matmul(&b).unwrap();
        for (x, y) in fast.iter().zip(slow.iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let a = Matrix::random_normal(4, 3, 1.0, &mut rng);
        let b = Matrix::random_normal(5, 3, 1.0, &mut rng);
        let fast = a.matmul_nt(&b).unwrap();
        let slow = a.matmul(&b.transpose()).unwrap();
        for (x, y) in fast.iter().zip(slow.iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_involution() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a = Matrix::random_uniform(3, 7, -1.0, 1.0, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_row_broadcast_adds_bias_to_each_row() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0]]).unwrap();
        let b = Matrix::row_vector(&[10.0, 20.0]);
        let c = a.add_row_broadcast(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[11.0, 21.0], &[12.0, 22.0]]).unwrap());
    }

    #[test]
    fn sum_rows_accumulates_columns() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        assert_eq!(a.sum_rows(), Matrix::row_vector(&[9.0, 12.0]));
    }

    #[test]
    fn select_rows_picks_in_order() {
        let a = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0]]).unwrap();
        let s = a.select_rows(&[2, 0]);
        assert_eq!(s, Matrix::from_rows(&[&[2.0], &[0.0]]).unwrap());
    }

    #[test]
    fn vstack_concatenates_rows() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let v = Matrix::vstack(&[&a, &b]).unwrap();
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn vstack_rejects_mismatched_columns() {
        let a = Matrix::zeros(1, 2);
        let b = Matrix::zeros(1, 3);
        assert!(Matrix::vstack(&[&a, &b]).is_err());
    }

    #[test]
    fn hadamard_multiplies_elementwise() {
        let a = Matrix::from_rows(&[&[2.0, 3.0]]).unwrap();
        let b = Matrix::from_rows(&[&[4.0, 5.0]]).unwrap();
        assert_eq!(a.hadamard(&b).unwrap(), Matrix::from_rows(&[&[8.0, 15.0]]).unwrap());
    }

    #[test]
    fn axpy_accumulates_scaled_matrix() {
        let mut a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a, Matrix::filled(2, 2, 2.0));
    }

    #[test]
    fn random_normal_has_roughly_unit_variance() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let m = Matrix::random_normal(100, 100, 1.0, &mut rng);
        let mean: f32 = m.iter().sum::<f32>() / m.len() as f32;
        let var: f32 = m.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / m.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn display_is_never_empty() {
        let rendered = format!("{}", Matrix::zeros(0, 0));
        assert!(!rendered.is_empty());
    }

    #[test]
    fn serde_round_trip() {
        let m = Matrix::from_rows(&[&[1.5, -2.5]]).unwrap();
        let json = serde_json::to_string(&m).unwrap();
        let back: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
