//! Dense `f32` matrices and deterministic randomness for the Anole reproduction.
//!
//! This crate is the numerical substrate shared by the neural-network,
//! clustering, and data-generation crates. It deliberately implements only
//! what the reproduction needs — row-major dense matrices, the handful of
//! BLAS-like kernels backing the MLP forward/backward passes, and seeded RNG
//! construction so every experiment in the repository is reproducible.
//!
//! # Examples
//!
//! ```
//! use anole_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
//! let b = Matrix::identity(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c, a);
//! # Ok::<(), anole_tensor::ShapeError>(())
//! ```

mod matrix;
pub mod parallel;
mod quant;
mod rng;
mod stats;

pub use matrix::{Matrix, ShapeError, SPARSE_SKIP_THRESHOLD};
pub use quant::{quantize_row, QuantMatrix, MAX_I8_DOT_LEN};
pub use parallel::{parallel_config, set_parallel_config, ParallelConfig};
pub use rng::{rng_from_seed, split_seed, Seed};
pub use stats::{argmax, cosine_similarity, empirical_cdf, l2_distance, mean, stddev, CdfPoint};
