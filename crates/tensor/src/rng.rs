//! Deterministic RNG construction shared across the workspace.
//!
//! Every experiment in the reproduction takes an explicit [`Seed`], and all
//! randomness flows from [`rng_from_seed`] / [`split_seed`]. This keeps the
//! regenerated tables and figures bit-stable across runs.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A 64-bit experiment seed.
///
/// Using a newtype rather than a bare `u64` keeps seed plumbing visible in
/// signatures and prevents accidentally passing a sample count as a seed.
///
/// # Examples
///
/// ```
/// use anole_tensor::{rng_from_seed, Seed};
/// use rand::Rng;
///
/// let mut a = rng_from_seed(Seed(7));
/// let mut b = rng_from_seed(Seed(7));
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub struct Seed(pub u64);

impl Default for Seed {
    /// The workspace-wide default experiment seed.
    fn default() -> Self {
        Seed(0xA_0_1_E) // "A01E" ~ Anole
    }
}

impl std::fmt::Display for Seed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "seed({})", self.0)
    }
}

impl From<u64> for Seed {
    fn from(v: u64) -> Self {
        Seed(v)
    }
}

/// Builds a [`StdRng`] from a seed.
pub fn rng_from_seed(seed: Seed) -> StdRng {
    StdRng::seed_from_u64(seed.0)
}

/// Derives an independent child seed from `(seed, stream)`.
///
/// Uses the SplitMix64 finalizer so nearby streams produce decorrelated
/// children; the same `(seed, stream)` pair always yields the same child.
///
/// # Examples
///
/// ```
/// use anole_tensor::{split_seed, Seed};
///
/// let train = split_seed(Seed(1), 0);
/// let eval = split_seed(Seed(1), 1);
/// assert_ne!(train, eval);
/// assert_eq!(train, split_seed(Seed(1), 0));
/// ```
pub fn split_seed(seed: Seed, stream: u64) -> Seed {
    let mut z = seed
        .0
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    Seed(z ^ (z >> 31))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rng_from_seed(Seed(5));
        let mut b = rng_from_seed(Seed(5));
        let xs: Vec<u32> = (0..10).map(|_| a.gen()).collect();
        let ys: Vec<u32> = (0..10).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = rng_from_seed(Seed(5));
        let mut b = rng_from_seed(Seed(6));
        let xs: Vec<u32> = (0..4).map(|_| a.gen()).collect();
        let ys: Vec<u32> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn split_is_deterministic_and_distinct() {
        let s = Seed(123);
        let children: Vec<Seed> = (0..16).map(|i| split_seed(s, i)).collect();
        for (i, a) in children.iter().enumerate() {
            assert_eq!(*a, split_seed(s, i as u64));
            for b in &children[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn default_seed_is_stable() {
        assert_eq!(Seed::default(), Seed::default());
        assert_eq!(format!("{}", Seed(3)), "seed(3)");
    }
}
