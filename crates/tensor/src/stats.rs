//! Small statistics helpers: means, CDFs, vector similarities.
//!
//! These back both the dataset-diversity figures (Fig. 5 of the paper plots
//! empirical CDFs of brightness/contrast/object statistics) and the
//! clustering / selection logic that compares embeddings.

use serde::{Deserialize, Serialize};

/// One point of an empirical CDF: `fraction` of samples are `<= value`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CdfPoint {
    /// Sample value at this step of the CDF.
    pub value: f32,
    /// Fraction of the population with value `<=` this point, in `(0, 1]`.
    pub fraction: f32,
}

/// Computes the empirical CDF of `values` at `steps` evenly spaced quantiles.
///
/// Returns an empty vector when `values` is empty or `steps == 0`.
///
/// # Examples
///
/// ```
/// let cdf = anole_tensor::empirical_cdf(&[1.0, 2.0, 3.0, 4.0], 4);
/// assert_eq!(cdf.len(), 4);
/// assert_eq!(cdf.last().unwrap().fraction, 1.0);
/// assert_eq!(cdf.last().unwrap().value, 4.0);
/// ```
pub fn empirical_cdf(values: &[f32], steps: usize) -> Vec<CdfPoint> {
    if values.is_empty() || steps == 0 {
        return Vec::new();
    }
    let mut sorted: Vec<f32> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = sorted.len();
    (1..=steps)
        .map(|s| {
            let fraction = s as f32 / steps as f32;
            let idx = ((fraction * n as f32).ceil() as usize).clamp(1, n) - 1;
            CdfPoint {
                value: sorted[idx],
                fraction,
            }
        })
        .collect()
}

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(values: &[f32]) -> f32 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f32>() / values.len() as f32
    }
}

/// Population standard deviation; 0.0 for an empty slice.
pub fn stddev(values: &[f32]) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m) * (v - m)).sum::<f32>() / values.len() as f32).sqrt()
}

/// Index of the maximum value, or `None` for an empty slice.
///
/// Ties resolve to the earliest index, which keeps model selection
/// deterministic when two models score identically.
///
/// # Examples
///
/// ```
/// assert_eq!(anole_tensor::argmax(&[0.1, 0.7, 0.7]), Some(1));
/// assert_eq!(anole_tensor::argmax(&[]), None);
/// ```
pub fn argmax(values: &[f32]) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &v) in values.iter().enumerate() {
        match best {
            Some((_, bv)) if v <= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Euclidean distance between two equal-length vectors.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn l2_distance(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "l2_distance length mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum::<f32>()
        .sqrt()
}

/// Cosine similarity in `[-1, 1]`; 0.0 when either vector is all-zero.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "cosine_similarity length mismatch");
    let dot: f32 = a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum();
    let na: f32 = a.iter().map(|v| v * v).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|v| v * v).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_is_monotone_and_ends_at_max() {
        let vals = [3.0, 1.0, 2.0, 5.0, 4.0];
        let cdf = empirical_cdf(&vals, 10);
        assert_eq!(cdf.len(), 10);
        for w in cdf.windows(2) {
            assert!(w[1].value >= w[0].value);
            assert!(w[1].fraction > w[0].fraction);
        }
        assert_eq!(cdf.last().unwrap().value, 5.0);
    }

    #[test]
    fn cdf_empty_inputs() {
        assert!(empirical_cdf(&[], 5).is_empty());
        assert!(empirical_cdf(&[1.0], 0).is_empty());
    }

    #[test]
    fn cdf_median_of_uniform() {
        let vals: Vec<f32> = (0..1000).map(|i| i as f32).collect();
        let cdf = empirical_cdf(&vals, 2);
        assert!((cdf[0].value - 499.0).abs() <= 1.0, "median {}", cdf[0].value);
    }

    #[test]
    fn mean_and_stddev_known_values() {
        let vals = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&vals) - 5.0).abs() < 1e-6);
        assert!((stddev(&vals) - 2.0).abs() < 1e-6);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stddev(&[]), 0.0);
    }

    #[test]
    fn argmax_prefers_earliest_tie() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), Some(1));
        assert_eq!(argmax(&[-5.0]), Some(0));
    }

    #[test]
    fn distances_behave() {
        assert!((l2_distance(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-6);
        assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((cosine_similarity(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-6);
        assert_eq!(cosine_similarity(&[0.0], &[1.0]), 0.0);
    }
}
