//! Workspace-wide parallel execution policy and deterministic helpers.
//!
//! Every parallel kernel in the workspace (matrix products, k-means
//! assignment, trainer gradient accumulation, repository fan-out) consults a
//! single process-global [`ParallelConfig`] so that tests and benchmarks can
//! pin the thread count in one place. The contract all consumers uphold:
//!
//! **Determinism.** Results are bit-identical for every `threads`/`tile`
//! setting. Parallel kernels only partition *output* elements across threads
//! (each output element is produced by exactly one thread, with the same
//! per-element floating-point accumulation order as the serial path), and
//! reductions always combine per-chunk partials whose boundaries depend only
//! on the problem shape — never on the thread count.
//!
//! The environment variable `ANOLE_THREADS` overrides the automatic thread
//! count when [`ParallelConfig::threads`] is `0` (auto); CI uses it to
//! exercise the parallel paths with `ANOLE_THREADS=2`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Tuning knobs for the parallel compute layer.
///
/// # Examples
///
/// ```
/// use anole_tensor::{parallel_config, set_parallel_config, ParallelConfig};
///
/// let previous = parallel_config();
/// set_parallel_config(ParallelConfig { threads: 1, ..previous });
/// assert_eq!(parallel_config().threads, 1);
/// set_parallel_config(previous);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads for partitioned kernels. `0` means auto: the
    /// `ANOLE_THREADS` environment variable if set, otherwise
    /// [`std::thread::available_parallelism`].
    pub threads: usize,
    /// Edge length of the cache blocks used by the tiled matrix kernels.
    pub tile: usize,
    /// Minimum number of multiply–accumulate operations (or equivalent work
    /// units) before a kernel fans out to threads; smaller jobs stay serial
    /// to avoid spawn overhead.
    pub min_par_elems: usize,
}

/// Default cache-block edge: 64×64 f32 tiles (16 KiB) fit comfortably in L1.
pub const DEFAULT_TILE: usize = 64;
/// Default serial/parallel cutover, in multiply–accumulate operations.
pub const DEFAULT_MIN_PAR_ELEMS: usize = 1 << 20;

impl Default for ParallelConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            tile: DEFAULT_TILE,
            min_par_elems: DEFAULT_MIN_PAR_ELEMS,
        }
    }
}

static THREADS: AtomicUsize = AtomicUsize::new(0);
static TILE: AtomicUsize = AtomicUsize::new(DEFAULT_TILE);
static MIN_PAR: AtomicUsize = AtomicUsize::new(DEFAULT_MIN_PAR_ELEMS);

/// Reads the current global parallel configuration.
pub fn parallel_config() -> ParallelConfig {
    ParallelConfig {
        threads: THREADS.load(Ordering::Relaxed),
        tile: TILE.load(Ordering::Relaxed),
        min_par_elems: MIN_PAR.load(Ordering::Relaxed),
    }
}

/// Replaces the global parallel configuration.
///
/// Because every consumer is bit-deterministic across thread counts, changing
/// this mid-run only affects performance, never results. `tile` is clamped to
/// at least 4 and `min_par_elems` to at least 1.
pub fn set_parallel_config(config: ParallelConfig) {
    THREADS.store(config.threads, Ordering::Relaxed);
    TILE.store(config.tile.max(4), Ordering::Relaxed);
    MIN_PAR.store(config.min_par_elems.max(1), Ordering::Relaxed);
}

fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("ANOLE_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&t| t > 0)
    })
}

impl ParallelConfig {
    /// Resolves `threads == 0` (auto) to a concrete worker count.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        env_threads().unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
    }

    /// Worker count for a job of `work` multiply–accumulates: 1 below the
    /// cutover, [`Self::effective_threads`] otherwise.
    pub fn threads_for(&self, work: usize) -> usize {
        if work < self.min_par_elems {
            1
        } else {
            self.effective_threads().max(1)
        }
    }
}

/// Runs `f` over `rows` logical rows of `out` (each `row_width` items wide),
/// partitioned into at most `threads` contiguous chunks.
///
/// `f` receives the row range it owns and the matching mutable sub-slice of
/// `out`. Each row is written by exactly one thread, so any `f` whose
/// per-row computation is self-contained is bit-identical across thread
/// counts. With `threads <= 1` everything runs on the caller's thread.
///
/// # Panics
///
/// Panics if `out.len() != rows * row_width` or a worker thread panics.
pub fn for_each_row_chunk<T, F>(out: &mut [T], row_width: usize, rows: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(std::ops::Range<usize>, &mut [T]) + Sync,
{
    assert_eq!(out.len(), rows * row_width, "output length mismatch");
    if rows == 0 {
        return;
    }
    let threads = threads.clamp(1, rows);
    if threads == 1 {
        anole_obs::counter_add!("tensor.parallel.serial_runs", 1);
        f(0..rows, out);
        return;
    }
    anole_obs::counter_add!("tensor.parallel.fanouts", 1);
    let chunk_rows = rows.div_ceil(threads);
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest = out;
        let mut row0 = 0usize;
        while row0 < rows {
            let row1 = (row0 + chunk_rows).min(rows);
            let (head, tail) = std::mem::take(&mut rest).split_at_mut((row1 - row0) * row_width);
            rest = tail;
            let range = row0..row1;
            scope.spawn(move || f(range, head));
            row0 = row1;
        }
    });
}

/// Like [`for_each_row_chunk`], but partitions `N` equally-shaped slices in
/// lockstep: `f` receives the row range it owns plus the matching mutable
/// sub-slice of every input.
///
/// This is what lets a fused optimizer update walk `[weights, moment1,
/// moment2]` in a single pass while still row-partitioning across threads —
/// every row of every slice is touched by exactly one thread, so per-element
/// computations stay bit-identical across thread counts. No allocation is
/// performed on any path.
///
/// # Panics
///
/// Panics if any slice's length differs from `rows * row_width` or a worker
/// thread panics.
pub fn for_each_row_chunk_n<T, F, const N: usize>(
    outs: [&mut [T]; N],
    row_width: usize,
    rows: usize,
    threads: usize,
    f: F,
) where
    T: Send,
    F: Fn(std::ops::Range<usize>, [&mut [T]; N]) + Sync,
{
    for o in &outs {
        assert_eq!(o.len(), rows * row_width, "output length mismatch");
    }
    if rows == 0 {
        return;
    }
    let threads = threads.clamp(1, rows);
    if threads == 1 {
        anole_obs::counter_add!("tensor.parallel.serial_runs", 1);
        f(0..rows, outs);
        return;
    }
    anole_obs::counter_add!("tensor.parallel.fanouts", 1);
    let chunk_rows = rows.div_ceil(threads);
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest = outs.map(Some);
        let mut row0 = 0usize;
        while row0 < rows {
            let row1 = (row0 + chunk_rows).min(rows);
            let split = (row1 - row0) * row_width;
            let mut heads: [Option<&mut [T]>; N] = [(); N].map(|_| None);
            for (slot, head) in rest.iter_mut().zip(heads.iter_mut()) {
                let (h, t) = slot.take().expect("slice consumed").split_at_mut(split);
                *head = Some(h);
                *slot = Some(t);
            }
            let heads = heads.map(|h| h.expect("head populated"));
            let range = row0..row1;
            scope.spawn(move || f(range, heads));
            row0 = row1;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_round_trips_through_globals() {
        let previous = parallel_config();
        set_parallel_config(ParallelConfig {
            threads: 3,
            tile: 16,
            min_par_elems: 10,
        });
        assert_eq!(
            parallel_config(),
            ParallelConfig {
                threads: 3,
                tile: 16,
                min_par_elems: 10
            }
        );
        set_parallel_config(previous);
    }

    #[test]
    fn set_clamps_degenerate_values() {
        let previous = parallel_config();
        set_parallel_config(ParallelConfig {
            threads: 0,
            tile: 0,
            min_par_elems: 0,
        });
        let cfg = parallel_config();
        assert!(cfg.tile >= 4);
        assert!(cfg.min_par_elems >= 1);
        set_parallel_config(previous);
    }

    #[test]
    fn threads_for_respects_cutover() {
        let cfg = ParallelConfig {
            threads: 8,
            tile: 64,
            min_par_elems: 100,
        };
        assert_eq!(cfg.threads_for(99), 1);
        assert_eq!(cfg.threads_for(100), 8);
    }

    #[test]
    fn explicit_threads_beat_auto() {
        let cfg = ParallelConfig {
            threads: 5,
            ..ParallelConfig::default()
        };
        assert_eq!(cfg.effective_threads(), 5);
        let auto = ParallelConfig::default();
        assert!(auto.effective_threads() >= 1);
    }

    #[test]
    fn row_chunks_cover_every_row_once() {
        for threads in [1usize, 2, 3, 8, 100] {
            let rows = 37;
            let width = 3;
            let mut out = vec![0u32; rows * width];
            for_each_row_chunk(&mut out, width, rows, threads, |range, chunk| {
                for (local, row) in range.clone().enumerate() {
                    for j in 0..width {
                        chunk[local * width + j] += (row * width + j) as u32 + 1;
                    }
                }
            });
            let expect: Vec<u32> = (1..=(rows * width) as u32).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn empty_output_is_a_no_op() {
        let mut out: Vec<f32> = Vec::new();
        for_each_row_chunk(&mut out, 4, 0, 8, |_, _| panic!("must not run"));
    }

    #[test]
    fn lockstep_chunks_cover_every_row_of_every_slice_once() {
        for threads in [1usize, 2, 3, 8, 100] {
            let rows = 37;
            let width = 3;
            let mut a = vec![0u32; rows * width];
            let mut b = vec![0u32; rows * width];
            for_each_row_chunk_n([&mut a, &mut b], width, rows, threads, |range, [ca, cb]| {
                for (local, row) in range.clone().enumerate() {
                    for j in 0..width {
                        ca[local * width + j] += (row * width + j) as u32 + 1;
                        cb[local * width + j] += 2 * ((row * width + j) as u32 + 1);
                    }
                }
            });
            let expect_a: Vec<u32> = (1..=(rows * width) as u32).collect();
            let expect_b: Vec<u32> = expect_a.iter().map(|v| 2 * v).collect();
            assert_eq!(a, expect_a, "threads={threads}");
            assert_eq!(b, expect_b, "threads={threads}");
        }
    }

    #[test]
    fn lockstep_empty_output_is_a_no_op() {
        let mut a: Vec<f32> = Vec::new();
        let mut b: Vec<f32> = Vec::new();
        for_each_row_chunk_n([&mut a, &mut b], 4, 0, 8, |_, _| panic!("must not run"));
    }
}
