//! Symmetric per-row int8 quantization and the `i8 × i8 → i32` matmul kernel.
//!
//! [`QuantMatrix`] stores a row-major `i8` payload plus one `f32` scale per
//! row (`scale = max_abs(row) / 127`, zero-point 0). Quantizing costs one
//! pass; dequantizing an element is `q * scale`, so the round-trip error is
//! bounded by `scale / 2` per element.
//!
//! The product kernel [`QuantMatrix::matmul_i8_into`] is the NT ("dot of
//! rows") shape: both operands are row-major over the shared `k` axis and
//! `out[i][j] = dot_i32(a.row(i), b.row(j)) * a_scale[i] * b_scale[j]`.
//! Accumulation is exact `i32` arithmetic, so — unlike the f32 kernels,
//! which must pin an addition order — *any* lane/tile/thread partitioning
//! yields bit-identical output. The kernel shares [`ParallelConfig`] with
//! the f32 kernels: rows partition across threads via
//! [`parallel::for_each_row_chunk`], columns tile by `cfg.tile` for B-row
//! reuse, and the k loop runs in unrolled lane blocks feeding independent
//! `i32` accumulators — `vpmaddwd` on AVX2 hosts (detected at runtime), a
//! 16-lane autovectorizable loop elsewhere, with identical bits either way.
//!
//! Overflow: each product is at most `127 · 127 = 16129`, so an `i32`
//! accumulator is safe for any `k ≤ 2³¹ / 16129 ≈ 133 000` — far beyond any
//! layer width in this repository. [`QuantMatrix::matmul_i8_into`] debug-
//! asserts the bound.
//!
//! [`ParallelConfig`]: crate::ParallelConfig

use serde::{Deserialize, Serialize};

use crate::matrix::{Matrix, ShapeError};
use crate::parallel::{self, parallel_config};

/// Largest shared dimension for which the `i32` accumulator cannot overflow.
pub const MAX_I8_DOT_LEN: usize = (i32::MAX / (127 * 127)) as usize;

/// Row-major `i8` matrix with one symmetric `f32` scale per row.
///
/// The dequantized value of element `(i, j)` is `data[i][j] as f32 *
/// scales[i]`. An all-zero row quantizes to scale 0 and an all-zero payload.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QuantMatrix {
    rows: usize,
    cols: usize,
    data: Vec<i8>,
    scales: Vec<f32>,
}

impl QuantMatrix {
    /// An all-zero quantized matrix (zero payload, zero scales).
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0; rows * cols],
            scales: vec![0.0; rows],
        }
    }

    /// Quantizes `m` with one symmetric scale per row.
    pub fn quantize(m: &Matrix) -> Self {
        let mut q = Self::zeros(m.rows(), m.cols());
        q.quantize_from(m);
        q
    }

    /// Re-quantizes `m` into `self`, reusing the existing payload buffers.
    ///
    /// Allocation-free once the buffers have grown to the largest shape seen
    /// — the serving-path analogue of [`Matrix::resize_scratch`].
    pub fn quantize_from(&mut self, m: &Matrix) {
        self.rows = m.rows();
        self.cols = m.cols();
        self.data.clear();
        self.data.resize(self.rows * self.cols, 0);
        self.scales.clear();
        self.scales.resize(self.rows, 0.0);
        for i in 0..self.rows {
            let row = m.row(i);
            let out = &mut self.data[i * self.cols..(i + 1) * self.cols];
            self.scales[i] = quantize_row(row, out);
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The `i8` payload of row `i`.
    pub fn row(&self, i: usize) -> &[i8] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Per-row symmetric scales (`len == rows`).
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Bytes of numeric payload: `rows·cols` i8 weights + `rows` f32 scales.
    ///
    /// This is the footprint the device memory model charges for a resident
    /// quantized matrix — ~4× smaller than the same matrix in f32.
    pub fn storage_bytes(&self) -> u64 {
        self.data.len() as u64 + 4 * self.scales.len() as u64
    }

    /// Dequantizes back to f32 (`q * row_scale`), allocating the output.
    pub fn dequantize(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        self.dequantize_into(&mut out);
        out
    }

    /// Dequantizes into `out`, resizing it as scratch.
    pub fn dequantize_into(&self, out: &mut Matrix) {
        out.resize_scratch(self.rows, self.cols);
        for i in 0..self.rows {
            let scale = self.scales[i];
            let src = self.row(i);
            for (dst, &q) in out.row_mut(i).iter_mut().zip(src) {
                *dst = q as f32 * scale;
            }
        }
    }

    /// `self · rhsᵀ` with i32 accumulation, dequantized on writeback.
    ///
    /// Both operands are row-major over the shared `k` axis (`self` is
    /// `m×k`, `rhs` is `n×k`, the result is `m×n`) — the same NT shape as
    /// [`Matrix::matmul_nt`], which is exactly what a dense layer needs when
    /// its weights are stored transposed.
    pub fn matmul_i8(&self, rhs: &QuantMatrix) -> Result<Matrix, ShapeError> {
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        self.matmul_i8_into(rhs, &mut out)?;
        Ok(out)
    }

    /// [`QuantMatrix::matmul_i8`] into a caller-owned output matrix.
    ///
    /// `out` is resized as scratch. Bit-identical for every
    /// `threads`/`tile` setting — and across the SIMD/scalar dot-product
    /// paths — because every accumulation is exact integer arithmetic.
    pub fn matmul_i8_into(&self, rhs: &QuantMatrix, out: &mut Matrix) -> Result<(), ShapeError> {
        if self.cols != rhs.cols {
            return Err(ShapeError::new("matmul_i8", self.shape(), rhs.shape()));
        }
        debug_assert!(self.cols <= MAX_I8_DOT_LEN, "k too large for i32 accumulation");
        let (m, k, n) = (self.rows, self.cols, rhs.rows);
        out.resize_scratch(m, n);
        let cfg = parallel_config();
        let tile = cfg.tile.max(1);
        let threads = cfg.threads_for(m * k * n);
        let use_simd = simd_dot_available();
        parallel::for_each_row_chunk(out.as_mut_slice(), n, m, threads, |range, chunk| {
            for (local, i) in range.enumerate() {
                let a_row = self.row(i);
                let a_scale = self.scales[i];
                let out_row = &mut chunk[local * n..(local + 1) * n];
                for j0 in (0..n).step_by(tile) {
                    let j1 = (j0 + tile).min(n);
                    for j in j0..j1 {
                        let acc = dot_i8(a_row, rhs.row(j), use_simd);
                        out_row[j] = acc as f32 * a_scale * rhs.scales[j];
                    }
                }
            }
        });
        Ok(())
    }
}

/// Quantizes one f32 row into `out`, returning the symmetric scale.
///
/// `scale = max_abs / 127`; values map through `round(v / scale)` clamped to
/// `[-127, 127]` (−128 is never produced, keeping the code symmetric). An
/// all-zero row gets scale 0 and an all-zero payload.
pub fn quantize_row(row: &[f32], out: &mut [i8]) -> f32 {
    assert_eq!(row.len(), out.len(), "quantize_row length mismatch");
    let max_abs = row.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    if max_abs == 0.0 {
        out.fill(0);
        return 0.0;
    }
    let scale = max_abs / 127.0;
    let inv = 127.0 / max_abs;
    for (dst, &v) in out.iter_mut().zip(row) {
        *dst = (v * inv).round().clamp(-127.0, 127.0) as i8;
    }
    scale
}

/// Whether the runtime CPU supports the vectorized i8 dot product.
///
/// Detected once per matmul call (the macro caches the cpuid probe), so the
/// per-dot dispatch is a branch on a local. The SIMD and scalar paths
/// produce identical bits — both are exact i32 arithmetic — so detection
/// never affects results, only speed.
fn simd_dot_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Exact i32 dot product of two i8 rows.
#[inline]
fn dot_i8(a: &[i8], b: &[i8], use_simd: bool) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    {
        if use_simd {
            // SAFETY: `use_simd` is only true when AVX2 was detected at
            // runtime by `simd_dot_available`.
            return unsafe { dot_i8_avx2(a, b) };
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = use_simd;
    dot_i8_scalar(a, b)
}

/// Portable fallback: sixteen independent lane accumulators with explicit
/// i16 intermediate products keep the multiply–accumulate autovectorizable;
/// integer addition is associative, so the lane split never changes the
/// result.
#[inline]
fn dot_i8_scalar(a: &[i8], b: &[i8]) -> i32 {
    let mut acc = [0i32; 16];
    let mut ca = a.chunks_exact(16);
    let mut cb = b.chunks_exact(16);
    for (av, bv) in (&mut ca).zip(&mut cb) {
        for l in 0..16 {
            acc[l] += (av[l] as i16 as i32) * (bv[l] as i16 as i32);
        }
    }
    let mut sum: i32 = acc.iter().sum();
    for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
        sum += x as i32 * y as i32;
    }
    sum
}

/// AVX2 dot product: `vpmovsxbw` widening loads feeding `vpmaddwd`
/// (8 exact i16×i16→i32 multiply–pair–adds per instruction) into two
/// independent 256-bit i32 accumulators. Every operation is exact integer
/// arithmetic, so the result is bit-identical to [`dot_i8_scalar`].
///
/// # Safety
///
/// The caller must have verified AVX2 support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_i8_avx2(a: &[i8], b: &[i8]) -> i32 {
    use std::arch::x86_64::*;
    let k = a.len();
    let mut acc0 = _mm256_setzero_si256();
    let mut acc1 = _mm256_setzero_si256();
    let mut t = 0;
    while t + 32 <= k {
        let av0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(a.as_ptr().add(t) as *const __m128i));
        let bv0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(b.as_ptr().add(t) as *const __m128i));
        let av1 = _mm256_cvtepi8_epi16(_mm_loadu_si128(a.as_ptr().add(t + 16) as *const __m128i));
        let bv1 = _mm256_cvtepi8_epi16(_mm_loadu_si128(b.as_ptr().add(t + 16) as *const __m128i));
        acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(av0, bv0));
        acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(av1, bv1));
        t += 32;
    }
    while t + 16 <= k {
        let av = _mm256_cvtepi8_epi16(_mm_loadu_si128(a.as_ptr().add(t) as *const __m128i));
        let bv = _mm256_cvtepi8_epi16(_mm_loadu_si128(b.as_ptr().add(t) as *const __m128i));
        acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(av, bv));
        t += 16;
    }
    let acc = _mm256_add_epi32(acc0, acc1);
    let halves = _mm_add_epi32(_mm256_extracti128_si256(acc, 1), _mm256_castsi256_si128(acc));
    let mut lanes = [0i32; 4];
    _mm_storeu_si128(lanes.as_mut_ptr() as *mut __m128i, halves);
    let mut sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    while t < k {
        sum += a[t] as i32 * b[t] as i32;
        t += 1;
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::set_parallel_config;
    use crate::rng::{rng_from_seed, Seed};
    use crate::ParallelConfig;

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = rng_from_seed(Seed(seed));
        Matrix::random_normal(rows, cols, 1.0, &mut rng)
    }

    fn naive_i8(a: &QuantMatrix, b: &QuantMatrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.rows());
        for i in 0..a.rows() {
            for j in 0..b.rows() {
                let mut acc = 0i32;
                for k in 0..a.cols() {
                    acc += a.row(i)[k] as i32 * b.row(j)[k] as i32;
                }
                out.set(i, j, acc as f32 * a.scales()[i] * b.scales()[j]);
            }
        }
        out
    }

    #[test]
    fn round_trip_error_is_bounded_per_row() {
        let m = random_matrix(7, 13, 11);
        let q = QuantMatrix::quantize(&m);
        let back = q.dequantize();
        for i in 0..m.rows() {
            let bound = q.scales()[i] * 0.5 + 1e-6;
            for j in 0..m.cols() {
                assert!(
                    (m.get(i, j) - back.get(i, j)).abs() <= bound,
                    "({i},{j}) err {} > {bound}",
                    (m.get(i, j) - back.get(i, j)).abs()
                );
            }
        }
    }

    #[test]
    fn zero_row_quantizes_to_zero_scale() {
        let m = Matrix::zeros(3, 5);
        let q = QuantMatrix::quantize(&m);
        assert_eq!(q.scales(), &[0.0, 0.0, 0.0]);
        assert_eq!(q.dequantize(), m);
    }

    #[test]
    fn matmul_i8_matches_naive_reference() {
        let a = QuantMatrix::quantize(&random_matrix(9, 33, 1));
        let b = QuantMatrix::quantize(&random_matrix(6, 33, 2));
        let got = a.matmul_i8(&b).unwrap();
        assert_eq!(got, naive_i8(&a, &b));
    }

    #[test]
    fn matmul_i8_bit_identical_across_threads_and_tiles() {
        let a = QuantMatrix::quantize(&random_matrix(17, 40, 3));
        let b = QuantMatrix::quantize(&random_matrix(11, 40, 4));
        let base = a.matmul_i8(&b).unwrap();
        for (threads, tile) in [(1, 3), (2, 8), (4, 64), (3, 1)] {
            set_parallel_config(ParallelConfig {
                threads,
                tile,
                min_par_elems: 1,
            });
            let got = a.matmul_i8(&b).unwrap();
            set_parallel_config(ParallelConfig::default());
            assert_eq!(got, base, "threads={threads} tile={tile}");
        }
    }

    #[test]
    fn simd_and_scalar_dots_agree_exactly() {
        // Ragged lengths exercise the 32/16/remainder tail split.
        for len in [0usize, 1, 7, 8, 15, 16, 31, 32, 33, 63, 100, 257] {
            let a = QuantMatrix::quantize(&random_matrix(1, len.max(1), len as u64 + 20));
            let b = QuantMatrix::quantize(&random_matrix(1, len.max(1), len as u64 + 300));
            let (ar, br) = (&a.row(0)[..len], &b.row(0)[..len]);
            let scalar = dot_i8_scalar(ar, br);
            assert_eq!(dot_i8(ar, br, simd_dot_available()), scalar, "len={len}");
            let naive: i32 = ar.iter().zip(br).map(|(&x, &y)| x as i32 * y as i32).sum();
            assert_eq!(scalar, naive, "len={len}");
        }
    }

    #[test]
    fn matmul_i8_rejects_mismatched_k() {
        let a = QuantMatrix::quantize(&random_matrix(2, 3, 5));
        let b = QuantMatrix::quantize(&random_matrix(2, 4, 6));
        assert!(a.matmul_i8(&b).is_err());
    }

    #[test]
    fn quantize_from_reuses_buffers() {
        let big = random_matrix(8, 16, 7);
        let small = random_matrix(2, 4, 8);
        let mut q = QuantMatrix::quantize(&big);
        q.quantize_from(&small);
        assert_eq!(q.shape(), (2, 4));
        assert_eq!(q, QuantMatrix::quantize(&small));
    }

    #[test]
    fn storage_bytes_is_quarter_of_f32() {
        let q = QuantMatrix::quantize(&random_matrix(16, 64, 9));
        // 16·64 i8 + 16 f32 scales vs 16·64 f32.
        assert_eq!(q.storage_bytes(), 16 * 64 + 16 * 4);
        assert!(q.storage_bytes() * 3 < 16 * 64 * 4);
    }
}
