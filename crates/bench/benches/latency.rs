//! Micro-benchmarks of the device simulator (Tables I/IV, Figs. 4a/11):
//! latency sampling, power evaluation, and the unstable uplink.

use anole_device::{
    DeviceKind, LatencyModel, PowerMode, PowerModel, UnstableLink, UnstableLinkConfig,
};
use anole_nn::ReferenceModel;
use anole_tensor::{rng_from_seed, Seed};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_latency_sampling(c: &mut Criterion) {
    let lm = LatencyModel::for_device(DeviceKind::JetsonTx2Nx);
    let mut rng = rng_from_seed(Seed(5));
    c.bench_function("latency_sample_tiny", |b| {
        b.iter(|| black_box(lm.inference_ms(ReferenceModel::Yolov3Tiny, &mut rng)))
    });
    c.bench_function("latency_cold_start_trace_20", |b| {
        b.iter(|| black_box(lm.cold_start_trace(ReferenceModel::Yolov3, 20, &mut rng)))
    });
}

fn bench_power_evaluation(c: &mut Criterion) {
    let pm = PowerModel::for_device(DeviceKind::JetsonTx2Nx);
    let pipeline = [
        ReferenceModel::Resnet18,
        ReferenceModel::DecisionMlp,
        ReferenceModel::Yolov3Tiny,
    ];
    let modes = PowerMode::tx2_modes();
    c.bench_function("power_evaluate_anole_all_modes", |b| {
        b.iter(|| {
            for &mode in &modes {
                black_box(pm.evaluate(&pipeline, mode));
            }
        })
    });
}

fn bench_unstable_link(c: &mut Criterion) {
    c.bench_function("unstable_link_round_trip", |b| {
        let mut link = UnstableLink::new(UnstableLinkConfig::default());
        let mut rng = rng_from_seed(Seed(6));
        b.iter(|| black_box(link.round_trip_ms(200_000, &mut rng)))
    });
}

criterion_group!(benches, bench_latency_sampling, bench_power_evaluation, bench_unstable_link);
criterion_main!(benches);
