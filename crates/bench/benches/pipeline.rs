//! Macro-benchmarks of the pipelines: a full online-inference step, clip
//! generation, clustering, and (small-scale) offline profiling.

use anole_bench::{Context, Scale};
use anole_cluster::KMeans;
use anole_core::{AnoleConfig, AnoleSystem};
use anole_data::{ClipId, DatasetConfig, DatasetSource, DrivingDataset, SceneAttributes};
use anole_device::DeviceKind;
use anole_tensor::{Matrix, Seed};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_online_step(c: &mut Criterion) {
    let ctx = Context::build(Scale::Small, Seed(8)).expect("training");
    let split = ctx.dataset.split();
    let frames: Vec<Vec<f32>> = split
        .test
        .iter()
        .take(64)
        .map(|&r| ctx.dataset.frame(r).features.clone())
        .collect();
    c.bench_function("online_engine_step", |b| {
        let mut engine = ctx.system.online_engine(DeviceKind::JetsonTx2Nx, Seed(9));
        engine.warm(&(0..ctx.system.repository().len()).collect::<Vec<_>>());
        let mut i = 0usize;
        b.iter(|| {
            let out = engine.step(black_box(&frames[i % frames.len()])).unwrap();
            i += 1;
            black_box(out)
        })
    });
}

fn bench_clip_generation(c: &mut Criterion) {
    let ctx = Context::build(Scale::Small, Seed(10)).expect("training");
    let attrs = SceneAttributes::from_scene_index(0);
    c.bench_function("generate_clip_100_frames", |b| {
        b.iter(|| {
            black_box(ctx.dataset.world().generate_clip(
                ClipId(0),
                DatasetSource::Shd,
                attrs,
                100,
                1.0,
                Seed(11),
            ))
        })
    });
}

fn bench_kmeans(c: &mut Criterion) {
    let mut rng = anole_tensor::rng_from_seed(Seed(12));
    let points = Matrix::random_normal(500, 32, 1.0, &mut rng);
    c.bench_function("kmeans_k8_500x32", |b| {
        b.iter(|| black_box(KMeans::new(8).fit(&points, Seed(13)).unwrap()))
    });
}

fn bench_offline_profiling(c: &mut Criterion) {
    let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(14));
    let mut group = c.benchmark_group("offline_profiling");
    group.sample_size(10);
    group.bench_function("train_small_system", |b| {
        b.iter(|| black_box(AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(15)).unwrap()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_online_step,
    bench_clip_generation,
    bench_kmeans,
    bench_offline_profiling
);
criterion_main!(benches);
