//! Micro-benchmarks of the parallel k-means assignment step: a full
//! `KMeans::fit` (k-means++ init + Lloyd iterations, assignment-dominated)
//! and the silhouette score, at threads = 1 vs auto.
//!
//! Run with `ANOLE_THREADS=<n>` to control the parallel variant's pool.

use anole_cluster::{silhouette_score, KMeans};
use anole_tensor::{rng_from_seed, set_parallel_config, Matrix, ParallelConfig, Seed};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn blob_points(n: usize, dim: usize) -> Matrix {
    let mut rng = rng_from_seed(Seed(5_500 + n as u64));
    let mut pts = Matrix::random_normal(n, dim, 1.0, &mut rng);
    // Pull points toward 8 well-separated centers so Lloyd converges the
    // same way every run.
    for i in 0..n {
        let offset = (i % 8) as f32 * 10.0;
        for v in pts.row_mut(i) {
            *v += offset;
        }
    }
    pts
}

fn serial() -> ParallelConfig {
    ParallelConfig {
        threads: 1,
        ..ParallelConfig::default()
    }
}

fn parallel() -> ParallelConfig {
    ParallelConfig {
        min_par_elems: 1,
        ..ParallelConfig::default()
    }
}

fn bench_kmeans(c: &mut Criterion) {
    let pts = blob_points(4096, 16);
    let mut group = c.benchmark_group("kmeans_4096x16_k8");
    for (name, cfg) in [("serial", serial()), ("parallel", parallel())] {
        group.bench_function(name, |bench| {
            set_parallel_config(cfg);
            let km = KMeans::new(8).with_max_iterations(10);
            bench.iter(|| black_box(km.fit(&pts, Seed(1)).unwrap()))
        });
    }
    group.finish();
    set_parallel_config(ParallelConfig::default());
}

fn bench_silhouette(c: &mut Criterion) {
    let pts = blob_points(1024, 16);
    let fit = KMeans::new(8).fit(&pts, Seed(2)).unwrap();
    let mut group = c.benchmark_group("silhouette_1024x16_k8");
    for (name, cfg) in [("serial", serial()), ("parallel", parallel())] {
        group.bench_function(name, |bench| {
            set_parallel_config(cfg);
            bench.iter(|| black_box(silhouette_score(&pts, &fit.assignments, 8)))
        });
    }
    group.finish();
    set_parallel_config(ParallelConfig::default());
}

criterion_group!(benches, bench_kmeans, bench_silhouette);
criterion_main!(benches);
