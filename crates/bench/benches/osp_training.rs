//! End-to-end benchmark of the offline scene profiling (Algorithm 1) loop:
//! multi-level clustering plus per-cluster compressed-model training, the
//! stage the bounded repository fan-out parallelizes.
//!
//! Run with `ANOLE_THREADS=<n>` to control the fan-out width.

use anole_core::osp::{ModelRepository, SceneModel};
use anole_core::{AnoleConfig, SceneModelConfig};
use anole_data::{DatasetConfig, DrivingDataset};
use anole_tensor::{set_parallel_config, ParallelConfig, Seed};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_repository_training(c: &mut Criterion) {
    let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(71));
    let split = dataset.split();
    let config = AnoleConfig::fast();
    let mut scfg = SceneModelConfig::default();
    scfg.train.epochs = 10;
    let scene = SceneModel::train(&dataset, &split.train, &scfg, Seed(72)).expect("scene model");

    let mut group = c.benchmark_group("osp_repository_train");
    group.sample_size(10);
    for (name, cfg) in [
        (
            "serial",
            ParallelConfig {
                threads: 1,
                ..ParallelConfig::default()
            },
        ),
        (
            "parallel",
            ParallelConfig {
                min_par_elems: 1,
                ..ParallelConfig::default()
            },
        ),
    ] {
        group.bench_function(name, |bench| {
            set_parallel_config(cfg);
            bench.iter(|| {
                black_box(
                    ModelRepository::train(
                        &dataset,
                        &scene,
                        &split.train,
                        &split.val,
                        &config,
                        Seed(73),
                    )
                    .expect("repository"),
                )
            })
        });
    }
    group.finish();
    set_parallel_config(ParallelConfig::default());
}

criterion_group!(benches, bench_repository_training);
criterion_main!(benches);
