//! Micro-benchmarks of the adaptive scene-sampling machinery (Fig. 3 /
//! §IV-B): Thompson rounds, the random baseline, and the well-sampledness
//! criterion.

use anole_bandit::{well_sampled_threshold, RandomSampler, SamplingStrategy, ThompsonSampler};
use anole_tensor::{rng_from_seed, Seed};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_thompson_round(c: &mut Criterion) {
    let sizes: Vec<usize> = (0..19).map(|i| 200 + i * 10).collect();
    c.bench_function("thompson_select_record_19_arms", |b| {
        let mut sampler = ThompsonSampler::new(&sizes, 0.9);
        let mut rng = rng_from_seed(Seed(1));
        b.iter(|| {
            if let Some(arm) = sampler.select(&mut rng) {
                sampler.record_sampled(black_box(arm));
            } else {
                sampler = ThompsonSampler::new(&sizes, 0.9);
            }
        })
    });
}

fn bench_random_round(c: &mut Criterion) {
    let sizes: Vec<usize> = (0..19).map(|i| 200 + i * 10).collect();
    c.bench_function("random_select_record_19_arms", |b| {
        let mut sampler = RandomSampler::new(&sizes);
        let mut rng = rng_from_seed(Seed(2));
        b.iter(|| {
            let arm = sampler.select(&mut rng).expect("non-empty");
            sampler.record_sampled(black_box(arm));
        })
    });
}

fn bench_threshold(c: &mut Criterion) {
    c.bench_function("well_sampled_threshold", |b| {
        b.iter(|| well_sampled_threshold(black_box(1000), black_box(0.9)))
    });
}

fn bench_full_balancing_run(c: &mut Criterion) {
    // A complete Fig. 3-style run: sample until every arm is well sampled.
    let sizes = vec![60usize; 8];
    c.bench_function("thompson_run_to_well_sampled_8x60", |b| {
        b.iter(|| {
            let mut sampler = ThompsonSampler::new(&sizes, 0.5);
            let mut rng = rng_from_seed(Seed(3));
            let mut draws = 0usize;
            while let Some(arm) = sampler.select(&mut rng) {
                sampler.record_sampled(arm);
                draws += 1;
            }
            black_box(draws)
        })
    });
}

criterion_group!(
    benches,
    bench_thompson_round,
    bench_random_round,
    bench_threshold,
    bench_full_balancing_run
);
criterion_main!(benches);
