//! Micro-benchmarks of the anole-tensor matmul kernels: a naive
//! textbook baseline (implemented here, outside the library) against the
//! tiled serial kernel and the tiled parallel kernel, at 64³ and 256³.
//!
//! Run with `ANOLE_THREADS=<n>` to control the parallel variant's pool.

use anole_tensor::{rng_from_seed, set_parallel_config, Matrix, ParallelConfig, Seed};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// Textbook i-j-k matmul with no tiling and no threading: the baseline the
/// tiled kernels are measured against.
fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0.0f32;
            for k in 0..a.cols() {
                acc += a.get(i, k) * b.get(k, j);
            }
            out.set(i, j, acc);
        }
    }
    out
}

fn operands(n: usize) -> (Matrix, Matrix) {
    let mut rng = rng_from_seed(Seed(9_000 + n as u64));
    (
        Matrix::random_normal(n, n, 1.0, &mut rng),
        Matrix::random_normal(n, n, 1.0, &mut rng),
    )
}

fn serial() -> ParallelConfig {
    ParallelConfig {
        threads: 1,
        ..ParallelConfig::default()
    }
}

fn parallel() -> ParallelConfig {
    ParallelConfig {
        min_par_elems: 1,
        ..ParallelConfig::default() // threads = 0: auto / ANOLE_THREADS
    }
}

fn bench_matmul(c: &mut Criterion) {
    for n in [64usize, 256] {
        let (a, b) = operands(n);
        let mut group = c.benchmark_group(format!("matmul_{n}"));
        group.bench_function("naive", |bench| {
            bench.iter(|| black_box(naive_matmul(&a, &b)))
        });
        group.bench_function("tiled_serial", |bench| {
            set_parallel_config(serial());
            bench.iter(|| black_box(a.matmul(&b).unwrap()))
        });
        group.bench_function("tiled_parallel", |bench| {
            set_parallel_config(parallel());
            bench.iter(|| black_box(a.matmul(&b).unwrap()))
        });
        group.finish();
    }
    set_parallel_config(ParallelConfig::default());
}

fn bench_variants(c: &mut Criterion) {
    let (a, b) = operands(256);
    let bt = b.transpose();
    let mut group = c.benchmark_group("matmul_variants_256");
    for (name, cfg) in [("serial", serial()), ("parallel", parallel())] {
        set_parallel_config(cfg);
        group.bench_function(format!("tn_{name}"), |bench| {
            bench.iter(|| black_box(a.matmul_tn(&b).unwrap()))
        });
        set_parallel_config(cfg);
        group.bench_function(format!("nt_{name}"), |bench| {
            bench.iter(|| black_box(a.matmul_nt(&bt).unwrap()))
        });
    }
    group.bench_function("transpose", |bench| {
        bench.iter(|| black_box(a.transpose()))
    });
    group.finish();
    set_parallel_config(ParallelConfig::default());
}

criterion_group!(benches, bench_matmul, bench_variants);
criterion_main!(benches);
