//! Micro-benchmarks of the model-selection stage (§V-A): scene embedding,
//! suitability prediction, and ranking on a trained system.

use anole_bench::{Context, Scale};
use anole_tensor::{Matrix, Seed};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_selection(c: &mut Criterion) {
    let ctx = Context::build(Scale::Small, Seed(7)).expect("training");
    let split = ctx.dataset.split();
    let frame = ctx.dataset.frame(split.test[0]).clone();
    let batch = ctx.dataset.features_matrix(&split.test[..64.min(split.test.len())]);

    c.bench_function("scene_embed_single_frame", |b| {
        let row = Matrix::row_vector(&frame.features);
        b.iter(|| black_box(ctx.system.scene_model().embed(&row).unwrap()))
    });
    c.bench_function("scene_embed_batch_64", |b| {
        b.iter(|| black_box(ctx.system.scene_model().embed(&batch).unwrap()))
    });
    c.bench_function("decision_rank_single_frame", |b| {
        b.iter(|| black_box(ctx.system.decision().rank(&frame.features).unwrap()))
    });
    c.bench_function("compressed_model_detect", |b| {
        let model = ctx.system.repository().model(0);
        b.iter(|| black_box(model.detect(&frame.features, 0.5).unwrap()))
    });
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
