//! Micro-benchmarks of the model cache (Fig. 7b / §V-B) under a Zipf-like
//! request trace — the shape of the model-utility distribution in Fig. 4b.

use anole_cache::{EvictionPolicy, SlotCache};
use anole_tensor::{rng_from_seed, Seed};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::Rng;

/// Zipf-ish trace over 19 models, matching the long-tailed utility of
/// Fig. 4b.
fn zipf_trace(len: usize, models: usize, seed: Seed) -> Vec<usize> {
    let mut rng = rng_from_seed(seed);
    let weights: Vec<f64> = (0..models).map(|i| 1.0 / (i + 1) as f64).collect();
    let total: f64 = weights.iter().sum();
    (0..len)
        .map(|_| {
            let mut target = rng.gen_range(0.0..total);
            for (i, &w) in weights.iter().enumerate() {
                if target < w {
                    return i;
                }
                target -= w;
            }
            models - 1
        })
        .collect()
}

fn bench_policies(c: &mut Criterion) {
    let trace = zipf_trace(10_000, 19, Seed(4));
    let mut group = c.benchmark_group("cache_trace_10k_zipf19");
    for policy in [EvictionPolicy::Lfu, EvictionPolicy::Lru, EvictionPolicy::Fifo] {
        group.bench_with_input(BenchmarkId::from_parameter(policy), &policy, |b, &policy| {
            b.iter(|| {
                let mut cache: SlotCache<usize> = SlotCache::new(5, policy);
                for &model in &trace {
                    if !cache.touch(&model) {
                        cache.insert(model);
                    }
                }
                black_box(cache.stats())
            })
        });
    }
    group.finish();
}

fn bench_single_ops(c: &mut Criterion) {
    c.bench_function("cache_touch_hit", |b| {
        let mut cache: SlotCache<usize> = SlotCache::new(5, EvictionPolicy::Lfu);
        for i in 0..5 {
            cache.insert(i);
        }
        b.iter(|| black_box(cache.touch(&3)))
    });
    c.bench_function("cache_insert_evict", |b| {
        let mut cache: SlotCache<usize> = SlotCache::new(5, EvictionPolicy::Lfu);
        let mut next = 0usize;
        b.iter(|| {
            next = (next + 1) % 1000;
            black_box(cache.insert(next))
        })
    });
}

criterion_group!(benches, bench_policies, bench_single_ops);
criterion_main!(benches);
