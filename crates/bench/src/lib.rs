//! Benchmark harness for the Anole reproduction.
//!
//! The [`experiments`] module regenerates every table and figure of the
//! paper's evaluation (§VI); the `repro` binary drives them from the command
//! line, and the criterion benches under `benches/` micro-benchmark the hot
//! online-path components.

pub mod context;
pub mod experiments;
pub mod render;

pub use context::{Context, Scale};
