//! Figure 10: real-world (fresh-stream) per-scenario F1 and latency.

use anole_core::eval::real_world_experiment;
use anole_core::MethodKind;
use anole_tensor::split_seed;

use crate::{render, Context};

const METHODS: [MethodKind; 5] = [
    MethodKind::Anole,
    MethodKind::Sdm,
    MethodKind::Ssm,
    MethodKind::Cdg,
    MethodKind::Dmm,
];

/// Regenerates Fig. 10: F1 of every method on seven fresh Shanghai-style
/// scenarios streamed through the TX2 simulator, plus Anole's per-frame
/// latency.
///
/// # Panics
///
/// Panics if training or streaming fails (never for a built context).
pub fn fig10(ctx: &Context) -> String {
    let frames = ctx.dataset.config().frames_per_clip.min(200);
    let report = real_world_experiment(&ctx.dataset, &ctx.system, frames, split_seed(ctx.seed, 1001))
        .expect("real-world experiment");

    let mut rows = Vec::new();
    for (i, s) in report.scenarios.iter().enumerate() {
        let mut cells = vec![format!("S{} {}", i + 1, s.attributes)];
        for kind in METHODS {
            cells.push(s.of(kind).map(render::f1).unwrap_or_default());
        }
        cells.push(format!("{:.1}", s.anole_latency_ms));
        rows.push(cells);
    }
    let mut mean_cells = vec!["mean".to_string()];
    for kind in METHODS {
        mean_cells.push(report.mean_f1(kind).map(render::f1).unwrap_or_default());
    }
    mean_cells.push(String::new());
    rows.push(mean_cells);

    format!(
        "Figure 10: real-world scenarios in Shanghai (fresh streams, TX2 NX); \
         Anole wins {}/7 scenarios\n{}",
        report.wins(MethodKind::Anole),
        render::table(
            &["scenario", "Anole", "SDM", "SSM", "CDG", "DMM", "Anole ms/frame"],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    use crate::{Context, Scale};
    use anole_tensor::Seed;

    #[test]
    fn renders_seven_scenarios_plus_mean() {
        let ctx = Context::build(Scale::Small, Seed(19)).unwrap();
        let text = super::fig10(&ctx);
        assert!(text.contains("S1"));
        assert!(text.contains("S7"));
        assert!(text.contains("mean"));
        assert!(text.contains("ms/frame"));
    }
}
