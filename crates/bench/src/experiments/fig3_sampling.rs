//! Figure 3: random vs adaptive (Thompson) scene sampling balance.

use anole_bandit::balance_coefficient;
use anole_core::osp::AdaptiveSampler;
use anole_tensor::split_seed;

use crate::{render, Context};

/// Regenerates Fig. 3: normalized per-model sample counts under random
/// sampling (a) and adaptive sampling (b).
///
/// # Panics
///
/// Panics if the trained system cannot score frames (never for a context
/// built by [`Context::build`]).
pub fn fig3(ctx: &Context) -> String {
    let sampler = AdaptiveSampler::new(
        ctx.system.config().sampling,
        ctx.system.config().detector.threshold,
    );
    let split = ctx.dataset.split();
    let random = sampler
        .collect_random(
            &ctx.dataset,
            ctx.system.repository(),
            &split.train,
            split_seed(ctx.seed, 301),
        )
        .expect("random sampling");
    let adaptive = sampler
        .collect(&ctx.dataset, ctx.system.repository(), split_seed(ctx.seed, 302))
        .expect("adaptive sampling");

    let normalize = |counts: &[usize]| -> Vec<(String, f64)> {
        let total: usize = counts.iter().sum();
        counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                (
                    format!("M{i:02}"),
                    if total == 0 { 0.0 } else { c as f64 / total as f64 },
                )
            })
            .collect()
    };

    format!(
        "Figure 3(a): normalized |S_i| under RANDOM sampling \
         (balance coefficient {:.3})\n{}\n\
         Figure 3(b): normalized |S_i| under ADAPTIVE sampling \
         (balance coefficient {:.3})\n{}\n\
         adaptive draws: {} accepted / {} rejected\n",
        balance_coefficient(&random.accepted_counts),
        render::bars(&normalize(&random.accepted_counts), 40),
        balance_coefficient(&adaptive.draw_counts),
        render::bars(&normalize(&adaptive.draw_counts), 40),
        adaptive.len(),
        adaptive.rejected,
    )
}

#[cfg(test)]
mod tests {
    use crate::{Context, Scale};
    use anole_tensor::Seed;

    #[test]
    fn renders_both_panels() {
        let ctx = Context::build(Scale::Small, Seed(9)).unwrap();
        let text = super::fig3(&ctx);
        assert!(text.contains("RANDOM"));
        assert!(text.contains("ADAPTIVE"));
        assert!(text.contains("M00"));
    }
}
