//! Figure 6: confusion matrices of the scene encoder and decision model.

use crate::Context;

/// Regenerates Fig. 6: (a) `M_scene` scene classification and (b)
/// `M_decision` top-1 model selection, both on the validation split.
///
/// # Panics
///
/// Panics if the models cannot score the validation frames (never for a
/// context built by [`Context::build`]).
pub fn fig6(ctx: &Context) -> String {
    let split = ctx.dataset.split();
    let scene_cm = ctx
        .system
        .scene_model()
        .confusion(&ctx.dataset, &split.val)
        .expect("scene confusion");
    let decision_cm = ctx
        .system
        .decision()
        .confusion(
            &ctx.dataset,
            ctx.system.repository(),
            &split.val,
            ctx.system.config().detector.threshold,
        )
        .expect("decision confusion");

    format!(
        "Figure 6(a): M_scene confusion on validation (accuracy {:.3})\n{}\n\
         Figure 6(b): M_decision predicted-best vs true-best (top-1 accuracy {:.3}, \
         uniform baseline {:.3})\n{}",
        scene_cm.accuracy(),
        scene_cm,
        decision_cm.accuracy(),
        1.0 / ctx.system.repository().len() as f32,
        decision_cm,
    )
}

#[cfg(test)]
mod tests {
    use crate::{Context, Scale};
    use anole_tensor::Seed;

    #[test]
    fn renders_both_matrices_with_accuracies() {
        let ctx = Context::build(Scale::Small, Seed(14)).unwrap();
        let text = super::fig6(&ctx);
        assert!(text.contains("M_scene confusion"));
        assert!(text.contains("M_decision predicted-best"));
        assert!(text.contains("uniform baseline"));
    }
}
