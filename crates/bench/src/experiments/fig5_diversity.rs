//! Figure 5: dataset diversity CDFs (brightness, contrast, object count,
//! object area).

use anole_data::dataset_diversity;

use crate::{render, Context};

/// Regenerates Fig. 5 as quantile tables of the four per-frame statistics.
pub fn fig5(ctx: &Context) -> String {
    let report = dataset_diversity(&ctx.dataset, 100);
    let mut out = format!(
        "Figure 5: dataset diversity over {} frames in {} clips\n",
        ctx.dataset.frame_count(),
        ctx.dataset.clips().len()
    );
    for (name, cdf) in [
        ("(a) image brightness", &report.brightness),
        ("(b) image contrast", &report.contrast),
        ("(c) number of objects", &report.object_count),
        ("(d) object area ratio", &report.object_area),
    ] {
        out.push_str(&format!(
            "{name}\n{}",
            render::table(&["quantile", "value"], &render::cdf_rows(cdf))
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::{Context, Scale};
    use anole_tensor::Seed;

    #[test]
    fn renders_all_four_panels() {
        let ctx = Context::build(Scale::Small, Seed(13)).unwrap();
        let text = super::fig5(&ctx);
        for panel in ["brightness", "contrast", "number of objects", "object area"] {
            assert!(text.contains(panel), "missing {panel}");
        }
        assert!(text.contains("p50"));
    }
}
