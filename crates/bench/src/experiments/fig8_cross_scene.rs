//! Figure 8: cross-scene F1 CDFs of all candidate methods per source
//! dataset.

use anole_core::eval::cross_scene_experiment;
use anole_core::MethodKind;
use anole_tensor::{empirical_cdf, split_seed};

use crate::{render, Context};

const METHODS: [MethodKind; 5] = [
    MethodKind::Anole,
    MethodKind::Sdm,
    MethodKind::Ssm,
    MethodKind::Cdg,
    MethodKind::Dmm,
];

/// Regenerates Fig. 8: for each source dataset, the quantiles of the
/// windowed-F1 distribution of every method (the paper plots these as
/// CDFs), plus overall means.
///
/// # Panics
///
/// Panics if baseline training fails (never for a built context).
pub fn fig8(ctx: &Context) -> String {
    let report = cross_scene_experiment(&ctx.dataset, &ctx.system, 10, split_seed(ctx.seed, 801))
        .expect("cross-scene experiment");

    let mut out = String::from("Figure 8: cross-scene windowed F1 (every 10 frames), per source\n");
    for source in &report.sources {
        out.push_str(&format!("--- {} ---\n", source.source));
        let mut rows = Vec::new();
        for kind in METHODS {
            let Some(result) = source.of(kind) else { continue };
            let cdf = empirical_cdf(&result.windowed, 20);
            let q = |target: f32| {
                cdf.iter()
                    .find(|p| p.fraction >= target)
                    .map(|p| p.value)
                    .unwrap_or(0.0)
            };
            rows.push(vec![
                kind.name().to_string(),
                render::f1(q(0.25)),
                render::f1(q(0.5)),
                render::f1(q(0.75)),
                render::f1(result.overall_f1),
            ]);
        }
        out.push_str(&render::table(
            &["method", "F1 p25", "F1 p50", "F1 p75", "overall F1"],
            &rows,
        ));
    }

    out.push_str("Means across sources:\n");
    let mean_rows: Vec<Vec<String>> = METHODS
        .iter()
        .filter_map(|&k| report.mean_f1(k).map(|f| vec![k.name().to_string(), render::f1(f)]))
        .collect();
    out.push_str(&render::table(&["method", "mean F1"], &mean_rows));
    out
}

#[cfg(test)]
mod tests {
    use crate::{Context, Scale};
    use anole_tensor::Seed;

    #[test]
    fn renders_per_source_tables_and_means() {
        let ctx = Context::build(Scale::Small, Seed(17)).unwrap();
        let text = super::fig8(&ctx);
        for s in ["KITTI", "BDD100k", "SHD"] {
            assert!(text.contains(s), "missing {s}");
        }
        assert!(text.contains("Anole"));
        assert!(text.contains("mean F1"));
    }
}
