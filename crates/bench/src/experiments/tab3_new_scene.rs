//! Table III: inference accuracy on unseen scenes.

use anole_core::eval::new_scene_experiment;
use anole_core::MethodKind;
use anole_tensor::split_seed;

use crate::{render, Context};

const METHODS: [MethodKind; 5] = [
    MethodKind::Sdm,
    MethodKind::Ssm,
    MethodKind::Cdg,
    MethodKind::Dmm,
    MethodKind::Anole,
];

/// Regenerates Table III: per-unseen-clip F1 of every method plus the mean
/// column, methods as rows like the paper.
///
/// # Panics
///
/// Panics if baseline training fails (never for a built context).
pub fn tab3(ctx: &Context) -> String {
    let report = new_scene_experiment(&ctx.dataset, &ctx.system, split_seed(ctx.seed, 301))
        .expect("new-scene experiment");

    let mut header: Vec<String> = vec!["Method".into()];
    for row in &report.rows {
        header.push(format!(
            "{} {}",
            row.source,
            abbreviate(&row.attributes.to_string())
        ));
    }
    header.push("Mean".into());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();

    let mut rows = Vec::new();
    for kind in METHODS {
        let mut cells = vec![kind.name().to_string()];
        for row in &report.rows {
            cells.push(row.of(kind).map(render::f1).unwrap_or_default());
        }
        cells.push(report.mean_f1(kind).map(render::f1).unwrap_or_default());
        rows.push(cells);
    }

    format!(
        "Table III: inference accuracy (F1) on unseen scenes; best mean: {}\n{}",
        report
            .best_method()
            .map(|k| k.name().to_string())
            .unwrap_or_default(),
        render::table(&header_refs, &rows)
    )
}

fn abbreviate(attrs: &str) -> String {
    attrs
        .split_whitespace()
        .map(|w| {
            let mut c = w.chars();
            let head: String = c.by_ref().take(2).collect();
            let _ = c;
            format!("{}.", head)
        })
        .collect::<Vec<_>>()
        .join("")
}

#[cfg(test)]
mod tests {
    use crate::{Context, Scale};
    use anole_tensor::Seed;

    #[test]
    fn table_has_method_rows_and_mean_column() {
        let ctx = Context::build(Scale::Small, Seed(18)).unwrap();
        let text = super::tab3(&ctx);
        for m in ["SDM", "SSM", "CDG", "DMM", "Anole"] {
            assert!(text.contains(m), "missing {m}");
        }
        assert!(text.contains("Mean"));
        assert!(text.contains("best mean"));
    }

    #[test]
    fn abbreviate_shortens_attribute_strings() {
        assert_eq!(super::abbreviate("rainy highway at night"), "ra.hi.at.ni.");
    }
}
