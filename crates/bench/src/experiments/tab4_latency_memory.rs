//! Table IV: inference latency and memory consumption per device.

use anole_device::{DeviceKind, GpuMemoryModel, LatencyModel};
use anole_nn::ReferenceModel;

use crate::render;

/// Regenerates Table IV.
pub fn tab4() -> String {
    let latency: Vec<LatencyModel> = DeviceKind::ALL
        .iter()
        .map(|&k| LatencyModel::for_device(k))
        .collect();
    let mem = GpuMemoryModel::for_device(DeviceKind::JetsonTx2Nx);

    let mut rows = Vec::new();
    rows.push(vec![
        "M_scene + M_decision".to_string(),
        format!("{:.1}", latency[0].mean_scene_decision_ms()),
        format!("{:.1}", latency[1].mean_scene_decision_ms()),
        format!("{:.1}", latency[2].mean_scene_decision_ms()),
        format!("{} MB", ReferenceModel::Resnet18.weight_bytes() / 1_000_000),
        format!("{} MB", mem.execution_bytes(ReferenceModel::Resnet18) / 1_000_000),
    ]);
    for model in [ReferenceModel::Yolov3, ReferenceModel::Yolov3Tiny] {
        rows.push(vec![
            model.name().to_string(),
            format!("{:.1}", latency[0].mean_inference_ms(model)),
            format!("{:.1}", latency[1].mean_inference_ms(model)),
            format!("{:.1}", latency[2].mean_inference_ms(model)),
            format!("{} MB x n", model.weight_bytes() / 1_000_000),
            format!("{} MB", mem.execution_bytes(model) / 1_000_000),
        ]);
    }

    let cacheable: Vec<Vec<String>> = DeviceKind::ALL
        .iter()
        .map(|&k| {
            let m = GpuMemoryModel::for_device(k);
            vec![
                k.name().to_string(),
                format!("{}", m.max_cached_models()),
                format!("{}", m.fits_deep_model()),
            ]
        })
        .collect();

    format!(
        "Table IV: inference latency and memory consumption\n{}\n\
         Derived cache capacity per device:\n{}",
        render::table(
            &[
                "Model",
                "Nano (ms)",
                "TX2 NX (ms)",
                "Laptop (ms)",
                "Loading model",
                "Execution"
            ],
            &rows
        ),
        render::table(&["Device", "max cached tiny models", "deep model fits"], &cacheable)
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn matches_paper_headline_numbers() {
        let text = super::tab4();
        assert!(text.contains("313.8")); // YOLOv3 on Nano
        assert!(text.contains("10.8")); // tiny on TX2
        assert!(text.contains("3.1")); // scene+decision on TX2
        assert!(text.contains("34 MB x n"));
        assert!(text.contains("1730 MB"));
    }
}
