//! Figure 4: (a) cold-start inference latency; (b) model utility
//! distribution.

use anole_core::eval::evaluate_refs;
use anole_device::{DeviceKind, LatencyModel};
use anole_nn::ReferenceModel;
use anole_tensor::{rng_from_seed, split_seed};

use crate::{render, Context};

/// Regenerates Fig. 4(a): average per-frame latency of the first 20 frames
/// on the TX2 NX for YOLOv3 vs YOLOv3-tiny, cold start included.
pub fn fig4a(ctx: &Context) -> String {
    let latency = LatencyModel::for_device(DeviceKind::JetsonTx2Nx);
    let mut rng = rng_from_seed(split_seed(ctx.seed, 401));
    let mut rows = Vec::new();
    let deep = latency.cold_start_trace(ReferenceModel::Yolov3, 20, &mut rng);
    let tiny = latency.cold_start_trace(ReferenceModel::Yolov3Tiny, 20, &mut rng);
    for (i, (d, t)) in deep.iter().zip(tiny.iter()).enumerate() {
        rows.push(vec![
            format!("{}", i + 1),
            format!("{d:.1}"),
            format!("{t:.1}"),
        ]);
    }
    format!(
        "Figure 4(a): per-frame latency on Jetson TX2 NX, cold start at frame 1\n{}",
        render::table(&["frame", "YOLOv3 (ms)", "YOLOv3-tiny (ms)"], &rows)
    )
}

/// Regenerates Fig. 4(b): probability of each compressed model being the
/// top-1 choice over the test streams — the long-tailed utility
/// distribution motivating the small cache.
///
/// # Panics
///
/// Panics if the engine fails on a generated frame (never for a context
/// built by [`Context::build`]).
pub fn fig4b(ctx: &Context) -> String {
    let split = ctx.dataset.split();
    let mut engine = ctx
        .system
        .online_engine(DeviceKind::JetsonTx2Nx, split_seed(ctx.seed, 402));
    engine.warm(&(0..ctx.system.repository().len()).collect::<Vec<_>>());
    evaluate_refs(&mut engine, &ctx.dataset, &split.test, 10).expect("test stream");

    let mut counts = vec![0usize; ctx.system.repository().len()];
    for &used in engine.usage_log() {
        counts[used] += 1;
    }
    let total: usize = counts.iter().sum();
    let mut items: Vec<(String, f64)> = counts
        .iter()
        .enumerate()
        .map(|(i, &c)| (format!("M{i:02}"), c as f64 / total.max(1) as f64))
        .collect();
    items.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));

    let top3: f64 = items.iter().take(3).map(|&(_, v)| v).sum();
    format!(
        "Figure 4(b): P(top-1) per compressed model over all test clips \
         (sorted; top-3 mass {:.2})\n{}",
        top3,
        render::bars(&items, 40)
    )
}

#[cfg(test)]
mod tests {
    use crate::{Context, Scale};
    use anole_tensor::Seed;

    #[test]
    fn fig4a_shows_cold_start_spike() {
        let ctx = Context::build(Scale::Small, Seed(11)).unwrap();
        let text = super::fig4a(&ctx);
        assert!(text.contains("frame"));
        assert!(text.lines().count() > 20);
    }

    #[test]
    fn fig4b_distributions_sum_to_one() {
        let ctx = Context::build(Scale::Small, Seed(12)).unwrap();
        let text = super::fig4b(&ctx);
        assert!(text.contains("P(top-1)"));
        assert!(text.contains("M0"));
    }
}
