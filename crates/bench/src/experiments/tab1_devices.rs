//! Table I: hardware configurations of the deployment devices.

use anole_device::{DeviceKind, DeviceSpec};

use crate::render;

/// Regenerates Table I.
pub fn tab1() -> String {
    let rows: Vec<Vec<String>> = DeviceKind::ALL
        .iter()
        .map(|&kind| {
            let s = DeviceSpec::of(kind);
            vec![
                s.kind.name().to_string(),
                s.cpu.to_string(),
                s.gpu.to_string(),
                format!("{} GB", s.gpu_memory_bytes / 1_000_000_000),
                format!("{} GB", s.storage_bytes / 1_000_000_000),
            ]
        })
        .collect();
    format!(
        "Table I: device hardware configurations\n{}",
        render::table(
            &["Platform", "CPU", "GPU", "GPU Memory", "Flash/Disk"],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn lists_all_three_devices() {
        let text = super::tab1();
        assert!(text.contains("Jetson Nano"));
        assert!(text.contains("Jetson TX2 NX"));
        assert!(text.contains("Laptop"));
        assert!(text.contains("2 GB"));
        assert!(text.contains("RTX 2070"));
    }
}
