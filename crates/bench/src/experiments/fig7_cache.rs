//! Figure 7: (a) scene durations on spliced fast-changing clips; (b) cache
//! miss rate and F1 as functions of cache size.

use anole_cache::EvictionPolicy;
use anole_core::omi::SwitchStats;
use anole_detect::DetectionCounts;
use anole_device::DeviceKind;
use anole_tensor::split_seed;
use anole_data::{synthesize_fast_changing, SpliceConfig, SplicedClip};

use crate::{render, Context};

fn spliced_clips(ctx: &Context) -> Vec<SplicedClip> {
    let segment_len = (ctx.dataset.config().frames_per_clip / 6).max(10);
    synthesize_fast_changing(
        &ctx.dataset,
        &SpliceConfig {
            clip_count: 6,
            segments_per_clip: 5,
            segment_len,
        },
        split_seed(ctx.seed, 701),
    )
}

/// Regenerates Fig. 7(a): scene-duration statistics (runs of frames served
/// by the same model) on the six spliced clips T1–T6.
///
/// # Panics
///
/// Panics if the engine fails on a frame (never for a built context).
pub fn fig7a(ctx: &Context) -> String {
    let clips = spliced_clips(ctx);
    let mut rows = Vec::new();
    for clip in &clips {
        let mut engine = ctx
            .system
            .online_engine(DeviceKind::JetsonTx2Nx, split_seed(ctx.seed, 702));
        engine.warm(&(0..ctx.system.repository().len()).collect::<Vec<_>>());
        for &r in &clip.frames {
            engine.step(&ctx.dataset.frame(r).features).expect("step");
        }
        let stats = SwitchStats::of(engine.usage_log());
        rows.push(vec![
            clip.name.clone(),
            format!("{}", clip.frames.len()),
            format!("{}", stats.switches),
            format!("{:.1}", stats.mean),
            format!("{}", stats.median),
            format!("{}", stats.p80),
            format!("{}", stats.max),
        ]);
    }
    format!(
        "Figure 7(a): scene durations (frames between model switches) on T1-T6\n{}",
        render::table(
            &["clip", "frames", "switches", "mean", "median", "p80", "max"],
            &rows
        )
    )
}

/// Regenerates Fig. 7(b): cache miss rate and F1 vs cache size (in units of
/// one compressed model), LFU policy, over the spliced clips.
///
/// # Panics
///
/// Panics if the engine fails on a frame (never for a built context).
pub fn fig7b(ctx: &Context) -> String {
    let clips = spliced_clips(ctx);
    let max_size = ctx.system.repository().len().min(8);
    let mut rows = Vec::new();
    for capacity in 1..=max_size {
        let (miss_rate, f1) = run_with_capacity(ctx, &clips, capacity, EvictionPolicy::Lfu);
        rows.push(vec![
            format!("{capacity}"),
            format!("{miss_rate:.3}"),
            render::f1(f1),
        ]);
    }
    format!(
        "Figure 7(b): cache miss rate and F1 vs cache size (LFU) on T1-T6\n{}",
        render::table(&["cache size (models)", "miss rate", "F1"], &rows)
    )
}

/// Runs all spliced clips through an engine with the given cache capacity
/// and policy; returns `(miss rate, overall F1)`. Shared with the
/// cache-policy ablation.
pub(crate) fn run_with_capacity(
    ctx: &Context,
    clips: &[SplicedClip],
    capacity: usize,
    policy: EvictionPolicy,
) -> (f64, f32) {
    let mut counts = DetectionCounts::default();
    let mut hits = 0u64;
    let mut lookups = 0u64;
    let mut system = ctx.system.clone();
    system.set_cache_config(anole_core::CacheConfig {
        capacity,
        policy,
        byte_budget: None,
    });
    for clip in clips {
        let mut engine = system.online_engine(DeviceKind::JetsonTx2Nx, split_seed(ctx.seed, 703));
        engine.warm(&(0..capacity.min(system.repository().len())).collect::<Vec<_>>());
        for &r in &clip.frames {
            let frame = ctx.dataset.frame(r);
            let out = engine.step(&frame.features).expect("step");
            counts.accumulate(&out.detections, &frame.truth);
        }
        let stats = engine.cache_stats();
        hits += stats.hits;
        lookups += stats.lookups();
    }
    let miss_rate = if lookups == 0 {
        0.0
    } else {
        1.0 - hits as f64 / lookups as f64
    };
    (miss_rate, counts.f1())
}

#[cfg(test)]
mod tests {
    use crate::{Context, Scale};
    use anole_tensor::Seed;

    #[test]
    fn fig7a_reports_all_six_clips() {
        let ctx = Context::build(Scale::Small, Seed(15)).unwrap();
        let text = super::fig7a(&ctx);
        for t in ["T1", "T6"] {
            assert!(text.contains(t));
        }
    }

    #[test]
    fn fig7b_miss_rate_not_increasing_with_capacity() {
        let ctx = Context::build(Scale::Small, Seed(16)).unwrap();
        let text = super::fig7b(&ctx);
        assert!(text.contains("miss rate"));
        // Parse the miss-rate column and check the trend loosely (first vs
        // last row).
        let rates: Vec<f64> = text
            .lines()
            .filter_map(|l| {
                let cells: Vec<&str> = l.split('|').map(str::trim).collect();
                if cells.len() >= 3 && cells[1].chars().all(|c| c.is_ascii_digit()) {
                    cells[2].parse::<f64>().ok()
                } else {
                    None
                }
            })
            .collect();
        if rates.len() >= 2 {
            assert!(
                *rates.last().unwrap() <= rates.first().unwrap() + 0.05,
                "{rates:?}"
            );
        }
    }
}
