//! One runner per table / figure of the paper's evaluation, plus the
//! ablations listed in DESIGN.md §6.
//!
//! Every runner returns the regenerated artifact as plain text (and the
//! `repro` binary can additionally dump machine-readable JSON).

mod ablations;
mod fig10_real_world;
mod fig11_power;
mod fig3_sampling;
mod fig4_latency_utility;
mod fig5_diversity;
mod fig6_confusion;
mod fig7_cache;
mod fig8_cross_scene;
mod tab1_devices;
mod tab2_models;
mod tab3_new_scene;
mod tab4_latency_memory;

pub use ablations::{
    cache_policy_ablation, delta_sweep_ablation, fleet_lifecycle_week, latency_budget_sweep,
    offload_ablation, realtime_streaming, repository_size_sweep, theta_sweep_ablation,
};
pub use fig10_real_world::fig10;
pub use fig11_power::fig11;
pub use fig3_sampling::fig3;
pub use fig4_latency_utility::{fig4a, fig4b};
pub use fig5_diversity::fig5;
pub use fig6_confusion::fig6;
pub use fig7_cache::{fig7a, fig7b};
pub use fig8_cross_scene::fig8;
pub use tab1_devices::tab1;
pub use tab2_models::tab2;
pub use tab3_new_scene::tab3;
pub use tab4_latency_memory::tab4;
