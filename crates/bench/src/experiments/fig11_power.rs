//! Figure 11: power consumption and inference speed across TX2 power modes.

use anole_device::{DeviceKind, PowerMode, PowerModel};
use anole_nn::ReferenceModel;

use crate::render;

const PIPELINES: [(&str, &[ReferenceModel]); 3] = [
    (
        "Anole",
        &[
            ReferenceModel::Resnet18,
            ReferenceModel::DecisionMlp,
            ReferenceModel::Yolov3Tiny,
        ],
    ),
    ("SDM", &[ReferenceModel::Yolov3]),
    ("SSM", &[ReferenceModel::Yolov3Tiny]),
];

/// Regenerates Fig. 11: power draw and FPS of Anole, SDM, and SSM at each
/// TX2 power mode.
pub fn fig11() -> String {
    let pm = PowerModel::for_device(DeviceKind::JetsonTx2Nx);
    let mut rows = Vec::new();
    for mode in PowerMode::tx2_modes() {
        for (name, pipeline) in PIPELINES {
            let r = pm.evaluate(pipeline, mode);
            rows.push(vec![
                mode.label(),
                name.to_string(),
                format!("{:.1}", r.watts),
                format!("{:.1}", r.fps),
                format!("{:.3}", r.joules_per_frame),
            ]);
        }
    }

    let top = PowerMode::tx2_modes()[3];
    let anole = pm.evaluate(PIPELINES[0].1, top);
    let sdm = pm.evaluate(PIPELINES[1].1, top);
    format!(
        "Figure 11: power and inference speed per TX2 power mode \
         (Anole vs SDM at 20W: {:.1}% less power, paper reports 45.1%)\n{}",
        (1.0 - anole.watts / sdm.watts) * 100.0,
        render::table(
            &["mode", "method", "power (W)", "FPS", "J/frame"],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn covers_all_modes_and_methods() {
        let text = super::fig11();
        for needle in ["7.5W", "20W", "Anole", "SDM", "SSM", "less power"] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }
}
