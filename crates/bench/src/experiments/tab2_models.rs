//! Table II: deployed model classes, FLOPs, and weights — both the paper's
//! reference scale and the simulated stand-in networks actually trained.

use anole_nn::ReferenceModel;

use crate::{render, Context};

/// Regenerates Table II, annotated with the simulated networks' true costs.
pub fn tab2(ctx: &Context) -> String {
    let fmt_flops = |f: u64| {
        if f >= 1_000_000_000 {
            format!("{:.2} Bn", f as f64 / 1e9)
        } else if f >= 1_000_000 {
            format!("{:.1} M", f as f64 / 1e6)
        } else {
            format!("{:.1} k", f as f64 / 1e3)
        }
    };
    let fmt_bytes = |b: u64| {
        if b >= 1_000_000 {
            format!("{:.0} MB", b as f64 / 1e6)
        } else {
            format!("{:.0} KB", b as f64 / 1e3)
        }
    };

    let rows: Vec<Vec<String>> = ReferenceModel::ALL
        .iter()
        .map(|m| {
            vec![
                m.name().to_string(),
                m.role().to_string(),
                fmt_flops(m.flops()),
                fmt_bytes(m.weight_bytes()),
            ]
        })
        .collect();

    let sim_rows: Vec<Vec<String>> = ctx
        .system
        .repository()
        .models()
        .iter()
        .take(3)
        .map(|m| {
            vec![
                format!("compressed M{}", m.id),
                format!("scenes {:?}", m.origin.scenes),
                fmt_flops(m.profile.simulated_flops),
                fmt_bytes(m.profile.simulated_weight_bytes),
            ]
        })
        .collect();

    format!(
        "Table II: deployed models (paper reference scale)\n{}\n\
         Simulated stand-in networks (first 3 of {}):\n{}",
        render::table(&["Model", "Role", "FLOPS", "Weights"], &rows),
        ctx.system.repository().len(),
        render::table(&["Simulated model", "Trained on", "FLOPS", "Weights"], &sim_rows)
    )
}

#[cfg(test)]
mod tests {
    use crate::{Context, Scale};
    use anole_tensor::Seed;

    #[test]
    fn includes_reference_and_simulated_rows() {
        let ctx = Context::build(Scale::Small, Seed(7)).unwrap();
        let text = super::tab2(&ctx);
        assert!(text.contains("YOLOv3-tiny"));
        assert!(text.contains("65.86 Bn"));
        assert!(text.contains("M_decision"));
        assert!(text.contains("compressed M0"));
    }
}
