//! Ablations beyond the paper's figures (DESIGN.md §6): cache eviction
//! policies, the δ acceptance threshold, the θ sampling confidence, and the
//! cloud-offload alternative over an unstable uplink.

use anole_cache::EvictionPolicy;
use anole_core::osp::ModelRepository;
use anole_data::{synthesize_fast_changing, SpliceConfig};
use anole_device::{DeviceKind, LatencyModel, UnstableLink, UnstableLinkConfig};
use anole_nn::ReferenceModel;
use anole_tensor::{rng_from_seed, split_seed};

use super::fig7_cache::run_with_capacity;
use crate::{render, Context};

/// Cache-policy ablation: LFU (the paper's choice) vs LRU vs FIFO at small
/// and comfortable cache sizes, on the fast-changing spliced clips.
///
/// # Panics
///
/// Panics if the engine fails on a frame (never for a built context).
pub fn cache_policy_ablation(ctx: &Context) -> String {
    let segment_len = (ctx.dataset.config().frames_per_clip / 6).max(10);
    let clips = synthesize_fast_changing(
        &ctx.dataset,
        &SpliceConfig {
            clip_count: 6,
            segments_per_clip: 5,
            segment_len,
        },
        split_seed(ctx.seed, 901),
    );
    let mut rows = Vec::new();
    for capacity in [2usize, 5] {
        let capacity = capacity.min(ctx.system.repository().len().max(1));
        for policy in [EvictionPolicy::Lfu, EvictionPolicy::Lru, EvictionPolicy::Fifo] {
            let (miss, f1) = run_with_capacity(ctx, &clips, capacity, policy);
            rows.push(vec![
                format!("{capacity}"),
                policy.to_string(),
                format!("{miss:.3}"),
                render::f1(f1),
            ]);
        }
    }
    format!(
        "Ablation: cache eviction policy on fast-changing streams\n{}",
        render::table(&["cache size", "policy", "miss rate", "F1"], &rows)
    )
}

/// δ sweep: how the acceptance threshold of Algorithm 1 trades repository
/// size against per-model validation quality.
///
/// # Panics
///
/// Panics on training failure (never for a built context at sane δ).
pub fn delta_sweep_ablation(ctx: &Context) -> String {
    let split = ctx.dataset.split();
    let mut rows = Vec::new();
    for delta in [0.30f32, 0.50, 0.65, 0.75] {
        let mut config = *ctx.system.config();
        config.repository.delta = delta;
        let result = ModelRepository::train(
            &ctx.dataset,
            ctx.system.scene_model(),
            &split.train,
            &split.val,
            &config,
            split_seed(ctx.seed, 902),
        );
        match result {
            Ok(repo) => {
                let mean_f1: f32 = repo
                    .models()
                    .iter()
                    .map(|m| m.validation_f1)
                    .sum::<f32>()
                    / repo.len() as f32;
                rows.push(vec![
                    format!("{delta:.2}"),
                    format!("{}", repo.len()),
                    render::f1(mean_f1),
                ]);
            }
            Err(_) => rows.push(vec![format!("{delta:.2}"), "0".into(), "-".into()]),
        }
    }
    format!(
        "Ablation: Algorithm 1 acceptance threshold δ\n{}",
        render::table(&["delta", "accepted models", "mean validation F1"], &rows)
    )
}

/// θ sweep: the well-sampledness confidence against sampling cost.
///
/// On the full pipeline the per-arm draw cap dominates the coupon-collector
/// thresholds (|Γᵢ| is in the thousands), so this ablation isolates the θ
/// effect at the scheduler level: 19 arms of 40 elements each, run to
/// completion with no cap or κ budget.
pub fn theta_sweep_ablation(ctx: &Context) -> String {
    use anole_bandit::{SamplingStrategy, ThompsonSampler};

    let sizes = vec![40usize; 19];
    let mut rows = Vec::new();
    for theta in [0.5f64, 0.7, 0.9, 0.99] {
        let mut scheduler = ThompsonSampler::new(&sizes, theta);
        let mut rng = anole_tensor::rng_from_seed(split_seed(ctx.seed, 903));
        while let Some(arm) = scheduler.select(&mut rng) {
            scheduler.record_sampled(arm);
        }
        let draws: usize = scheduler.counts().iter().sum();
        rows.push(vec![
            format!("{theta:.2}"),
            format!("{draws}"),
            format!("{:.1}", draws as f64 / sizes.len() as f64),
            format!("{:.3}", anole_bandit::balance_coefficient(scheduler.counts())),
        ]);
    }
    format!(
        "Ablation: sampling confidence θ (19 arms × 40 elements, run to completion)\n{}",
        render::table(&["theta", "total draws", "draws per arm", "draw balance"], &rows)
    )
}

/// Latency-budget sweep (§II: "best-effort inference accuracy within a
/// specific latency budget"): for each per-frame budget on the TX2, the
/// engine derives how many compressed models it may fuse, and we measure
/// the accuracy actually achieved and the latency actually spent.
///
/// # Panics
///
/// Panics if the engine fails on a frame (never for a built context).
pub fn latency_budget_sweep(ctx: &Context) -> String {
    use anole_detect::DetectionCounts;

    let split = ctx.dataset.split();
    let stream: Vec<_> = split.test.iter().copied().take(1500).collect();
    let mut rows = Vec::new();
    for budget in [12.0f32, 15.0, 26.0, 36.0, 48.0] {
        let mut engine = ctx
            .system
            .online_engine(DeviceKind::JetsonTx2Nx, split_seed(ctx.seed, 905))
            .with_latency_budget(budget);
        engine.warm(&(0..ctx.system.repository().len()).collect::<Vec<_>>());
        let limit = engine.models_per_frame_limit();
        let mut counts = DetectionCounts::default();
        for &r in &stream {
            let frame = ctx.dataset.frame(r);
            let out = engine.step(&frame.features).expect("step");
            counts.accumulate(&out.detections, &frame.truth);
        }
        rows.push(vec![
            format!("{budget:.0}"),
            format!("{limit}"),
            format!("{:.1}", engine.mean_latency_ms()),
            render::f1(counts.f1()),
        ]);
    }
    format!(
        "Ablation: per-frame latency budget on the TX2 NX (SDM needs 42.9 ms)\n{}",
        render::table(
            &["budget (ms)", "models/frame", "measured (ms)", "F1"],
            &rows
        )
    )
}

/// Real-time streaming at camera rate: a 30 fps camera feeding each method
/// on the Nano and the TX2, with a one-slot latest-frame mailbox. Dropped
/// frames count against stream-level F1 — a vehicle never sees the objects
/// in a frame it skipped.
///
/// # Panics
///
/// Panics if inference fails on a frame (never for a built context).
pub fn realtime_streaming(ctx: &Context) -> String {
    use anole_core::omi::{run_realtime, TimedMethod};
    use anole_core::{Sdm, Ssm};
    use anole_data::DatasetSource;

    let split = ctx.dataset.split();
    let frames: Vec<anole_data::Frame> = split
        .test
        .iter()
        .take(600)
        .map(|&r| ctx.dataset.frame(r).clone())
        .collect();
    let mut rows = Vec::new();
    for device in [DeviceKind::JetsonNano, DeviceKind::JetsonTx2Nx] {
        let mut engine = ctx
            .system
            .online_engine(device, split_seed(ctx.seed, 906))
            .with_latency_budget(33.0);
        engine.warm(&(0..ctx.system.repository().len()).collect::<Vec<_>>());
        let anole = run_realtime(&mut engine, &frames, DatasetSource::Shd, 30.0).expect("anole");

        let sdm = Sdm::train(&ctx.dataset, &split.train, ctx.system.config(), split_seed(ctx.seed, 907))
            .expect("sdm");
        let mut sdm = TimedMethod::new(sdm, device, split_seed(ctx.seed, 908));
        let sdm_report = run_realtime(&mut sdm, &frames, DatasetSource::Shd, 30.0).expect("sdm run");

        let ssm = Ssm::train(&ctx.dataset, &split.train, ctx.system.config(), split_seed(ctx.seed, 909))
            .expect("ssm");
        let mut ssm = TimedMethod::new(ssm, device, split_seed(ctx.seed, 910));
        let ssm_report = run_realtime(&mut ssm, &frames, DatasetSource::Shd, 30.0).expect("ssm run");

        for (name, r) in [("Anole", &anole), ("SDM", &sdm_report), ("SSM", &ssm_report)] {
            rows.push(vec![
                device.name().to_string(),
                name.to_string(),
                format!("{:.1}", r.achieved_fps),
                format!("{:.0}%", r.frames_dropped as f32 / r.frames_offered as f32 * 100.0),
                render::f1(r.processed_f1),
                render::f1(r.stream_f1),
            ]);
        }
    }
    format!(
        "Extension: real-time streaming at a 30 fps camera (dropped frames count as missed objects)\n{}",
        render::table(
            &["device", "method", "fps", "dropped", "F1 (processed)", "F1 (stream)"],
            &rows
        )
    )
}

/// Repository-size sweep: the paper fixes n = 19; how does the cross-scene
/// advantage scale with the number of specialists?
///
/// # Panics
///
/// Panics on training failure (never for a built context).
pub fn repository_size_sweep(ctx: &Context) -> String {
    use anole_core::eval::evaluate_refs;
    use anole_core::AnoleSystem;

    let split = ctx.dataset.split();
    let mut rows = Vec::new();
    for n in [4usize, 8, 12, 19] {
        let mut config = *ctx.system.config();
        config.repository.target_models = n;
        let system = AnoleSystem::train(&ctx.dataset, &config, split_seed(ctx.seed, 911))
            .expect("training");
        let mut engine = system.online_engine(DeviceKind::JetsonTx2Nx, split_seed(ctx.seed, 912));
        engine.warm(&(0..system.repository().len()).collect::<Vec<_>>());
        let result =
            evaluate_refs(&mut engine, &ctx.dataset, &split.test, 10).expect("evaluation");
        rows.push(vec![
            format!("{n}"),
            format!("{}", system.repository().len()),
            render::f1(result.overall_f1),
        ]);
    }
    format!(
        "Ablation: repository size n vs cross-scene F1 (paper fixes n = 19)\n{}",
        render::table(&["target n", "accepted", "cross-scene F1"], &rows)
    )
}

/// Fleet lifecycle week (extension): three devices drive a schedule where
/// an uncovered scene appears mid-week; drifting footage pools and an
/// overnight expansion deploys a new specialist.
///
/// # Panics
///
/// Panics on training or inference failure (never for a built context).
pub fn fleet_lifecycle_week(ctx: &Context) -> String {
    use anole_core::lifecycle::{run_fleet, FleetConfig};
    use anole_data::{Location, SceneAttributes, TimeOfDay, Weather};

    let familiar = ctx.dataset.clips()[0].attributes;
    let exotic = SceneAttributes::new(Weather::Foggy, Location::TollBooth, TimeOfDay::Night);
    let schedule = [familiar, familiar, exotic, exotic, exotic, exotic, familiar];
    let config = FleetConfig::default();
    let (report, final_system) = run_fleet(
        &ctx.dataset,
        ctx.system.clone(),
        &schedule,
        &config,
        split_seed(ctx.seed, 913),
    )
    .expect("fleet run");

    let rows: Vec<Vec<String>> = report
        .days
        .iter()
        .map(|d| {
            vec![
                format!("{}", d.day + 1),
                d.scenario.to_string(),
                render::f1(d.f1),
                format!("{:.0}%", d.drift_rate * 100.0),
                format!("{}", d.collected_frames),
                d.expanded_model
                    .map(|id| format!("trained M{id}"))
                    .unwrap_or_else(|| "-".into()),
                format!("{}", d.repository_size),
            ]
        })
        .collect();
    let (first, last) = report.improvement_on(exotic).unwrap_or((0.0, 0.0));
    format!(
        "Extension: fleet lifecycle week ({} devices; exotic-scene F1 {} → {}; \
         repository {} → {} models)\n{}",
        config.devices,
        render::f1(first),
        render::f1(last),
        ctx.system.repository().len(),
        final_system.repository().len(),
        render::table(
            &["day", "scenario", "fleet F1", "drift", "collected", "overnight", "models"],
            &rows
        )
    )
}

/// Offload alternative: per-frame latency of cloud offloading over an
/// unstable vehicular uplink vs Anole's local pipeline on the TX2 —
/// the §I motivation for cloud-free inference.
pub fn offload_ablation(ctx: &Context) -> String {
    let mut link = UnstableLink::new(UnstableLinkConfig::default());
    let mut rng = rng_from_seed(split_seed(ctx.seed, 904));
    let frame_bytes = 200_000; // a compressed 720p frame
    let n = 5_000;
    let mut latencies: Vec<f32> = Vec::with_capacity(n);
    let mut timeouts = 0usize;
    for _ in 0..n {
        match link.round_trip_ms(frame_bytes, &mut rng) {
            Ok(ms) => latencies.push(ms),
            Err(timeout) => {
                timeouts += 1;
                latencies.push(timeout);
            }
        }
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let q = |f: f64| latencies[((latencies.len() - 1) as f64 * f) as usize];

    let local = LatencyModel::for_device(DeviceKind::JetsonTx2Nx);
    let local_ms =
        local.mean_scene_decision_ms() + local.mean_inference_ms(ReferenceModel::Yolov3Tiny);

    let rows = vec![
        vec![
            "cloud offload (unstable link)".to_string(),
            format!("{:.0}", q(0.5)),
            format!("{:.0}", q(0.95)),
            format!("{:.0}", q(0.99)),
            format!("{:.1}%", timeouts as f64 / n as f64 * 100.0),
        ],
        vec![
            "Anole local (TX2 NX)".to_string(),
            format!("{local_ms:.0}"),
            format!("{local_ms:.0}"),
            format!("{local_ms:.0}"),
            "0.0%".to_string(),
        ],
    ];
    format!(
        "Ablation: offloaded vs local per-frame latency\n{}",
        render::table(
            &["pipeline", "p50 (ms)", "p95 (ms)", "p99 (ms)", "timeouts"],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    use crate::{Context, Scale};
    use anole_tensor::Seed;

    fn ctx() -> Context {
        Context::build(Scale::Small, Seed(23)).unwrap()
    }

    #[test]
    fn cache_policy_ablation_covers_policies() {
        let text = super::cache_policy_ablation(&ctx());
        for p in ["LFU", "LRU", "FIFO"] {
            assert!(text.contains(p), "missing {p}");
        }
    }

    #[test]
    fn delta_sweep_shows_tradeoff() {
        let text = super::delta_sweep_ablation(&ctx());
        assert!(text.contains("0.30"));
        assert!(text.contains("0.75"));
    }

    #[test]
    fn theta_sweep_reports_costs() {
        let text = super::theta_sweep_ablation(&ctx());
        assert!(text.contains("0.99"));
        assert!(text.contains("draws"));
    }

    #[test]
    fn latency_budget_sweep_escalates_models() {
        let text = super::latency_budget_sweep(&ctx());
        assert!(text.contains("budget (ms)"));
        assert!(text.contains("12"));
        assert!(text.contains("48"));
    }

    #[test]
    fn realtime_streaming_reports_both_devices() {
        let text = super::realtime_streaming(&ctx());
        assert!(text.contains("Jetson Nano"));
        assert!(text.contains("F1 (stream)"));
    }

    #[test]
    fn repository_size_sweep_reports_each_n() {
        let text = super::repository_size_sweep(&ctx());
        assert!(text.contains("target n"));
        assert!(text.contains("19"));
    }

    #[test]
    fn fleet_lifecycle_week_renders_days() {
        let text = super::fleet_lifecycle_week(&ctx());
        assert!(text.contains("day"));
        assert!(text.contains("overnight"));
    }

    #[test]
    fn offload_ablation_shows_tail_blowup() {
        let text = super::offload_ablation(&ctx());
        assert!(text.contains("cloud offload"));
        assert!(text.contains("Anole local"));
    }
}
