//! Plain-text rendering helpers for regenerated tables and figures.

/// Renders an ASCII table with a header row.
///
/// Column widths adapt to the longest cell. Rows shorter than the header are
/// right-padded with empty cells.
#[allow(clippy::needless_range_loop)] // widths/cells are parallel arrays
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    out.push('|');
    for (h, w) in header.iter().zip(&widths) {
        out.push_str(&format!(" {h:<w$} |"));
    }
    out.push('\n');
    sep(&mut out);
    for row in rows {
        out.push('|');
        for i in 0..cols {
            let cell = row.get(i).map(String::as_str).unwrap_or("");
            out.push_str(&format!(" {cell:<width$} |", width = widths[i]));
        }
        out.push('\n');
    }
    sep(&mut out);
    out
}

/// Renders a horizontal ASCII bar chart of labelled values in `[0, max]`.
pub fn bars(items: &[(String, f64)], width: usize) -> String {
    let max = items.iter().map(|&(_, v)| v).fold(f64::MIN_POSITIVE, f64::max);
    let label_width = items.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in items {
        let filled = ((value / max) * width as f64).round() as usize;
        out.push_str(&format!(
            "  {label:<label_width$} | {}{} {value:.3}\n",
            "█".repeat(filled.min(width)),
            " ".repeat(width - filled.min(width)),
        ));
    }
    out
}

/// Renders a CDF (or any x→fraction series) as quantile rows.
pub fn cdf_rows(cdf: &[anole_tensor::CdfPoint]) -> Vec<Vec<String>> {
    const FRACTIONS: [f32; 5] = [0.1, 0.25, 0.5, 0.75, 0.9];
    FRACTIONS
        .iter()
        .map(|&target| {
            let point = cdf
                .iter()
                .find(|p| p.fraction >= target)
                .or(cdf.last())
                .copied()
                .unwrap_or(anole_tensor::CdfPoint {
                    value: 0.0,
                    fraction: 0.0,
                });
            vec![format!("p{:.0}", target * 100.0), format!("{:.3}", point.value)]
        })
        .collect()
}

/// Formats a `f32` F1 score consistently.
pub fn f1(value: f32) -> String {
    format!("{value:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_all_cells() {
        let text = table(
            &["method", "f1"],
            &[
                vec!["Anole".into(), "0.564".into()],
                vec!["SDM".into(), "0.507".into()],
            ],
        );
        assert!(text.contains("Anole"));
        assert!(text.contains("0.507"));
        assert!(text.lines().count() >= 6);
    }

    #[test]
    fn table_pads_short_rows() {
        let text = table(&["a", "b", "c"], &[vec!["x".into()]]);
        assert!(text.contains("| x |"));
    }

    #[test]
    fn bars_scale_to_max() {
        let text = bars(
            &[("big".into(), 1.0), ("small".into(), 0.5)],
            10,
        );
        let lines: Vec<&str> = text.lines().collect();
        let count = |l: &str| l.matches('█').count();
        assert_eq!(count(lines[0]), 10);
        assert_eq!(count(lines[1]), 5);
    }

    #[test]
    fn cdf_rows_cover_standard_quantiles() {
        let cdf = anole_tensor::empirical_cdf(&(0..100).map(|i| i as f32).collect::<Vec<_>>(), 100);
        let rows = cdf_rows(&cdf);
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[2][0], "p50");
    }

    #[test]
    fn f1_formatting() {
        assert_eq!(f1(0.56423), "0.564");
    }
}
