//! `gateway_dash` — renders a chaos-fleet serving run as a text dashboard:
//! per-metric sparklines over the gateway's SLO time-series rings, windowed
//! rates and latency quantiles, the burn-rate alert log, and the flight
//! recorders of every quarantined session.
//!
//! The dashboard reads only the gateway's own deterministic run counters
//! (via [`Gateway::slo_series`]), so its output is byte-identical across
//! runs and works in obs-off builds — it needs no exporter endpoint and no
//! `obs` feature.
//!
//! Usage:
//!
//! ```text
//! gateway_dash [--sessions N] [--frames N] [--seed S] [--span N] [--export json|range]
//! ```
//!
//! `--span` sets how many trailing windows the rate/quantile columns
//! aggregate (default 16). `--export` replaces the dashboard with the raw
//! [`SeriesRecorder`] JSON or its Prometheus `query_range`-style matrix.

use std::process::ExitCode;

use anole_core::gateway::{Gateway, GatewayConfig, GatewayReport, SessionSpec};
use anole_core::omi::FaultPlan;
use anole_core::{AnoleConfig, AnoleSystem};
use anole_data::{DatasetConfig, DrivingDataset, Frame};
use anole_obs::{AlertSeverity, SeriesRecorder, SloSpec};
use anole_tensor::{split_seed, Seed};

const SPARK: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders per-window values as a unicode sparkline, oldest first.
fn sparkline(values: &[f64]) -> String {
    let max = values.iter().copied().fold(0.0f64, f64::max);
    values
        .iter()
        .map(|&v| {
            if max <= 0.0 {
                SPARK[0]
            } else {
                let idx = (v / max * (SPARK.len() - 1) as f64).round() as usize;
                SPARK[idx.min(SPARK.len() - 1)]
            }
        })
        .collect()
}

fn session_frames(dataset: &DrivingDataset, session: usize, n: usize) -> Vec<Frame> {
    let split = dataset.split();
    (0..n)
        .map(|k| dataset.frame(split.test[(session * 13 + k) % split.test.len()]).clone())
        .collect()
}

fn run_fleet<'a>(
    system: &'a AnoleSystem,
    dataset: &DrivingDataset,
    sessions: usize,
    frames_each: usize,
    seed: u64,
) -> (GatewayReport, Gateway<'a>) {
    let config = GatewayConfig {
        max_sessions: sessions,
        deadline_ms: 120.0,
        slow_factor: 8.0,
        flight_recorder_frames: 8,
        ..GatewayConfig::default()
    };
    let mut gateway = Gateway::new(system, config)
        .expect("gateway config")
        .with_fault_plan(
            FaultPlan::new(Seed(seed))
                .with_queue_overflow_rate(0.05)
                .with_slow_consumer_rate(0.4)
                .with_session_stall_rate(0.05),
        )
        .with_slos(vec![
            SloSpec::error_ratio(
                "gateway-shed-ratio",
                "gateway.frames.shed",
                "gateway.frames.total",
                0.01,
            )
            .with_slow_windows(8),
            SloSpec::quantile("gateway-step-latency", "gateway.step.latency_ms", 0.99, 120.0)
                .with_slow_windows(8),
        ])
        .with_slo_escalation();
    for i in 0..sessions {
        gateway
            .admit(SessionSpec::new(
                session_frames(dataset, i, frames_each),
                split_seed(Seed(seed), 60_000 + i as u64),
            ))
            .expect("admit");
    }
    let report = gateway.run();
    (report, gateway)
}

fn render_dashboard(report: &GatewayReport, series: &SeriesRecorder, tier: u32, span: usize) {
    println!("┌─ anole fleet dashboard ─ last {} of {} windows", series.windows(), report.windows);
    println!(
        "│ sessions={} processed={} shed={} dropped={} quarantined={} shed_tier={}",
        report.sessions.len(),
        report.frames_processed,
        report.frames_shed,
        report.frames_dropped,
        report.quarantined.len(),
        tier,
    );
    println!("├─ counters (per-window deltas, oldest→newest; rate over last {span} windows)");
    for name in series.metric_names() {
        if let Some(deltas) = series.counter_deltas(name) {
            let values: Vec<f64> = deltas.iter().map(|&d| d as f64).collect();
            println!(
                "│ {name:<30} {} rate={:.2}/win delta={}",
                sparkline(&values),
                series.rate(name, span),
                series.delta(name, span),
            );
        }
    }
    println!("├─ gauges (last value)");
    for name in series.metric_names() {
        if let Some(v) = series.gauge_last(name) {
            println!("│ {name:<30} {v:.1}");
        }
    }
    println!("├─ latency/depth quantiles over last {span} windows");
    for name in ["gateway.step.latency_ms", "gateway.queue.depth"] {
        if let Some(merged) = series.merged_over(name, span) {
            println!(
                "│ {name:<30} p50={:.1} p99={:.1} n={}",
                series.quantile_over(name, span, 0.5),
                series.quantile_over(name, span, 0.99),
                merged.count(),
            );
        }
    }
    println!("├─ burn-rate alerts ({} total)", report.slo_violations.len());
    for alert in &report.slo_violations {
        let badge = match alert.severity {
            AlertSeverity::Page => "PAGE",
            AlertSeverity::Warn => "warn",
        };
        println!("│ [{badge}] w{:>4} {:<22} {}", alert.window, alert.slo, alert.detail);
    }
    println!("├─ quarantined-session flight recorders");
    for q in &report.quarantined {
        println!("│ session {} ({:?}):", q.session, q.reason);
        match &q.flight {
            Some(flight) => {
                for line in flight.render().lines() {
                    println!("│   {line}");
                }
            }
            None => println!("│   (recorder unarmed)"),
        }
    }
    println!("└─");
}

fn main() -> ExitCode {
    let mut sessions = 24usize;
    let mut frames_each = 10usize;
    let mut seed = 13u64;
    let mut span = 16usize;
    let mut export: Option<String> = None;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--sessions" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => sessions = n,
                _ => {
                    eprintln!("error: --sessions needs a positive number");
                    return ExitCode::FAILURE;
                }
            },
            "--frames" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => frames_each = n,
                _ => {
                    eprintln!("error: --frames needs a positive number");
                    return ExitCode::FAILURE;
                }
            },
            "--seed" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(s) => seed = s,
                None => {
                    eprintln!("error: --seed needs a number");
                    return ExitCode::FAILURE;
                }
            },
            "--span" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => span = n,
                _ => {
                    eprintln!("error: --span needs a positive number");
                    return ExitCode::FAILURE;
                }
            },
            "--export" => match iter.next() {
                Some(mode) if mode == "json" || mode == "range" => export = Some(mode),
                _ => {
                    eprintln!("error: --export needs `json` or `range`");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "gateway_dash [--sessions N] [--frames N] [--seed S] [--span N] \
                     [--export json|range]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(9601));
    let system = AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(9602)).expect("training");
    let (report, gateway) = run_fleet(&system, &dataset, sessions, frames_each, seed);
    let series = gateway.slo_series().expect("SLO runtime armed");

    match export.as_deref() {
        Some("json") => println!("{}", series.to_json()),
        Some("range") => println!("{}", series.to_prometheus_range()),
        _ => render_dashboard(&report, series, gateway.slo_shed_tier(), span),
    }
    ExitCode::SUCCESS
}
