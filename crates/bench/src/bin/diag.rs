//! `diag` — routing diagnostics: how much of Anole's headroom the decision
//! model captures, per split.
//!
//! For each frame we compute the F1 of (a) the oracle best repository model,
//! (b) the decision-routed model (no cache), and (c) every model's mean —
//! separating "the repository cannot cover this frame" from "the router
//! picked the wrong model".

use anole_bench::{Context, Scale};
use anole_core::osp::CompressedModel;
use anole_data::FrameRef;
use anole_detect::DetectionCounts;
use anole_tensor::Seed;

fn frame_f1(model: &CompressedModel, frame: &anole_data::Frame, threshold: f32) -> f32 {
    let pred = model.detect(&frame.features, threshold).expect("width");
    let mut c = DetectionCounts::default();
    c.accumulate(&pred, &frame.truth);
    c.f1()
}

fn analyze(ctx: &Context, name: &str, refs: &[FrameRef]) {
    let threshold = ctx.system.config().detector.threshold;
    let mut oracle = DetectionCounts::default();
    let mut routed = DetectionCounts::default();
    let mut top3_contains_best = 0usize;
    let mut routed_regret = 0.0f32;
    for &r in refs {
        let frame = ctx.dataset.frame(r);
        let mut best = (0usize, -1.0f32);
        for m in ctx.system.repository().models() {
            let f1 = frame_f1(m, frame, threshold);
            if f1 > best.1 {
                best = (m.id, f1);
            }
        }
        let ranking = ctx.system.decision().rank(&frame.features).expect("rank");
        let chosen = ranking[0];
        if ranking[..3.min(ranking.len())].contains(&best.0) {
            top3_contains_best += 1;
        }
        let chosen_f1 = frame_f1(ctx.system.repository().model(chosen), frame, threshold);
        routed_regret += best.1.max(0.0) - chosen_f1;

        let best_pred = ctx
            .system
            .repository()
            .model(best.0)
            .detect(&frame.features, threshold)
            .expect("width");
        oracle.accumulate(&best_pred, &frame.truth);
        let chosen_pred = ctx
            .system
            .repository()
            .model(chosen)
            .detect(&frame.features, threshold)
            .expect("width");
        routed.accumulate(&chosen_pred, &frame.truth);
    }
    println!(
        "{name}: oracle F1 {:.3} | routed F1 {:.3} | mean regret {:.3} | top3 hit {:.2}",
        oracle.f1(),
        routed.f1(),
        routed_regret / refs.len().max(1) as f32,
        top3_contains_best as f32 / refs.len().max(1) as f32,
    );
}

/// F1 of the best *fixed* model per clip (scene-level oracle): the realistic
/// headroom for a per-scene router, free of per-frame selection noise.
fn scene_oracle(ctx: &Context, name: &str, clips: &[usize]) {
    let threshold = ctx.system.config().detector.threshold;
    let mut total = DetectionCounts::default();
    for &c in clips {
        let refs = ctx.dataset.clip_frames(c);
        let mut best: (usize, f32) = (0, -1.0);
        for m in ctx.system.repository().models() {
            let f1 = m.evaluate_f1(&ctx.dataset, &refs, threshold).expect("width");
            if f1 > best.1 {
                best = (m.id, f1);
            }
        }
        let model = ctx.system.repository().model(best.0);
        for &r in &refs {
            let frame = ctx.dataset.frame(r);
            let pred = model.detect(&frame.features, threshold).expect("width");
            total.accumulate(&pred, &frame.truth);
        }
    }
    println!("{name}: scene-oracle F1 {:.3}", total.f1());
}

fn main() {
    let scale = if std::env::args().any(|a| a == "--small") {
        Scale::Small
    } else {
        Scale::Paper
    };
    let ctx = Context::build(scale, Seed::default()).expect("training");
    let split = ctx.dataset.split();
    analyze(&ctx, "validation", &split.val);
    analyze(&ctx, "test      ", &split.test);
    let unseen: Vec<FrameRef> = split
        .unseen_clips
        .iter()
        .flat_map(|&c| ctx.dataset.clip_frames(c))
        .collect();
    analyze(&ctx, "unseen    ", &unseen);
    scene_oracle(&ctx, "unseen    ", &split.unseen_clips);
    let seen: Vec<usize> = (0..ctx.dataset.clips().len())
        .filter(|&c| ctx.dataset.clips()[c].seen)
        .collect();
    scene_oracle(&ctx, "seen      ", &seen);

    // Online-engine latency/hedging profile per split.
    for (name, refs) in [("test", &split.test), ("unseen", &unseen)] {
        let mut engine = ctx
            .system
            .online_engine(anole_device::DeviceKind::JetsonTx2Nx, Seed(1));
        engine.warm(&(0..ctx.system.repository().len()).collect::<Vec<_>>());
        for &r in refs.iter() {
            let frame = ctx.dataset.frame(r);
            engine.step(&frame.features).expect("step");
        }
        println!(
            "{name}: mean latency {:.1} ms | hedge rate {:.2}",
            engine.mean_latency_ms(),
            engine.hedge_rate()
        );
        let mut confidences: Vec<f32> = refs
            .iter()
            .map(|&r| {
                let frame = ctx.dataset.frame(r);
                ctx.system.decision().best_model(&frame.features).expect("rank").1
            })
            .collect();
        confidences.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let q = |f: f64| confidences[((confidences.len() - 1) as f64 * f) as usize];
        println!(
            "{name}: top-1 suitability p10 {:.2} p25 {:.2} p50 {:.2} p75 {:.2} p90 {:.2}",
            q(0.1), q(0.25), q(0.5), q(0.75), q(0.9)
        );
    }
}
