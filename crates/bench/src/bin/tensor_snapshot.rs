//! `tensor_snapshot` — machine-readable timing snapshot of the parallel
//! compute layer, written to `BENCH_tensor.json`.
//!
//! Unlike the criterion benches (statistical, human-oriented), this emits a
//! small JSON file suitable for diffing across commits and machines: wall
//! times for the naive/tiled-serial/tiled-parallel matmul kernels, the
//! transpose-fused variants, the fused-vs-reference optimizer steps, one
//! workspace-reused training epoch, the k-means assignment fan-out, and the
//! Algorithm 1 repository training loop at threads = 1 vs auto.
//!
//! Usage:
//!
//! ```text
//! tensor_snapshot [--out PATH] [--reps N] [--skip-train]
//! ```

use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

use anole_cluster::KMeans;
use anole_core::osp::{ModelRepository, SceneModel};
use anole_core::{AnoleConfig, SceneModelConfig};
use anole_data::{DatasetConfig, DrivingDataset};
use anole_nn::{Activation, Mlp, OptimizerKind, TrainConfig, Trainer, Workspace};
use anole_tensor::{rng_from_seed, set_parallel_config, Matrix, ParallelConfig, QuantMatrix, Seed};

fn serial() -> ParallelConfig {
    ParallelConfig {
        threads: 1,
        ..ParallelConfig::default()
    }
}

fn parallel() -> ParallelConfig {
    ParallelConfig {
        min_par_elems: 1,
        ..ParallelConfig::default() // threads = 0: auto / ANOLE_THREADS
    }
}

/// Best-of-`reps` wall time in milliseconds.
fn time_ms<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0.0f32;
            for k in 0..a.cols() {
                acc += a.get(i, k) * b.get(k, j);
            }
            out.set(i, j, acc);
        }
    }
    out
}

fn main() -> ExitCode {
    let mut out_path = String::from("BENCH_tensor.json");
    let mut reps = 5usize;
    let mut skip_train = false;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => match iter.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("error: --out needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--reps" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => reps = n,
                None => {
                    eprintln!("error: --reps needs a number");
                    return ExitCode::FAILURE;
                }
            },
            "--skip-train" => skip_train = true,
            "--help" | "-h" => {
                println!("tensor_snapshot [--out PATH] [--reps N] [--skip-train]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let auto_threads = parallel().effective_threads();
    let mut kernels = Vec::new();
    let mut record = |name: &str, variant: &str, threads: usize, ms: f64| {
        eprintln!("[tensor_snapshot] {name}/{variant} (threads={threads}): {ms:.3} ms");
        kernels.push(serde_json::json!({
            "name": name, "variant": variant, "threads": threads, "ms": ms,
        }));
    };

    // Matmul kernels.
    for n in [64usize, 256] {
        let mut rng = rng_from_seed(Seed(9_000 + n as u64));
        let a = Matrix::random_normal(n, n, 1.0, &mut rng);
        let b = Matrix::random_normal(n, n, 1.0, &mut rng);
        let name = format!("matmul_{n}");
        record(&name, "naive", 1, time_ms(reps, || {
            black_box(naive_matmul(&a, &b));
        }));
        set_parallel_config(serial());
        record(&name, "tiled_serial", 1, time_ms(reps, || {
            black_box(a.matmul(&b).unwrap());
        }));
        set_parallel_config(parallel());
        record(&name, "tiled_parallel", auto_threads, time_ms(reps, || {
            black_box(a.matmul(&b).unwrap());
        }));
        if n == 256 {
            let bt = b.transpose();
            for (cfg, variant, threads) in
                [(serial(), "serial", 1), (parallel(), "parallel", auto_threads)]
            {
                set_parallel_config(cfg);
                record("matmul_tn_256", variant, threads, time_ms(reps, || {
                    black_box(a.matmul_tn(&b).unwrap());
                }));
                set_parallel_config(cfg);
                record("matmul_nt_256", variant, threads, time_ms(reps, || {
                    black_box(a.matmul_nt(&bt).unwrap());
                }));
            }
        }
    }

    // Int8 kernels: per-row symmetric quantization and the i8×i8→i32
    // k-blocked matmul. `matmul_i8` is NT-shaped (out[i][j] = a.row(i) ·
    // b.row(j) dequantized), so its f32 comparator is the tiled matmul of
    // the same 256³ problem; the quantize row prices the dynamic
    // per-activation quantization the serving path pays per layer.
    {
        let mut rng = rng_from_seed(Seed(9_356));
        let a = Matrix::random_normal(256, 256, 1.0, &mut rng);
        let b = Matrix::random_normal(256, 256, 1.0, &mut rng);
        record("quantize_256", "per_row", 1, time_ms(reps.max(20), || {
            black_box(QuantMatrix::quantize(&a));
        }));
        let aq = QuantMatrix::quantize(&a);
        let bq = QuantMatrix::quantize(&b);
        set_parallel_config(serial());
        record("matmul_i8_256", "serial", 1, time_ms(reps, || {
            black_box(aq.matmul_i8(&bq).unwrap());
        }));
        set_parallel_config(parallel());
        record("matmul_i8_256", "parallel", auto_threads, time_ms(reps, || {
            black_box(aq.matmul_i8(&bq).unwrap());
        }));
    }

    // Fused vs reference optimizer steps on a 256->512->256 model.
    {
        let mut rng = rng_from_seed(Seed(6_600));
        let mut model = Mlp::builder(256)
            .hidden(512, Activation::Relu)
            .output(256)
            .build(Seed(6));
        let grads: Vec<(Matrix, Matrix)> = model
            .layers()
            .iter()
            .map(|l| {
                let w = l.weights();
                (
                    Matrix::random_normal(w.rows(), w.cols(), 0.1, &mut rng),
                    Matrix::random_normal(1, l.bias().cols(), 0.1, &mut rng),
                )
            })
            .collect();
        set_parallel_config(serial());
        let kinds = [
            ("optim_step_sgd", OptimizerKind::Sgd { lr: 0.01, momentum: 0.9 }),
            ("optim_step_adam", OptimizerKind::Adam { lr: 0.01 }),
        ];
        for (name, kind) in kinds {
            let mut fused = kind.build();
            record(name, "fused", 1, time_ms(reps.max(50), || {
                fused.step(&mut model, &grads).unwrap();
            }));
            let mut reference = kind.build();
            record(name, "reference", 1, time_ms(reps.max(50), || {
                reference.step_reference(&mut model, &grads).unwrap();
            }));
        }
    }

    // One epoch of the workspace-reusing trainer: 512 samples x 32 features,
    // 8 classes, batch 128 (chunked gradient path), warm workspace. The
    // warm-up call inside `time_ms` performs all buffer allocation; the
    // measured epochs run allocation-free.
    {
        let mut rng = rng_from_seed(Seed(6_700));
        let tx = Matrix::random_normal(512, 32, 1.0, &mut rng);
        let tlabels: Vec<usize> = (0..512).map(|i| i % 8).collect();
        let tcfg = TrainConfig {
            epochs: 1,
            batch_size: 128,
            ..TrainConfig::default()
        };
        for (cfg, variant, threads) in
            [(serial(), "serial", 1), (parallel(), "parallel", auto_threads)]
        {
            set_parallel_config(cfg);
            let mut net = Mlp::builder(32)
                .hidden(64, Activation::Relu)
                .output(8)
                .build(Seed(7));
            let trainer = Trainer::new(tcfg);
            let mut ws = Workspace::new();
            record("train_epoch_512x32", variant, threads, time_ms(reps, || {
                black_box(
                    trainer
                        .fit_classifier_ws(&mut net, &tx, &tlabels, Seed(8), &mut ws)
                        .unwrap(),
                );
            }));
        }
    }

    // K-means assignment fan-out.
    let mut rng = rng_from_seed(Seed(5_500));
    let mut pts = Matrix::random_normal(4096, 16, 1.0, &mut rng);
    for i in 0..pts.rows() {
        let offset = (i % 8) as f32 * 10.0;
        for v in pts.row_mut(i) {
            *v += offset;
        }
    }
    let km = KMeans::new(8).with_max_iterations(10);
    for (cfg, variant, threads) in
        [(serial(), "serial", 1), (parallel(), "parallel", auto_threads)]
    {
        set_parallel_config(cfg);
        record("kmeans_4096x16_k8", variant, threads, time_ms(reps, || {
            black_box(km.fit(&pts, Seed(1)).unwrap());
        }));
    }

    // Algorithm 1 repository training loop (the TCM fan-out).
    if !skip_train {
        let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(71));
        let split = dataset.split();
        let config = AnoleConfig::fast();
        let mut scfg = SceneModelConfig::default();
        scfg.train.epochs = 10;
        let scene =
            SceneModel::train(&dataset, &split.train, &scfg, Seed(72)).expect("scene model");
        for (cfg, variant, threads) in
            [(serial(), "serial", 1), (parallel(), "parallel", auto_threads)]
        {
            set_parallel_config(cfg);
            record("osp_repository_train_small", variant, threads, time_ms(1, || {
                black_box(
                    ModelRepository::train(
                        &dataset,
                        &scene,
                        &split.train,
                        &split.val,
                        &config,
                        Seed(73),
                    )
                    .expect("repository"),
                );
            }));
        }
    }
    set_parallel_config(ParallelConfig::default());

    let find = |name: &str, variant: &str| -> Option<f64> {
        kernels
            .iter()
            .find(|k| k["name"] == name && k["variant"] == variant)
            .and_then(|k| k["ms"].as_f64())
    };
    let ratio = |name: &str, from: &str, to: &str| -> Option<f64> {
        match (find(name, from), find(name, to)) {
            (Some(a), Some(b)) if b > 0.0 => Some(a / b),
            _ => None,
        }
    };
    let report = serde_json::json!({
        "schema": "anole-tensor-snapshot/1",
        "host": { "cores": cores, "auto_threads": auto_threads },
        "config": { "tile": ParallelConfig::default().tile, "reps": reps },
        "kernels": kernels,
        "speedups": {
            "matmul_256_tiled_serial_vs_naive": ratio("matmul_256", "naive", "tiled_serial"),
            "matmul_256_parallel_vs_naive": ratio("matmul_256", "naive", "tiled_parallel"),
            "matmul_256_parallel_vs_serial": ratio("matmul_256", "tiled_serial", "tiled_parallel"),
            // ISSUE acceptance gate: must stay within 1.5x of plain matmul.
            "matmul_nt_256_over_matmul_256_serial":
                match (find("matmul_nt_256", "serial"), find("matmul_256", "tiled_serial")) {
                    (Some(nt), Some(mm)) if mm > 0.0 => Some(nt / mm),
                    _ => None,
                },
            // ISSUE acceptance gate: i8 must beat tiled f32 by at least 2x.
            "i8_vs_f32":
                match (find("matmul_256", "tiled_serial"), find("matmul_i8_256", "serial")) {
                    (Some(f32_ms), Some(i8_ms)) if i8_ms > 0.0 => Some(f32_ms / i8_ms),
                    _ => None,
                },
            "matmul_i8_256_parallel_vs_serial": ratio("matmul_i8_256", "serial", "parallel"),
            "optim_step_sgd_reference_vs_fused": ratio("optim_step_sgd", "reference", "fused"),
            "optim_step_adam_reference_vs_fused": ratio("optim_step_adam", "reference", "fused"),
            "train_epoch_parallel_vs_serial": ratio("train_epoch_512x32", "serial", "parallel"),
            "kmeans_parallel_vs_serial": ratio("kmeans_4096x16_k8", "serial", "parallel"),
            "osp_train_parallel_vs_serial":
                ratio("osp_repository_train_small", "serial", "parallel"),
        },
    });
    let pretty = serde_json::to_string_pretty(&report).expect("serialize");
    if let Err(e) = std::fs::write(&out_path, pretty + "\n") {
        eprintln!("error: writing {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("[tensor_snapshot] wrote {out_path}");
    ExitCode::SUCCESS
}
