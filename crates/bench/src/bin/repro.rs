//! `repro` — regenerates every table and figure of the Anole paper.
//!
//! Usage:
//!
//! ```text
//! repro [--scale paper|small] [--seed N] [--only fig3,fig8,tab3,...] [--ablations]
//! ```
//!
//! With no `--only`, all tables and figures are regenerated in paper order.
//! Run with `--release` for the paper scale.

use std::process::ExitCode;

use anole_bench::{experiments, Context, Scale};
use anole_tensor::Seed;

struct Args {
    scale: Scale,
    seed: Seed,
    only: Option<Vec<String>>,
    ablations: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scale: Scale::Paper,
        seed: Seed::default(),
        only: None,
        ablations: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                args.scale = match iter.next().as_deref() {
                    Some("paper") => Scale::Paper,
                    Some("small") => Scale::Small,
                    other => return Err(format!("unknown scale {other:?}")),
                }
            }
            "--seed" => {
                let v = iter
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse::<u64>()
                    .map_err(|e| format!("bad seed: {e}"))?;
                args.seed = Seed(v);
            }
            "--only" => {
                let list = iter.next().ok_or("--only needs a list")?;
                args.only = Some(list.split(',').map(|s| s.trim().to_string()).collect());
            }
            "--ablations" => args.ablations = true,
            "--help" | "-h" => {
                println!(
                    "repro: regenerate the Anole paper's tables and figures\n\
                     options: --scale paper|small, --seed N, --only <ids>, --ablations\n\
                     ids: tab1 tab2 tab3 tab4 fig3 fig4a fig4b fig5 fig6 fig7a fig7b fig8 fig10 fig11\n\
                     --ablations adds: cache-policy, delta, theta, latency-budget, realtime, repository-size, offload"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(args)
}

fn wanted(only: &Option<Vec<String>>, id: &str) -> bool {
    match only {
        None => true,
        Some(list) => list.iter().any(|x| x == id),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Context-free artifacts first (instant).
    if wanted(&args.only, "tab1") {
        println!("{}", experiments::tab1());
    }
    if wanted(&args.only, "tab4") {
        println!("{}", experiments::tab4());
    }
    if wanted(&args.only, "fig11") {
        println!("{}", experiments::fig11());
    }

    let needs_ctx = ["tab2", "tab3", "fig3", "fig4a", "fig4b", "fig5", "fig6", "fig7a", "fig7b", "fig8", "fig10"]
        .iter()
        .any(|id| wanted(&args.only, id))
        || args.ablations;
    if !needs_ctx {
        return ExitCode::SUCCESS;
    }

    eprintln!(
        "[repro] building context at {:?} scale, {} …",
        args.scale, args.seed
    );
    let start = std::time::Instant::now();
    let ctx = match Context::build(args.scale, args.seed) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: training failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "[repro] trained {} compressed models over {} frames in {:.1}s",
        ctx.system.repository().len(),
        ctx.dataset.frame_count(),
        start.elapsed().as_secs_f32()
    );

    type Runner = fn(&Context) -> String;
    let runners: [(&str, Runner); 11] = [
        ("fig3", experiments::fig3 as Runner),
        ("fig4a", experiments::fig4a),
        ("fig4b", experiments::fig4b),
        ("fig5", experiments::fig5),
        ("fig6", experiments::fig6),
        ("fig7a", experiments::fig7a),
        ("fig7b", experiments::fig7b),
        ("fig8", experiments::fig8),
        ("tab2", experiments::tab2),
        ("tab3", experiments::tab3),
        ("fig10", experiments::fig10),
    ];
    for (id, run) in runners {
        if wanted(&args.only, id) {
            let t = std::time::Instant::now();
            println!("{}", run(&ctx));
            eprintln!("[repro] {id} done in {:.1}s", t.elapsed().as_secs_f32());
        }
    }

    if args.ablations {
        for (id, run) in [
            ("ablation:cache-policy", experiments::cache_policy_ablation as Runner),
            ("ablation:delta", experiments::delta_sweep_ablation),
            ("ablation:theta", experiments::theta_sweep_ablation),
            ("ablation:latency-budget", experiments::latency_budget_sweep),
            ("ext:realtime", experiments::realtime_streaming),
            ("ext:lifecycle", experiments::fleet_lifecycle_week),
            ("ablation:repository-size", experiments::repository_size_sweep),
            ("ablation:offload", experiments::offload_ablation),
        ] {
            let t = std::time::Instant::now();
            println!("{}", run(&ctx));
            eprintln!("[repro] {id} done in {:.1}s", t.elapsed().as_secs_f32());
        }
    }

    ExitCode::SUCCESS
}
