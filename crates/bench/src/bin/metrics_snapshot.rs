//! `metrics_snapshot` — end-to-end observability snapshot, written to
//! `BENCH_obs.json` plus a flamegraph-style `trace.txt`.
//!
//! Requires the `obs` feature (the bin is skipped by plain builds). Trains a
//! fast Anole system, runs the online engine over held-out frames, then
//! exports the full metrics registry: counters/gauges for every OSP stage
//! (scene model, TCM, ASS, TDM), the trainer, the slot cache, the fault
//! machinery, and the engine's latency/fallback histograms, together with
//! the hierarchical span trace.
//!
//! Usage:
//!
//! ```text
//! metrics_snapshot [--out PATH] [--trace PATH] [--frames N] [--prometheus]
//! ```

use std::process::ExitCode;

use anole_core::omi::Telemetry;
use anole_core::{AnoleConfig, AnoleSystem};
use anole_data::{DatasetConfig, DrivingDataset};
use anole_device::DeviceKind;
use anole_tensor::Seed;

fn main() -> ExitCode {
    let mut out_path = String::from("BENCH_obs.json");
    let mut trace_path = String::from("trace.txt");
    let mut frames = 200usize;
    let mut prometheus = false;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => match iter.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("error: --out needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--trace" => match iter.next() {
                Some(p) => trace_path = p,
                None => {
                    eprintln!("error: --trace needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--frames" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => frames = n,
                None => {
                    eprintln!("error: --frames needs a number");
                    return ExitCode::FAILURE;
                }
            },
            "--prometheus" => prometheus = true,
            "--help" | "-h" => {
                println!("metrics_snapshot [--out PATH] [--trace PATH] [--frames N] [--prometheus]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    // OSP: every training stage records its spans, counters, and
    // duration/rate gauges as a side effect.
    let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(1));
    let system = AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(2)).expect("training");

    // OMI: run the engine over held-out frames so the cache, fallback, and
    // latency metrics are live.
    let mut engine = system.online_engine(DeviceKind::JetsonTx2Nx, Seed(3));
    engine.warm(&(0..system.repository().len()).collect::<Vec<_>>());
    let split = dataset.split();
    let mut telemetry = Telemetry::new();
    for &r in split.test.iter().cycle().take(frames) {
        let frame = dataset.frame(r);
        let outcome = engine.step(&frame.features).expect("step");
        telemetry.record(&outcome, Some(&frame.truth));
    }

    let snapshot = anole_obs::snapshot();
    let metric_names = snapshot.metric_names();
    eprintln!(
        "[metrics_snapshot] {} distinct metrics, {} spans (dropped events: {})",
        metric_names.len(),
        snapshot.spans.len(),
        snapshot.dropped_span_events
    );
    let summary = telemetry.summary();
    let report = serde_json::json!({
        "schema": "anole-obs-snapshot/1",
        "frames": frames,
        "metric_names": metric_names,
        "engine_summary": summary,
        "snapshot": snapshot,
    });
    let pretty = serde_json::to_string_pretty(&report).expect("serialize");
    if let Err(e) = std::fs::write(&out_path, pretty + "\n") {
        eprintln!("error: writing {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("[metrics_snapshot] wrote {out_path}");
    if let Err(e) = std::fs::write(&trace_path, anole_obs::render_trace()) {
        eprintln!("error: writing {trace_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("[metrics_snapshot] wrote {trace_path}");
    if prometheus {
        print!("{}", anole_obs::to_prometheus());
    }
    ExitCode::SUCCESS
}
