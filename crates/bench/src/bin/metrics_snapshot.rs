//! `metrics_snapshot` — end-to-end observability snapshot, written to
//! `BENCH_obs.json` plus a flamegraph-style `trace.txt`.
//!
//! Requires the `obs` feature (the bin is skipped by plain builds). Trains a
//! fast Anole system, runs the online engine over held-out frames, then
//! exports the full metrics registry: counters/gauges for every OSP stage
//! (scene model, TCM, ASS, TDM), the trainer, the slot cache, the fault
//! machinery, and the engine's latency/fallback histograms, together with
//! the hierarchical span trace. The serving loop also drives a
//! [`SeriesRecorder`] window capture every `WINDOW_FRAMES` frames and feeds
//! an [`SloEngine`], so the artifact includes windowed rates/quantiles and
//! any burn-rate alerts, plus a flight-recorder overhead row (wall-clock
//! ns/frame with per-session recorders on vs off) backing the "strictly
//! passive" claim with a number.
//!
//! Usage:
//!
//! ```text
//! metrics_snapshot [--out PATH] [--trace PATH] [--frames N] [--prometheus]
//! ```

use std::process::ExitCode;
use std::time::Instant;

use anole_core::omi::Telemetry;
use anole_core::{AnoleConfig, AnoleSystem};
use anole_data::{DatasetConfig, DrivingDataset};
use anole_device::DeviceKind;
use anole_obs::{SeriesRecorder, SloEngine, SloSpec};
use anole_tensor::Seed;

/// Serving frames per captured time-series window.
const WINDOW_FRAMES: usize = 20;

/// Ring capacity (windows) of the bench recorder.
const SERIES_WINDOWS: usize = 32;

/// Flight-recorder ring size for the overhead measurement.
const FLIGHT_FRAMES: usize = 64;

/// Wall-clock nanoseconds per frame for one engine pass over `frames`
/// held-out frames, with the per-session flight recorder armed or not.
fn ns_per_frame(
    system: &AnoleSystem,
    dataset: &DrivingDataset,
    frames: usize,
    recorder: bool,
) -> f64 {
    let mut engine = system.online_engine(DeviceKind::JetsonTx2Nx, Seed(4));
    if recorder {
        engine = engine.with_flight_recorder(FLIGHT_FRAMES);
    }
    engine.warm(&(0..system.repository().len()).collect::<Vec<_>>());
    let split = dataset.split();
    let start = Instant::now();
    for &r in split.test.iter().cycle().take(frames.max(1)) {
        engine.step(&dataset.frame(r).features).expect("step");
    }
    start.elapsed().as_nanos() as f64 / frames.max(1) as f64
}

fn main() -> ExitCode {
    let mut out_path = String::from("BENCH_obs.json");
    let mut trace_path = String::from("trace.txt");
    let mut frames = 200usize;
    let mut prometheus = false;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => match iter.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("error: --out needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--trace" => match iter.next() {
                Some(p) => trace_path = p,
                None => {
                    eprintln!("error: --trace needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--frames" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => frames = n,
                None => {
                    eprintln!("error: --frames needs a number");
                    return ExitCode::FAILURE;
                }
            },
            "--prometheus" => prometheus = true,
            "--help" | "-h" => {
                println!("metrics_snapshot [--out PATH] [--trace PATH] [--frames N] [--prometheus]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    // OSP: every training stage records its spans, counters, and
    // duration/rate gauges as a side effect.
    let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(1));
    let system = AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(2)).expect("training");

    // OMI: run the engine over held-out frames so the cache, fallback, and
    // latency metrics are live. Every WINDOW_FRAMES frames one time-series
    // window is captured from the registry and the SLO engine re-evaluated.
    let mut engine = system.online_engine(DeviceKind::JetsonTx2Nx, Seed(3));
    engine.warm(&(0..system.repository().len()).collect::<Vec<_>>());
    let split = dataset.split();
    let mut telemetry = Telemetry::new();
    let mut series = SeriesRecorder::new(SERIES_WINDOWS);
    let mut slo = SloEngine::new(vec![
        SloSpec::quantile("engine-step-latency", "omi.step.latency_ms", 0.99, 250.0)
            .with_slow_windows(8),
        SloSpec::error_ratio("engine-load-retries", "omi.load.retries", "omi.load.attempts", 0.25)
            .with_slow_windows(8),
    ]);
    for (i, &r) in split.test.iter().cycle().take(frames).enumerate() {
        let frame = dataset.frame(r);
        let outcome = engine.step(&frame.features).expect("step");
        telemetry.record(&outcome, Some(&frame.truth));
        if (i + 1) % WINDOW_FRAMES == 0 {
            anole_obs::capture_series(&mut series);
            slo.evaluate(&series);
        }
    }
    anole_obs::capture_series(&mut series);
    slo.evaluate(&series);

    let snapshot = anole_obs::snapshot();
    let metric_names = snapshot.metric_names();
    eprintln!(
        "[metrics_snapshot] {} distinct metrics, {} spans (dropped events: {})",
        metric_names.len(),
        snapshot.spans.len(),
        snapshot.dropped_span_events
    );
    // Flight-recorder overhead: the ring copy in `finish_step` is the whole
    // cost; both arms serve identical frames through fresh warmed engines.
    let off_ns = ns_per_frame(&system, &dataset, frames, false);
    let on_ns = ns_per_frame(&system, &dataset, frames, true);
    eprintln!(
        "[metrics_snapshot] flight recorder: {off_ns:.0} ns/frame off, {on_ns:.0} ns/frame on \
         ({:+.0} ns)",
        on_ns - off_ns
    );

    let summary = telemetry.summary();
    let report = serde_json::json!({
        "schema": "anole-obs-snapshot/2",
        "frames": frames,
        "metric_names": metric_names,
        "engine_summary": summary,
        "timeseries": {
            "window_frames": WINDOW_FRAMES,
            "windows_retained": series.windows(),
            "windows_total": series.total_windows(),
            "metric_series": series.metric_names().len(),
            "step_frames_delta": series.delta("omi.step.frames", SERIES_WINDOWS),
            "step_frames_per_window": series.rate("omi.step.frames", SERIES_WINDOWS),
            "step_latency_p50_ms": series.quantile_over("omi.step.latency_ms", SERIES_WINDOWS, 0.5),
            "step_latency_p99_ms": series.quantile_over("omi.step.latency_ms", SERIES_WINDOWS, 0.99),
        },
        "slo": {
            "specs": slo.specs(),
            "alerts": slo.alerts(),
            "pages": slo.pages(),
            "warns": slo.warns(),
        },
        "flight_recorder_overhead": {
            "recorder_capacity": FLIGHT_FRAMES,
            "frames_timed": frames,
            "off_ns_per_frame": off_ns,
            "on_ns_per_frame": on_ns,
            "delta_ns_per_frame": on_ns - off_ns,
        },
        "snapshot": snapshot,
    });
    let pretty = serde_json::to_string_pretty(&report).expect("serialize");
    if let Err(e) = std::fs::write(&out_path, pretty + "\n") {
        eprintln!("error: writing {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("[metrics_snapshot] wrote {out_path}");
    if let Err(e) = std::fs::write(&trace_path, anole_obs::render_trace()) {
        eprintln!("error: writing {trace_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("[metrics_snapshot] wrote {trace_path}");
    if prometheus {
        print!("{}", anole_obs::to_prometheus());
    }
    ExitCode::SUCCESS
}
