//! `profiler` — model cards for a trained repository.
//!
//! Prints, for every compressed model: its clustering provenance (which k,
//! which semantic scenes), training-set size, validation F1, online utility
//! (share of frames it served on the test streams), and the scenes where it
//! is the best model. The output is the "who are my 19 specialists?"
//! overview an operator wants before deploying a bundle.
//!
//! ```text
//! cargo run --release -p anole-bench --bin profiler [-- --small] [--seed N]
//! ```

use std::collections::HashMap;

use anole_bench::{render, Context, Scale};
use anole_core::eval::evaluate_refs;
use anole_data::SceneAttributes;
use anole_device::DeviceKind;
use anole_tensor::{split_seed, Seed};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "--small") {
        Scale::Small
    } else {
        Scale::Paper
    };
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u64>().ok())
        .map(Seed)
        .unwrap_or_default();

    eprintln!("[profiler] training at {scale:?} scale, {seed} …");
    let ctx = Context::build(scale, seed).expect("training");
    let split = ctx.dataset.split();

    // Online utility: share of test frames each model served.
    let mut engine = ctx
        .system
        .online_engine(DeviceKind::JetsonTx2Nx, split_seed(seed, 1));
    engine.warm(&(0..ctx.system.repository().len()).collect::<Vec<_>>());
    evaluate_refs(&mut engine, &ctx.dataset, &split.test, 10).expect("test stream");
    let mut usage: HashMap<usize, usize> = HashMap::new();
    for &m in engine.usage_log() {
        *usage.entry(m).or_insert(0) += 1;
    }
    let total = engine.usage_log().len().max(1);

    // Best-model-per-scene map over validation.
    let threshold = ctx.system.config().detector.threshold;
    let mut best_for_scene: HashMap<usize, (usize, f32)> = HashMap::new();
    for class in 0..ctx.system.scene_model().class_count() {
        let scene = ctx.system.scene_model().semantic_scene_of(class);
        let refs: Vec<_> = split
            .val
            .iter()
            .copied()
            .filter(|r| ctx.dataset.clips()[r.clip].attributes.scene_index() == scene)
            .collect();
        if refs.is_empty() {
            continue;
        }
        for model in ctx.system.repository().models() {
            let f1 = model
                .evaluate_f1(&ctx.dataset, &refs, threshold)
                .expect("evaluation");
            let entry = best_for_scene.entry(scene).or_insert((model.id, f1));
            if f1 > entry.1 {
                *entry = (model.id, f1);
            }
        }
    }

    let mut rows = Vec::new();
    for model in ctx.system.repository().models() {
        let scenes: Vec<String> = model
            .origin
            .scenes
            .iter()
            .take(3)
            .map(|&s| SceneAttributes::from_scene_index(s).to_string())
            .collect();
        let more = model.origin.scenes.len().saturating_sub(3);
        let scene_text = if more > 0 {
            format!("{} (+{more} more)", scenes.join("; "))
        } else {
            scenes.join("; ")
        };
        let champion_of = best_for_scene
            .iter()
            .filter(|(_, &(id, _))| id == model.id)
            .count();
        rows.push(vec![
            format!("M{:02}", model.id),
            format!("k={}", model.origin.k),
            format!("{}", model.training_set.len()),
            render::f1(model.validation_f1),
            format!(
                "{:.1}%",
                *usage.get(&model.id).unwrap_or(&0) as f32 / total as f32 * 100.0
            ),
            format!("{champion_of}"),
            scene_text,
        ]);
    }

    println!(
        "Model cards: {} compressed models over {} scene classes\n{}",
        ctx.system.repository().len(),
        ctx.system.scene_model().class_count(),
        render::table(
            &[
                "model",
                "level",
                "|Γ|",
                "val F1",
                "online use",
                "best-for scenes",
                "trained on (scene sample)"
            ],
            &rows
        )
    );
}
