//! `gateway_snapshot` — fleet-gateway throughput benchmark, written to
//! `BENCH_gateway.json`.
//!
//! Trains a fast Anole system, then drives the serving gateway at each
//! requested fleet scale (default 1k and 10k sessions), once clean and once
//! under the full four-kind gateway chaos plan. Reports wall-clock
//! sessions/sec and frames/sec alongside the gateway's own virtual-time
//! step-latency quantiles (p50/p95/p99) and its shedding/batching counters.
//!
//! A second section drives a scene-change-heavy schedule (each session
//! cycles between three distant frame anchors) against a deliberately
//! undersized slot cache, once with predictive prefetch off and once on, and
//! reports fleet cold loads, cache hit rates, and the prefetch counters —
//! the cold-load-reduction experiment of docs/performance.md.
//!
//! Usage:
//!
//! ```text
//! gateway_snapshot [--out PATH] [--scales N,N,...] [--frames N] [--seed S] [--soak]
//! ```
//!
//! `--soak` appends a 100 000-session tier to the scale list; with the
//! ready-queue index the run loop stays O(live sessions) per window, so the
//! tier finishes in minutes instead of hours.

use std::process::ExitCode;
use std::time::Instant;

use anole_core::gateway::{Gateway, GatewayConfig, GatewayReport, SessionSpec};
use anole_core::omi::FaultPlan;
use anole_core::{AnoleConfig, AnoleSystem};
use anole_data::{DrivingDataset, Frame};
use anole_tensor::{split_seed, Seed};

fn session_frames(dataset: &DrivingDataset, session: usize, n: usize) -> Vec<Frame> {
    let split = dataset.split();
    (0..n)
        .map(|k| dataset.frame(split.test[(session * 13 + k) % split.test.len()]).clone())
        .collect()
}

/// A scene-change-heavy schedule: the session cycles between three anchor
/// frames spaced a third of the test split apart, so the requested model
/// changes nearly every frame but the *sequence* of changes is perfectly
/// periodic — the regime where a first-order transition model shines.
fn cyclic_frames(dataset: &DrivingDataset, session: usize, n: usize) -> Vec<Frame> {
    let split = dataset.split();
    let len = split.test.len();
    let stride = (len / 3).max(1);
    (0..n)
        .map(|k| {
            let idx = (session * 7 + (k % 3) * stride) % len;
            dataset.frame(split.test[idx]).clone()
        })
        .collect()
}

fn run_tier(
    system: &AnoleSystem,
    dataset: &DrivingDataset,
    sessions: usize,
    frames_each: usize,
    seed: u64,
    chaos: bool,
) -> (GatewayReport, f64) {
    let config = GatewayConfig {
        max_sessions: sessions,
        deadline_ms: 200.0,
        slow_factor: 6.0,
        ..GatewayConfig::default()
    };
    let mut gateway = Gateway::new(system, config).expect("gateway config");
    if chaos {
        gateway = gateway.with_fault_plan(
            FaultPlan::new(Seed(seed))
                .with_queue_overflow_rate(0.02)
                .with_slow_consumer_rate(0.15)
                .with_session_stall_rate(0.05)
                .with_scheduler_hiccup_rate(0.3),
        );
    }
    for i in 0..sessions {
        gateway
            .admit(SessionSpec::new(
                session_frames(dataset, i, frames_each),
                split_seed(Seed(seed), 40_000 + i as u64),
            ))
            .expect("admit");
    }
    let start = Instant::now();
    let report = gateway.run();
    (report, start.elapsed().as_secs_f64())
}

fn tier_row(
    report: &GatewayReport,
    sessions: usize,
    frames_each: usize,
    chaos: bool,
    wall_s: f64,
) -> serde_json::Value {
    serde_json::json!({
        "sessions": sessions,
        "frames_per_session": frames_each,
        "chaos": chaos,
        "wall_seconds": wall_s,
        "sessions_per_sec": sessions as f64 / wall_s.max(1e-9),
        "frames_per_sec": report.frames_processed as f64 / wall_s.max(1e-9),
        "step_latency_p50_ms": report.step_latency_p50_ms,
        "step_latency_p95_ms": report.step_latency_p95_ms,
        "step_latency_p99_ms": report.step_latency_p99_ms,
        "windows": report.windows,
        "completed": report.completed,
        "shed_sessions": report.shed_sessions,
        "lost_sessions": report.lost_sessions(),
        "frames_processed": report.frames_processed,
        "frames_shed": report.frames_shed,
        "frames_dropped": report.frames_dropped,
        "batched_calls": report.batched_calls,
        "batched_frames": report.batched_frames,
        "single_calls": report.single_calls,
        "backpressure_signals": report.backpressure_signals,
        "fleet_f1": report.fleet_f1(),
        "sim_duration_ms": report.sim_duration_ms,
    })
}

/// One arm of the prefetch cold-load comparison: a small fleet on the
/// cyclic schedule with a two-slot cache. Returns the JSON row.
fn prefetch_arm(
    dataset: &DrivingDataset,
    sessions: usize,
    frames_each: usize,
    seed: u64,
    prefetch_on: bool,
) -> serde_json::Value {
    let mut cfg = AnoleConfig::fast();
    cfg.cache.capacity = 2;
    cfg.prefetch.enabled = prefetch_on;
    cfg.prefetch.min_probability = 0.05;
    cfg.prefetch.admission_filter = false;
    // Training never consults the prefetch block, so both arms hold the
    // same trained weights — only the serving path differs.
    let system = AnoleSystem::train(dataset, &cfg, Seed(9402)).expect("training");
    let gateway_cfg = GatewayConfig {
        max_sessions: sessions,
        deadline_ms: 200.0,
        slow_factor: 6.0,
        ..GatewayConfig::default()
    };
    let mut gateway = Gateway::new(&system, gateway_cfg).expect("gateway config");
    for i in 0..sessions {
        gateway
            .admit(SessionSpec::new(
                cyclic_frames(dataset, i, frames_each),
                split_seed(Seed(seed), 80_000 + i as u64),
            ))
            .expect("admit");
    }
    let start = Instant::now();
    let report = gateway.run();
    let wall_s = start.elapsed().as_secs_f64();
    let cache = gateway.fleet_cache_stats();
    let prefetch = gateway.fleet_prefetch_stats();
    eprintln!(
        "[gateway_snapshot] prefetch={prefetch_on}: {} cold loads, {} issued, {} hits, \
         p95 step {:.1} ms",
        gateway.fleet_load_attempts(),
        prefetch.issued,
        prefetch.hits,
        report.step_latency_p95_ms,
    );
    serde_json::json!({
        "sessions": sessions,
        "frames_per_session": frames_each,
        "prefetch": prefetch_on,
        "cold_loads": gateway.fleet_load_attempts(),
        "cache_hits": cache.hits,
        "cache_misses": cache.misses,
        "prefetch_issued": prefetch.issued,
        "prefetch_hits": prefetch.hits,
        "prefetch_wasted": prefetch.wasted,
        "prefetch_late": prefetch.late,
        "step_latency_p95_ms": report.step_latency_p95_ms,
        "step_latency_p99_ms": report.step_latency_p99_ms,
        "frames_processed": report.frames_processed,
        "wall_seconds": wall_s,
    })
}

fn main() -> ExitCode {
    let mut out_path = String::from("BENCH_gateway.json");
    let mut scales: Vec<usize> = vec![1000, 10_000];
    let mut frames_each = 5usize;
    let mut seed = 0u64;
    let mut soak = false;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => match iter.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("error: --out needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--scales" => {
                let parsed: Option<Vec<usize>> = iter
                    .next()
                    .map(|v| v.split(',').map(|s| s.trim().parse().ok()).collect())
                    .unwrap_or(None);
                match parsed {
                    Some(s) if !s.is_empty() => scales = s,
                    _ => {
                        eprintln!("error: --scales needs a comma-separated list of numbers");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--frames" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => frames_each = n,
                None => {
                    eprintln!("error: --frames needs a number");
                    return ExitCode::FAILURE;
                }
            },
            "--seed" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(s) => seed = s,
                None => {
                    eprintln!("error: --seed needs a number");
                    return ExitCode::FAILURE;
                }
            },
            "--soak" => soak = true,
            "--help" | "-h" => {
                println!(
                    "gateway_snapshot [--out PATH] [--scales N,N,...] [--frames N] [--seed S] [--soak]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    if soak {
        scales.push(100_000);
    }

    let dataset = DrivingDataset::generate(&anole_data::DatasetConfig::small(), Seed(9401));
    let system = AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(9402)).expect("training");

    let mut tiers = Vec::new();
    for &sessions in &scales {
        for chaos in [false, true] {
            let (report, wall_s) =
                run_tier(&system, &dataset, sessions, frames_each, seed, chaos);
            eprintln!(
                "[gateway_snapshot] {sessions} sessions (chaos={chaos}): {:.2} sessions/sec, \
                 p99 step {:.1} ms, {} shed, {} lost",
                sessions as f64 / wall_s.max(1e-9),
                report.step_latency_p99_ms,
                report.frames_shed,
                report.lost_sessions(),
            );
            if report.lost_sessions() > 0 {
                eprintln!("error: gateway lost sessions at scale {sessions}");
                return ExitCode::FAILURE;
            }
            tiers.push(tier_row(&report, sessions, frames_each, chaos, wall_s));
        }
    }

    // Cold-load comparison: prefetch off vs on, same fleet, same schedule.
    let prefetch_sessions = 200.min(scales.iter().copied().max().unwrap_or(200));
    let off = prefetch_arm(&dataset, prefetch_sessions, 30, seed, false);
    let on = prefetch_arm(&dataset, prefetch_sessions, 30, seed, true);
    let off_loads = off["cold_loads"].as_u64().unwrap_or(0);
    let on_loads = on["cold_loads"].as_u64().unwrap_or(0);
    let reduction = if off_loads > 0 {
        1.0 - on_loads as f64 / off_loads as f64
    } else {
        0.0
    };
    eprintln!("[gateway_snapshot] prefetch cold-load reduction: {:.1}%", reduction * 100.0);

    let out = serde_json::json!({
        "schema": "anole-gateway-bench/2",
        "device": "JetsonTx2Nx",
        "seed": seed,
        "tiers": tiers,
        "prefetch_compare": {
            "schedule": "cyclic-3-anchor scene changes, cache capacity 2",
            "off": off,
            "on": on,
            "cold_load_reduction": reduction,
        },
    });
    let pretty = serde_json::to_string_pretty(&out).expect("serialize");
    if let Err(e) = std::fs::write(&out_path, pretty + "\n") {
        eprintln!("error: writing {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("[gateway_snapshot] wrote {out_path}");
    ExitCode::SUCCESS
}
