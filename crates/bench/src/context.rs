//! Shared experiment context: one generated dataset and one trained system,
//! reused by every table/figure runner.

use anole_core::{AnoleConfig, AnoleSystem};
use anole_data::{DatasetConfig, DrivingDataset};
use anole_tensor::{split_seed, Seed};

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's dataset shape: 64 clips, 16k frames, 19 models. Run this
    /// in release builds (`cargo run --release -p anole-bench --bin repro`).
    Paper,
    /// A reduced setup for smoke tests and debug builds.
    Small,
}

impl Scale {
    /// Dataset configuration at this scale.
    pub fn dataset_config(&self) -> DatasetConfig {
        match self {
            Scale::Paper => DatasetConfig::default(),
            Scale::Small => DatasetConfig::small(),
        }
    }

    /// Anole configuration at this scale.
    pub fn anole_config(&self) -> AnoleConfig {
        match self {
            Scale::Paper => AnoleConfig::default(),
            Scale::Small => AnoleConfig::fast(),
        }
    }
}

/// The trained world every experiment consumes.
#[derive(Debug)]
pub struct Context {
    /// Scale the context was built at.
    pub scale: Scale,
    /// Base seed.
    pub seed: Seed,
    /// The generated driving dataset.
    pub dataset: DrivingDataset,
    /// The fully trained Anole system.
    pub system: AnoleSystem,
}

impl Context {
    /// Generates the dataset and trains the full system.
    ///
    /// # Errors
    ///
    /// Surfaces training errors.
    pub fn build(scale: Scale, seed: Seed) -> Result<Self, anole_core::AnoleError> {
        let dataset = DrivingDataset::generate(&scale.dataset_config(), split_seed(seed, 1));
        let system = AnoleSystem::train(&dataset, &scale.anole_config(), split_seed(seed, 2))?;
        Ok(Self {
            scale,
            seed,
            dataset,
            system,
        })
    }
}
