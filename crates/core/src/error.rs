//! Error type of the core crate.

use anole_cluster::ClusterError;
use anole_nn::NnError;

/// Error returned by Anole training and inference.
///
/// Marked `#[non_exhaustive]`: downstream matches must keep a wildcard arm
/// so new failure modes (the fault-injection work keeps finding them) can be
/// added without a breaking release.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AnoleError {
    /// A neural-network operation failed.
    Nn(NnError),
    /// A clustering operation failed.
    Cluster(ClusterError),
    /// The training split has too little data for the requested setup.
    InsufficientData {
        /// What was being trained.
        stage: &'static str,
        /// Diagnostic detail.
        detail: String,
    },
    /// Algorithm 1 could not produce any accepted model (δ too strict).
    EmptyRepository,
    /// A deployment-bundle operation failed (I/O, serialization, or
    /// integrity check).
    Deploy {
        /// Diagnostic detail.
        detail: String,
    },
    /// A run-time parameter is outside its valid range.
    InvalidConfig {
        /// The offending parameter.
        what: &'static str,
        /// Diagnostic detail.
        detail: String,
    },
    /// A frame handed to the online engine is unusable (wrong feature
    /// width, or NaN/Inf values that would poison decision scores).
    InvalidFrame {
        /// Diagnostic detail.
        detail: String,
    },
    /// A model could not be loaded onto the device after bounded retries.
    ModelLoadFailed {
        /// Repository id of the model.
        model: usize,
        /// Load attempts made before giving up.
        attempts: usize,
    },
    /// Every fallback tier is exhausted: no loadable model, no pinned
    /// fallback, and no last-good detections to replay.
    FaultExhausted {
        /// Diagnostic detail.
        detail: String,
    },
    /// A checkpoint-store operation failed (I/O or serialization). Invalid
    /// checkpoints are *not* reported this way — they are silently discarded
    /// and the stage retrains.
    Checkpoint {
        /// Diagnostic detail.
        detail: String,
    },
    /// Training was killed right after this stage completed (injected crash;
    /// the checkpoint for the stage was already durable). Resume by calling
    /// the resumable trainer again with the same store.
    Aborted {
        /// Name of the last completed stage.
        stage: &'static str,
    },
    /// A resumable bundle download gave up with artifacts still missing
    /// after the bounded reconnect attempts.
    DownloadIncomplete {
        /// Manifest entries still missing or checksum-failed.
        missing: usize,
        /// Download sessions attempted.
        attempts: usize,
    },
    /// The serving gateway refused to admit a new session: the fleet is at
    /// its high-water mark. Admission control is a typed error, never a
    /// panic — the caller decides whether to retry, queue, or give up.
    SessionRejected {
        /// Sessions currently admitted and not yet terminal.
        active: usize,
        /// The gateway's high-water mark.
        limit: usize,
    },
}

impl std::fmt::Display for AnoleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnoleError::Nn(e) => write!(f, "network error: {e}"),
            AnoleError::Cluster(e) => write!(f, "clustering error: {e}"),
            AnoleError::InsufficientData { stage, detail } => {
                write!(f, "insufficient data for {stage}: {detail}")
            }
            AnoleError::EmptyRepository => {
                write!(f, "algorithm 1 accepted no model; lower the δ threshold")
            }
            AnoleError::Deploy { detail } => write!(f, "deployment bundle error: {detail}"),
            AnoleError::InvalidConfig { what, detail } => {
                write!(f, "invalid configuration for {what}: {detail}")
            }
            AnoleError::InvalidFrame { detail } => write!(f, "invalid frame: {detail}"),
            AnoleError::ModelLoadFailed { model, attempts } => {
                write!(f, "model {model} failed to load after {attempts} attempts")
            }
            AnoleError::FaultExhausted { detail } => {
                write!(f, "all fallback tiers exhausted: {detail}")
            }
            AnoleError::Checkpoint { detail } => write!(f, "checkpoint store error: {detail}"),
            AnoleError::Aborted { stage } => {
                write!(f, "training aborted after stage '{stage}' (resume to continue)")
            }
            AnoleError::DownloadIncomplete { missing, attempts } => {
                write!(
                    f,
                    "bundle download incomplete: {missing} artifacts missing after {attempts} attempts"
                )
            }
            AnoleError::SessionRejected { active, limit } => {
                write!(
                    f,
                    "session rejected: gateway at high-water mark ({active} active, limit {limit})"
                )
            }
        }
    }
}

impl std::error::Error for AnoleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnoleError::Nn(e) => Some(e),
            AnoleError::Cluster(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for AnoleError {
    fn from(e: NnError) -> Self {
        AnoleError::Nn(e)
    }
}

impl From<ClusterError> for AnoleError {
    fn from(e: ClusterError) -> Self {
        AnoleError::Cluster(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn displays_and_sources() {
        let e: AnoleError = NnError::EmptyDataset.into();
        assert!(e.to_string().contains("network error"));
        assert!(e.source().is_some());
        let e: AnoleError = ClusterError::ZeroClusters.into();
        assert!(e.to_string().contains("clustering"));
        assert!(AnoleError::EmptyRepository.to_string().contains("δ"));
        let e = AnoleError::InsufficientData {
            stage: "scene model",
            detail: "only 1 scene".into(),
        };
        assert!(e.to_string().contains("scene model"));
        assert!(e.source().is_none());
        let e = AnoleError::Deploy { detail: "bad checksum".into() };
        assert!(e.to_string().contains("deployment bundle error"));
    }

    #[test]
    fn robustness_variants_display_and_source() {
        let e = AnoleError::InvalidConfig {
            what: "camera_fps",
            detail: "0 is not a frame rate".into(),
        };
        assert!(e.to_string().contains("camera_fps"));
        assert!(e.to_string().contains("invalid configuration"));
        assert!(e.source().is_none());

        let e = AnoleError::InvalidFrame { detail: "NaN at feature 3".into() };
        assert!(e.to_string().contains("invalid frame"));
        assert!(e.to_string().contains("NaN at feature 3"));
        assert!(e.source().is_none());

        let e = AnoleError::ModelLoadFailed { model: 4, attempts: 3 };
        assert!(e.to_string().contains("model 4"));
        assert!(e.to_string().contains("3 attempts"));
        assert!(e.source().is_none());

        let e = AnoleError::FaultExhausted { detail: "no resident model".into() };
        assert!(e.to_string().contains("exhausted"));
        assert!(e.source().is_none());
    }

    #[test]
    fn recovery_variants_display() {
        let e = AnoleError::Checkpoint { detail: "unwritable dir".into() };
        assert!(e.to_string().contains("checkpoint store"));
        let e = AnoleError::Aborted { stage: "scene model" };
        assert!(e.to_string().contains("scene model"));
        assert!(e.to_string().contains("resume"));
        let e = AnoleError::DownloadIncomplete { missing: 3, attempts: 5 };
        assert!(e.to_string().contains("3 artifacts"));
        assert!(e.to_string().contains("5 attempts"));
        assert!(e.source().is_none());
    }

    #[test]
    fn session_rejection_displays() {
        let e = AnoleError::SessionRejected { active: 1024, limit: 1024 };
        assert!(e.to_string().contains("high-water mark"));
        assert!(e.to_string().contains("1024 active"));
        assert!(e.source().is_none());
    }
}
