//! Error type of the core crate.

use anole_cluster::ClusterError;
use anole_nn::NnError;

/// Error returned by Anole training and inference.
#[derive(Debug, Clone, PartialEq)]
pub enum AnoleError {
    /// A neural-network operation failed.
    Nn(NnError),
    /// A clustering operation failed.
    Cluster(ClusterError),
    /// The training split has too little data for the requested setup.
    InsufficientData {
        /// What was being trained.
        stage: &'static str,
        /// Diagnostic detail.
        detail: String,
    },
    /// Algorithm 1 could not produce any accepted model (δ too strict).
    EmptyRepository,
    /// A deployment-bundle operation failed (I/O, serialization, or
    /// integrity check).
    Deploy {
        /// Diagnostic detail.
        detail: String,
    },
}

impl std::fmt::Display for AnoleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnoleError::Nn(e) => write!(f, "network error: {e}"),
            AnoleError::Cluster(e) => write!(f, "clustering error: {e}"),
            AnoleError::InsufficientData { stage, detail } => {
                write!(f, "insufficient data for {stage}: {detail}")
            }
            AnoleError::EmptyRepository => {
                write!(f, "algorithm 1 accepted no model; lower the δ threshold")
            }
            AnoleError::Deploy { detail } => write!(f, "deployment bundle error: {detail}"),
        }
    }
}

impl std::error::Error for AnoleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnoleError::Nn(e) => Some(e),
            AnoleError::Cluster(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for AnoleError {
    fn from(e: NnError) -> Self {
        AnoleError::Nn(e)
    }
}

impl From<ClusterError> for AnoleError {
    fn from(e: ClusterError) -> Self {
        AnoleError::Cluster(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn displays_and_sources() {
        let e: AnoleError = NnError::EmptyDataset.into();
        assert!(e.to_string().contains("network error"));
        assert!(e.source().is_some());
        let e: AnoleError = ClusterError::ZeroClusters.into();
        assert!(e.to_string().contains("clustering"));
        assert!(AnoleError::EmptyRepository.to_string().contains("δ"));
        let e = AnoleError::InsufficientData {
            stage: "scene model",
            detail: "only 1 scene".into(),
        };
        assert!(e.to_string().contains("scene model"));
        assert!(e.source().is_none());
        let e = AnoleError::Deploy { detail: "bad checksum".into() };
        assert!(e.to_string().contains("deployment bundle error"));
    }
}
