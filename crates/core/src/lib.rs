//! The Anole scheme (ICDCS 2024): offline scene profiling and online model
//! inference for cross-scene prediction on mobile devices.
//!
//! Anole's answer to the online mobile inference problem is to replace one
//! general model with an *army of compressed scene-specific models* plus a
//! lightweight decision model that routes every test sample to the
//! best-fitting specialist:
//!
//! * **Offline scene profiling** ([`osp`]), run "on the cloud server":
//!   * [`osp::SceneModel`] — the weakly-supervised scene encoder trained on
//!     semantic-scene labels (§IV-A);
//!   * [`osp::ModelRepository`] — Algorithm 1: multi-level clustering over
//!     scene embeddings, one compressed detector per accepted cluster;
//!   * [`osp::AdaptiveSampler`] — §IV-B: Thompson-sampled, balanced
//!     per-model suitability sets `Ψᵢ^sub`;
//!   * [`osp::DecisionModel`] — §IV-C: frozen scene backbone + MLP head
//!     predicting per-model suitability.
//! * **Online model inference** ([`omi`]), run on the device simulator:
//!   [`omi::OnlineEngine`] ranks models per frame (MSS), serves from an LFU
//!   model cache with best-cached fallback (CMD), and runs the chosen
//!   compressed detector (MI).
//! * **Fleet serving** ([`gateway`]): a message-queue-driven gateway
//!   multiplexing many simulated devices as long-lived sessions —
//!   bounded queues with backpressure, deadline-based load shedding,
//!   cross-device batched decision scoring, a model-load circuit breaker,
//!   and per-session panic isolation.
//! * **Baselines**: [`Sdm`], [`Ssm`], [`Cdg`], and [`Dmm`] from §VI-A3.
//! * **Evaluation protocols** ([`eval`]): cross-scene (Fig. 8), new-scene
//!   (Table III), and real-world streaming (Fig. 10) experiments.
//!
//! # Examples
//!
//! Train the full system on a small synthetic dataset and run it online:
//!
//! ```
//! use anole_core::{AnoleConfig, AnoleSystem};
//! use anole_data::{DatasetConfig, DrivingDataset};
//! use anole_tensor::Seed;
//!
//! let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(1));
//! let system = AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(2))?;
//! assert!(system.repository().len() >= 2);
//!
//! let mut engine = system.online_engine(anole_device::DeviceKind::JetsonTx2Nx, Seed(3));
//! let split = dataset.split();
//! let outcome = engine.step(&dataset.frame(split.test[0]).features)?;
//! assert!(outcome.latency_ms > 0.0);
//! # Ok::<(), anole_core::AnoleError>(())
//! ```

mod baselines;
pub mod checkpoint;
mod config;
pub mod deploy;
mod error;
pub mod gateway;
pub mod lifecycle;
pub mod eval;
pub mod omi;
pub mod osp;
mod system;

pub use baselines::{train_baselines, Cdg, Dmm, InferenceMethod, MethodKind, Sdm, Ssm};
pub use checkpoint::{
    context_key, CheckpointStats, CheckpointStore, OspStage, RecoveryReport, TrainRecovery,
};
pub use config::{
    AnoleConfig, CacheConfig, DecisionConfig, DetectorConfig, DriftConfig, PrefetchConfig,
    QuantConfig, RepositoryConfig, RolloutConfig, SamplingConfig, SceneModelConfig, SloConfig,
};
pub use error::AnoleError;
pub use system::{AnoleSystem, ModelQuantOutcome, QuantizationReport, ReprofileReport};
