//! Configuration of the full Anole pipeline.

use anole_cache::EvictionPolicy;
use anole_nn::{OptimizerKind, TrainConfig};
use serde::{Deserialize, Serialize};

/// Scene-encoder (`M_scene`) hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SceneModelConfig {
    /// Width of the first hidden layer.
    pub hidden: usize,
    /// Width of the embedding layer (the representation Algorithm 1
    /// clusters).
    pub embedding: usize,
    /// Training schedule.
    pub train: TrainConfig,
}

impl Default for SceneModelConfig {
    fn default() -> Self {
        Self {
            hidden: 64,
            embedding: 32,
            train: TrainConfig {
                epochs: 40,
                batch_size: 64,
                optimizer: OptimizerKind::Adam { lr: 5e-3 },
                ..TrainConfig::default()
            },
        }
    }
}

/// Compressed-detector hyper-parameters (the YOLOv3-tiny stand-ins).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Hidden width of a compressed detector.
    pub compressed_hidden: usize,
    /// Hidden width of the deep (SDM) detector.
    pub deep_hidden: usize,
    /// Number of hidden layers of the deep detector.
    pub deep_layers: usize,
    /// Positive-cell weight in the BCE loss.
    pub pos_weight: f32,
    /// Detection probability threshold.
    pub threshold: f32,
    /// Training schedule for compressed detectors.
    pub train: TrainConfig,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self {
            compressed_hidden: 48,
            deep_hidden: 96,
            deep_layers: 2,
            pos_weight: 2.0,
            threshold: 0.5,
            train: TrainConfig {
                epochs: 30,
                batch_size: 64,
                optimizer: OptimizerKind::Adam { lr: 5e-3 },
                pos_weight: 2.0,
                ..TrainConfig::default()
            },
        }
    }
}

/// Algorithm 1 (model repository) parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RepositoryConfig {
    /// Target number of compressed models `n` (paper: 19).
    pub target_models: usize,
    /// Validation-F1 acceptance threshold δ.
    pub delta: f32,
    /// Cap on the clustering sweep's k (0 = number of scenes).
    pub max_k: usize,
}

impl Default for RepositoryConfig {
    fn default() -> Self {
        Self {
            target_models: 19,
            delta: 0.30,
            max_k: 0,
        }
    }
}

/// Adaptive scene sampling (§IV-B) parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplingConfig {
    /// Well-sampledness confidence θ.
    pub theta: f64,
    /// Total sample budget κ.
    pub kappa: usize,
    /// Per-frame F1 above which a model "predicts the sample well".
    pub accept_f1: f32,
    /// Per-arm draw cap: an arm also leaves the selection pool after this
    /// many draws, keeping the finite κ budget from being monopolized by
    /// one arm before its coupon-collector threshold is met.
    pub max_draws_per_arm: usize,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        Self {
            theta: 0.9,
            kappa: 12000,
            accept_f1: 0.5,
            max_draws_per_arm: 600,
        }
    }
}

/// Decision-model (§IV-C) parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecisionConfig {
    /// Hidden width of the decision head (paper: a 2-layer MLP).
    pub head_hidden: usize,
    /// Standard deviation of Gaussian feature jitter used to augment the
    /// decision training set (doubles it); `0.0` disables augmentation.
    pub augment_noise_std: f32,
    /// When the top-1 suitability probability falls below this confidence,
    /// the engine hedges by fusing the detection maps of the top
    /// [`DecisionConfig::hedge_top_k`] cached models (§II case 3: low
    /// confidence signals that no single well-fitting model exists).
    /// `0.0` disables hedging.
    pub confidence_threshold: f32,
    /// Number of cached models fused on low-confidence frames.
    pub hedge_top_k: usize,
    /// Exponential smoothing of the online suitability vector across
    /// frames, in `[0, 1)`: `v ← α·v_prev + (1−α)·v_frame`. Scenes persist
    /// across consecutive frames, so smoothing suppresses per-frame routing
    /// noise; `0.0` recovers the paper's literal per-sample selection.
    pub suitability_smoothing: f32,
    /// Training schedule.
    pub train: TrainConfig,
}

impl Default for DecisionConfig {
    fn default() -> Self {
        Self {
            head_hidden: 64,
            augment_noise_std: 0.0,
            confidence_threshold: 0.45,
            hedge_top_k: 2,
            suitability_smoothing: 0.0,
            train: TrainConfig {
                epochs: 40,
                batch_size: 64,
                optimizer: OptimizerKind::Adam { lr: 5e-3 },
                ..TrainConfig::default()
            },
        }
    }
}

/// Model-cache (§V-B) parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Number of compressed models kept in GPU memory.
    pub capacity: usize,
    /// Eviction policy (paper: LFU).
    pub policy: EvictionPolicy,
    /// Optional resident-byte ceiling for the model cache. `None` keeps the
    /// paper's pure slot-count semantics; with `Some(bytes)` every cached
    /// model charges its serving-precision footprint
    /// ([`CompressedModel::serving_bytes`](crate::osp::CompressedModel::serving_bytes)),
    /// so int8 models pack ~4× denser than their f32 twins. Deserializes to
    /// `None` from configs saved before byte accounting existed.
    #[serde(default)]
    pub byte_budget: Option<u64>,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            capacity: 5,
            policy: EvictionPolicy::Lfu,
            byte_budget: None,
        }
    }
}

/// Int8 serving (quantization) parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantConfig {
    /// Whether [`AnoleSystem::train`](crate::AnoleSystem::train) runs the
    /// quantization sweep after the offline pipeline. Off by default: the
    /// fp32 pipeline stays bit-identical to earlier releases, and
    /// [`AnoleSystem::quantize_models`](crate::AnoleSystem::quantize_models)
    /// can always be invoked explicitly.
    pub enabled: bool,
    /// Acceptance gate ε: a specialist whose validation F1 drops by more
    /// than this when served at int8 keeps serving at fp32. The decision
    /// model uses the same ε as a top-1 agreement bound (quantized routing
    /// must agree with fp32 routing on at least `1 − ε` of the gate set).
    pub epsilon_f1: f32,
}

impl Default for QuantConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            epsilon_f1: 0.02,
        }
    }
}

/// Predictive model prefetch + cache sharding (CMD extension) parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrefetchConfig {
    /// Whether [`OnlineEngine::step`](crate::omi::OnlineEngine::step) may
    /// issue idle-budget background loads of the predicted-next model. Off
    /// by default: the reactive LFU path stays byte-identical to earlier
    /// releases. Prefetch is strictly passive either way — the decision
    /// stream (requested model + suitability) is bit-identical with it on
    /// or off; only cache/latency metrics change.
    pub enabled: bool,
    /// Shard count for the engine's model cache, rounded up to a power of
    /// two. `1` (the default) degenerates to the unsharded
    /// [`SlotCache`](anole_cache::SlotCache) bit-for-bit; larger values
    /// split slots and byte budget evenly across shards keyed by model-ID
    /// hash (salted per engine, so fleet sessions hit disjoint shards).
    pub shards: usize,
    /// Per-frame latency budget (ms) used for the idle check when the
    /// engine has no explicit real-time budget: a prefetch is issued only
    /// when `budget − frame latency` exceeds the device's modelled load
    /// time. An explicit engine budget takes precedence.
    pub budget_ms: f32,
    /// Minimum Laplace-smoothed transition probability before the predicted
    /// next model is worth prefetching.
    pub min_probability: f64,
    /// Whether the cache uses the shared frequency-sketch admission filter
    /// (only constructed when `enabled`), so one-hit-wonder prefetches
    /// cannot evict proven residents.
    pub admission_filter: bool,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            shards: 1,
            budget_ms: 33.0,
            min_probability: 0.25,
            admission_filter: true,
        }
    }
}

impl PrefetchConfig {
    /// Whether this is exactly the default configuration. Used to skip
    /// serializing the field so default-config systems serialize
    /// byte-identically to releases that predate prefetch (the engine
    /// fingerprint hashes that JSON).
    fn is_default(&self) -> bool {
        *self == Self::default()
    }
}

/// Serving SLO parameters: the declarative objectives the fleet gateway
/// and the continual-learning canary gate evaluate with multi-window
/// burn-rate alerting ([`SloEngine`](anole_obs::SloEngine)).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloConfig {
    /// Whether SLO evaluation is armed: the lifecycle builds specs from
    /// this section for canary gating and fleet serving. Off by default —
    /// disabled configs serialize byte-identically to releases that
    /// predate SLOs.
    pub enabled: bool,
    /// Error budget for the shed-ratio objective
    /// (`gateway.frames.shed / gateway.frames.total`).
    pub shed_budget: f64,
    /// Quantile of the latency objective (e.g. `0.99` for p99).
    pub latency_q: f64,
    /// Latency limit (virtual ms) the quantile must stay under.
    pub latency_limit_ms: f64,
    /// Single-window burn multiple that fires a page.
    pub fast_burn: f64,
    /// Long-window burn multiple that fires a warn.
    pub slow_burn: f64,
    /// Long-window span in scheduling windows.
    pub slow_windows: usize,
    /// Frames per canary device the re-profiling rollout serves through an
    /// SLO-armed gateway before promotion; a page during that run rolls the
    /// candidate back.
    pub canary_frames: usize,
}

impl Default for SloConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            shed_budget: 0.05,
            latency_q: 0.99,
            latency_limit_ms: 150.0,
            fast_burn: anole_obs::DEFAULT_FAST_BURN,
            slow_burn: anole_obs::DEFAULT_SLOW_BURN,
            slow_windows: anole_obs::DEFAULT_SLOW_WINDOWS,
            canary_frames: 32,
        }
    }
}

impl SloConfig {
    /// Whether this is exactly the default configuration (see
    /// [`PrefetchConfig::is_default`]).
    fn is_default(&self) -> bool {
        *self == Self::default()
    }

    /// The standard spec pair every SLO-armed gateway evaluates: the
    /// shed-ratio objective and the step-latency quantile objective, both
    /// resolved against the gateway's synthetic per-run series.
    pub fn specs(&self) -> Vec<anole_obs::SloSpec> {
        vec![
            anole_obs::SloSpec::error_ratio(
                "gateway-shed-ratio",
                "gateway.frames.shed",
                "gateway.frames.total",
                self.shed_budget,
            )
            .with_burn_rates(self.fast_burn, self.slow_burn)
            .with_slow_windows(self.slow_windows),
            anole_obs::SloSpec::quantile(
                "gateway-step-latency",
                "gateway.step.latency_ms",
                self.latency_q,
                self.latency_limit_ms,
            )
            .with_burn_rates(self.fast_burn, self.slow_burn)
            .with_slow_windows(self.slow_windows),
        ]
    }
}

/// On-device drift-detection parameters (the calibrated
/// [`DriftDetector`](crate::omi::DriftDetector)).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Rolling-window length of the detector.
    pub window: usize,
    /// Calibration quantile for the confidence floor (the floor is the
    /// `quantile` of top-1 suitability over validation frames).
    pub quantile: f32,
    /// Consecutive below-floor windows required to latch `Drifting`.
    pub enter_windows: usize,
    /// Consecutive in-distribution observations required to release.
    pub exit_windows: usize,
    /// Minimum observations between emitted
    /// [`DriftEvent`](crate::omi::DriftEvent)s.
    pub cooldown: usize,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            window: 16,
            quantile: 0.1,
            enter_windows: 3,
            exit_windows: 8,
            cooldown: 64,
        }
    }
}

/// Staged rollout + rollback parameters for continual re-profiling
/// ([`deploy::staged_rollout`](crate::deploy::staged_rollout)).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RolloutConfig {
    /// Fraction of the fleet serving as the canary cohort (at least one
    /// device).
    pub canary_fraction: f32,
    /// Promotion gate ε: the candidate's validation F1 must not fall more
    /// than this below the last-good bundle's (same shape as the
    /// quantization acceptance sweep).
    pub epsilon_f1: f32,
    /// Retry budget per canary bundle download before the rollout aborts.
    pub max_download_sessions: usize,
}

impl Default for RolloutConfig {
    fn default() -> Self {
        Self {
            canary_fraction: 0.25,
            epsilon_f1: 0.02,
            max_download_sessions: 8,
        }
    }
}

/// Configuration of the full Anole pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[derive(Default)]
pub struct AnoleConfig {
    /// Scene-encoder parameters.
    pub scene: SceneModelConfig,
    /// Compressed-detector parameters.
    pub detector: DetectorConfig,
    /// Algorithm 1 parameters.
    pub repository: RepositoryConfig,
    /// Adaptive-sampling parameters.
    pub sampling: SamplingConfig,
    /// Decision-model parameters.
    pub decision: DecisionConfig,
    /// Model-cache parameters.
    pub cache: CacheConfig,
    /// Int8 serving parameters. Deserializes to the disabled default from
    /// configs saved before quantization existed.
    #[serde(default)]
    pub quant: QuantConfig,
    /// Drift-detection parameters. Deserializes to the default from configs
    /// saved before the drift subsystem existed.
    #[serde(default)]
    pub drift: DriftConfig,
    /// Staged-rollout parameters. Deserializes to the default from configs
    /// saved before continual re-profiling existed.
    #[serde(default)]
    pub rollout: RolloutConfig,
    /// Predictive-prefetch + cache-sharding parameters. Deserializes to the
    /// disabled default from configs saved before prefetch existed, and is
    /// omitted from serialized configs while at the default so those
    /// configs stay byte-identical to pre-prefetch releases.
    #[serde(default, skip_serializing_if = "PrefetchConfig::is_default")]
    pub prefetch: PrefetchConfig,
    /// Serving-SLO parameters. Deserializes to the disabled default from
    /// configs saved before SLOs existed, and is omitted from serialized
    /// configs while at the default so those configs stay byte-identical
    /// to pre-SLO releases.
    #[serde(default, skip_serializing_if = "SloConfig::is_default")]
    pub slo: SloConfig,
}


impl AnoleConfig {
    /// A cheap configuration for unit tests: fewer models, fewer epochs.
    pub fn fast() -> Self {
        let mut cfg = Self::default();
        cfg.scene.train.epochs = 10;
        cfg.detector.train.epochs = 8;
        cfg.decision.train.epochs = 10;
        cfg.repository.target_models = 6;
        cfg.repository.delta = 0.15;
        cfg.sampling.kappa = 800;
        cfg.sampling.max_draws_per_arm = 100;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_scale() {
        let cfg = AnoleConfig::default();
        assert_eq!(cfg.repository.target_models, 19);
        assert_eq!(cfg.cache.capacity, 5);
        assert_eq!(cfg.cache.policy, EvictionPolicy::Lfu);
        assert_eq!(cfg.cache.byte_budget, None);
        assert!((cfg.sampling.theta - 0.9).abs() < 1e-12);
        // Quantization is opt-in: the default pipeline stays pure fp32.
        assert!(!cfg.quant.enabled);
        assert!(cfg.quant.epsilon_f1 > 0.0);
        // Prefetch is opt-in and the default cache is unsharded.
        assert!(!cfg.prefetch.enabled);
        assert_eq!(cfg.prefetch.shards, 1);
        assert!(cfg.prefetch.budget_ms > 0.0);
        assert!(cfg.prefetch.min_probability > 0.0 && cfg.prefetch.min_probability < 1.0);
    }

    #[test]
    fn configs_without_quant_fields_still_deserialize() {
        // A config serialized before the quantization PR has no `quant`
        // section and no `byte_budget`; both must default, not error.
        let json = serde_json::to_string(&AnoleConfig::default()).unwrap();
        let mut value: serde_json::Value = serde_json::from_str(&json).unwrap();
        value.as_object_mut().unwrap().remove("quant");
        value["cache"].as_object_mut().unwrap().remove("byte_budget");
        value.as_object_mut().unwrap().remove("drift");
        value.as_object_mut().unwrap().remove("rollout");
        value.as_object_mut().unwrap().remove("prefetch");
        value.as_object_mut().unwrap().remove("slo");
        let cfg: AnoleConfig = serde_json::from_value(value).unwrap();
        assert_eq!(cfg, AnoleConfig::default());
    }

    #[test]
    fn default_slo_is_omitted_from_serialized_configs() {
        let json = serde_json::to_string(&AnoleConfig::default()).unwrap();
        assert!(!json.contains("slo"));
        // A non-default SLO section round-trips, and its specs carry the
        // configured budgets.
        let mut cfg = AnoleConfig::default();
        cfg.slo.enabled = true;
        cfg.slo.shed_budget = 0.01;
        let json = serde_json::to_string(&cfg).unwrap();
        assert!(json.contains("slo"));
        let back: AnoleConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
        let specs = cfg.slo.specs();
        assert_eq!(specs.len(), 2);
        assert!((specs[0].budget() - 0.01).abs() < 1e-12);
        assert!((specs[1].budget() - (1.0 - cfg.slo.latency_q)).abs() < 1e-12);
    }

    #[test]
    fn default_prefetch_is_omitted_from_serialized_configs() {
        // The engine fingerprint hashes serialized systems, so a config at
        // the prefetch default must serialize byte-identically to releases
        // that predate the field.
        let json = serde_json::to_string(&AnoleConfig::default()).unwrap();
        assert!(!json.contains("prefetch"));
        // A non-default prefetch section round-trips.
        let mut cfg = AnoleConfig::default();
        cfg.prefetch.enabled = true;
        cfg.prefetch.shards = 4;
        let json = serde_json::to_string(&cfg).unwrap();
        assert!(json.contains("prefetch"));
        let back: AnoleConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn drift_and_rollout_defaults_are_sane() {
        let cfg = AnoleConfig::default();
        assert!(cfg.drift.window > 0);
        assert!(cfg.drift.quantile > 0.0 && cfg.drift.quantile < 1.0);
        assert!(cfg.drift.enter_windows >= 1 && cfg.drift.exit_windows >= 1);
        assert!(cfg.rollout.canary_fraction > 0.0 && cfg.rollout.canary_fraction <= 1.0);
        assert!(cfg.rollout.epsilon_f1 > 0.0);
        assert!(cfg.rollout.max_download_sessions >= 1);
    }

    #[test]
    fn fast_config_is_cheaper() {
        let fast = AnoleConfig::fast();
        let full = AnoleConfig::default();
        assert!(fast.scene.train.epochs < full.scene.train.epochs);
        assert!(fast.repository.target_models < full.repository.target_models);
    }
}
