//! The candidate methods of §VI-A3: SDM, SSM, CDG, and DMM, behind one
//! [`InferenceMethod`] interface shared with Anole's online engine.

use anole_cluster::{KMeans, KMeansFit};
use anole_data::{DatasetSource, DrivingDataset, Frame, FrameRef};
use anole_nn::{sigmoid, Activation, Mlp, ReferenceModel, Trainer, Workspace};
use anole_tensor::{split_seed, Matrix, Seed};
use serde::{Deserialize, Serialize};

use crate::omi::OnlineEngine;
use crate::{AnoleConfig, AnoleError};

/// Identifies a candidate method in reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MethodKind {
    /// The full Anole system.
    Anole,
    /// Single Deep Model: one YOLOv3-class model trained on everything.
    Sdm,
    /// Single Shallow Model: one YOLOv3-tiny-class model trained on
    /// everything.
    Ssm,
    /// Clustering-based Domain Generalization: feature-space clusters, one
    /// compressed model each, nearest-centroid selection.
    Cdg,
    /// Dataset-based Multiple Models: one compressed model per source
    /// dataset, oracle source routing.
    Dmm,
}

impl MethodKind {
    /// Display name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            MethodKind::Anole => "Anole",
            MethodKind::Sdm => "SDM",
            MethodKind::Ssm => "SSM",
            MethodKind::Cdg => "CDG",
            MethodKind::Dmm => "DMM",
        }
    }
}

impl std::fmt::Display for MethodKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A method that can predict per-cell detections for a frame.
///
/// `source` carries the frame's source dataset; only DMM (an oracle-routing
/// baseline) consults it.
pub trait InferenceMethod {
    /// Which method this is.
    fn kind(&self) -> MethodKind;

    /// The paper-scale models executed per frame, for latency/power pricing.
    fn pipeline(&self) -> Vec<ReferenceModel>;

    /// Predicts cell detections for one frame.
    ///
    /// # Errors
    ///
    /// Returns a width error if the frame's feature width is wrong.
    fn predict(&mut self, frame: &Frame, source: DatasetSource) -> Result<Vec<bool>, AnoleError>;

    /// Predicts cell detections for a whole stream at once, in order.
    /// `frames` and `sources` are parallel slices.
    ///
    /// The default delegates to [`InferenceMethod::predict`] frame by frame.
    /// Stateless methods override it with one forward pass per involved
    /// network; the matmul kernel accumulates each output element
    /// identically for any batch size, so overrides return detections
    /// bit-identical to the per-frame path. Streaming methods (the online
    /// engine) keep the default — their model selection is stateful and
    /// must see frames one at a time.
    ///
    /// # Errors
    ///
    /// Returns a width error if any frame's feature width is wrong.
    fn predict_batch(
        &mut self,
        frames: &[&Frame],
        sources: &[DatasetSource],
    ) -> Result<Vec<Vec<bool>>, AnoleError> {
        frames
            .iter()
            .zip(sources)
            .map(|(frame, &source)| self.predict(frame, source))
            .collect()
    }
}

fn train_detector(
    dataset: &DrivingDataset,
    refs: &[FrameRef],
    hidden: &[usize],
    config: &AnoleConfig,
    seed: Seed,
    ws: &mut Workspace,
) -> Result<Mlp, AnoleError> {
    let x = dataset.features_matrix(refs);
    let y = dataset.truth_matrix(refs);
    let mut builder = Mlp::builder(dataset.config().world.feature_dim);
    for &h in hidden {
        builder = builder.hidden(h, Activation::Relu);
    }
    let mut net = builder
        .output(dataset.config().world.grid.cells())
        .build(split_seed(seed, 0));
    let mut train_cfg = config.detector.train;
    train_cfg.pos_weight = config.detector.pos_weight;
    Trainer::new(train_cfg).fit_multilabel_ws(&mut net, &x, &y, split_seed(seed, 1), ws)?;
    Ok(net)
}

fn detect(net: &Mlp, frame: &Frame, threshold: f32) -> Result<Vec<bool>, AnoleError> {
    let probs = sigmoid(&net.forward(&Matrix::row_vector(&frame.features))?);
    Ok(anole_detect::threshold_probs(probs.row(0), threshold))
}

/// One forward pass over a stack of frames; detections match per-frame
/// [`detect`] bit-for-bit (the matmul kernel's accumulation order per output
/// element is batch-size independent).
fn detect_batch(
    net: &Mlp,
    frames: &[&Frame],
    threshold: f32,
) -> Result<Vec<Vec<bool>>, AnoleError> {
    let Some(first) = frames.first() else {
        return Ok(Vec::new());
    };
    let width = first.features.len();
    if frames.iter().any(|f| f.features.len() != width) {
        // Ragged widths cannot stack; fall back so whichever frame is
        // actually wrong produces its canonical error.
        return frames.iter().map(|f| detect(net, f, threshold)).collect();
    }
    let mut x = Matrix::zeros(frames.len(), width);
    for (i, f) in frames.iter().enumerate() {
        x.row_mut(i).copy_from_slice(&f.features);
    }
    let probs = sigmoid(&net.forward(&x)?);
    Ok((0..frames.len())
        .map(|i| anole_detect::threshold_probs(probs.row(i), threshold))
        .collect())
}

/// Batches frames by the model each will run, scores each group with one
/// forward pass, and reassembles predictions in input order.
fn detect_grouped(
    models: &[&Mlp],
    assignment: &[usize],
    frames: &[&Frame],
    threshold: f32,
) -> Result<Vec<Vec<bool>>, AnoleError> {
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); models.len()];
    for (i, &m) in assignment.iter().enumerate() {
        groups[m].push(i);
    }
    let mut out: Vec<Vec<bool>> = vec![Vec::new(); frames.len()];
    for (m, idxs) in groups.iter().enumerate() {
        if idxs.is_empty() {
            continue;
        }
        let group: Vec<&Frame> = idxs.iter().map(|&i| frames[i]).collect();
        let preds = detect_batch(models[m], &group, threshold)?;
        for (&i, pred) in idxs.iter().zip(preds) {
            out[i] = pred;
        }
    }
    Ok(out)
}

/// Single Deep Model: the fully-fledged YOLOv3 stand-in trained on all
/// training samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sdm {
    net: Mlp,
    threshold: f32,
}

impl Sdm {
    /// Trains the deep baseline on the referenced frames.
    ///
    /// # Errors
    ///
    /// Surfaces training errors.
    pub fn train(
        dataset: &DrivingDataset,
        refs: &[FrameRef],
        config: &AnoleConfig,
        seed: Seed,
    ) -> Result<Self, AnoleError> {
        let hidden = vec![config.detector.deep_hidden; config.detector.deep_layers];
        let net = train_detector(dataset, refs, &hidden, config, seed, &mut Workspace::new())?;
        Ok(Self {
            net,
            threshold: config.detector.threshold,
        })
    }

    /// The deep network (for profiling).
    pub fn network(&self) -> &Mlp {
        &self.net
    }
}

impl InferenceMethod for Sdm {
    fn kind(&self) -> MethodKind {
        MethodKind::Sdm
    }

    fn pipeline(&self) -> Vec<ReferenceModel> {
        vec![ReferenceModel::Yolov3]
    }

    fn predict(&mut self, frame: &Frame, _source: DatasetSource) -> Result<Vec<bool>, AnoleError> {
        detect(&self.net, frame, self.threshold)
    }

    fn predict_batch(
        &mut self,
        frames: &[&Frame],
        _sources: &[DatasetSource],
    ) -> Result<Vec<Vec<bool>>, AnoleError> {
        detect_batch(&self.net, frames, self.threshold)
    }
}

/// Single Shallow Model: one compressed model trained on everything.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ssm {
    net: Mlp,
    threshold: f32,
}

impl Ssm {
    /// Trains the shallow baseline on the referenced frames.
    ///
    /// # Errors
    ///
    /// Surfaces training errors.
    pub fn train(
        dataset: &DrivingDataset,
        refs: &[FrameRef],
        config: &AnoleConfig,
        seed: Seed,
    ) -> Result<Self, AnoleError> {
        let net = train_detector(
            dataset,
            refs,
            &[config.detector.compressed_hidden],
            config,
            seed,
            &mut Workspace::new(),
        )?;
        Ok(Self {
            net,
            threshold: config.detector.threshold,
        })
    }
}

impl InferenceMethod for Ssm {
    fn kind(&self) -> MethodKind {
        MethodKind::Ssm
    }

    fn pipeline(&self) -> Vec<ReferenceModel> {
        vec![ReferenceModel::Yolov3Tiny]
    }

    fn predict(&mut self, frame: &Frame, _source: DatasetSource) -> Result<Vec<bool>, AnoleError> {
        detect(&self.net, frame, self.threshold)
    }

    fn predict_batch(
        &mut self,
        frames: &[&Frame],
        _sources: &[DatasetSource],
    ) -> Result<Vec<Vec<bool>>, AnoleError> {
        detect_batch(&self.net, frames, self.threshold)
    }
}

/// Clustering-based Domain Generalization: k-means in raw feature space,
/// one compressed model per cluster, nearest-centroid selection online.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdg {
    clustering: KMeansFit,
    models: Vec<Mlp>,
    threshold: f32,
}

impl Cdg {
    /// Trains the CDG baseline with `k` feature-space domains.
    ///
    /// # Errors
    ///
    /// Surfaces clustering and training errors.
    pub fn train(
        dataset: &DrivingDataset,
        refs: &[FrameRef],
        k: usize,
        config: &AnoleConfig,
        seed: Seed,
    ) -> Result<Self, AnoleError> {
        let x = dataset.features_matrix(refs);
        let clustering = KMeans::new(k).fit(&x, split_seed(seed, 0))?;
        let mut models = Vec::with_capacity(k);
        // One workspace amortises training buffers across all k domains.
        let mut ws = Workspace::new();
        for cluster in 0..k {
            let members: Vec<FrameRef> = clustering
                .members_of(cluster)
                .into_iter()
                .map(|i| refs[i])
                .collect();
            let net = train_detector(
                dataset,
                &members,
                &[config.detector.compressed_hidden],
                config,
                split_seed(seed, 1 + cluster as u64),
                &mut ws,
            )?;
            models.push(net);
        }
        Ok(Self {
            clustering,
            models,
            threshold: config.detector.threshold,
        })
    }

    /// Number of domains.
    pub fn domains(&self) -> usize {
        self.models.len()
    }
}

impl InferenceMethod for Cdg {
    fn kind(&self) -> MethodKind {
        MethodKind::Cdg
    }

    fn pipeline(&self) -> Vec<ReferenceModel> {
        vec![ReferenceModel::Yolov3Tiny]
    }

    fn predict(&mut self, frame: &Frame, _source: DatasetSource) -> Result<Vec<bool>, AnoleError> {
        let cluster = self.clustering.predict(&frame.features);
        detect(&self.models[cluster], frame, self.threshold)
    }

    fn predict_batch(
        &mut self,
        frames: &[&Frame],
        _sources: &[DatasetSource],
    ) -> Result<Vec<Vec<bool>>, AnoleError> {
        let assignment: Vec<usize> = frames
            .iter()
            .map(|f| self.clustering.predict(&f.features))
            .collect();
        let models: Vec<&Mlp> = self.models.iter().collect();
        detect_grouped(&models, &assignment, frames, self.threshold)
    }
}

/// Dataset-based Multiple Models: one compressed model per source dataset,
/// routed by the (oracle) source label of the test sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dmm {
    models: Vec<(DatasetSource, Mlp)>,
    threshold: f32,
}

impl Dmm {
    /// Trains one compressed model per source present in `refs`.
    ///
    /// # Errors
    ///
    /// Surfaces training errors.
    pub fn train(
        dataset: &DrivingDataset,
        refs: &[FrameRef],
        config: &AnoleConfig,
        seed: Seed,
    ) -> Result<Self, AnoleError> {
        let mut models = Vec::new();
        // One workspace amortises training buffers across all sources.
        let mut ws = Workspace::new();
        for (i, source) in DatasetSource::ALL.iter().enumerate() {
            let subset: Vec<FrameRef> = refs
                .iter()
                .copied()
                .filter(|r| dataset.clips()[r.clip].source == *source)
                .collect();
            if subset.is_empty() {
                continue;
            }
            let net = train_detector(
                dataset,
                &subset,
                &[config.detector.compressed_hidden],
                config,
                split_seed(seed, i as u64),
                &mut ws,
            )?;
            models.push((*source, net));
        }
        Ok(Self {
            models,
            threshold: config.detector.threshold,
        })
    }
}

impl InferenceMethod for Dmm {
    fn kind(&self) -> MethodKind {
        MethodKind::Dmm
    }

    fn pipeline(&self) -> Vec<ReferenceModel> {
        vec![ReferenceModel::Yolov3Tiny]
    }

    fn predict(&mut self, frame: &Frame, source: DatasetSource) -> Result<Vec<bool>, AnoleError> {
        let net = self
            .models
            .iter()
            .find(|(s, _)| *s == source)
            .or_else(|| self.models.first())
            .map(|(_, net)| net)
            .expect("DMM trained with at least one source");
        detect(net, frame, self.threshold)
    }

    fn predict_batch(
        &mut self,
        frames: &[&Frame],
        sources: &[DatasetSource],
    ) -> Result<Vec<Vec<bool>>, AnoleError> {
        assert!(!self.models.is_empty(), "DMM trained with at least one source");
        let assignment: Vec<usize> = sources
            .iter()
            .map(|source| {
                self.models
                    .iter()
                    .position(|(s, _)| s == source)
                    .unwrap_or(0)
            })
            .collect();
        let models: Vec<&Mlp> = self.models.iter().map(|(_, net)| net).collect();
        detect_grouped(&models, &assignment, frames, self.threshold)
    }
}

/// Anole's online engine viewed as a candidate method: the decision model
/// selects a compressed model per frame through the LFU cache.
impl InferenceMethod for OnlineEngine<'_> {
    fn kind(&self) -> MethodKind {
        MethodKind::Anole
    }

    fn pipeline(&self) -> Vec<ReferenceModel> {
        vec![
            ReferenceModel::Resnet18,
            ReferenceModel::DecisionMlp,
            ReferenceModel::Yolov3Tiny,
        ]
    }

    fn predict(&mut self, frame: &Frame, _source: DatasetSource) -> Result<Vec<bool>, AnoleError> {
        Ok(self.step(&frame.features)?.detections)
    }
}

/// Convenience: trains every baseline on the same split.
///
/// Returns `(sdm, ssm, cdg, dmm)`; `cdg_k` domains for CDG.
///
/// # Errors
///
/// Surfaces the first failing baseline's error.
pub fn train_baselines(
    dataset: &DrivingDataset,
    refs: &[FrameRef],
    cdg_k: usize,
    config: &AnoleConfig,
    seed: Seed,
) -> Result<(Sdm, Ssm, Cdg, Dmm), AnoleError> {
    Ok((
        Sdm::train(dataset, refs, config, split_seed(seed, 10))?,
        Ssm::train(dataset, refs, config, split_seed(seed, 11))?,
        Cdg::train(dataset, refs, cdg_k, config, split_seed(seed, 12))?,
        Dmm::train(dataset, refs, config, split_seed(seed, 13))?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use anole_data::DatasetConfig;

    fn setup() -> (DrivingDataset, AnoleConfig, Vec<FrameRef>) {
        let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(91));
        let config = AnoleConfig::fast();
        let split = dataset.split();
        (dataset, config, split.train)
    }

    #[test]
    fn sdm_and_ssm_learn_something() {
        let (dataset, config, train) = setup();
        let split = dataset.split();
        let mut sdm = Sdm::train(&dataset, &train, &config, Seed(92)).unwrap();
        let mut ssm = Ssm::train(&dataset, &train, &config, Seed(93)).unwrap();
        let mut sdm_counts = anole_detect::DetectionCounts::default();
        let mut ssm_counts = anole_detect::DetectionCounts::default();
        for r in split.val.iter().take(100) {
            let frame = dataset.frame(*r);
            let source = dataset.clips()[r.clip].source;
            sdm_counts.accumulate(&sdm.predict(frame, source).unwrap(), &frame.truth);
            ssm_counts.accumulate(&ssm.predict(frame, source).unwrap(), &frame.truth);
        }
        assert!(sdm_counts.f1() > 0.2, "SDM f1 {}", sdm_counts.f1());
        assert!(ssm_counts.f1() > 0.1, "SSM f1 {}", ssm_counts.f1());
    }

    #[test]
    fn cdg_routes_to_nearest_cluster() {
        let (dataset, config, train) = setup();
        let cdg = Cdg::train(&dataset, &train, 3, &config, Seed(94)).unwrap();
        assert_eq!(cdg.domains(), 3);
        let split = dataset.split();
        let frame = dataset.frame(split.val[0]);
        let cluster = cdg.clustering.predict(&frame.features);
        assert!(cluster < 3);
    }

    #[test]
    fn dmm_has_one_model_per_source() {
        let (dataset, config, train) = setup();
        let mut dmm = Dmm::train(&dataset, &train, &config, Seed(95)).unwrap();
        assert_eq!(dmm.models.len(), 3);
        let split = dataset.split();
        let frame = dataset.frame(split.val[0]);
        // Routing by any source works.
        for source in DatasetSource::ALL {
            let det = dmm.predict(frame, source).unwrap();
            assert_eq!(det.len(), dataset.config().world.grid.cells());
        }
    }

    #[test]
    fn pipelines_match_paper_model_classes() {
        let (dataset, config, train) = setup();
        let sdm = Sdm::train(&dataset, &train, &config, Seed(96)).unwrap();
        assert_eq!(sdm.pipeline(), vec![ReferenceModel::Yolov3]);
        let ssm = Ssm::train(&dataset, &train, &config, Seed(97)).unwrap();
        assert_eq!(ssm.pipeline(), vec![ReferenceModel::Yolov3Tiny]);
        assert_eq!(sdm.kind().name(), "SDM");
        assert_eq!(MethodKind::Anole.to_string(), "Anole");
    }

    #[test]
    fn train_baselines_builds_all_four() {
        let (dataset, config, train) = setup();
        let (sdm, ssm, cdg, dmm) = train_baselines(&dataset, &train, 3, &config, Seed(98)).unwrap();
        assert_eq!(sdm.kind(), MethodKind::Sdm);
        assert_eq!(ssm.kind(), MethodKind::Ssm);
        assert_eq!(cdg.kind(), MethodKind::Cdg);
        assert_eq!(dmm.kind(), MethodKind::Dmm);
    }

    #[test]
    fn predict_batch_matches_per_frame_predictions() {
        let (dataset, config, train) = setup();
        let (mut sdm, mut ssm, mut cdg, mut dmm) =
            train_baselines(&dataset, &train, 3, &config, Seed(99)).unwrap();
        let split = dataset.split();
        let refs: Vec<FrameRef> = split.val.iter().take(60).copied().collect();
        let frames: Vec<&Frame> = refs.iter().map(|r| dataset.frame(*r)).collect();
        let sources: Vec<DatasetSource> =
            refs.iter().map(|r| dataset.clips()[r.clip].source).collect();

        let methods: &mut [&mut dyn InferenceMethod] = &mut [&mut sdm, &mut ssm, &mut cdg, &mut dmm];
        for method in methods.iter_mut() {
            let batched = method.predict_batch(&frames, &sources).unwrap();
            assert_eq!(batched.len(), frames.len(), "{}", method.kind());
            for ((frame, &source), batch_row) in frames.iter().zip(&sources).zip(&batched) {
                let single = method.predict(frame, source).unwrap();
                assert_eq!(&single, batch_row, "{} batched != per-frame", method.kind());
            }
        }
    }
}
