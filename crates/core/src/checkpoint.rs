//! Crash-safe checkpointing for the offline (OSP) pipeline.
//!
//! The paper's offline stage trains `M_scene`, up to n = 19 compressed
//! specialists, and `M_decision` on a cloud server (§IV, Fig. 2) — minutes
//! of work that, before this module, a single panic or kill threw away
//! entirely. [`CheckpointStore`] snapshots each completed stage (and each
//! trained specialist candidate inside Algorithm 1) as a versioned,
//! FNV-checksummed artifact written via tmp-file + atomic rename, and
//! [`AnoleSystem::train_resumable`](crate::AnoleSystem::train_resumable)
//! reloads completed stages and re-enters training at the first incomplete
//! one.
//!
//! Trust model: a checkpoint is **evidence, not truth**. Loading validates
//! the magic string, format version, stage key, context binding (config +
//! seed + dataset fingerprint), and payload checksum; anything invalid is
//! discarded — deleted best-effort — and the stage retrains from scratch.
//! Because every stage trainer is deterministic given its seed, a resumed
//! run is bit-identical to an uninterrupted one (asserted by
//! `tests/recovery.rs`).

use std::path::{Path, PathBuf};

use anole_data::DrivingDataset;
use anole_tensor::Seed;
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};

use crate::deploy::fnv1a;
use crate::omi::{CheckpointFault, FaultInjector};
use crate::{AnoleConfig, AnoleError};

/// Checkpoint format version; bump on any incompatible layout change.
/// Version-mismatched files are discarded on load, never trusted.
pub const CHECKPOINT_VERSION: u32 = 1;

const MAGIC: &str = "anole-checkpoint";
const EXT: &str = "ckpt";

/// The OSP stage boundaries, in pipeline order. Each completed stage is
/// snapshotted under its [`OspStage::key`]; [`FaultKind::TrainAbort`]
/// (`crate::omi::FaultKind`) events are scheduled by [`OspStage::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OspStage {
    /// `M_scene` after the TCM classifier fit (§IV-A).
    SceneModel,
    /// The full repository after Algorithm 1's δ-gated sweep.
    Repository,
    /// Suitability sets after adaptive scene sampling (§IV-B).
    Suitability,
    /// `M_decision` after the decision-model fit (§IV-C).
    Decision,
}

impl OspStage {
    /// All stages, in pipeline order.
    pub const ALL: [OspStage; 4] = [
        OspStage::SceneModel,
        OspStage::Repository,
        OspStage::Suitability,
        OspStage::Decision,
    ];

    /// Position in the pipeline (0-based).
    pub fn index(self) -> usize {
        match self {
            OspStage::SceneModel => 0,
            OspStage::Repository => 1,
            OspStage::Suitability => 2,
            OspStage::Decision => 3,
        }
    }

    /// Stable artifact key (also the file stem).
    pub fn key(self) -> &'static str {
        match self {
            OspStage::SceneModel => "stage_scene_model",
            OspStage::Repository => "stage_repository",
            OspStage::Suitability => "stage_suitability",
            OspStage::Decision => "stage_decision",
        }
    }

    /// Human-readable stage name.
    pub fn name(self) -> &'static str {
        match self {
            OspStage::SceneModel => "scene model",
            OspStage::Repository => "model repository",
            OspStage::Suitability => "suitability sets",
            OspStage::Decision => "decision model",
        }
    }
}

impl std::fmt::Display for OspStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The on-disk envelope wrapping every checkpointed artifact.
#[derive(Debug, Serialize, Deserialize)]
struct Envelope {
    magic: String,
    version: u32,
    key: String,
    /// Binds the artifact to (config, seed, dataset); a checkpoint written
    /// under any other training context must not be reloaded.
    context: u64,
    /// FNV-1a over the payload bytes.
    checksum: u64,
    /// JSON of the artifact itself.
    payload: String,
}

/// Binds checkpoints to their training context: the config, the seed, and a
/// cheap dataset fingerprint (generator config + clip/frame counts). A
/// checkpoint from any other context validates as stale and is discarded.
pub fn context_key(dataset: &DrivingDataset, config: &AnoleConfig, seed: Seed) -> u64 {
    let mut text = serde_json::to_string(config).unwrap_or_default();
    text.push('|');
    text.push_str(&serde_json::to_string(dataset.config()).unwrap_or_default());
    text.push('|');
    text.push_str(&format!(
        "seed={};clips={};frames={}",
        seed.0,
        dataset.clips().len(),
        dataset.frame_count()
    ));
    fnv1a(text.as_bytes())
}

/// Counters describing what a store did during one training run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointStats {
    /// Artifacts written durably.
    pub writes: usize,
    /// Writes dropped by an injected I/O failure (training continued).
    pub write_faults: usize,
    /// Writes that landed truncated/corrupt (injected; caught on load).
    pub truncated_writes: usize,
    /// Artifacts reloaded from a valid checkpoint.
    pub loads: usize,
    /// Invalid checkpoints (corrupt, wrong version, wrong context)
    /// discarded on load.
    pub discarded: usize,
}

/// A directory of versioned, checksummed training checkpoints.
///
/// Writes go through tmp-file + atomic rename, so a crash mid-write never
/// leaves a half-written artifact under the final name. An optional
/// [`FaultInjector`] exercises the failure paths deterministically.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    context: u64,
    /// What happened during this run.
    pub stats: CheckpointStats,
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory bound to the given
    /// training context.
    ///
    /// # Errors
    ///
    /// [`AnoleError::Checkpoint`] if the directory cannot be created.
    pub fn open(dir: &Path, context: u64) -> Result<Self, AnoleError> {
        std::fs::create_dir_all(dir).map_err(|e| AnoleError::Checkpoint {
            detail: format!("cannot create {}: {e}", dir.display()),
        })?;
        Ok(Self {
            dir: dir.to_path_buf(),
            context,
            stats: CheckpointStats::default(),
        })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The context key the store validates against.
    pub fn context(&self) -> u64 {
        self.context
    }

    fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.{EXT}"))
    }

    /// Whether a checkpoint file exists for `key` (without validating it).
    pub fn has(&self, key: &str) -> bool {
        self.path_for(key).exists()
    }

    /// Writes `value` as the checkpoint for `key` via tmp-file + atomic
    /// rename. Returns `true` when the artifact is durable; `false` when an
    /// injected write fault dropped it (the caller's in-memory result is
    /// still good — only resume coverage is lost, so training continues).
    ///
    /// # Errors
    ///
    /// [`AnoleError::Checkpoint`] on real serialization or I/O failures.
    pub fn save<T: Serialize>(
        &mut self,
        key: &str,
        value: &T,
        injector: Option<&mut FaultInjector>,
    ) -> Result<bool, AnoleError> {
        let fault = injector.and_then(FaultInjector::next_checkpoint_write);
        if fault == Some(CheckpointFault::WriteFailure) {
            self.stats.write_faults += 1;
            return Ok(false);
        }
        let payload = serde_json::to_string(value).map_err(|e| AnoleError::Checkpoint {
            detail: format!("cannot serialize '{key}': {e}"),
        })?;
        let envelope = Envelope {
            magic: MAGIC.to_string(),
            version: CHECKPOINT_VERSION,
            key: key.to_string(),
            context: self.context,
            checksum: fnv1a(payload.as_bytes()),
            payload,
        };
        let mut bytes = serde_json::to_vec(&envelope).map_err(|e| AnoleError::Checkpoint {
            detail: format!("cannot serialize envelope for '{key}': {e}"),
        })?;
        if fault == Some(CheckpointFault::Truncated) {
            // The artifact lands corrupt at rest; the loader must catch it.
            bytes.truncate(bytes.len() / 2);
            self.stats.truncated_writes += 1;
        }
        let path = self.path_for(key);
        let tmp = self.dir.join(format!("{key}.{EXT}.tmp"));
        let io_err = |what: &str, e: std::io::Error| AnoleError::Checkpoint {
            detail: format!("{what} {}: {e}", path.display()),
        };
        std::fs::write(&tmp, &bytes).map_err(|e| io_err("cannot write", e))?;
        std::fs::rename(&tmp, &path).map_err(|e| io_err("cannot commit", e))?;
        self.stats.writes += 1;
        Ok(true)
    }

    /// Loads and validates the checkpoint for `key`. Any invalid checkpoint
    /// — unreadable, unparsable, wrong magic/version/key/context, checksum
    /// mismatch, or undeserializable payload — is discarded (the file is
    /// deleted best-effort) and `None` is returned so the caller retrains.
    pub fn load<T: DeserializeOwned>(&mut self, key: &str) -> Option<T> {
        let path = self.path_for(key);
        let bytes = std::fs::read(&path).ok()?;
        match self.validate::<T>(key, &bytes) {
            Some(value) => {
                self.stats.loads += 1;
                Some(value)
            }
            None => {
                self.stats.discarded += 1;
                let _ = std::fs::remove_file(&path);
                None
            }
        }
    }

    fn validate<T: DeserializeOwned>(&self, key: &str, bytes: &[u8]) -> Option<T> {
        let envelope: Envelope = serde_json::from_slice(bytes).ok()?;
        if envelope.magic != MAGIC
            || envelope.version != CHECKPOINT_VERSION
            || envelope.key != key
            || envelope.context != self.context
            || fnv1a(envelope.payload.as_bytes()) != envelope.checksum
        {
            return None;
        }
        serde_json::from_str(&envelope.payload).ok()
    }

    /// Removes the checkpoint for `key`, if present.
    pub fn remove(&mut self, key: &str) {
        let _ = std::fs::remove_file(self.path_for(key));
    }

    /// Removes every checkpoint file in the store (e.g. after a training
    /// run completes and the bundle has shipped).
    pub fn clear(&mut self) {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|e| e == EXT) {
                let _ = std::fs::remove_file(path);
            }
        }
    }
}

/// Key for one specialist-candidate checkpoint inside Algorithm 1's sweep,
/// addressed by its clustering coordinates (stable across runs — candidate
/// seeds are keyed the same way).
pub fn specialist_key(k: usize, cluster: usize) -> String {
    format!("specialist_k{k:03}_c{cluster:03}")
}

/// Key for one step of an incremental re-profile
/// ([`AnoleSystem::reprofile_with_frames`](crate::AnoleSystem::reprofile_with_frames)).
/// Steps are numbered in execution order, so a resumed re-profile replays
/// the same sequence.
pub fn reprofile_key(step: usize) -> String {
    format!("reprofile_step{step:03}")
}

/// What a resumable training run recovered, stage by stage.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Stage names reloaded from valid checkpoints, in pipeline order.
    pub resumed_stages: Vec<&'static str>,
    /// Specialist candidates reloaded inside an incomplete repository stage.
    pub resumed_specialists: usize,
    /// Re-profile steps reloaded inside an interrupted incremental
    /// re-profile. Deserializes to 0 from reports written before continual
    /// re-profiling existed.
    #[serde(default)]
    pub resumed_reprofile_steps: usize,
    /// First stage that actually ran (None when everything resumed).
    pub first_trained_stage: Option<&'static str>,
    /// Store counters (writes, faults, loads, discards).
    pub checkpoints: CheckpointStats,
}

/// Recovery context threaded through
/// [`AnoleSystem::train_resumable`](crate::AnoleSystem::train_resumable):
/// a checkpoint store plus an optional fault injector that exercises
/// checkpoint-write failures, artifact truncation, and post-stage aborts.
#[derive(Debug)]
pub struct TrainRecovery {
    store: CheckpointStore,
    injector: Option<FaultInjector>,
    /// Filled in as training proceeds.
    pub report: RecoveryReport,
}

impl TrainRecovery {
    /// Wraps a store with no fault injection.
    pub fn new(store: CheckpointStore) -> Self {
        Self {
            store,
            injector: None,
            report: RecoveryReport::default(),
        }
    }

    /// Attaches a seeded fault injector. A zero-fault plan leaves training
    /// bit-identical to an uninstrumented run.
    #[must_use]
    pub fn with_injector(mut self, injector: FaultInjector) -> Self {
        self.injector = Some(injector);
        self
    }

    /// The underlying store.
    pub fn store(&self) -> &CheckpointStore {
        &self.store
    }

    /// Loads a completed stage, recording the resume in the report.
    pub fn load_stage<T: DeserializeOwned>(&mut self, stage: OspStage) -> Option<T> {
        let value = self.store.load(stage.key());
        if value.is_some() {
            self.report.resumed_stages.push(stage.name());
        }
        value
    }

    /// Saves a completed stage (write faults are absorbed; see
    /// [`CheckpointStore::save`]), recording the first trained stage.
    ///
    /// # Errors
    ///
    /// [`AnoleError::Checkpoint`] on real I/O or serialization failures.
    pub fn save_stage<T: Serialize>(&mut self, stage: OspStage, value: &T) -> Result<(), AnoleError> {
        if self.report.first_trained_stage.is_none() {
            self.report.first_trained_stage = Some(stage.name());
        }
        self.store.save(stage.key(), value, self.injector.as_mut())?;
        Ok(())
    }

    /// Loads a specialist-candidate checkpoint (model plus validation F1).
    pub fn load_specialist<T: DeserializeOwned>(&mut self, k: usize, cluster: usize) -> Option<T> {
        let value = self.store.load(&specialist_key(k, cluster));
        if value.is_some() {
            self.report.resumed_specialists += 1;
        }
        value
    }

    /// Saves a specialist-candidate checkpoint as it passes (or fails) the
    /// δ gate; write faults are absorbed.
    ///
    /// # Errors
    ///
    /// [`AnoleError::Checkpoint`] on real I/O or serialization failures.
    pub fn save_specialist<T: Serialize>(
        &mut self,
        k: usize,
        cluster: usize,
        value: &T,
    ) -> Result<(), AnoleError> {
        self.store
            .save(&specialist_key(k, cluster), value, self.injector.as_mut())?;
        Ok(())
    }

    /// Loads a completed re-profile step, recording the resume.
    pub fn load_reprofile<T: DeserializeOwned>(&mut self, step: usize) -> Option<T> {
        let value = self.store.load(&reprofile_key(step));
        if value.is_some() {
            self.report.resumed_reprofile_steps += 1;
        }
        value
    }

    /// Saves a completed re-profile step; write faults are absorbed.
    ///
    /// # Errors
    ///
    /// [`AnoleError::Checkpoint`] on real I/O or serialization failures.
    pub fn save_reprofile<T: Serialize>(&mut self, step: usize, value: &T) -> Result<(), AnoleError> {
        self.store
            .save(&reprofile_key(step), value, self.injector.as_mut())?;
        Ok(())
    }

    /// Checks for an injected kill right after re-profile step `step`
    /// completed (its checkpoint is already durable), mirroring
    /// [`TrainRecovery::abort_point`] for the incremental pipeline.
    ///
    /// # Errors
    ///
    /// [`AnoleError::Aborted`] when the plan schedules a
    /// [`crate::omi::FaultKind::ReprofileAbort`] at this step index.
    pub fn reprofile_abort_point(
        &mut self,
        step: usize,
        name: &'static str,
    ) -> Result<(), AnoleError> {
        self.sync_stats();
        if self
            .injector
            .as_ref()
            .is_some_and(|i| i.reprofile_abort_after(step))
        {
            return Err(AnoleError::Aborted { stage: name });
        }
        Ok(())
    }

    /// Checks for an injected kill right after `stage` completed (its
    /// checkpoint is already durable). Returns [`AnoleError::Aborted`] so
    /// the caller unwinds like a crash would.
    ///
    /// # Errors
    ///
    /// [`AnoleError::Aborted`] when the plan schedules a
    /// [`crate::omi::FaultKind::TrainAbort`] at this stage's index.
    pub fn abort_point(&mut self, stage: OspStage) -> Result<(), AnoleError> {
        self.sync_stats();
        if self
            .injector
            .as_ref()
            .is_some_and(|i| i.train_abort_after(stage.index()))
        {
            return Err(AnoleError::Aborted { stage: stage.name() });
        }
        Ok(())
    }

    /// Copies the store counters into the report (called at stage
    /// boundaries and by `finish`).
    fn sync_stats(&mut self) {
        self.report.checkpoints = self.store.stats.clone();
    }

    /// Finalizes the report after a successful run.
    pub fn finish(&mut self) {
        self.sync_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::omi::{FaultKind, FaultPlan};

    fn temp_store(tag: &str, context: u64) -> CheckpointStore {
        let dir = std::env::temp_dir().join(format!("anole-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        CheckpointStore::open(&dir, context).unwrap()
    }

    #[test]
    fn round_trips_and_counts() {
        let mut store = temp_store("roundtrip", 7);
        assert!(!store.has("stage_scene_model"));
        assert!(store.save("stage_scene_model", &vec![1u32, 2, 3], None).unwrap());
        assert!(store.has("stage_scene_model"));
        let loaded: Vec<u32> = store.load("stage_scene_model").unwrap();
        assert_eq!(loaded, vec![1, 2, 3]);
        assert_eq!(store.stats.writes, 1);
        assert_eq!(store.stats.loads, 1);
        assert_eq!(store.stats.discarded, 0);
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn wrong_context_is_discarded() {
        let dir = std::env::temp_dir().join(format!("anole-ckpt-ctx-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut writer = CheckpointStore::open(&dir, 1).unwrap();
        writer.save("stage_decision", &42u64, None).unwrap();
        let mut reader = CheckpointStore::open(&dir, 2).unwrap();
        assert_eq!(reader.load::<u64>("stage_decision"), None);
        assert_eq!(reader.stats.discarded, 1);
        // The stale file was deleted, not left to be retried forever.
        assert!(!reader.has("stage_decision"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_is_discarded_not_trusted() {
        let mut store = temp_store("corrupt", 3);
        store.save("stage_repository", &String::from("payload"), None).unwrap();
        let path = store.dir().join("stage_repository.ckpt");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, bytes).unwrap();
        assert_eq!(store.load::<String>("stage_repository"), None);
        assert_eq!(store.stats.discarded, 1);
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn wrong_key_and_version_are_rejected() {
        let mut store = temp_store("keys", 3);
        store.save("stage_suitability", &1u8, None).unwrap();
        // Same bytes presented under another key must not validate.
        std::fs::copy(
            store.dir().join("stage_suitability.ckpt"),
            store.dir().join("stage_decision.ckpt"),
        )
        .unwrap();
        assert_eq!(store.load::<u8>("stage_decision"), None);
        // A future-versioned envelope is discarded too.
        let json = std::fs::read_to_string(store.dir().join("stage_suitability.ckpt")).unwrap();
        let bumped = json.replace("\"version\":1", "\"version\":999");
        assert_ne!(json, bumped);
        std::fs::write(store.dir().join("stage_suitability.ckpt"), bumped).unwrap();
        assert_eq!(store.load::<u8>("stage_suitability"), None);
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn injected_write_failure_drops_the_artifact_gracefully() {
        let mut store = temp_store("wfault", 3);
        let mut injector = FaultPlan::new(anole_tensor::Seed(5))
            .at(0, FaultKind::CheckpointWriteFailure)
            .injector();
        let durable = store.save("stage_scene_model", &7u32, Some(&mut injector)).unwrap();
        assert!(!durable);
        assert!(!store.has("stage_scene_model"));
        assert_eq!(store.stats.write_faults, 1);
        // The next write (write index 1) goes through.
        assert!(store.save("stage_scene_model", &7u32, Some(&mut injector)).unwrap());
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn injected_truncation_is_caught_on_load() {
        let mut store = temp_store("tfault", 3);
        let mut injector = FaultPlan::new(anole_tensor::Seed(6))
            .at(0, FaultKind::TruncatedArtifact)
            .injector();
        assert!(store.save("stage_decision", &vec![9u8; 64], Some(&mut injector)).unwrap());
        assert_eq!(store.stats.truncated_writes, 1);
        assert_eq!(store.load::<Vec<u8>>("stage_decision"), None);
        assert_eq!(store.stats.discarded, 1);
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn clear_removes_only_checkpoints() {
        let mut store = temp_store("clear", 3);
        store.save("stage_scene_model", &1u8, None).unwrap();
        store.save(&specialist_key(2, 1), &2u8, None).unwrap();
        std::fs::write(store.dir().join("notes.txt"), b"keep me").unwrap();
        store.clear();
        assert!(!store.has("stage_scene_model"));
        assert!(!store.has(&specialist_key(2, 1)));
        assert!(store.dir().join("notes.txt").exists());
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn stages_are_ordered_and_named() {
        for (i, stage) in OspStage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), i);
            assert!(!stage.key().is_empty());
        }
        assert_eq!(OspStage::SceneModel.to_string(), "scene model");
        assert_eq!(specialist_key(3, 12), "specialist_k003_c012");
    }

    #[test]
    fn abort_point_fires_only_at_the_scheduled_stage() {
        let store = temp_store("abort", 3);
        let dir = store.dir().to_path_buf();
        let mut recovery = TrainRecovery::new(store).with_injector(
            FaultPlan::new(anole_tensor::Seed(8))
                .at(OspStage::Repository.index(), FaultKind::TrainAbort)
                .injector(),
        );
        assert!(recovery.abort_point(OspStage::SceneModel).is_ok());
        let err = recovery.abort_point(OspStage::Repository).unwrap_err();
        assert_eq!(err, AnoleError::Aborted { stage: "model repository" });
        std::fs::remove_dir_all(dir).unwrap();
    }
}
