//! The assembled Anole system: one call trains the whole offline pipeline.

use anole_data::DrivingDataset;
use anole_device::DeviceKind;
use anole_tensor::{split_seed, Seed};
use serde::{Deserialize, Serialize};

use crate::checkpoint::{OspStage, TrainRecovery};
use crate::omi::OnlineEngine;
use crate::osp::{AdaptiveSampler, DecisionModel, ModelRepository, SceneModel, SuitabilitySets};
use crate::{AnoleConfig, AnoleError};

/// A fully trained Anole system: scene encoder, compressed-model repository,
/// and decision model, ready to be deployed to an [`OnlineEngine`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnoleSystem {
    config: AnoleConfig,
    scene_model: SceneModel,
    repository: ModelRepository,
    decision: DecisionModel,
    suitability_sets: SuitabilitySets,
}

impl AnoleSystem {
    /// Runs the entire offline scene profiling of Fig. 2: trains `M_scene`,
    /// runs Algorithm 1, collects balanced suitability sets with Thompson
    /// sampling, and trains `M_decision`.
    ///
    /// # Errors
    ///
    /// Any stage's error is surfaced; see [`AnoleError`].
    pub fn train(
        dataset: &DrivingDataset,
        config: &AnoleConfig,
        seed: Seed,
    ) -> Result<Self, AnoleError> {
        Self::train_inner(dataset, config, seed, None)
    }

    /// Crash-safe variant of [`AnoleSystem::train`]: each completed stage
    /// (and each specialist candidate inside Algorithm 1) is checkpointed
    /// through `recovery`, and stages already checkpointed by an earlier,
    /// interrupted run are reloaded instead of retrained.
    ///
    /// Every stage trainer is deterministic given its `split_seed` stream,
    /// so a resumed run produces a system bit-identical to an uninterrupted
    /// run with the same seed — with zero faults injected the two are
    /// `==`. Invalid checkpoints (corrupt, version-mismatched, or written
    /// under a different config/seed/dataset) are discarded, never trusted.
    ///
    /// # Errors
    ///
    /// As [`AnoleSystem::train`], plus [`AnoleError::Checkpoint`] on real
    /// checkpoint I/O failures and [`AnoleError::Aborted`] when the
    /// recovery's fault plan kills training at a stage boundary (call again
    /// with the same store to resume).
    pub fn train_resumable(
        dataset: &DrivingDataset,
        config: &AnoleConfig,
        seed: Seed,
        recovery: &mut TrainRecovery,
    ) -> Result<Self, AnoleError> {
        let system = Self::train_inner(dataset, config, seed, Some(recovery))?;
        recovery.finish();
        Ok(system)
    }

    fn train_inner(
        dataset: &DrivingDataset,
        config: &AnoleConfig,
        seed: Seed,
        mut recovery: Option<&mut TrainRecovery>,
    ) -> Result<Self, AnoleError> {
        let _span = anole_obs::span!("osp.train");
        anole_obs::counter_add!("osp.train.runs", 1);
        let split = dataset.split();
        // Each stage: reload a valid checkpoint, or train and checkpoint.
        // The abort point sits *after* the save, so an injected kill always
        // lands at a stage boundary with that stage's checkpoint durable;
        // resumed stages skip their abort point (the kill already happened).
        let scene_model = match recovery
            .as_mut()
            .and_then(|r| r.load_stage::<SceneModel>(OspStage::SceneModel))
        {
            Some(model) => model,
            None => {
                let model =
                    SceneModel::train(dataset, &split.train, &config.scene, split_seed(seed, 0))?;
                if let Some(rec) = recovery.as_mut() {
                    rec.save_stage(OspStage::SceneModel, &model)?;
                    rec.abort_point(OspStage::SceneModel)?;
                }
                model
            }
        };
        let repository = match recovery
            .as_mut()
            .and_then(|r| r.load_stage::<ModelRepository>(OspStage::Repository))
        {
            Some(repo) => repo,
            None => {
                let repo = ModelRepository::train_with_recovery(
                    dataset,
                    &scene_model,
                    &split.train,
                    &split.val,
                    config,
                    split_seed(seed, 1),
                    recovery.as_deref_mut(),
                )?;
                if let Some(rec) = recovery.as_mut() {
                    rec.save_stage(OspStage::Repository, &repo)?;
                    rec.abort_point(OspStage::Repository)?;
                }
                repo
            }
        };
        let suitability_sets = match recovery
            .as_mut()
            .and_then(|r| r.load_stage::<SuitabilitySets>(OspStage::Suitability))
        {
            Some(sets) => sets,
            None => {
                let sampler = AdaptiveSampler::new(config.sampling, config.detector.threshold);
                let sets = sampler.collect(dataset, &repository, split_seed(seed, 2))?;
                if let Some(rec) = recovery.as_mut() {
                    rec.save_stage(OspStage::Suitability, &sets)?;
                    rec.abort_point(OspStage::Suitability)?;
                }
                sets
            }
        };
        let decision = match recovery
            .as_mut()
            .and_then(|r| r.load_stage::<DecisionModel>(OspStage::Decision))
        {
            Some(decision) => decision,
            None => {
                let decision = DecisionModel::train(
                    dataset,
                    &scene_model,
                    &suitability_sets,
                    repository.len(),
                    &config.decision,
                    split_seed(seed, 3),
                )?;
                if let Some(rec) = recovery.as_mut() {
                    rec.save_stage(OspStage::Decision, &decision)?;
                    rec.abort_point(OspStage::Decision)?;
                }
                decision
            }
        };
        let mut system = Self {
            config: *config,
            scene_model,
            repository,
            decision,
            suitability_sets,
        };
        if config.quant.enabled {
            system.quantize_models(dataset)?;
        }
        Ok(system)
    }

    /// The configuration the system was trained with.
    pub fn config(&self) -> &AnoleConfig {
        &self.config
    }

    /// The scene encoder `M_scene`.
    pub fn scene_model(&self) -> &SceneModel {
        &self.scene_model
    }

    /// The compressed-model repository.
    pub fn repository(&self) -> &ModelRepository {
        &self.repository
    }

    /// The decision model `M_decision`.
    pub fn decision(&self) -> &DecisionModel {
        &self.decision
    }

    /// The suitability sets used to train the decision model (diagnostics).
    pub fn suitability_sets(&self) -> &SuitabilitySets {
        &self.suitability_sets
    }

    /// Deploys the system to a simulated device.
    pub fn online_engine(&self, device: DeviceKind, seed: Seed) -> OnlineEngine<'_> {
        OnlineEngine::new(self, device, seed)
    }

    /// Overrides the deployment cache configuration (capacity sweeps and
    /// eviction-policy ablations re-deploy the same trained system with
    /// different cache settings).
    pub fn set_cache_config(&mut self, cache: crate::CacheConfig) {
        self.config.cache = cache;
    }

    /// Overrides the serving-SLO configuration (read by the gateway and the
    /// lifecycle's canary promotion gate; the trained models are untouched).
    pub fn set_slo_config(&mut self, slo: crate::SloConfig) {
        self.config.slo = slo;
    }

    /// Converts the repository and the decision model to the int8 serving
    /// format, behind per-model acceptance gates (ε =
    /// [`QuantConfig::epsilon_f1`](crate::QuantConfig::epsilon_f1)):
    ///
    /// * each compressed specialist is quantized only if its validation-split
    ///   F1 at int8 stays within ε of its fp32 F1 — a model the gate rejects
    ///   keeps serving at fp32;
    /// * the decision model is quantized only if int8 routing picks the same
    ///   top-1 specialist as fp32 routing on at least `1 − ε` of the
    ///   validation frames.
    ///
    /// The sweep is deterministic (quantization is a pure function of the
    /// trained weights and the fixed validation split) and idempotent:
    /// re-running it re-derives the same twins and the same verdicts.
    /// Already-quantized models are re-gated from their f32 weights, so the
    /// gate never compounds quantization error across calls.
    ///
    /// # Errors
    ///
    /// Surfaces width errors from the underlying forwards.
    pub fn quantize_models(
        &mut self,
        dataset: &DrivingDataset,
    ) -> Result<QuantizationReport, AnoleError> {
        let _span = anole_obs::span!("osp.quantize");
        let epsilon = self.config.quant.epsilon_f1;
        let threshold = self.config.detector.threshold;
        let val = &dataset.split().val;
        let mut report = QuantizationReport::default();
        for model in self.repository.models_mut() {
            model.quantized = None;
            let fp32_f1 = model.evaluate_f1(dataset, val, threshold)?;
            model.quantized = Some(model.net.quantize());
            let int8_f1 = model.evaluate_f1(dataset, val, threshold)?;
            let outcome = ModelQuantOutcome {
                id: model.id,
                fp32_f1,
                int8_f1,
            };
            if fp32_f1 - int8_f1 > epsilon {
                model.quantized = None;
                anole_obs::counter_add!("omi.engine.quant.rejected", 1);
                report.rejected.push(outcome);
            } else {
                anole_obs::counter_add!("omi.engine.quant.accepted", 1);
                report.accepted.push(outcome);
            }
        }
        let x_val = dataset.features_matrix(val);
        let (decision_accepted, agreement) = self.decision.quantize_gated(&x_val, epsilon)?;
        if !decision_accepted {
            anole_obs::counter_add!("omi.engine.quant.rejected", 1);
        }
        report.decision_quantized = decision_accepted;
        report.decision_agreement = agreement;
        anole_obs::gauge_set!(
            "omi.engine.quant.models",
            report.accepted.len() as f64 + f64::from(decision_accepted)
        );
        Ok(report)
    }

    /// Online repository expansion — the paper's remedy for §II case 3
    /// ("train new models to deal with x and the like in the future").
    ///
    /// Given freshly collected labelled frames from an uncovered scene,
    /// trains a new compressed specialist on them, appends it to the
    /// repository, and retrains the decision head (frozen scene backbone)
    /// over the widened model set using the stored suitability samples plus
    /// the new footage. Returns the new model's id.
    ///
    /// # Errors
    ///
    /// * [`AnoleError::InsufficientData`] if fewer than 10 frames are
    ///   supplied (too few to train and validate a specialist).
    /// * Training errors from the substrates.
    pub fn extend_with_frames(
        &mut self,
        dataset: &DrivingDataset,
        frames: &[anole_data::Frame],
        seed: Seed,
    ) -> Result<usize, AnoleError> {
        use anole_tensor::Matrix;

        if frames.len() < 10 {
            return Err(AnoleError::InsufficientData {
                stage: "repository expansion",
                detail: format!("{} frames (need at least 10)", frames.len()),
            });
        }
        let feature_dim = dataset.config().world.feature_dim;
        let threshold = self.config.detector.threshold;

        // 1. Train the new specialist.
        let candidate = self.fit_specialist(dataset, frames, seed)?;
        let new_id = self.repository.push(candidate);
        let n_models = self.repository.len();

        // 2. Rebuild the decision training material with the widened width:
        //    stored suitability samples (membership rows extended with the
        //    new model's score) plus the new footage (owner-boosted on the
        //    new model).
        let sampler = AdaptiveSampler::new(self.config.sampling, threshold);
        let old_refs: Vec<anole_data::FrameRef> =
            self.suitability_sets.samples.iter().map(|&(r, _)| r).collect();
        let x_old = dataset.features_matrix(&old_refs);
        let mut rows = x_old.rows() + frames.len();
        let mut x = Matrix::zeros(rows, feature_dim);
        let mut targets = Matrix::zeros(rows, n_models);
        let new_model = self.repository.model(new_id);
        for (i, &r) in old_refs.iter().enumerate() {
            x.row_mut(i).copy_from_slice(x_old.row(i));
            let mut v = self.suitability_sets.memberships[i].clone();
            let new_f1 = sampler.frame_f1(new_model, dataset, r)?;
            v.push(if new_f1 > self.config.sampling.accept_f1 {
                new_f1 * new_f1
            } else {
                0.0
            });
            write_normalized(&mut targets, i, &v, self.suitability_sets.samples[i].1);
        }
        let mut row = x_old.rows();
        for frame in frames {
            let mut v = vec![0.0f32; n_models];
            for model in self.repository.models() {
                let f1 = crate::osp::frame_f1_of(model, frame, threshold)?;
                if f1 > self.config.sampling.accept_f1 {
                    v[model.id] = f1 * f1;
                }
            }
            // Owner boost toward the new specialist, mirroring collection.
            let peak = v.iter().cloned().fold(0.0f32, f32::max).max(1.0);
            v[new_id] += 2.0 * peak;
            x.row_mut(row).copy_from_slice(&frame.features);
            write_normalized(&mut targets, row, &v, new_id);
            row += 1;
        }
        rows = row;
        debug_assert_eq!(rows, x.rows());

        self.decision = DecisionModel::train_from_features(
            &self.scene_model,
            &x,
            &targets,
            &self.config.decision,
            split_seed(seed, 2),
        )?;
        Ok(new_id)
    }

    /// Trains one compressed specialist on `frames` (4/5 fit split, 1/5
    /// validation), returning the candidate with `id` 0 — the repository
    /// assigns the real id on push.
    fn fit_specialist(
        &self,
        dataset: &DrivingDataset,
        frames: &[anole_data::Frame],
        seed: Seed,
    ) -> Result<crate::osp::CompressedModel, AnoleError> {
        use anole_nn::{ModelProfile, ReferenceModel};
        use anole_tensor::Matrix;

        let feature_dim = dataset.config().world.feature_dim;
        let cells = dataset.config().world.grid.cells();
        let split_at = frames.len() * 4 / 5;
        let (fit_frames, val_frames) = frames.split_at(split_at.max(1));

        let stack = |frames: &[anole_data::Frame]| {
            let mut x = Matrix::zeros(frames.len(), feature_dim);
            let mut y = Matrix::zeros(frames.len(), cells);
            for (i, f) in frames.iter().enumerate() {
                x.row_mut(i).copy_from_slice(&f.features);
                for (j, &t) in f.truth.iter().enumerate() {
                    if t {
                        y.set(i, j, 1.0);
                    }
                }
            }
            (x, y)
        };
        let (x_fit, y_fit) = stack(fit_frames);
        let net = self.fit_compressed_net(&x_fit, &y_fit, seed)?;
        let profile = ModelProfile::of_mlp(ReferenceModel::Yolov3Tiny, &net);
        let mut candidate = crate::osp::CompressedModel {
            id: 0, // assigned by push
            net,
            profile,
            validation_f1: 0.0,
            origin: crate::osp::ClusterOrigin {
                k: 0,
                cluster: 0,
                scenes: Vec::new(),
            },
            training_set: Vec::new(),
            quantized: None,
        };
        let threshold = self.config.detector.threshold;
        let mut counts = anole_detect::DetectionCounts::default();
        if !val_frames.is_empty() {
            // One batched forward over the stacked validation frames; the
            // matmul kernel accumulates each output element identically for
            // any batch size, so scores match the per-frame path exactly.
            let (x_val, _) = stack(val_frames);
            let probs = candidate.detect_probs(&x_val)?;
            for (i, frame) in val_frames.iter().enumerate() {
                let pred = anole_detect::threshold_probs(probs.row(i), threshold);
                counts.accumulate(&pred, &frame.truth);
            }
        }
        candidate.validation_f1 = counts.f1();
        Ok(candidate)
    }

    /// Builds and fits one compressed-detector MLP on stacked material.
    fn fit_compressed_net(
        &self,
        x_fit: &anole_tensor::Matrix,
        y_fit: &anole_tensor::Matrix,
        seed: Seed,
    ) -> Result<anole_nn::Mlp, AnoleError> {
        use anole_nn::{Activation, Mlp, Trainer, Workspace};

        let mut net = Mlp::builder(x_fit.cols())
            .hidden(self.config.detector.compressed_hidden, Activation::Relu)
            .output(y_fit.cols())
            .build(split_seed(seed, 0));
        let mut train_cfg = self.config.detector.train;
        train_cfg.pos_weight = self.config.detector.pos_weight;
        let mut ws = Workspace::new();
        Trainer::new(train_cfg).fit_multilabel_ws(&mut net, x_fit, y_fit, split_seed(seed, 1), &mut ws)?;
        Ok(net)
    }

    /// Guarded continual re-profiling: the incremental Algorithm 1.
    ///
    /// Where [`AnoleSystem::extend_with_frames`] always bolts on one new
    /// specialist, this re-runs only the *affected* part of offline scene
    /// profiling against freshly pooled (drifting) footage:
    ///
    /// 1. **Assignment** — the footage is scored against every existing
    ///    specialist (`M_scene` itself is reused, never retrained). Frames a
    ///    specialist already predicts well are assigned to it; specialists
    ///    holding a meaningful share of the footage are *stale* (their scene
    ///    moved under them). Frames no specialist covers are *novel*.
    /// 2. **Refresh** — each stale specialist is retrained from its original
    ///    training set plus its assigned footage; untouched specialists keep
    ///    their weights bit-for-bit. A refreshed model drops its quantized
    ///    twin (re-run [`AnoleSystem::quantize_models`] to re-gate it).
    /// 3. **Expansion** — if at least 10 novel frames pooled, one new
    ///    specialist is trained on them (as in repository expansion).
    /// 4. **Decision refresh** — the decision head is retrained (frozen
    ///    scene backbone) over suitability targets recomputed against the
    ///    refreshed repository.
    ///
    /// Every step is checkpointed through `recovery` (when supplied) with
    /// the PR-3 envelope machinery, and each boundary is a
    /// [`FaultKind::ReprofileAbort`](crate::omi::FaultKind::ReprofileAbort)
    /// abort point: a killed re-profile, re-invoked on a fresh clone of the
    /// pre-profile system with the same store, resumes from its checkpoints
    /// and produces a system bit-identical to an uninterrupted run.
    ///
    /// # Errors
    ///
    /// * [`AnoleError::InsufficientData`] if fewer than 10 frames are
    ///   supplied.
    /// * [`AnoleError::Aborted`] at an injected re-profile kill.
    /// * Training and checkpoint errors from the substrates.
    pub fn reprofile_with_frames(
        &mut self,
        dataset: &DrivingDataset,
        frames: &[anole_data::Frame],
        seed: Seed,
        mut recovery: Option<&mut TrainRecovery>,
    ) -> Result<ReprofileReport, AnoleError> {
        use anole_nn::{ModelProfile, ReferenceModel};
        use anole_tensor::Matrix;

        let _span = anole_obs::span!("osp.reprofile");
        anole_obs::counter_add!("omi.engine.drift.reprofiles", 1);
        if frames.len() < 10 {
            return Err(AnoleError::InsufficientData {
                stage: "continual re-profile",
                detail: format!("{} frames (need at least 10)", frames.len()),
            });
        }
        let threshold = self.config.detector.threshold;
        let accept = self.config.sampling.accept_f1;
        let val = &dataset.split().val;

        // Step 0: assignment. Deterministic (no RNG), so the checkpoint
        // only buys resume speed — a recomputed assignment is identical.
        let assignment = match recovery
            .as_mut()
            .and_then(|r| r.load_reprofile::<ReprofileAssignment>(0))
        {
            Some(a) => a,
            None => {
                let n = self.repository.len();
                let mut assigned: Vec<Vec<usize>> = vec![Vec::new(); n];
                let mut novel = Vec::new();
                for (i, frame) in frames.iter().enumerate() {
                    let mut covered = false;
                    for model in self.repository.models() {
                        let f1 = crate::osp::frame_f1_of(model, frame, threshold)?;
                        if f1 > accept {
                            assigned[model.id].push(i);
                            covered = true;
                        }
                    }
                    if !covered {
                        novel.push(i);
                    }
                }
                // A specialist is stale only when a meaningful share of the
                // footage lands on it; grazing hits don't trigger retrains.
                let min_assigned = (frames.len() / 5).max(8);
                let affected: Vec<usize> =
                    (0..n).filter(|&m| assigned[m].len() >= min_assigned).collect();
                let assigned: Vec<Vec<usize>> =
                    affected.iter().map(|&m| std::mem::take(&mut assigned[m])).collect();
                let a = ReprofileAssignment { affected, assigned, novel };
                if let Some(rec) = recovery.as_mut() {
                    rec.save_reprofile(0, &a)?;
                    rec.reprofile_abort_point(0, "reprofile assignment")?;
                }
                a
            }
        };

        // Steps 1..=N: refresh each stale specialist in id order.
        let mut refreshed = Vec::with_capacity(assignment.affected.len());
        for (pos, (&id, assigned)) in
            assignment.affected.iter().zip(&assignment.assigned).enumerate()
        {
            let step = 1 + pos;
            let retrained = match recovery
                .as_mut()
                .and_then(|r| r.load_reprofile::<crate::osp::CompressedModel>(step))
            {
                Some(m) => m,
                None => {
                    let old = self.repository.model(id);
                    let feature_dim = dataset.config().world.feature_dim;
                    let cells = dataset.config().world.grid.cells();
                    let rows = old.training_set.len() + assigned.len();
                    let mut x = Matrix::zeros(rows, feature_dim);
                    let mut y = Matrix::zeros(rows, cells);
                    let mut fill = |row: usize, features: &[f32], truth: &[bool]| {
                        x.row_mut(row).copy_from_slice(features);
                        for (j, &t) in truth.iter().enumerate() {
                            if t {
                                y.set(row, j, 1.0);
                            }
                        }
                    };
                    for (row, &r) in old.training_set.iter().enumerate() {
                        let f = dataset.frame(r);
                        fill(row, &f.features, &f.truth);
                    }
                    for (k, &fi) in assigned.iter().enumerate() {
                        let f = &frames[fi];
                        fill(old.training_set.len() + k, &f.features, &f.truth);
                    }
                    let net =
                        self.fit_compressed_net(&x, &y, split_seed(seed, 100 + id as u64))?;
                    let mut m = old.clone();
                    m.net = net;
                    m.profile = ModelProfile::of_mlp(ReferenceModel::Yolov3Tiny, &m.net);
                    m.quantized = None;
                    m.validation_f1 = m.evaluate_f1(dataset, val, threshold)?;
                    if let Some(rec) = recovery.as_mut() {
                        rec.save_reprofile(step, &m)?;
                        rec.reprofile_abort_point(step, "reprofile specialist")?;
                    }
                    m
                }
            };
            self.repository.models_mut()[id] = retrained;
            refreshed.push(id);
        }

        // Step N+1: one new specialist for the novel footage, if enough
        // pooled. The checkpointed candidate carries id 0; push assigns the
        // same id on an uninterrupted run and on a resume.
        let new_step = 1 + assignment.affected.len();
        let mut new_model = None;
        if assignment.novel.len() >= 10 {
            let candidate = match recovery
                .as_mut()
                .and_then(|r| r.load_reprofile::<crate::osp::CompressedModel>(new_step))
            {
                Some(m) => m,
                None => {
                    let novel_frames: Vec<anole_data::Frame> =
                        assignment.novel.iter().map(|&i| frames[i].clone()).collect();
                    let m = self.fit_specialist(dataset, &novel_frames, split_seed(seed, 200))?;
                    if let Some(rec) = recovery.as_mut() {
                        rec.save_reprofile(new_step, &m)?;
                        rec.reprofile_abort_point(new_step, "reprofile expansion")?;
                    }
                    m
                }
            };
            new_model = Some(self.repository.push(candidate));
        }

        // Final step: retrain the decision head against the refreshed
        // repository. Suitability targets are recomputed from scratch — the
        // stale specialists' scores moved, so the stored memberships no
        // longer describe them.
        let decision_step = new_step + 1;
        let n_models = self.repository.len();
        let decision = match recovery
            .as_mut()
            .and_then(|r| r.load_reprofile::<DecisionModel>(decision_step))
        {
            Some(d) => d,
            None => {
                let feature_dim = dataset.config().world.feature_dim;
                let sampler = AdaptiveSampler::new(self.config.sampling, threshold);
                let refs: Vec<anole_data::FrameRef> =
                    self.suitability_sets.samples.iter().map(|&(r, _)| r).collect();
                let x_old = dataset.features_matrix(&refs);
                let rows = refs.len() + frames.len();
                let mut x = Matrix::zeros(rows, feature_dim);
                let mut targets = Matrix::zeros(rows, n_models);
                for (i, &r) in refs.iter().enumerate() {
                    x.row_mut(i).copy_from_slice(x_old.row(i));
                    let mut v = vec![0.0f32; n_models];
                    for model in self.repository.models() {
                        let f1 = sampler.frame_f1(model, dataset, r)?;
                        if f1 > accept {
                            v[model.id] = f1 * f1;
                        }
                    }
                    write_normalized(&mut targets, i, &v, self.suitability_sets.samples[i].1);
                }
                for (k, frame) in frames.iter().enumerate() {
                    let row = refs.len() + k;
                    let mut v = vec![0.0f32; n_models];
                    let mut best = 0usize;
                    let mut best_f1 = 0.0f32;
                    for model in self.repository.models() {
                        let f1 = crate::osp::frame_f1_of(model, frame, threshold)?;
                        if f1 > accept {
                            v[model.id] = f1 * f1;
                        }
                        if f1 > best_f1 {
                            best_f1 = f1;
                            best = model.id;
                        }
                    }
                    if let Some(new_id) = new_model {
                        if assignment.novel.contains(&k) {
                            // Owner boost toward the new specialist,
                            // mirroring expansion.
                            let peak = v.iter().cloned().fold(0.0f32, f32::max).max(1.0);
                            v[new_id] += 2.0 * peak;
                            best = new_id;
                        }
                    }
                    x.row_mut(row).copy_from_slice(&frame.features);
                    write_normalized(&mut targets, row, &v, best);
                }
                let d = DecisionModel::train_from_features(
                    &self.scene_model,
                    &x,
                    &targets,
                    &self.config.decision,
                    split_seed(seed, 300),
                )?;
                if let Some(rec) = recovery.as_mut() {
                    rec.save_reprofile(decision_step, &d)?;
                    rec.reprofile_abort_point(decision_step, "reprofile decision")?;
                }
                d
            }
        };
        self.decision = decision;
        if let Some(rec) = recovery.as_mut() {
            rec.finish();
        }
        anole_obs::gauge_set!("omi.engine.drift.stale_models", refreshed.len() as f64);

        Ok(ReprofileReport {
            assigned_frames: assignment.assigned.iter().map(Vec::len).sum(),
            novel_frames: assignment.novel.len(),
            refreshed,
            new_model,
            total_steps: decision_step + 1,
        })
    }
}

/// Per-model verdict of the quantization sweep: validation F1 at both
/// precisions, so the accuracy cost of int8 is auditable per specialist.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelQuantOutcome {
    /// Repository index of the specialist.
    pub id: usize,
    /// Validation F1 served at fp32.
    pub fp32_f1: f32,
    /// Validation F1 served at int8.
    pub int8_f1: f32,
}

impl ModelQuantOutcome {
    /// F1 lost by quantizing (positive when int8 is worse).
    pub fn f1_delta(&self) -> f32 {
        self.fp32_f1 - self.int8_f1
    }
}

/// What [`AnoleSystem::quantize_models`] decided.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QuantizationReport {
    /// Specialists now serving at int8 (F1 delta within ε).
    pub accepted: Vec<ModelQuantOutcome>,
    /// Specialists the gate kept at fp32 (F1 delta above ε).
    pub rejected: Vec<ModelQuantOutcome>,
    /// Whether the decision model now routes at int8.
    pub decision_quantized: bool,
    /// Measured top-1 routing agreement between fp32 and int8 on the gate
    /// set (0.0 when the gate set was empty).
    pub decision_agreement: f32,
}

impl QuantizationReport {
    /// Models (specialists + decision head) now serving at int8.
    pub fn quantized_count(&self) -> usize {
        self.accepted.len() + usize::from(self.decision_quantized)
    }

    /// Largest F1 the gate allowed any accepted specialist to lose.
    pub fn worst_accepted_delta(&self) -> f32 {
        self.accepted.iter().map(ModelQuantOutcome::f1_delta).fold(0.0, f32::max)
    }
}

/// Checkpointed step-0 artifact of a re-profile: which specialists the
/// footage landed on and which frames nobody covered.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct ReprofileAssignment {
    /// Ids of specialists holding enough footage to be retrained.
    affected: Vec<usize>,
    /// Frame indices (into the footage slice) assigned to each affected
    /// specialist, in `affected` order.
    assigned: Vec<Vec<usize>>,
    /// Frame indices no existing specialist covered.
    novel: Vec<usize>,
}

/// What [`AnoleSystem::reprofile_with_frames`] did.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReprofileReport {
    /// Ids of the specialists retrained in place (stale scenes).
    pub refreshed: Vec<usize>,
    /// Id of the specialist trained on novel footage, if enough pooled.
    pub new_model: Option<usize>,
    /// Footage frames assigned to an existing specialist (with multiplicity
    /// — a frame several specialists cover counts once per specialist).
    pub assigned_frames: usize,
    /// Footage frames no existing specialist covered.
    pub novel_frames: usize,
    /// Checkpointed step count, including the decision refresh.
    pub total_steps: usize,
}

impl ReprofileReport {
    /// Whether the re-profile changed any model at all.
    pub fn changed_anything(&self) -> bool {
        !self.refreshed.is_empty() || self.new_model.is_some()
    }
}

/// Writes `v` into `targets` row `row`, normalized to sum 1; falls back to a
/// one-hot on `fallback` when `v` is all-zero.
fn write_normalized(targets: &mut anole_tensor::Matrix, row: usize, v: &[f32], fallback: usize) {
    let mass: f32 = v.iter().sum();
    if mass > 0.0 {
        for (j, &m) in v.iter().enumerate() {
            targets.set(row, j, m / mass);
        }
    } else {
        targets.set(row, fallback, 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anole_data::DatasetConfig;

    #[test]
    fn full_pipeline_trains_end_to_end() {
        let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(81));
        let system = AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(82)).unwrap();
        assert!(system.repository().len() >= 2);
        assert_eq!(system.decision().model_count(), system.repository().len());
        assert!(!system.suitability_sets().is_empty());
        assert!(system.scene_model().class_count() >= 2);
    }

    #[test]
    fn training_is_deterministic() {
        let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(83));
        let a = AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(84)).unwrap();
        let b = AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(84)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn expansion_adds_a_working_specialist() {
        use anole_data::{ClipId, DatasetSource, Location, SceneAttributes, TimeOfDay, Weather};

        let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(91));
        let mut system = AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(92)).unwrap();
        let before_count = system.repository().len();

        // A scene combination the small dataset cannot contain (KITTI/BDD/SHD
        // profiles never sample snowy toll booths at night).
        let exotic = SceneAttributes::new(Weather::Snowy, Location::TollBooth, TimeOfDay::Night);
        assert!(dataset.clips().iter().all(|c| c.attributes != exotic));
        let footage = dataset.world().generate_clip(
            ClipId(7000),
            DatasetSource::Shd,
            exotic,
            120,
            1.0,
            Seed(93),
        );
        let holdout = dataset.world().generate_clip(
            ClipId(7001),
            DatasetSource::Shd,
            exotic,
            60,
            1.0,
            Seed(94),
        );
        let threshold = system.config().detector.threshold;
        let best_before: f32 = system
            .repository()
            .models()
            .iter()
            .map(|m| {
                let mut counts = anole_detect::DetectionCounts::default();
                for f in &holdout.frames {
                    counts.accumulate(&m.detect(&f.features, threshold).unwrap(), &f.truth);
                }
                counts.f1()
            })
            .fold(0.0, f32::max);

        let new_id = system
            .extend_with_frames(&dataset, &footage.frames, Seed(95))
            .unwrap();
        assert_eq!(new_id, before_count);
        assert_eq!(system.repository().len(), before_count + 1);
        assert_eq!(system.decision().model_count(), before_count + 1);
        assert!(system.repository().model(new_id).validation_f1 > 0.0);

        // The new specialist must dominate the exotic scene.
        let new_model = system.repository().model(new_id);
        let mut counts = anole_detect::DetectionCounts::default();
        for f in &holdout.frames {
            counts.accumulate(&new_model.detect(&f.features, threshold).unwrap(), &f.truth);
        }
        assert!(
            counts.f1() > best_before,
            "new specialist {:.3} vs best previous {:.3}",
            counts.f1(),
            best_before
        );

        // And the retrained router must actually route exotic frames to it
        // more often than chance.
        let mut hits = 0;
        for f in &holdout.frames {
            if system.decision().rank(&f.features).unwrap()[0] == new_id {
                hits += 1;
            }
        }
        assert!(
            hits * (before_count + 1) > holdout.frames.len(),
            "router picked the new model only {hits}/{} times",
            holdout.frames.len()
        );
    }

    #[test]
    fn expansion_rejects_too_little_footage() {
        let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(96));
        let mut system = AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(97)).unwrap();
        let frame = dataset.frame(dataset.split().test[0]).clone();
        let err = system
            .extend_with_frames(&dataset, &[frame], Seed(98))
            .unwrap_err();
        assert!(matches!(err, AnoleError::InsufficientData { .. }));
    }

    #[test]
    fn quantize_sweep_enforces_the_f1_gate() {
        use anole_nn::Precision;

        let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(181));
        let mut system = AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(182)).unwrap();
        let epsilon = system.config().quant.epsilon_f1;
        let report = system.quantize_models(&dataset).unwrap();

        assert_eq!(
            report.accepted.len() + report.rejected.len(),
            system.repository().len()
        );
        for o in &report.accepted {
            assert!(
                o.f1_delta() <= epsilon,
                "model {} accepted with delta {}",
                o.id,
                o.f1_delta()
            );
            assert_eq!(
                system.repository().model(o.id).serving_precision(),
                Precision::Int8
            );
        }
        for o in &report.rejected {
            assert!(
                o.f1_delta() > epsilon,
                "model {} rejected with delta {}",
                o.id,
                o.f1_delta()
            );
            assert_eq!(
                system.repository().model(o.id).serving_precision(),
                Precision::Fp32
            );
        }
        assert!(report.worst_accepted_delta() <= epsilon);
        assert_eq!(
            system.decision().serving_precision(),
            if report.decision_quantized { Precision::Int8 } else { Precision::Fp32 }
        );
        if report.decision_quantized {
            assert!(report.decision_agreement >= 1.0 - epsilon);
        }
        // Quantized models charge ~¼ the bytes of their f32 twins.
        for o in &report.accepted {
            let m = system.repository().model(o.id);
            assert!(m.serving_bytes() * 3 < m.net.weight_bytes());
        }

        // The sweep is idempotent: re-running re-derives identical verdicts.
        let again = system.quantize_models(&dataset).unwrap();
        assert_eq!(report, again);
    }

    #[test]
    fn quant_enabled_training_equals_explicit_sweep() {
        let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(185));
        let mut enabled_cfg = AnoleConfig::fast();
        enabled_cfg.quant.enabled = true;
        let auto = AnoleSystem::train(&dataset, &enabled_cfg, Seed(186)).unwrap();

        let mut manual = AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(186)).unwrap();
        manual.quantize_models(&dataset).unwrap();

        // Quantization is deterministic post-processing, so training with
        // the sweep enabled is exactly the fp32 pipeline plus the sweep.
        assert_eq!(auto.repository(), manual.repository());
        assert_eq!(auto.decision(), manual.decision());
    }

    fn reprofile_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("anole-reprofile-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn reprofile_rejects_too_little_footage() {
        let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(201));
        let mut system = AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(202)).unwrap();
        let frame = dataset.frame(dataset.split().test[0]).clone();
        let err = system
            .reprofile_with_frames(&dataset, &[frame], Seed(203), None)
            .unwrap_err();
        assert!(matches!(err, AnoleError::InsufficientData { .. }));
    }

    #[test]
    fn reprofile_learns_novel_scenes_deterministically() {
        use anole_data::{ClipId, DatasetSource, Location, SceneAttributes, TimeOfDay, Weather};

        let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(205));
        let system = AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(206)).unwrap();
        let before_count = system.repository().len();

        let exotic = SceneAttributes::new(Weather::Snowy, Location::TollBooth, TimeOfDay::Night);
        assert!(dataset.clips().iter().all(|c| c.attributes != exotic));
        let footage = dataset.world().generate_clip(
            ClipId(7100),
            DatasetSource::Shd,
            exotic,
            120,
            1.0,
            Seed(207),
        );

        let mut a = system.clone();
        let report_a = a
            .reprofile_with_frames(&dataset, &footage.frames, Seed(208), None)
            .unwrap();
        let mut b = system.clone();
        let report_b = b
            .reprofile_with_frames(&dataset, &footage.frames, Seed(208), None)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(report_a, report_b);

        // No existing specialist covers the exotic scene, so the footage
        // pools as novel and produces exactly one new specialist.
        assert_eq!(report_a.new_model, Some(before_count));
        assert!(report_a.novel_frames >= 10);
        assert_eq!(a.repository().len(), before_count + 1);
        assert_eq!(a.decision().model_count(), before_count + 1);
        assert!(a.repository().model(before_count).validation_f1 >= 0.0);
        assert!(report_a.changed_anything());
        assert_eq!(
            report_a.total_steps,
            // assignment + per-model refreshes + new specialist + decision
            1 + report_a.refreshed.len() + 2
        );
    }

    #[test]
    fn reprofile_refreshes_covered_specialists_in_place() {
        use anole_data::{ClipId, DatasetSource};

        let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(211));
        let system = AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(212)).unwrap();
        let before = system.repository().clone();

        // Fresh footage from a scene the dataset already profiles: frames
        // land on the specialists holding that scene instead of pooling as
        // a new model.
        let known = dataset.clips()[0].attributes;
        let footage = dataset.world().generate_clip(
            ClipId(7200),
            DatasetSource::Shd,
            known,
            150,
            1.0,
            Seed(213),
        );
        let mut reprofiled = system.clone();
        let report = reprofiled
            .reprofile_with_frames(&dataset, &footage.frames, Seed(214), None)
            .unwrap();

        assert!(report.assigned_frames > 0, "in-distribution footage must be covered");
        assert!(!report.refreshed.is_empty(), "the covering specialist must go stale");
        for &id in &report.refreshed {
            let m = reprofiled.repository().model(id);
            assert_ne!(m.net, before.model(id).net, "refreshed model {id} kept old weights");
            assert!(m.quantized.is_none(), "refresh must drop the stale int8 twin");
            assert_eq!(m.id, id);
            assert_eq!(m.origin, before.model(id).origin);
        }
        // Untouched specialists keep their weights bit-for-bit.
        for m in reprofiled.repository().models() {
            if !report.refreshed.contains(&m.id) && Some(m.id) != report.new_model {
                assert_eq!(m, before.model(m.id), "untouched model {} changed", m.id);
            }
        }
        assert_eq!(reprofiled.decision().model_count(), reprofiled.repository().len());
    }

    #[test]
    fn killed_reprofile_resumes_bit_identically() {
        use crate::checkpoint::CheckpointStore;
        use crate::omi::{FaultKind, FaultPlan};
        use anole_data::{ClipId, DatasetSource, Location, SceneAttributes, TimeOfDay, Weather};

        let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(221));
        let system = AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(222)).unwrap();
        let exotic = SceneAttributes::new(Weather::Snowy, Location::TollBooth, TimeOfDay::Night);
        let footage = dataset.world().generate_clip(
            ClipId(7300),
            DatasetSource::Shd,
            exotic,
            120,
            1.0,
            Seed(223),
        );

        let mut uninterrupted = system.clone();
        let clean_report = uninterrupted
            .reprofile_with_frames(&dataset, &footage.frames, Seed(224), None)
            .unwrap();

        // Kill the re-profile right after the new-specialist step lands.
        let dir = reprofile_dir("resume");
        let store = CheckpointStore::open(&dir, 77).unwrap();
        let mut recovery = TrainRecovery::new(store).with_injector(
            FaultPlan::new(Seed(225)).at(1, FaultKind::ReprofileAbort).injector(),
        );
        let mut killed = system.clone();
        let err = killed
            .reprofile_with_frames(&dataset, &footage.frames, Seed(224), Some(&mut recovery))
            .unwrap_err();
        assert!(matches!(err, AnoleError::Aborted { .. }));

        // Resume on a fresh clone of the pre-profile system with the same
        // store: checkpointed steps load, only the rest retrains, and the
        // result is bit-identical to the uninterrupted run.
        let store = CheckpointStore::open(&dir, 77).unwrap();
        let mut recovery = TrainRecovery::new(store);
        let mut resumed = system.clone();
        let resumed_report = resumed
            .reprofile_with_frames(&dataset, &footage.frames, Seed(224), Some(&mut recovery))
            .unwrap();
        assert_eq!(resumed, uninterrupted);
        assert_eq!(resumed_report, clean_report);
        assert!(recovery.report.resumed_reprofile_steps >= 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn engine_runs_a_stream() {
        let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(85));
        let system = AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(86)).unwrap();
        let mut engine = system.online_engine(DeviceKind::JetsonTx2Nx, Seed(87));
        let split = dataset.split();
        for r in split.test.iter().take(30) {
            engine.step(&dataset.frame(*r).features).unwrap();
        }
        assert_eq!(engine.usage_log().len(), 30);
    }
}
