//! Fleet lifecycle: the paper's full loop, day after day.
//!
//! §II case 3's remedy — "train new models to deal with x and the like in
//! the future" — is not a one-shot event but an operating loop: a fleet of
//! devices drives all day, each flagging low-confidence (drifting) streams
//! and keeping the flagged footage; overnight, the cloud trains a new
//! specialist on the pooled footage, widens the decision model, and ships
//! the update; the next day the fleet benefits. [`run_fleet`] simulates
//! that loop. Daily operation is multiplexed through the serving
//! [`Gateway`]: every device is a long-lived session with a bounded frame
//! queue and panic isolation, and frames arriving in the same scheduling
//! window are scored through one cross-device batched decision forward
//! (bit-identical per frame to each device stepping alone). Overnight
//! expansion takes the write lock between days.

use std::cell::RefCell;
use std::path::Path;
use std::rc::Rc;

use anole_data::{ClipId, DatasetSource, DrivingDataset, Frame, SceneAttributes};
use anole_detect::DetectionCounts;
use anole_device::DeviceKind;
use anole_tensor::{split_seed, Seed};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use crate::checkpoint::TrainRecovery;
use crate::deploy::{self, RolloutOutcome, RolloutReport};
use crate::gateway::{
    FrameHandler, Gateway, GatewayConfig, QuarantineReason, QuarantineRecord, SessionSpec,
    SessionState,
};
use crate::omi::{DriftDetector, DriftState, FaultInjector, FaultKind, SceneDistanceScorer};
use crate::{AnoleError, AnoleSystem, ReprofileReport};

/// Configuration of a fleet-lifecycle run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Number of devices driving concurrently.
    pub devices: usize,
    /// Frames each device records per day per scenario.
    pub frames_per_day: usize,
    /// Drift-detector rolling window.
    pub drift_window: usize,
    /// Calibration quantile for the drift floor.
    pub drift_quantile: f32,
    /// Minimum pooled drifting frames before an overnight expansion runs.
    pub min_footage: usize,
    /// The device model the fleet runs on.
    pub device: DeviceKind,
    /// How many times a panicked device's daily run is retried before the
    /// device is quarantined for the rest of the run.
    #[serde(default = "default_device_retries")]
    pub max_device_retries: usize,
}

fn default_device_retries() -> usize {
    1
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            devices: 3,
            frames_per_day: 120,
            drift_window: 15,
            drift_quantile: 0.1,
            min_footage: 60,
            device: DeviceKind::JetsonTx2Nx,
            max_device_retries: default_device_retries(),
        }
    }
}

/// One day of fleet operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DayReport {
    /// Day index (0-based).
    pub day: usize,
    /// The scenario the fleet drove this day.
    pub scenario: SceneAttributes,
    /// Fleet-wide F1 over the day's frames.
    pub f1: f32,
    /// Fraction of frames flagged as drifting.
    pub drift_rate: f32,
    /// Frames collected for retraining this day.
    pub collected_frames: usize,
    /// New model id if an overnight expansion ran after this day.
    pub expanded_model: Option<usize>,
    /// Repository size at the end of the day (post-expansion).
    pub repository_size: usize,
    /// Device runs that panicked this day (initial attempts and retries).
    #[serde(default)]
    pub device_panics: usize,
    /// Devices that completed their daily run (quarantined devices and
    /// retry-exhausted panickers excluded); the F1/drift denominators.
    #[serde(default)]
    pub active_devices: usize,
}

/// Full lifecycle report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// One report per day, in order.
    pub days: Vec<DayReport>,
    /// Devices quarantined after exhausting their panic retries, in the
    /// order they were quarantined. A quarantined device stops running for
    /// the rest of the fleet run; the others are unaffected.
    #[serde(default)]
    pub quarantined: Vec<usize>,
    /// Typed quarantine records: why each device in `quarantined` was
    /// removed, with the first injected fault kind seen by its session.
    /// Same order as `quarantined`.
    #[serde(default)]
    pub quarantine_records: Vec<QuarantineRecord>,
    /// Gateway sessions shed across the run (always 0 under the lossless
    /// fleet profile; non-zero only if a custom profile enables deadline
    /// shedding).
    #[serde(default)]
    pub shed_sessions: usize,
    /// Gateway admissions rejected across the run (always 0 for the fleet,
    /// which sizes the gateway to its roster).
    #[serde(default)]
    pub rejected_sessions: usize,
}

impl FleetReport {
    /// F1 of the first and last day a given scenario was driven, if it
    /// appears at least twice — the before/after of the expansion loop.
    pub fn improvement_on(&self, scenario: SceneAttributes) -> Option<(f32, f32)> {
        let mut days = self.days.iter().filter(|d| d.scenario == scenario);
        let first = days.next()?;
        let last = days.next_back()?;
        Some((first.f1, last.f1))
    }
}

/// Per-device drift bookkeeping filled in by the session's frame handler.
#[derive(Debug, Default)]
struct DeviceDayState {
    drifting: usize,
    collected: Vec<Frame>,
}

/// Builds the per-frame handler a fleet session runs after every processed
/// frame: OOD-score the frame and keep it if it drifts. Runs inside the
/// gateway's per-session `catch_unwind` scope, in the same order as the
/// pre-gateway fleet loop (accumulate counts, then observe).
fn drift_handler<'g>(
    scorer: &'g SceneDistanceScorer,
    system: &'g AnoleSystem,
    mut detector: DriftDetector,
    state: Rc<RefCell<DeviceDayState>>,
) -> FrameHandler<'g> {
    Box::new(move |frame, _out| {
        let drift = scorer.observe_frame(&mut detector, system, &frame.features)?;
        if drift == DriftState::Drifting {
            let mut state = state.borrow_mut();
            state.drifting += 1;
            state.collected.push(frame.clone());
        }
        Ok(())
    })
}

/// Runs the fleet loop over a day-by-day scenario schedule.
///
/// Each day, every device streams `frames_per_day` fresh frames of the
/// day's scenario through its own engine. The devices are multiplexed as
/// sessions of the serving [`Gateway`] (lossless profile: bounded queues
/// with backpressure but no deadline shedding), which stacks frames from
/// different devices into batched decision forwards; the outcome of every
/// frame is bit-identical to each device stepping its own engine in
/// isolation. Drifting frames are flagged and pooled; after the day, if
/// the pooled flagged footage reaches `min_footage`, the system is
/// extended with a new specialist under the write lock and the pool is
/// cleared.
///
/// Returns the per-day reports and the final (possibly expanded) system.
///
/// # Errors
///
/// Surfaces inference, calibration, and expansion errors.
///
/// # Panics
///
/// Panics if `config.devices == 0` or the schedule is empty.
pub fn run_fleet(
    dataset: &DrivingDataset,
    system: AnoleSystem,
    schedule: &[SceneAttributes],
    config: &FleetConfig,
    seed: Seed,
) -> Result<(FleetReport, AnoleSystem), AnoleError> {
    run_fleet_supervised(dataset, system, schedule, config, seed, None)
}

/// [`run_fleet`] under fault supervision: every device session runs behind
/// the gateway's `catch_unwind` isolation, so one panicking device cannot
/// take down the fleet. A panicked device is retried up to
/// [`FleetConfig::max_device_retries`] times (sequentially, after the
/// fleet pass, in device order); a device that exhausts its retries is
/// quarantined for the rest of the run and listed in
/// [`FleetReport::quarantined`] with a typed
/// [`QuarantineRecord`], while the remaining devices keep driving and the
/// schedule completes.
///
/// Panics can be injected deterministically via a [`FaultInjector`] with a
/// [`FaultKind::DevicePanic`] schedule or rate: the supervisor draws one
/// panic decision per device attempt, on the coordinator in device order,
/// so the outcome is identical for any scheduling. With `injector` `None`
/// or a zero-fault plan the run is bit-identical to [`run_fleet`].
///
/// # Errors
///
/// As [`run_fleet`]. Device *errors* (as opposed to panics) still surface
/// — a typed failure is a bug to report, not a crash to absorb. The
/// gateway quarantines the erring session so the other devices finish
/// their day, then the first error in device order is returned.
///
/// # Panics
///
/// Panics if `config.devices == 0` or the schedule is empty.
pub fn run_fleet_supervised(
    dataset: &DrivingDataset,
    system: AnoleSystem,
    schedule: &[SceneAttributes],
    config: &FleetConfig,
    seed: Seed,
    mut injector: Option<FaultInjector>,
) -> Result<(FleetReport, AnoleSystem), AnoleError> {
    assert!(config.devices > 0, "fleet needs at least one device");
    assert!(!schedule.is_empty(), "schedule is empty");

    let split = dataset.split();
    // OOD scoring: scene-embedding distance to the nearest training-scene
    // centroid (the decision model's softmax confidence flattens at large
    // repository sizes and stops discriminating).
    let mut scorer = SceneDistanceScorer::calibrate(&system, dataset, &split.train)?;
    let ceiling = scorer.ceiling(&system, dataset, &split.val, 1.0 - config.drift_quantile)?;
    let shared = RwLock::new(system);
    let mut footage_pool: Vec<Frame> = Vec::new();
    let mut days = Vec::with_capacity(schedule.len());
    let mut quarantined: Vec<usize> = Vec::new();
    let mut quarantine_records: Vec<QuarantineRecord> = Vec::new();
    let mut shed_sessions = 0usize;
    let mut rejected_sessions = 0usize;

    type DeviceDay = Result<(DetectionCounts, usize, Vec<Frame>), AnoleError>;

    for (day, &scenario) in schedule.iter().enumerate() {
        let roster: Vec<usize> =
            (0..config.devices).filter(|i| !quarantined.contains(i)).collect();
        // Panic decisions are drawn on the coordinator, one per first
        // attempt in device order, before the gateway runs, so scheduling
        // changes cannot shift the fault stream.
        let panic_flags: Vec<bool> = roster
            .iter()
            .map(|_| injector.as_mut().is_some_and(FaultInjector::device_panics))
            .collect();
        let (results, day_panics, newly_quarantined, day_records) = {
            let guard = shared.read();
            let system_ref: &AnoleSystem = &guard;
            let scorer_ref = &scorer;
            // Lossless fleet profile: bounded queues and backpressure keep
            // memory flat, but nothing is shed — every recorded frame is
            // served, exactly as the pre-gateway fleet loop did.
            let gateway_config = GatewayConfig {
                max_sessions: roster.len().max(1),
                deadline_ms: f64::INFINITY,
                shed_session_after: usize::MAX,
                device: config.device,
                ..GatewayConfig::default()
            };
            // Each device derives its RNG streams from (day, device_idx),
            // so results are identical however sessions interleave.
            let device_spec = |device_idx: usize| -> SessionSpec {
                let device_seed =
                    split_seed(seed, (day * config.devices + device_idx) as u64 + 1);
                let clip = dataset.world().generate_clip(
                    ClipId(usize::MAX - day * 100 - device_idx),
                    DatasetSource::Shd,
                    scenario,
                    config.frames_per_day,
                    1.0,
                    split_seed(device_seed, 0),
                );
                SessionSpec::new(clip.frames, split_seed(device_seed, 1))
            };

            let mut gateway = Gateway::new(system_ref, gateway_config)?;
            let states: Vec<Rc<RefCell<DeviceDayState>>> =
                roster.iter().map(|_| Rc::default()).collect();
            for (pos, &device_idx) in roster.iter().enumerate() {
                let mut spec = device_spec(device_idx);
                spec.inject_panic = panic_flags[pos];
                let detector = scorer_ref.detector(config.drift_window, ceiling);
                gateway.admit_with_handler(
                    spec,
                    drift_handler(scorer_ref, system_ref, detector, Rc::clone(&states[pos])),
                )?;
            }
            let report = gateway.run();
            shed_sessions += report.shed_sessions;
            rejected_sessions += report.rejected;
            let mut errors: Vec<Option<AnoleError>> = Vec::new();
            errors.resize_with(roster.len(), || None);
            for (sid, error) in gateway.take_session_errors() {
                errors[sid] = Some(error);
            }

            let mut day_panics = 0usize;
            let mut newly_quarantined: Vec<usize> = Vec::new();
            let mut day_records: Vec<QuarantineRecord> = Vec::new();
            let mut results: Vec<Option<DeviceDay>> = Vec::with_capacity(roster.len());
            for (pos, &device_idx) in roster.iter().enumerate() {
                let session = &report.sessions[pos];
                match session.state {
                    SessionState::Completed => {
                        let state = std::mem::take(&mut *states[pos].borrow_mut());
                        results
                            .push(Some(Ok((session.counts, state.drifting, state.collected))));
                    }
                    SessionState::Quarantined => {
                        if let Some(error) = errors[pos].take() {
                            // Typed failure: report it, don't absorb it.
                            results.push(Some(Err(error)));
                            continue;
                        }
                        // Panicked. Bounded retries, sequentially in device
                        // order, each drawing its own panic decision; an
                        // exhausted device is quarantined and the rest of
                        // the fleet drives on.
                        day_panics += 1;
                        let mut recovered: Option<DeviceDay> = None;
                        let mut retries = 0usize;
                        while recovered.is_none() && retries < config.max_device_retries {
                            retries += 1;
                            if injector.as_mut().is_some_and(FaultInjector::device_panics) {
                                day_panics += 1;
                                continue;
                            }
                            let mut retry = Gateway::new(
                                system_ref,
                                GatewayConfig { max_sessions: 1, ..gateway_config },
                            )?;
                            let state = Rc::new(RefCell::new(DeviceDayState::default()));
                            let detector = scorer_ref.detector(config.drift_window, ceiling);
                            retry.admit_with_handler(
                                device_spec(device_idx),
                                drift_handler(scorer_ref, system_ref, detector, Rc::clone(&state)),
                            )?;
                            let retry_report = retry.run();
                            let mut retry_errors = retry.take_session_errors();
                            match retry_report.sessions[0].state {
                                SessionState::Completed => {
                                    let state = std::mem::take(&mut *state.borrow_mut());
                                    recovered = Some(Ok((
                                        retry_report.sessions[0].counts,
                                        state.drifting,
                                        state.collected,
                                    )));
                                }
                                SessionState::Quarantined if !retry_errors.is_empty() => {
                                    recovered = Some(Err(retry_errors.remove(0).1));
                                }
                                // A genuine (or injected-at-engine-level)
                                // panic again: burn the retry.
                                _ => day_panics += 1,
                            }
                        }
                        match recovered {
                            Some(outcome) => results.push(Some(outcome)),
                            None => {
                                newly_quarantined.push(device_idx);
                                day_records.push(QuarantineRecord {
                                    session: device_idx,
                                    reason: QuarantineReason::RetriesExhausted {
                                        attempts: config.max_device_retries + 1,
                                    },
                                    first_fault: Some(FaultKind::DevicePanic),
                                    detail: format!(
                                        "device {device_idx} panicked on its initial attempt and all {} retries (day {day})",
                                        config.max_device_retries
                                    ),
                                    flight: None,
                                });
                                results.push(None);
                            }
                        }
                    }
                    state => {
                        // Unreachable under the lossless profile (nothing
                        // is shed and the roster always fits); surface it
                        // rather than mis-count the day.
                        return Err(AnoleError::FaultExhausted {
                            detail: format!(
                                "fleet session for device {device_idx} ended in {state:?} under the lossless fleet profile"
                            ),
                        });
                    }
                }
            }
            (results, day_panics, newly_quarantined, day_records)
        };
        quarantined.extend(&newly_quarantined);
        quarantine_records.extend(day_records);

        let mut active_devices = 0usize;
        let mut day_counts = DetectionCounts::default();
        let mut drifting = 0usize;
        let mut collected_today = 0usize;
        for result in results.into_iter().flatten() {
            let (counts, device_drifting, collected) = result?;
            active_devices += 1;
            day_counts.merge(&counts);
            drifting += device_drifting;
            collected_today += collected.len();
            footage_pool.extend(collected);
        }

        // Overnight: expand when enough flagged footage has pooled, and
        // teach the drift scorer that the scene is now covered.
        let expanded_model = if footage_pool.len() >= config.min_footage {
            let mut guard = shared.write();
            let new_id = guard.extend_with_frames(
                dataset,
                &footage_pool,
                split_seed(seed, 10_000 + day as u64),
            )?;
            scorer.add_centroid(&guard, &footage_pool)?;
            footage_pool.clear();
            Some(new_id)
        } else {
            None
        };

        let total_frames = active_devices * config.frames_per_day;
        days.push(DayReport {
            day,
            scenario,
            f1: day_counts.f1(),
            drift_rate: drifting as f32 / total_frames.max(1) as f32,
            collected_frames: collected_today,
            expanded_model,
            repository_size: shared.read().repository().len(),
            device_panics: day_panics,
            active_devices,
        });
    }

    Ok((
        FleetReport {
            days,
            quarantined,
            quarantine_records,
            shed_sessions,
            rejected_sessions,
        },
        shared.into_inner(),
    ))
}

/// The closed offline↔online loop in one call: guarded continual
/// re-profiling followed by a staged, gated rollout.
///
/// The current `system` is pinned as the last-good bundle under
/// `work_dir/last_good`; a clone is re-profiled on the pooled drifting
/// `footage` via [`AnoleSystem::reprofile_with_frames`] (checkpointed
/// through `recovery` when supplied, so a killed re-profile resumes
/// bit-identically on the next call with the same store); the re-profiled
/// candidate then goes through [`deploy::staged_rollout`] against a fleet
/// of `fleet_devices`. When the system's [`SloConfig`](crate::SloConfig) is
/// enabled, a measured promotion must additionally pass the **SLO canary
/// gate**: the candidate serves a short deterministic canary fleet through
/// an SLO-armed [`Gateway`], and any burn-rate page demotes the promotion
/// to a rollback (recorded in
/// [`RolloutReport::slo_canary_pages`](crate::deploy::RolloutReport)). The
/// returned system is what the fleet serves afterwards: the candidate on
/// promotion, or the last-good bundle — reloaded and checksum-verified —
/// on rollback, in which case zero sessions were ever served from the
/// candidate.
///
/// # Errors
///
/// Re-profiling errors ([`AnoleError::Aborted`] on an injected kill —
/// call again with the same recovery store to resume), bundle I/O errors,
/// and download failures.
#[allow(clippy::too_many_arguments)]
pub fn reprofile_and_rollout(
    system: &AnoleSystem,
    dataset: &DrivingDataset,
    footage: &[Frame],
    fleet_devices: usize,
    work_dir: &Path,
    seed: Seed,
    recovery: Option<&mut TrainRecovery>,
    injector: Option<&mut FaultInjector>,
) -> Result<(AnoleSystem, ReprofileReport, RolloutReport), AnoleError> {
    let last_good_dir = work_dir.join("last_good");
    let candidate_dir = work_dir.join("candidate");
    deploy::save_bundle(system, &last_good_dir)?;

    let mut candidate = system.clone();
    let reprofile = candidate.reprofile_with_frames(dataset, footage, seed, recovery)?;
    let mut rollout = deploy::staged_rollout(
        &candidate,
        &last_good_dir,
        &candidate_dir,
        dataset,
        fleet_devices,
        &system.config().rollout,
        split_seed(seed, 777),
        injector,
    )?;
    // SLO canary gate: an F1-measured promotion must also *serve* cleanly.
    // The candidate runs a short deterministic canary fleet through an
    // SLO-armed gateway; any burn-rate page demotes the promotion to a
    // rollback before the wider fleet ever adopts the bundle.
    let slo = system.config().slo;
    if slo.enabled && rollout.outcome == RolloutOutcome::Promoted {
        rollout.slo_canary_pages = slo_canary_pages(
            &candidate,
            dataset,
            &slo,
            rollout.canary_devices,
            split_seed(seed, 778),
        )?;
        if rollout.slo_canary_pages > 0 {
            rollout.outcome = RolloutOutcome::RolledBack;
            rollout.sessions_on_candidate = 0;
        }
    }
    let served = match rollout.outcome {
        RolloutOutcome::Promoted => candidate,
        RolloutOutcome::RolledBack => deploy::load_bundle(&last_good_dir)?,
    };
    Ok((served, reprofile, rollout))
}

/// Serves a short canary fleet from the candidate through an SLO-armed
/// [`Gateway`] and counts page-severity burn-rate alerts. Deterministic for
/// a fixed seed: the gateway runs on virtual time and the SLO series is fed
/// from the gateway's own run counters.
fn slo_canary_pages(
    candidate: &AnoleSystem,
    dataset: &DrivingDataset,
    slo: &crate::SloConfig,
    devices: usize,
    seed: Seed,
) -> Result<usize, AnoleError> {
    let frames: Vec<Frame> = dataset
        .split()
        .val
        .iter()
        .take(slo.canary_frames.max(1))
        .map(|&i| dataset.frame(i).clone())
        .collect();
    let mut gateway =
        Gateway::new(candidate, GatewayConfig::default())?.with_slos(slo.specs());
    for device in 0..devices.max(1) {
        gateway.admit(SessionSpec::new(frames.clone(), split_seed(seed, device as u64)))?;
    }
    let report = gateway.run();
    Ok(report.slo_pages())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AnoleConfig;
    use anole_data::{DatasetConfig, Location, TimeOfDay, Weather};

    fn world() -> (DrivingDataset, AnoleSystem) {
        let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(181));
        let system = AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(182)).unwrap();
        (dataset, system)
    }

    #[test]
    fn lifecycle_expands_on_exotic_scenes_and_improves() {
        let (dataset, system) = world();
        let before_models = system.repository().len();
        let familiar = dataset.clips()[0].attributes;
        let exotic =
            SceneAttributes::new(Weather::Foggy, Location::TollBooth, TimeOfDay::Night);
        // Two familiar days, then three days in the exotic scene.
        let schedule = [familiar, familiar, exotic, exotic, exotic];
        let config = FleetConfig {
            devices: 2,
            frames_per_day: 80,
            min_footage: 50,
            ..FleetConfig::default()
        };
        let (report, final_system) =
            run_fleet(&dataset, system, &schedule, &config, Seed(183)).unwrap();
        assert_eq!(report.days.len(), 5);

        // Exotic days must drift enough to pool footage (the sharper
        // exotic-vs-seen discrimination claim is covered at the right
        // granularity by the drift module's own tests; at this tiny scale
        // even fresh familiar clips are mildly out-of-distribution).
        assert!(
            report.days[2..5].iter().any(|d| d.drift_rate > 0.1),
            "no exotic day drifted: {:?}",
            report.days.iter().map(|d| d.drift_rate).collect::<Vec<_>>()
        );

        // At least one expansion ran, growing the repository.
        assert!(report.days.iter().any(|d| d.expanded_model.is_some()));
        assert!(final_system.repository().len() > before_models);

        // And the fleet got better at the exotic scene.
        let (first, last) = report.improvement_on(exotic).unwrap();
        assert!(
            last > first,
            "no improvement on the exotic scene: {first} → {last}"
        );
    }

    #[test]
    fn lifecycle_without_drift_never_expands() {
        let (dataset, system) = world();
        let before = system.repository().len();
        let familiar = dataset.clips()[0].attributes;
        let config = FleetConfig {
            devices: 2,
            frames_per_day: 60,
            min_footage: 100_000, // unreachable
            ..FleetConfig::default()
        };
        let (report, final_system) =
            run_fleet(&dataset, system, &[familiar, familiar], &config, Seed(184)).unwrap();
        assert!(report.days.iter().all(|d| d.expanded_model.is_none()));
        assert_eq!(final_system.repository().len(), before);
    }

    #[test]
    #[should_panic(expected = "schedule is empty")]
    fn empty_schedule_is_rejected() {
        let (dataset, system) = world();
        let _ = run_fleet(&dataset, system, &[], &FleetConfig::default(), Seed(185));
    }

    #[test]
    fn improvement_on_requires_two_occurrences() {
        let report = FleetReport {
            days: vec![DayReport {
                day: 0,
                scenario: SceneAttributes::from_scene_index(0),
                f1: 0.5,
                drift_rate: 0.0,
                collected_frames: 0,
                expanded_model: None,
                repository_size: 5,
                device_panics: 0,
                active_devices: 3,
            }],
            quarantined: Vec::new(),
            quarantine_records: Vec::new(),
            shed_sessions: 0,
            rejected_sessions: 0,
        };
        assert!(report
            .improvement_on(SceneAttributes::from_scene_index(0))
            .is_none());
        assert!(report
            .improvement_on(SceneAttributes::from_scene_index(1))
            .is_none());
    }

    fn loop_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("anole-loop-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn closed_loop_promotes_a_reprofiled_candidate() {
        let (dataset, system) = world();
        let exotic =
            SceneAttributes::new(Weather::Snowy, Location::TollBooth, TimeOfDay::Night);
        let footage = dataset.world().generate_clip(
            ClipId(8000),
            DatasetSource::Shd,
            exotic,
            120,
            1.0,
            Seed(192),
        );
        let dir = loop_dir("promote");
        let (served, reprofile, rollout) = reprofile_and_rollout(
            &system,
            &dataset,
            &footage.frames,
            6,
            &dir,
            Seed(193),
            None,
            None,
        )
        .unwrap();
        assert!(reprofile.changed_anything());
        assert_eq!(rollout.outcome, RolloutOutcome::Promoted);
        assert_eq!(rollout.sessions_on_candidate, 6);
        // The served system is the re-profiled candidate, not the original.
        assert_ne!(served, system);
        assert_eq!(
            served.repository().len(),
            system.repository().len() + usize::from(reprofile.new_model.is_some())
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn closed_loop_reverts_to_last_good_on_injected_regression() {
        use crate::omi::FaultPlan;

        let (dataset, system) = world();
        let exotic =
            SceneAttributes::new(Weather::Snowy, Location::TollBooth, TimeOfDay::Night);
        let footage = dataset.world().generate_clip(
            ClipId(8001),
            DatasetSource::Shd,
            exotic,
            120,
            1.0,
            Seed(194),
        );
        let dir = loop_dir("revert");
        let mut injector =
            FaultPlan::new(Seed(195)).at(0, FaultKind::RegressedUpdate).injector();
        let (served, _reprofile, rollout) = reprofile_and_rollout(
            &system,
            &dataset,
            &footage.frames,
            6,
            &dir,
            Seed(196),
            None,
            Some(&mut injector),
        )
        .unwrap();
        assert_eq!(rollout.outcome, RolloutOutcome::RolledBack);
        assert!(rollout.regression_injected);
        assert_eq!(rollout.sessions_on_candidate, 0);
        // The fleet keeps serving exactly the pinned last-good system.
        assert_eq!(served, system);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn slo_canary_gate_demotes_a_promotion_on_pages() {
        use crate::SloConfig;

        let (dataset, mut system) = world();
        // An unreachable latency limit: every canary frame lands above it,
        // so the p99 objective burns its whole budget and pages on the
        // first evaluated window regardless of how well the candidate
        // serves.
        system.set_slo_config(SloConfig {
            enabled: true,
            latency_limit_ms: 0.0,
            canary_frames: 16,
            ..SloConfig::default()
        });
        // Same footage and seeds as `closed_loop_promotes_a_reprofiled_
        // candidate`: the F1 gate is deterministic and does not read the
        // SLO section, so this candidate is guaranteed to reach the SLO
        // canary gate as a measured promotion.
        let exotic =
            SceneAttributes::new(Weather::Snowy, Location::TollBooth, TimeOfDay::Night);
        let footage = dataset.world().generate_clip(
            ClipId(8000),
            DatasetSource::Shd,
            exotic,
            120,
            1.0,
            Seed(192),
        );
        let dir = loop_dir("slo-gate");
        let (served, _reprofile, rollout) = reprofile_and_rollout(
            &system,
            &dataset,
            &footage.frames,
            6,
            &dir,
            Seed(193),
            None,
            None,
        )
        .unwrap();
        // The F1 gate promoted, the SLO canary paged, the gate demoted.
        assert!(rollout.slo_canary_pages > 0, "{rollout:?}");
        assert_eq!(rollout.outcome, RolloutOutcome::RolledBack);
        assert_eq!(rollout.sessions_on_candidate, 0);
        assert!(!rollout.regression_injected);
        assert_eq!(served, system);
        // The pages survive serialization (diagnosable offline) and a
        // disabled config's reports never mention them.
        let json = serde_json::to_string(&rollout).unwrap();
        assert!(json.contains("slo_canary_pages"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn supervised_run_with_zero_faults_matches_unsupervised() {
        use crate::omi::FaultPlan;

        let (dataset, system) = world();
        let familiar = dataset.clips()[0].attributes;
        let schedule = [familiar, familiar];
        let config = FleetConfig {
            devices: 2,
            frames_per_day: 40,
            min_footage: 100_000,
            ..FleetConfig::default()
        };
        let (plain, plain_system) =
            run_fleet(&dataset, system.clone(), &schedule, &config, Seed(186)).unwrap();
        let injector = FaultPlan::new(Seed(187)).injector();
        let (supervised, supervised_system) = run_fleet_supervised(
            &dataset,
            system,
            &schedule,
            &config,
            Seed(186),
            Some(injector),
        )
        .unwrap();
        assert_eq!(plain, supervised);
        assert_eq!(plain_system, supervised_system);
        assert!(supervised.quarantined.is_empty());
        assert!(supervised.quarantine_records.is_empty());
        assert!(supervised.days.iter().all(|d| d.device_panics == 0));
        assert!(supervised.days.iter().all(|d| d.active_devices == 2));
    }

    #[test]
    fn quarantine_records_carry_typed_reasons() {
        use crate::omi::FaultPlan;

        let (dataset, system) = world();
        let familiar = dataset.clips()[0].attributes;
        let schedule = [familiar, familiar];
        let config = FleetConfig {
            devices: 2,
            frames_per_day: 30,
            min_footage: 100_000,
            max_device_retries: 1,
            ..FleetConfig::default()
        };
        // Every attempt panics: both devices burn their retry on day 0 and
        // the fleet finishes the schedule with an empty roster.
        let plan = FaultPlan::new(Seed(190)).with_device_panic_rate(1.0);
        let (report, _) = run_fleet_supervised(
            &dataset,
            system,
            &schedule,
            &config,
            Seed(191),
            Some(plan.injector()),
        )
        .unwrap();
        assert_eq!(report.quarantined, vec![0, 1]);
        assert_eq!(report.quarantine_records.len(), 2);
        for (record, device) in report.quarantine_records.iter().zip([0usize, 1]) {
            assert_eq!(record.session, device);
            assert_eq!(
                record.reason,
                QuarantineReason::RetriesExhausted { attempts: 2 }
            );
            assert_eq!(record.first_fault, Some(FaultKind::DevicePanic));
            assert!(record.detail.contains(&format!("device {device}")));
        }
        // 2 initial panics + 2 retry panics on day 0; none on day 1.
        assert_eq!(report.days[0].device_panics, 4);
        assert_eq!(report.days[0].active_devices, 0);
        assert_eq!(report.days[1].device_panics, 0);
        assert_eq!(report.days[1].active_devices, 0);
        assert_eq!(report.shed_sessions, 0);
        assert_eq!(report.rejected_sessions, 0);
    }
}
