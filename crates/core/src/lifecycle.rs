//! Fleet lifecycle: the paper's full loop, day after day.
//!
//! §II case 3's remedy — "train new models to deal with x and the like in
//! the future" — is not a one-shot event but an operating loop: a fleet of
//! devices drives all day, each flagging low-confidence (drifting) streams
//! and keeping the flagged footage; overnight, the cloud trains a new
//! specialist on the pooled footage, widens the decision model, and ships
//! the update; the next day the fleet benefits. [`run_fleet`] simulates that
//! loop: devices run in parallel threads over a shared, read-locked system,
//! and expansion takes the write lock between days.

use anole_data::{ClipId, DatasetSource, DrivingDataset, Frame, SceneAttributes};
use anole_detect::DetectionCounts;
use anole_device::DeviceKind;
use anole_tensor::{split_seed, Seed};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use crate::omi::{DriftState, FaultInjector, SceneDistanceScorer};
use crate::{AnoleError, AnoleSystem};

/// Configuration of a fleet-lifecycle run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Number of devices driving concurrently.
    pub devices: usize,
    /// Frames each device records per day per scenario.
    pub frames_per_day: usize,
    /// Drift-detector rolling window.
    pub drift_window: usize,
    /// Calibration quantile for the drift floor.
    pub drift_quantile: f32,
    /// Minimum pooled drifting frames before an overnight expansion runs.
    pub min_footage: usize,
    /// The device model the fleet runs on.
    pub device: DeviceKind,
    /// How many times a panicked device's daily run is retried before the
    /// device is quarantined for the rest of the run.
    #[serde(default = "default_device_retries")]
    pub max_device_retries: usize,
}

fn default_device_retries() -> usize {
    1
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            devices: 3,
            frames_per_day: 120,
            drift_window: 15,
            drift_quantile: 0.1,
            min_footage: 60,
            device: DeviceKind::JetsonTx2Nx,
            max_device_retries: default_device_retries(),
        }
    }
}

/// One day of fleet operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DayReport {
    /// Day index (0-based).
    pub day: usize,
    /// The scenario the fleet drove this day.
    pub scenario: SceneAttributes,
    /// Fleet-wide F1 over the day's frames.
    pub f1: f32,
    /// Fraction of frames flagged as drifting.
    pub drift_rate: f32,
    /// Frames collected for retraining this day.
    pub collected_frames: usize,
    /// New model id if an overnight expansion ran after this day.
    pub expanded_model: Option<usize>,
    /// Repository size at the end of the day (post-expansion).
    pub repository_size: usize,
    /// Device runs that panicked this day (initial attempts and retries).
    #[serde(default)]
    pub device_panics: usize,
    /// Devices that completed their daily run (quarantined devices and
    /// retry-exhausted panickers excluded); the F1/drift denominators.
    #[serde(default)]
    pub active_devices: usize,
}

/// Full lifecycle report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// One report per day, in order.
    pub days: Vec<DayReport>,
    /// Devices quarantined after exhausting their panic retries, in the
    /// order they were quarantined. A quarantined device stops running for
    /// the rest of the fleet run; the others are unaffected.
    #[serde(default)]
    pub quarantined: Vec<usize>,
}

impl FleetReport {
    /// F1 of the first and last day a given scenario was driven, if it
    /// appears at least twice — the before/after of the expansion loop.
    pub fn improvement_on(&self, scenario: SceneAttributes) -> Option<(f32, f32)> {
        let mut days = self.days.iter().filter(|d| d.scenario == scenario);
        let first = days.next()?;
        let last = days.next_back()?;
        Some((first.f1, last.f1))
    }
}

/// Runs the fleet loop over a day-by-day scenario schedule.
///
/// Each day, every device streams `frames_per_day` fresh frames of the
/// day's scenario through its own engine (all devices share the system
/// behind a read lock and run on parallel threads), flagging drifting
/// frames; after the day, if the pooled flagged footage reaches
/// `min_footage`, the system is extended with a new specialist under the
/// write lock and the pool is cleared.
///
/// Returns the per-day reports and the final (possibly expanded) system.
///
/// # Errors
///
/// Surfaces inference, calibration, and expansion errors.
///
/// # Panics
///
/// Panics if `config.devices == 0` or the schedule is empty.
pub fn run_fleet(
    dataset: &DrivingDataset,
    system: AnoleSystem,
    schedule: &[SceneAttributes],
    config: &FleetConfig,
    seed: Seed,
) -> Result<(FleetReport, AnoleSystem), AnoleError> {
    run_fleet_supervised(dataset, system, schedule, config, seed, None)
}

/// [`run_fleet`] under a supervisor: every device's daily run executes
/// inside `catch_unwind`, so one panicking device cannot take down the
/// fan-out. A panicked device is retried up to
/// [`FleetConfig::max_device_retries`] times (sequentially, after the
/// parallel pass); a device that exhausts its retries is quarantined for
/// the rest of the run and listed in [`FleetReport::quarantined`], while
/// the remaining devices keep driving and the schedule completes.
///
/// Panics can be injected deterministically via a [`FaultInjector`] with a
/// [`FaultKind::DevicePanic`](crate::omi::FaultKind::DevicePanic) schedule
/// or rate: the supervisor draws one panic decision per device attempt, on
/// the coordinator thread in device order, so the outcome is identical for
/// any worker count. With `injector` `None` or a zero-fault plan the run is
/// bit-identical to [`run_fleet`].
///
/// # Errors
///
/// As [`run_fleet`]. Device *errors* (as opposed to panics) still surface
/// immediately — a typed failure is a bug to report, not a crash to absorb.
///
/// # Panics
///
/// Panics if `config.devices == 0` or the schedule is empty.
pub fn run_fleet_supervised(
    dataset: &DrivingDataset,
    system: AnoleSystem,
    schedule: &[SceneAttributes],
    config: &FleetConfig,
    seed: Seed,
    mut injector: Option<FaultInjector>,
) -> Result<(FleetReport, AnoleSystem), AnoleError> {
    assert!(config.devices > 0, "fleet needs at least one device");
    assert!(!schedule.is_empty(), "schedule is empty");

    let split = dataset.split();
    // OOD scoring: scene-embedding distance to the nearest training-scene
    // centroid (the decision model's softmax confidence flattens at large
    // repository sizes and stops discriminating).
    let mut scorer = SceneDistanceScorer::calibrate(&system, dataset, &split.train)?;
    let ceiling = scorer.ceiling(&system, dataset, &split.val, 1.0 - config.drift_quantile)?;
    let shared = RwLock::new(system);
    let mut footage_pool: Vec<Frame> = Vec::new();
    let mut days = Vec::with_capacity(schedule.len());
    let mut quarantined: Vec<usize> = Vec::new();

    for (day, &scenario) in schedule.iter().enumerate() {
        // Daily operation: devices in parallel under the read lock, bounded
        // by the global parallel config. Each device derives its RNG stream
        // from (day, device_idx) and results are collected in device order,
        // so the report is identical for any worker count.
        type DeviceDay = Result<(DetectionCounts, usize, Vec<Frame>), AnoleError>;
        let roster: Vec<usize> =
            (0..config.devices).filter(|i| !quarantined.contains(i)).collect();
        // Panic decisions are drawn on the coordinator thread, one per
        // first attempt in device order, so worker interleaving cannot
        // shift the fault stream.
        let panic_flags: Vec<bool> = roster
            .iter()
            .map(|_| injector.as_mut().is_some_and(FaultInjector::device_panics))
            .collect();
        let (results, day_panics, newly_quarantined) = {
            let guard = shared.read();
            let system_ref: &AnoleSystem = &guard;
            let scorer_ref = &scorer;
            let run_device = |device_idx: usize| -> DeviceDay {
                let device_seed =
                    split_seed(seed, (day * config.devices + device_idx) as u64 + 1);
                let clip = dataset.world().generate_clip(
                    ClipId(usize::MAX - day * 100 - device_idx),
                    DatasetSource::Shd,
                    scenario,
                    config.frames_per_day,
                    1.0,
                    split_seed(device_seed, 0),
                );
                let mut engine =
                    system_ref.online_engine(config.device, split_seed(device_seed, 1));
                engine.warm(&(0..system_ref.repository().len()).collect::<Vec<_>>());
                let mut detector = scorer_ref.detector(config.drift_window, ceiling);
                let mut counts = DetectionCounts::default();
                let mut drifting = 0usize;
                let mut collected = Vec::new();
                for frame in &clip.frames {
                    let out = engine.step(&frame.features)?;
                    counts.accumulate(&out.detections, &frame.truth);
                    let state =
                        scorer_ref.observe_frame(&mut detector, system_ref, &frame.features)?;
                    if state == DriftState::Drifting {
                        drifting += 1;
                        collected.push(frame.clone());
                    }
                }
                Ok((counts, drifting, collected))
            };
            // One supervised attempt: the device's whole day runs inside
            // catch_unwind, so a panic is isolated to that device.
            let attempt = |device_idx: usize, inject_panic: bool| -> Result<DeviceDay, ()> {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    if inject_panic {
                        panic!("injected device panic (device {device_idx})");
                    }
                    run_device(device_idx)
                }))
                .map_err(|_| ())
            };
            let jobs: Vec<(usize, bool)> =
                roster.iter().copied().zip(panic_flags.iter().copied()).collect();
            let threads = anole_tensor::parallel_config()
                .effective_threads()
                .clamp(1, jobs.len().max(1));
            let first_pass: Vec<(usize, Result<DeviceDay, ()>)> = if threads <= 1 {
                jobs.iter().map(|&(i, p)| (i, attempt(i, p))).collect()
            } else {
                let per_worker = jobs.len().div_ceil(threads);
                std::thread::scope(|scope| {
                    let attempt = &attempt;
                    let handles: Vec<_> = jobs
                        .chunks(per_worker)
                        .map(|chunk| {
                            scope.spawn(move || {
                                chunk
                                    .iter()
                                    .map(|&(i, p)| (i, attempt(i, p)))
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .flat_map(|h| h.join().expect("supervisor thread panicked"))
                        .collect()
                })
            };
            // Bounded retries, sequentially in device order; exhausted
            // devices are quarantined and the rest of the fleet drives on.
            let mut day_panics = 0usize;
            let mut newly_quarantined = Vec::new();
            let mut completed: Vec<DeviceDay> = Vec::new();
            for (device_idx, first) in first_pass {
                let mut outcome = first;
                if outcome.is_err() {
                    day_panics += 1;
                }
                let mut retries = 0;
                while outcome.is_err() && retries < config.max_device_retries {
                    retries += 1;
                    let inject =
                        injector.as_mut().is_some_and(FaultInjector::device_panics);
                    outcome = attempt(device_idx, inject);
                    if outcome.is_err() {
                        day_panics += 1;
                    }
                }
                match outcome {
                    Ok(result) => completed.push(result),
                    Err(()) => newly_quarantined.push(device_idx),
                }
            }
            (completed, day_panics, newly_quarantined)
        };
        quarantined.extend(&newly_quarantined);

        let active_devices = results.len();
        let mut day_counts = DetectionCounts::default();
        let mut drifting = 0usize;
        let mut collected_today = 0usize;
        for result in results {
            let (counts, device_drifting, collected) = result?;
            day_counts.merge(&counts);
            drifting += device_drifting;
            collected_today += collected.len();
            footage_pool.extend(collected);
        }

        // Overnight: expand when enough flagged footage has pooled, and
        // teach the drift scorer that the scene is now covered.
        let expanded_model = if footage_pool.len() >= config.min_footage {
            let mut guard = shared.write();
            let new_id = guard.extend_with_frames(
                dataset,
                &footage_pool,
                split_seed(seed, 10_000 + day as u64),
            )?;
            scorer.add_centroid(&guard, &footage_pool)?;
            footage_pool.clear();
            Some(new_id)
        } else {
            None
        };

        let total_frames = active_devices * config.frames_per_day;
        days.push(DayReport {
            day,
            scenario,
            f1: day_counts.f1(),
            drift_rate: drifting as f32 / total_frames.max(1) as f32,
            collected_frames: collected_today,
            expanded_model,
            repository_size: shared.read().repository().len(),
            device_panics: day_panics,
            active_devices,
        });
    }

    Ok((FleetReport { days, quarantined }, shared.into_inner()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AnoleConfig;
    use anole_data::{DatasetConfig, Location, TimeOfDay, Weather};

    fn world() -> (DrivingDataset, AnoleSystem) {
        let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(181));
        let system = AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(182)).unwrap();
        (dataset, system)
    }

    #[test]
    fn lifecycle_expands_on_exotic_scenes_and_improves() {
        let (dataset, system) = world();
        let before_models = system.repository().len();
        let familiar = dataset.clips()[0].attributes;
        let exotic =
            SceneAttributes::new(Weather::Foggy, Location::TollBooth, TimeOfDay::Night);
        // Two familiar days, then three days in the exotic scene.
        let schedule = [familiar, familiar, exotic, exotic, exotic];
        let config = FleetConfig {
            devices: 2,
            frames_per_day: 80,
            min_footage: 50,
            ..FleetConfig::default()
        };
        let (report, final_system) =
            run_fleet(&dataset, system, &schedule, &config, Seed(183)).unwrap();
        assert_eq!(report.days.len(), 5);

        // Exotic days must drift enough to pool footage (the sharper
        // exotic-vs-seen discrimination claim is covered at the right
        // granularity by the drift module's own tests; at this tiny scale
        // even fresh familiar clips are mildly out-of-distribution).
        assert!(
            report.days[2..5].iter().any(|d| d.drift_rate > 0.1),
            "no exotic day drifted: {:?}",
            report.days.iter().map(|d| d.drift_rate).collect::<Vec<_>>()
        );

        // At least one expansion ran, growing the repository.
        assert!(report.days.iter().any(|d| d.expanded_model.is_some()));
        assert!(final_system.repository().len() > before_models);

        // And the fleet got better at the exotic scene.
        let (first, last) = report.improvement_on(exotic).unwrap();
        assert!(
            last > first,
            "no improvement on the exotic scene: {first} → {last}"
        );
    }

    #[test]
    fn lifecycle_without_drift_never_expands() {
        let (dataset, system) = world();
        let before = system.repository().len();
        let familiar = dataset.clips()[0].attributes;
        let config = FleetConfig {
            devices: 2,
            frames_per_day: 60,
            min_footage: 100_000, // unreachable
            ..FleetConfig::default()
        };
        let (report, final_system) =
            run_fleet(&dataset, system, &[familiar, familiar], &config, Seed(184)).unwrap();
        assert!(report.days.iter().all(|d| d.expanded_model.is_none()));
        assert_eq!(final_system.repository().len(), before);
    }

    #[test]
    #[should_panic(expected = "schedule is empty")]
    fn empty_schedule_is_rejected() {
        let (dataset, system) = world();
        let _ = run_fleet(&dataset, system, &[], &FleetConfig::default(), Seed(185));
    }

    #[test]
    fn improvement_on_requires_two_occurrences() {
        let report = FleetReport {
            days: vec![DayReport {
                day: 0,
                scenario: SceneAttributes::from_scene_index(0),
                f1: 0.5,
                drift_rate: 0.0,
                collected_frames: 0,
                expanded_model: None,
                repository_size: 5,
                device_panics: 0,
                active_devices: 3,
            }],
            quarantined: Vec::new(),
        };
        assert!(report
            .improvement_on(SceneAttributes::from_scene_index(0))
            .is_none());
        assert!(report
            .improvement_on(SceneAttributes::from_scene_index(1))
            .is_none());
    }

    #[test]
    fn supervised_run_with_zero_faults_matches_unsupervised() {
        use crate::omi::FaultPlan;

        let (dataset, system) = world();
        let familiar = dataset.clips()[0].attributes;
        let schedule = [familiar, familiar];
        let config = FleetConfig {
            devices: 2,
            frames_per_day: 40,
            min_footage: 100_000,
            ..FleetConfig::default()
        };
        let (plain, plain_system) =
            run_fleet(&dataset, system.clone(), &schedule, &config, Seed(186)).unwrap();
        let injector = FaultPlan::new(Seed(187)).injector();
        let (supervised, supervised_system) = run_fleet_supervised(
            &dataset,
            system,
            &schedule,
            &config,
            Seed(186),
            Some(injector),
        )
        .unwrap();
        assert_eq!(plain, supervised);
        assert_eq!(plain_system, supervised_system);
        assert!(supervised.quarantined.is_empty());
        assert!(supervised.days.iter().all(|d| d.device_panics == 0));
        assert!(supervised.days.iter().all(|d| d.active_devices == 2));
    }
}
