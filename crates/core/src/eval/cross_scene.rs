//! The cross-scene experiment (§VI-D, Fig. 8): seen but fast-changing
//! scenes, windowed F1 per source dataset for every candidate method.

use anole_data::{DatasetSource, DrivingDataset, FrameRef};
use anole_device::DeviceKind;
use anole_tensor::{split_seed, Seed};
use serde::{Deserialize, Serialize};

use crate::eval::{evaluate_refs, StreamResult};
use crate::{train_baselines, AnoleError, AnoleSystem, MethodKind};

/// Per-method results on one source dataset's test stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceResult {
    /// The source dataset.
    pub source: DatasetSource,
    /// `(method, stream result)` pairs, Anole first.
    pub methods: Vec<(MethodKind, StreamResult)>,
}

impl SourceResult {
    /// The result of one method, if present.
    pub fn of(&self, kind: MethodKind) -> Option<&StreamResult> {
        self.methods.iter().find(|(k, _)| *k == kind).map(|(_, r)| r)
    }
}

/// The full cross-scene report (one [`SourceResult`] per source).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossSceneReport {
    /// Results per source dataset.
    pub sources: Vec<SourceResult>,
    /// F1 window size used.
    pub window: usize,
}

impl CrossSceneReport {
    /// Mean overall F1 of a method across sources; `None` if absent.
    pub fn mean_f1(&self, kind: MethodKind) -> Option<f32> {
        let scores: Vec<f32> = self
            .sources
            .iter()
            .filter_map(|s| s.of(kind).map(|r| r.overall_f1))
            .collect();
        if scores.is_empty() {
            None
        } else {
            Some(scores.iter().sum::<f32>() / scores.len() as f32)
        }
    }
}

/// Runs the cross-scene experiment: trains the four baselines on the same
/// training split as `system`, then evaluates everything on each source's
/// test stream (frames in clip order, F1 every `window` frames).
///
/// # Errors
///
/// Surfaces training and prediction errors.
pub fn cross_scene_experiment(
    dataset: &DrivingDataset,
    system: &AnoleSystem,
    window: usize,
    seed: Seed,
) -> Result<CrossSceneReport, AnoleError> {
    let split = dataset.split();
    let cdg_k = system.repository().len().clamp(2, 8);
    let (mut sdm, mut ssm, mut cdg, mut dmm) = train_baselines(
        dataset,
        &split.train,
        cdg_k,
        system.config(),
        split_seed(seed, 0),
    )?;

    let mut sources = Vec::new();
    for source in DatasetSource::ALL {
        let stream: Vec<FrameRef> = split
            .test
            .iter()
            .copied()
            .filter(|r| dataset.clips()[r.clip].source == source)
            .collect();
        if stream.is_empty() {
            continue;
        }

        let mut engine = system.online_engine(DeviceKind::JetsonTx2Nx, split_seed(seed, 1));
        engine.warm(&warm_set(system));

        let methods: Vec<(MethodKind, StreamResult)> = vec![
            (
                MethodKind::Anole,
                evaluate_refs(&mut engine, dataset, &stream, window)?,
            ),
            (
                MethodKind::Sdm,
                evaluate_refs(&mut sdm, dataset, &stream, window)?,
            ),
            (
                MethodKind::Ssm,
                evaluate_refs(&mut ssm, dataset, &stream, window)?,
            ),
            (
                MethodKind::Cdg,
                evaluate_refs(&mut cdg, dataset, &stream, window)?,
            ),
            (
                MethodKind::Dmm,
                evaluate_refs(&mut dmm, dataset, &stream, window)?,
            ),
        ];
        sources.push(SourceResult { source, methods });
    }

    Ok(CrossSceneReport { sources, window })
}

/// The models to pre-load: the first `cache.capacity` repository models.
pub(crate) fn warm_set(system: &AnoleSystem) -> Vec<usize> {
    (0..system
        .repository()
        .len()
        .min(system.config().cache.capacity))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AnoleConfig;
    use anole_data::DatasetConfig;

    #[test]
    fn report_covers_all_sources_and_methods() {
        let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(101));
        let system = AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(102)).unwrap();
        let report = cross_scene_experiment(&dataset, &system, 10, Seed(103)).unwrap();
        assert_eq!(report.sources.len(), 3);
        for s in &report.sources {
            assert_eq!(s.methods.len(), 5);
            for (_, r) in &s.methods {
                assert!((0.0..=1.0).contains(&r.overall_f1));
                assert!(!r.windowed.is_empty());
            }
            assert!(s.of(MethodKind::Anole).is_some());
        }
        for kind in [
            MethodKind::Anole,
            MethodKind::Sdm,
            MethodKind::Ssm,
            MethodKind::Cdg,
            MethodKind::Dmm,
        ] {
            assert!(report.mean_f1(kind).is_some());
        }
    }
}
