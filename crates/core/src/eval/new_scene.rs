//! The new-scene experiment (§VI-E, Table III): inference accuracy on the
//! held-out unseen clips.

use anole_data::{DatasetSource, DrivingDataset, SceneAttributes};
use anole_device::DeviceKind;
use anole_tensor::{split_seed, Seed};
use serde::{Deserialize, Serialize};

use crate::eval::cross_scene::warm_set;
use crate::eval::evaluate_refs;
use crate::{train_baselines, AnoleError, AnoleSystem, MethodKind};

/// One row of Table III: one unseen clip, one F1 per method.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NewSceneRow {
    /// Index of the unseen clip in the dataset.
    pub clip: usize,
    /// Source dataset of the clip.
    pub source: DatasetSource,
    /// Semantic attributes of the clip.
    pub attributes: SceneAttributes,
    /// `(method, overall F1)` pairs.
    pub f1: Vec<(MethodKind, f32)>,
}

impl NewSceneRow {
    /// F1 of one method, if present.
    pub fn of(&self, kind: MethodKind) -> Option<f32> {
        self.f1.iter().find(|(k, _)| *k == kind).map(|&(_, v)| v)
    }
}

/// The Table III report: per-clip rows plus per-method means.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NewSceneReport {
    /// One row per unseen clip.
    pub rows: Vec<NewSceneRow>,
}

impl NewSceneReport {
    /// Mean F1 of a method across the unseen clips (the "Mean" column).
    pub fn mean_f1(&self, kind: MethodKind) -> Option<f32> {
        let scores: Vec<f32> = self.rows.iter().filter_map(|r| r.of(kind)).collect();
        if scores.is_empty() {
            None
        } else {
            Some(scores.iter().sum::<f32>() / scores.len() as f32)
        }
    }

    /// The method with the best mean F1.
    pub fn best_method(&self) -> Option<MethodKind> {
        [
            MethodKind::Anole,
            MethodKind::Sdm,
            MethodKind::Ssm,
            MethodKind::Cdg,
            MethodKind::Dmm,
        ]
        .into_iter()
        .filter_map(|k| self.mean_f1(k).map(|f| (k, f)))
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(k, _)| k)
    }
}

/// Runs the new-scene experiment on every unseen clip.
///
/// # Errors
///
/// Surfaces training and prediction errors.
pub fn new_scene_experiment(
    dataset: &DrivingDataset,
    system: &AnoleSystem,
    seed: Seed,
) -> Result<NewSceneReport, AnoleError> {
    let split = dataset.split();
    let cdg_k = system.repository().len().clamp(2, 8);
    let (mut sdm, mut ssm, mut cdg, mut dmm) = train_baselines(
        dataset,
        &split.train,
        cdg_k,
        system.config(),
        split_seed(seed, 0),
    )?;

    let mut rows = Vec::new();
    for &clip in &split.unseen_clips {
        let stream = dataset.clip_frames(clip);
        let mut engine = system.online_engine(DeviceKind::JetsonTx2Nx, split_seed(seed, 1));
        engine.warm(&warm_set(system));

        let f1 = vec![
            (
                MethodKind::Anole,
                evaluate_refs(&mut engine, dataset, &stream, stream.len())?.overall_f1,
            ),
            (
                MethodKind::Sdm,
                evaluate_refs(&mut sdm, dataset, &stream, stream.len())?.overall_f1,
            ),
            (
                MethodKind::Ssm,
                evaluate_refs(&mut ssm, dataset, &stream, stream.len())?.overall_f1,
            ),
            (
                MethodKind::Cdg,
                evaluate_refs(&mut cdg, dataset, &stream, stream.len())?.overall_f1,
            ),
            (
                MethodKind::Dmm,
                evaluate_refs(&mut dmm, dataset, &stream, stream.len())?.overall_f1,
            ),
        ];
        rows.push(NewSceneRow {
            clip,
            source: dataset.clips()[clip].source,
            attributes: dataset.clips()[clip].attributes,
            f1,
        });
    }

    Ok(NewSceneReport { rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AnoleConfig;
    use anole_data::DatasetConfig;

    #[test]
    fn report_has_one_row_per_unseen_clip() {
        let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(111));
        let system = AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(112)).unwrap();
        let report = new_scene_experiment(&dataset, &system, Seed(113)).unwrap();
        let split = dataset.split();
        assert_eq!(report.rows.len(), split.unseen_clips.len());
        for row in &report.rows {
            assert!(!dataset.clips()[row.clip].seen);
            assert_eq!(row.f1.len(), 5);
            for &(_, f1) in &row.f1 {
                assert!((0.0..=1.0).contains(&f1));
            }
        }
        assert!(report.mean_f1(MethodKind::Anole).is_some());
        assert!(report.best_method().is_some());
    }
}
