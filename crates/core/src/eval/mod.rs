//! Evaluation protocols of §VI: cross-scene (Fig. 8), new-scene
//! (Table III), and real-world streaming (Fig. 10) experiments, plus the
//! shared stream evaluator.

mod cross_scene;
mod new_scene;
mod real_world;

pub use cross_scene::{cross_scene_experiment, CrossSceneReport, SourceResult};
pub use new_scene::{new_scene_experiment, NewSceneReport, NewSceneRow};
pub use real_world::{real_world_experiment, RealWorldReport, ScenarioResult};

use anole_data::{DatasetSource, DrivingDataset, Frame, FrameRef};
use anole_detect::{windowed_f1, DetectionCounts};
use serde::{Deserialize, Serialize};

use crate::{AnoleError, InferenceMethod};

/// Result of running one method over one frame stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamResult {
    /// F1 over the whole stream.
    pub overall_f1: f32,
    /// F1 per window of `window` frames (the paper scores every 10 frames).
    pub windowed: Vec<f32>,
}

impl StreamResult {
    /// Mean of the windowed F1 series; 0.0 when empty.
    pub fn mean_windowed(&self) -> f32 {
        if self.windowed.is_empty() {
            0.0
        } else {
            self.windowed.iter().sum::<f32>() / self.windowed.len() as f32
        }
    }
}

/// Evaluates a method over referenced dataset frames in order.
///
/// # Errors
///
/// Surfaces prediction errors from the method.
pub fn evaluate_refs(
    method: &mut dyn InferenceMethod,
    dataset: &DrivingDataset,
    refs: &[FrameRef],
    window: usize,
) -> Result<StreamResult, AnoleError> {
    let frames: Vec<&Frame> = refs.iter().map(|&r| dataset.frame(r)).collect();
    let sources: Vec<DatasetSource> = refs
        .iter()
        .map(|r| dataset.clips()[r.clip].source)
        .collect();
    let preds = method.predict_batch(&frames, &sources)?;
    let mut pairs = Vec::with_capacity(refs.len());
    let mut counts = DetectionCounts::default();
    for (frame, pred) in frames.iter().zip(preds) {
        counts.accumulate(&pred, &frame.truth);
        pairs.push((pred, frame.truth.clone()));
    }
    Ok(StreamResult {
        overall_f1: counts.f1(),
        windowed: windowed_f1(&pairs, window.max(1)),
    })
}

/// Evaluates a method over raw frames (fresh clips outside the dataset).
///
/// # Errors
///
/// Surfaces prediction errors from the method.
pub fn evaluate_frames(
    method: &mut dyn InferenceMethod,
    frames: &[Frame],
    source: DatasetSource,
    window: usize,
) -> Result<StreamResult, AnoleError> {
    let frame_refs: Vec<&Frame> = frames.iter().collect();
    let sources = vec![source; frames.len()];
    let preds = method.predict_batch(&frame_refs, &sources)?;
    let mut pairs = Vec::with_capacity(frames.len());
    let mut counts = DetectionCounts::default();
    for (frame, pred) in frames.iter().zip(preds) {
        counts.accumulate(&pred, &frame.truth);
        pairs.push((pred, frame.truth.clone()));
    }
    Ok(StreamResult {
        overall_f1: counts.f1(),
        windowed: windowed_f1(&pairs, window.max(1)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AnoleConfig, AnoleSystem, Ssm};
    use anole_data::DatasetConfig;
    use anole_tensor::Seed;

    #[test]
    fn stream_result_aggregates_windows() {
        let r = StreamResult {
            overall_f1: 0.5,
            windowed: vec![0.4, 0.6],
        };
        assert!((r.mean_windowed() - 0.5).abs() < 1e-6);
        let empty = StreamResult {
            overall_f1: 0.0,
            windowed: vec![],
        };
        assert_eq!(empty.mean_windowed(), 0.0);
    }

    #[test]
    fn evaluate_refs_and_frames_agree_for_the_same_stream() {
        let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(1));
        let split = dataset.split();
        let config = AnoleConfig::fast();
        let mut ssm = Ssm::train(&dataset, &split.train, &config, Seed(2)).unwrap();

        let refs = &split.test[..40.min(split.test.len())];
        let by_ref = evaluate_refs(&mut ssm, &dataset, refs, 10).unwrap();

        // Rebuild the same stream as raw frames (all from the same source so
        // the oracle argument is irrelevant for SSM).
        let frames: Vec<_> = refs.iter().map(|&r| dataset.frame(r).clone()).collect();
        let by_frame =
            evaluate_frames(&mut ssm, &frames, anole_data::DatasetSource::Kitti, 10).unwrap();
        assert_eq!(by_ref.overall_f1, by_frame.overall_f1);
        assert_eq!(by_ref.windowed, by_frame.windowed);
    }

    #[test]
    fn empty_streams_evaluate_to_zero() {
        let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(6));
        let split = dataset.split();
        let config = AnoleConfig::fast();
        let mut ssm = Ssm::train(&dataset, &split.train, &config, Seed(7)).unwrap();
        let result = evaluate_refs(&mut ssm, &dataset, &[], 10).unwrap();
        assert_eq!(result.overall_f1, 0.0);
        assert!(result.windowed.is_empty());
        assert_eq!(result.mean_windowed(), 0.0);
        let result =
            evaluate_frames(&mut ssm, &[], anole_data::DatasetSource::Shd, 10).unwrap();
        assert_eq!(result.overall_f1, 0.0);
    }

    #[test]
    fn anole_engine_works_through_the_trait() {
        let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(3));
        let system = AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(4)).unwrap();
        let mut engine = system.online_engine(anole_device::DeviceKind::JetsonTx2Nx, Seed(5));
        let split = dataset.split();
        let result = evaluate_refs(&mut engine, &dataset, &split.test[..30], 10).unwrap();
        assert!(result.overall_f1 >= 0.0 && result.overall_f1 <= 1.0);
        assert_eq!(result.windowed.len(), 3);
    }
}
