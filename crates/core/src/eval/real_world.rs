//! The real-world experiment (§VI-F, Fig. 9/10): fresh driving scenarios
//! streamed through the device, per-scenario F1 and online latency.
//!
//! The paper mounts the TX2 on a vehicle/UAV and drives seven Shanghai
//! scenarios. Here the same world model generates *fresh* clips (never part
//! of the training dataset) for seven representative scenarios, and every
//! method processes the stream frame by frame.

use anole_data::{
    ClipId, DatasetSource, DrivingDataset, Location, SceneAttributes, TimeOfDay, Weather,
};
use anole_device::DeviceKind;
use anole_tensor::{split_seed, Seed};
use serde::{Deserialize, Serialize};

use crate::eval::cross_scene::warm_set;
use crate::eval::evaluate_frames;
use crate::{train_baselines, AnoleError, AnoleSystem, MethodKind};

/// The seven driving scenarios of the Shanghai field test.
pub(crate) fn shanghai_scenarios() -> Vec<SceneAttributes> {
    vec![
        SceneAttributes::new(Weather::Clear, Location::Highway, TimeOfDay::Daytime),
        SceneAttributes::new(Weather::Clear, Location::Urban, TimeOfDay::Daytime),
        SceneAttributes::new(Weather::Overcast, Location::Urban, TimeOfDay::DawnDusk),
        SceneAttributes::new(Weather::Clear, Location::Tunnel, TimeOfDay::Daytime),
        SceneAttributes::new(Weather::Clear, Location::Urban, TimeOfDay::Night),
        SceneAttributes::new(Weather::Rainy, Location::Highway, TimeOfDay::Night),
        SceneAttributes::new(Weather::Clear, Location::Bridge, TimeOfDay::Night),
    ]
}

/// One scenario's results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// Scenario attributes.
    pub attributes: SceneAttributes,
    /// `(method, overall F1)` pairs.
    pub f1: Vec<(MethodKind, f32)>,
    /// Mean Anole end-to-end frame latency on the TX2, milliseconds.
    pub anole_latency_ms: f32,
}

impl ScenarioResult {
    /// F1 of one method, if present.
    pub fn of(&self, kind: MethodKind) -> Option<f32> {
        self.f1.iter().find(|(k, _)| *k == kind).map(|&(_, v)| v)
    }
}

/// The Fig. 10 report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RealWorldReport {
    /// One result per scenario, in scenario order.
    pub scenarios: Vec<ScenarioResult>,
}

impl RealWorldReport {
    /// Number of scenarios where `kind` was the best method.
    pub fn wins(&self, kind: MethodKind) -> usize {
        self.scenarios
            .iter()
            .filter(|s| {
                let own = s.of(kind).unwrap_or(0.0);
                s.f1.iter().all(|&(k, v)| k == kind || v <= own)
            })
            .count()
    }

    /// Mean F1 of one method across scenarios.
    pub fn mean_f1(&self, kind: MethodKind) -> Option<f32> {
        let scores: Vec<f32> = self.scenarios.iter().filter_map(|s| s.of(kind)).collect();
        if scores.is_empty() {
            None
        } else {
            Some(scores.iter().sum::<f32>() / scores.len() as f32)
        }
    }
}

/// Runs the real-world experiment: generates `frames_per_scenario` fresh
/// frames for each of the seven scenarios from the dataset's world model and
/// streams them through Anole (on the TX2 simulator) and the baselines.
///
/// # Errors
///
/// Surfaces training and prediction errors.
pub fn real_world_experiment(
    dataset: &DrivingDataset,
    system: &AnoleSystem,
    frames_per_scenario: usize,
    seed: Seed,
) -> Result<RealWorldReport, AnoleError> {
    let split = dataset.split();
    let cdg_k = system.repository().len().clamp(2, 8);
    let (mut sdm, mut ssm, mut cdg, mut dmm) = train_baselines(
        dataset,
        &split.train,
        cdg_k,
        system.config(),
        split_seed(seed, 0),
    )?;

    let mut scenarios = Vec::new();
    for (i, attrs) in shanghai_scenarios().into_iter().enumerate() {
        let clip = dataset.world().generate_clip(
            ClipId(usize::MAX - i),
            DatasetSource::Shd,
            attrs,
            frames_per_scenario,
            1.0,
            split_seed(seed, 100 + i as u64),
        );

        let mut engine = system.online_engine(DeviceKind::JetsonTx2Nx, split_seed(seed, 200));
        engine.warm(&warm_set(system));
        let window = frames_per_scenario.max(1);
        let anole =
            evaluate_frames(&mut engine, &clip.frames, DatasetSource::Shd, window)?;
        // Actual mean end-to-end frame latency of the run (includes hedged
        // frames; background loads do not stall frames since the cache was
        // warmed before the run).
        let anole_latency_ms = engine.mean_latency_ms();

        let f1 = vec![
            (MethodKind::Anole, anole.overall_f1),
            (
                MethodKind::Sdm,
                evaluate_frames(&mut sdm, &clip.frames, DatasetSource::Shd, window)?.overall_f1,
            ),
            (
                MethodKind::Ssm,
                evaluate_frames(&mut ssm, &clip.frames, DatasetSource::Shd, window)?.overall_f1,
            ),
            (
                MethodKind::Cdg,
                evaluate_frames(&mut cdg, &clip.frames, DatasetSource::Shd, window)?.overall_f1,
            ),
            (
                MethodKind::Dmm,
                evaluate_frames(&mut dmm, &clip.frames, DatasetSource::Shd, window)?.overall_f1,
            ),
        ];
        scenarios.push(ScenarioResult {
            attributes: attrs,
            f1,
            anole_latency_ms,
        });
    }

    Ok(RealWorldReport { scenarios })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AnoleConfig;
    use anole_data::DatasetConfig;

    #[test]
    fn report_covers_seven_scenarios() {
        let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(121));
        let system = AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(122)).unwrap();
        let report = real_world_experiment(&dataset, &system, 40, Seed(123)).unwrap();
        assert_eq!(report.scenarios.len(), 7);
        for s in &report.scenarios {
            assert_eq!(s.f1.len(), 5);
            // Paper: Anole runs under 20 ms per frame on the TX2 with the
            // single-model path; our default top-2 hedging path stays well
            // under the SDM's 42.9 ms.
            assert!(
                s.anole_latency_ms < 30.0,
                "latency {} ms",
                s.anole_latency_ms
            );
        }
        assert!(report.mean_f1(MethodKind::Anole).is_some());
        assert!(report.wins(MethodKind::Anole) <= 7);
    }
}
