//! Fleet serving gateway: N devices multiplexed as long-lived sessions.
//!
//! [`run_fleet_supervised`](crate::lifecycle::run_fleet_supervised) treats a
//! fleet as isolated fan-out jobs: each device runs its whole day in one
//! closure and the coordinator only sees the result. A serving fleet does
//! not look like that — frames arrive on a cadence, devices fall behind,
//! queues fill, models fail to load in bursts, and one slow or crashing
//! session must never take the others with it. The [`Gateway`] models that
//! regime as a message-queue-driven scheduler:
//!
//! * every admitted session owns a **bounded frame queue**; when it fills,
//!   the producer receives explicit backpressure and pauses (a
//!   [`FaultKind::QueueOverflow`] injection forces the lossy alternative —
//!   the oldest frame is dropped);
//! * each session walks the state machine `Admitted → Active → Draining →
//!   {Completed, Shed, Quarantined}` — every admitted session reaches a
//!   terminal state, enforced structurally by a window watchdog;
//! * frames carry a **deadline budget**: a frame still queued past it is
//!   shed (served from last-good detections via the health ladder) instead
//!   of stalling the fleet, and a session that sheds too many consecutive
//!   frames is itself shed;
//! * the scheduler stacks frames that arrive within one **scheduling
//!   window** from different sessions into a single cross-device batched
//!   `M_decision` forward and hands each engine its row
//!   ([`OnlineEngine::step_with_scores`]); per-row the batched forward is
//!   bit-identical to the engine's own scoring, so batching is purely a
//!   throughput optimization;
//! * admission past the high-water mark is a typed
//!   [`AnoleError::SessionRejected`], never a panic;
//! * repeated model-load failures trip a **circuit breaker**: all engines
//!   ride their fallback chains with loads suppressed until a priced
//!   half-open probe on one session succeeds;
//! * every frame dispatch runs under `catch_unwind`, so a panicking session
//!   (injected via [`SessionSpec::inject_panic`] or real) is quarantined
//!   while the rest of the fleet keeps serving.
//!
//! The scheduler runs on **virtual time** (simulated milliseconds): the run
//! is deterministic, wall-clock-free, and byte-identical with the
//! observability feature on or off.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};

use anole_data::Frame;
use anole_detect::DetectionCounts;
use anole_device::DeviceKind;
use anole_nn::Workspace;
use anole_obs::{
    AlertSeverity, CounterSample, FixedHistogram, GaugeSample, HistogramSample, MetricsSnapshot,
    SeriesRecorder, SloAlert, SloEngine, SloSpec,
};
use anole_tensor::{Matrix, Seed};
use serde::{Deserialize, Serialize};

use crate::omi::{
    DriftDetector, DriftState, FaultInjector, FaultKind, FaultPlan, FlightRecord, OnlineEngine,
    PrefetchStats, StepOutcome,
};
use crate::{AnoleError, AnoleSystem};
use anole_cache::CacheStats;

/// Queue-depth histogram buckets (frames waiting per session).
const QUEUE_DEPTH_BOUNDS: &[f64] = &[0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0];

/// Per-frame callback invoked after each successfully processed frame (in
/// the same `catch_unwind` scope as the step itself). The fleet lifecycle
/// uses it for drift scoring and footage collection.
pub type FrameHandler<'a> = Box<dyn FnMut(&Frame, &StepOutcome) -> Result<(), AnoleError> + 'a>;

/// Configuration of a [`Gateway`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GatewayConfig {
    /// High-water mark: sessions admitted and not yet terminal. Admission
    /// past it returns [`AnoleError::SessionRejected`].
    pub max_sessions: usize,
    /// Bounded per-session frame queue capacity. A full queue signals
    /// backpressure to the producer (or drops the oldest frame under an
    /// injected [`FaultKind::QueueOverflow`]).
    pub queue_capacity: usize,
    /// Virtual milliseconds between consecutive frames of one session's
    /// producer (its camera cadence).
    pub frame_interval_ms: f64,
    /// Scheduling-window length in virtual milliseconds: frames ready
    /// within one window are stacked into one batched decision forward.
    pub window_ms: f64,
    /// Per-frame deadline budget in virtual milliseconds, measured from the
    /// frame's nominal arrival. Queued frames past it are shed.
    /// `f64::INFINITY` disables shedding.
    pub deadline_ms: f64,
    /// Minimum ready frames for a batched decision forward; below it each
    /// session scores its own frame ([`OnlineEngine::step`]). `usize::MAX`
    /// disables batching entirely.
    pub batch_min: usize,
    /// Consecutive shed frames after which the whole session is shed.
    /// `usize::MAX` disables session shedding.
    pub shed_session_after: usize,
    /// Model-load failures (fleet-wide, while the breaker is closed) that
    /// trip the circuit breaker.
    pub breaker_threshold: usize,
    /// Virtual milliseconds the breaker stays open before a half-open
    /// probe.
    pub breaker_cooldown_ms: f64,
    /// Latency multiplier applied to a frame hit by an injected
    /// [`FaultKind::SlowConsumer`].
    pub slow_factor: f64,
    /// Scheduling windows an injected [`FaultKind::SessionStall`] parks the
    /// session for.
    pub stall_windows: usize,
    /// Hard cap on scheduling windows; non-terminal sessions are force-shed
    /// when it is reached (the zero-lost-sessions backstop). `0` picks
    /// `max(4096, 64 × longest session)` automatically.
    pub max_windows: usize,
    /// Per-session flight-recorder depth: every admitted engine keeps a
    /// bounded ring of its last N wide events (one compact
    /// [`FlightFrame`](crate::omi::FlightFrame) per frame), dumped into the
    /// session's report when it goes `Quarantined`/`Shed` or its drift
    /// detector latches. `0` (the default) disables recording and keeps
    /// serialized reports byte-identical to pre-recorder runs.
    pub flight_recorder_frames: usize,
    /// Device model every session's engine simulates.
    pub device: DeviceKind,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        Self {
            max_sessions: 4096,
            queue_capacity: 4,
            frame_interval_ms: 33.0,
            window_ms: 33.0,
            deadline_ms: 100.0,
            batch_min: 2,
            shed_session_after: 8,
            breaker_threshold: 6,
            breaker_cooldown_ms: 500.0,
            slow_factor: 4.0,
            stall_windows: 3,
            max_windows: 0,
            flight_recorder_frames: 0,
            device: DeviceKind::JetsonTx2Nx,
        }
    }
}

impl GatewayConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`AnoleError::InvalidConfig`] naming the offending parameter.
    pub fn validate(&self) -> Result<(), AnoleError> {
        fn bad(what: &'static str, detail: String) -> Result<(), AnoleError> {
            Err(AnoleError::InvalidConfig { what, detail })
        }
        if self.max_sessions == 0 {
            return bad("max_sessions", "the gateway must admit at least one session".into());
        }
        if self.queue_capacity == 0 {
            return bad("queue_capacity", "a session queue needs at least one slot".into());
        }
        if !(self.frame_interval_ms.is_finite() && self.frame_interval_ms > 0.0) {
            return bad(
                "frame_interval_ms",
                format!("{} is not a positive frame cadence", self.frame_interval_ms),
            );
        }
        if !(self.window_ms.is_finite() && self.window_ms > 0.0) {
            return bad("window_ms", format!("{} is not a positive window", self.window_ms));
        }
        if !(self.deadline_ms > 0.0) {
            return bad(
                "deadline_ms",
                format!("{} is not a positive budget (use INFINITY to disable)", self.deadline_ms),
            );
        }
        if self.batch_min == 0 {
            return bad("batch_min", "a batch holds at least one frame".into());
        }
        if self.shed_session_after == 0 {
            return bad("shed_session_after", "shedding a session needs at least one miss".into());
        }
        if self.breaker_threshold == 0 {
            return bad("breaker_threshold", "the breaker needs at least one failure".into());
        }
        if !(self.breaker_cooldown_ms.is_finite() && self.breaker_cooldown_ms >= 0.0) {
            return bad(
                "breaker_cooldown_ms",
                format!("{} is not a valid cooldown", self.breaker_cooldown_ms),
            );
        }
        if !(self.slow_factor.is_finite() && self.slow_factor >= 1.0) {
            return bad(
                "slow_factor",
                format!("{} would speed the consumer up", self.slow_factor),
            );
        }
        if self.stall_windows == 0 {
            return bad("stall_windows", "a stall parks the session for at least one window".into());
        }
        Ok(())
    }
}

/// Everything the gateway needs to admit one session.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// The frames this session's producer will offer, in order.
    pub frames: Vec<Frame>,
    /// Seed of the session's engine.
    pub seed: Seed,
    /// Pinned fallback model for the engine, if any.
    pub pinned: Option<usize>,
    /// Pre-load the whole repository into the session's cache at admission.
    pub warm: bool,
    /// Per-session engine fault plan (device-level faults: load failures,
    /// sensor dropouts, …). Gateway-level faults come from
    /// [`Gateway::with_fault_plan`] instead.
    pub fault_plan: Option<FaultPlan>,
    /// Panic on this session's first frame dispatch — the chaos hook for
    /// the quarantine path.
    pub inject_panic: bool,
    /// Per-session drift detector, fed the decision confidence of every
    /// processed frame. `None` (the default) keeps the session's behaviour
    /// and report bit-identical to a drift-unaware gateway.
    pub drift: Option<DriftDetector>,
}

impl SessionSpec {
    /// A plain session: warm cache, no pinned fallback, no faults.
    pub fn new(frames: Vec<Frame>, seed: Seed) -> Self {
        Self {
            frames,
            seed,
            pinned: None,
            warm: true,
            fault_plan: None,
            inject_panic: false,
            drift: None,
        }
    }

    /// Attaches a calibrated per-session drift detector (see
    /// [`SessionSpec::drift`]).
    #[must_use]
    pub fn with_drift_detector(mut self, detector: DriftDetector) -> Self {
        self.drift = Some(detector);
        self
    }
}

/// Lifecycle state of one gateway session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionState {
    /// Admitted but no frame offered yet.
    Admitted,
    /// Producing and consuming frames.
    Active,
    /// Producer exhausted; queued frames still draining.
    Draining,
    /// Terminal: every offered frame was processed or shed frame-by-frame.
    Completed,
    /// Terminal: the session was dropped by load shedding (or the window
    /// watchdog) with frames still outstanding.
    Shed,
    /// Terminal: the session panicked or returned a typed engine error and
    /// was isolated from the fleet.
    Quarantined,
}

impl SessionState {
    /// Whether this state ends the session.
    pub fn is_terminal(self) -> bool {
        matches!(self, SessionState::Completed | SessionState::Shed | SessionState::Quarantined)
    }
}

/// Why a session (or fleet device) was quarantined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuarantineReason {
    /// The session panicked during a frame dispatch.
    Panicked,
    /// The session's engine (or frame handler) returned a typed error.
    EngineError,
    /// A fleet device kept panicking through its bounded retries.
    RetriesExhausted {
        /// Total attempts made (initial + retries).
        attempts: usize,
    },
}

/// One quarantined session, with enough context to debug it offline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuarantineRecord {
    /// Gateway session id (device index for fleet runs).
    pub session: usize,
    /// Why it was quarantined.
    pub reason: QuarantineReason,
    /// First gateway-level fault injected into this session before it died,
    /// if any — the leading suspect.
    pub first_fault: Option<FaultKind>,
    /// Human-readable detail (panic note or error display).
    pub detail: String,
    /// Flight-recorder dump: the last frames this session served before it
    /// died, captured when the gateway armed per-session recorders
    /// ([`GatewayConfig::flight_recorder_frames`] > 0). `None` — and absent
    /// from serialized records — otherwise.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub flight: Option<FlightRecord>,
}

/// Circuit-breaker state over model loads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Loads flow normally; failures accumulate toward the threshold.
    Closed,
    /// Loads are suppressed fleet-wide; engines ride their fallback chains.
    Open,
    /// One probe session has loads re-enabled; its next load decides.
    HalfOpen,
}

/// Per-session slice of a [`GatewayReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionReport {
    /// Session id, in admission order.
    pub id: usize,
    /// Terminal state the session reached.
    pub state: SessionState,
    /// Frames the spec carried.
    pub frames_total: usize,
    /// Frames fully processed by the engine.
    pub processed: usize,
    /// Frames shed past their deadline (served from last-good replay).
    pub shed_frames: usize,
    /// Frames dropped without service: queue-overflow losses plus frames
    /// discarded when the session went terminal early.
    pub dropped_frames: usize,
    /// Times the producer was paused by a full queue.
    pub backpressure_signals: usize,
    /// Deepest the session's queue ever got.
    pub peak_queue_depth: usize,
    /// Detection outcomes over processed + shed frames.
    pub counts: DetectionCounts,
    /// F1 over `counts`.
    pub f1: f32,
    /// Quarantine reason, when `state` is [`SessionState::Quarantined`].
    pub quarantine: Option<QuarantineReason>,
    /// Drift episodes (nominal→drifting transitions past hysteresis and
    /// cooldown) emitted by the session's detector; 0 without one.
    #[serde(default)]
    pub drift_events: usize,
    /// Drift latch of the session's detector when it went terminal;
    /// `Nominal` without a detector.
    #[serde(default)]
    pub drift_state: DriftState,
    /// Flight-recorder dump for sessions that ended badly (`Quarantined`,
    /// `Shed`, or drift latched away from `Nominal`), when the gateway
    /// armed recorders. Healthy sessions and unarmed runs carry `None`,
    /// which serializes to nothing.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub flight: Option<FlightRecord>,
}

/// Deterministic summary of one gateway run. Contains no wall-clock data:
/// two runs with the same sessions, config, and fault plan are equal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GatewayReport {
    /// One entry per admitted session, in admission order.
    pub sessions: Vec<SessionReport>,
    /// Sessions admitted.
    pub admitted: usize,
    /// Admissions refused at the high-water mark.
    pub rejected: usize,
    /// Sessions that completed cleanly.
    pub completed: usize,
    /// Sessions shed (load shedding or watchdog).
    pub shed_sessions: usize,
    /// Quarantined sessions, in the order they died.
    pub quarantined: Vec<QuarantineRecord>,
    /// Frames offered by all producers.
    pub frames_offered: usize,
    /// Frames fully processed.
    pub frames_processed: usize,
    /// Frames shed past deadline.
    pub frames_shed: usize,
    /// Frames dropped without service.
    pub frames_dropped: usize,
    /// Batched decision forwards issued.
    pub batched_calls: usize,
    /// Frames scored through batched forwards.
    pub batched_frames: usize,
    /// Frames scored per-session (window below `batch_min`).
    pub single_calls: usize,
    /// Scheduling windows executed.
    pub windows: usize,
    /// Windows skipped by injected scheduler hiccups.
    pub hiccups: usize,
    /// Injected session stalls.
    pub stalls: usize,
    /// Frames slowed by injected slow-consumer faults.
    pub slow_frames: usize,
    /// Frames dropped by injected queue overflows.
    pub overflows: usize,
    /// Producer pauses under backpressure.
    pub backpressure_signals: usize,
    /// Times the load circuit breaker tripped open.
    pub breaker_trips: usize,
    /// Half-open probes issued.
    pub breaker_probes: usize,
    /// Breaker state when the run ended.
    pub breaker_state: BreakerState,
    /// Sessions force-shed by the window watchdog.
    pub watchdog_shed: usize,
    /// Deepest any session queue ever got.
    pub peak_queue_depth: usize,
    /// Models evicted by mid-stream memory pressure across all engines.
    pub pressure_evictions: u64,
    /// Median end-to-end step latency (arrival → completion, virtual ms).
    pub step_latency_p50_ms: f64,
    /// 95th-percentile step latency (virtual ms).
    pub step_latency_p95_ms: f64,
    /// 99th-percentile step latency (virtual ms).
    pub step_latency_p99_ms: f64,
    /// Virtual time the run took.
    pub sim_duration_ms: f64,
    /// Burn-rate alerts fired by the SLO engine over the run, in firing
    /// order (empty — and absent from serialized reports — unless
    /// [`Gateway::with_slos`] armed it).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub slo_violations: Vec<SloAlert>,
}

impl GatewayReport {
    /// Admitted sessions that did **not** reach a terminal state. The
    /// scheduler guarantees zero structurally (the watchdog force-sheds
    /// stragglers); chaos tests assert it anyway.
    pub fn lost_sessions(&self) -> usize {
        self.sessions.iter().filter(|s| !s.state.is_terminal()).count()
    }

    /// Fleet-wide detection counts (all sessions merged).
    pub fn fleet_counts(&self) -> DetectionCounts {
        let mut total = DetectionCounts::default();
        for s in &self.sessions {
            total.merge(&s.counts);
        }
        total
    }

    /// Fleet-wide F1 over [`GatewayReport::fleet_counts`].
    pub fn fleet_f1(&self) -> f32 {
        self.fleet_counts().f1()
    }

    /// Drift episodes emitted across every session's detector.
    pub fn fleet_drift_events(&self) -> usize {
        self.sessions.iter().map(|s| s.drift_events).sum()
    }

    /// Page-severity SLO alerts fired over the run.
    pub fn slo_pages(&self) -> usize {
        self.slo_violations.iter().filter(|a| a.severity == AlertSeverity::Page).count()
    }

    /// Warn-severity SLO alerts fired over the run.
    pub fn slo_warns(&self) -> usize {
        self.slo_violations.iter().filter(|a| a.severity == AlertSeverity::Warn).count()
    }
}

/// One admitted session and its scheduling bookkeeping.
struct Session<'a> {
    id: usize,
    state: SessionState,
    engine: OnlineEngine<'a>,
    frames: Vec<Frame>,
    /// Next frame index the producer will offer.
    next_frame: usize,
    /// Queued frames: (frame index, nominal arrival in virtual ms).
    queue: VecDeque<(usize, f64)>,
    /// Nominal arrival of the next produced frame (advances by the frame
    /// interval per frame, independent of backpressure pauses — a paused
    /// frame ages against its deadline).
    next_arrival_ms: f64,
    busy_until_ms: f64,
    stalled_until_ms: f64,
    inject_panic: bool,
    handler: Option<FrameHandler<'a>>,
    drift: Option<DriftDetector>,
    counts: DetectionCounts,
    offered: usize,
    processed: usize,
    shed_frames: usize,
    dropped_frames: usize,
    backpressure_signals: usize,
    peak_queue: usize,
    consecutive_shed: usize,
    first_fault: Option<FaultKind>,
    /// Breaker accounting baseline (post-warm, so admission warm-up
    /// failures never trip the serving breaker).
    last_load_failures: usize,
    quarantine: Option<QuarantineReason>,
    quarantine_detail: String,
}

impl Session<'_> {
    /// Discards all outstanding work (queued + unproduced frames).
    fn drop_outstanding(&mut self) {
        self.dropped_frames += self.queue.len() + (self.frames.len() - self.next_frame);
        self.queue.clear();
        self.next_frame = self.frames.len();
    }

    /// Flight-recorder dump with the session's drift latch stamped in, when
    /// the engine carries a recorder.
    fn flight(&self) -> Option<FlightRecord> {
        self.engine.flight_record().map(|mut rec| {
            if let Some(d) = &self.drift {
                rec.drift_state = d.state();
            }
            rec
        })
    }

    fn report(&self) -> SessionReport {
        let drift_state = self.drift.as_ref().map_or(DriftState::Nominal, DriftDetector::state);
        // The dump is reserved for post-mortems: only sessions that ended
        // badly carry one, so healthy reports stay byte-identical whether
        // or not recorders were armed.
        let crashed = matches!(self.state, SessionState::Quarantined | SessionState::Shed)
            || drift_state != DriftState::Nominal;
        SessionReport {
            id: self.id,
            state: self.state,
            frames_total: self.frames.len(),
            processed: self.processed,
            shed_frames: self.shed_frames,
            dropped_frames: self.dropped_frames,
            backpressure_signals: self.backpressure_signals,
            peak_queue_depth: self.peak_queue,
            counts: self.counts,
            f1: self.counts.f1(),
            quarantine: self.quarantine,
            drift_events: self.drift.as_ref().map_or(0, |d| d.events().len()),
            drift_state,
            flight: if crashed { self.flight() } else { None },
        }
    }
}

/// Half-open probe bookkeeping.
#[derive(Debug, Clone, Copy)]
struct Probe {
    session: usize,
    base_attempts: usize,
    base_failures: usize,
}

/// A frame selected for dispatch this window.
struct Candidate {
    session: usize,
    frame: usize,
    arrival_ms: f64,
    slow: bool,
}

/// Shed tiers the SLO escalation ladder can climb: each tier halves the
/// effective frame deadline, so tier 3 serves at 1/8th of the configured
/// budget.
const MAX_SHED_TIER: u32 = 3;

/// Consecutive clean windows (no active page) before escalation steps one
/// tier back down.
const SLO_DEESCALATE_WINDOWS: u32 = 8;

/// SLO evaluation state attached by [`Gateway::with_slos`].
///
/// The recorder is fed a *synthetic* snapshot built from the gateway's own
/// run counters — never the process-global obs registry — so burn-rate
/// alerts are deterministic, byte-stable across thread counts, and
/// identical with the `obs` feature on or off.
struct SloRuntime {
    series: SeriesRecorder,
    engine: SloEngine,
    /// When set ([`Gateway::with_slo_escalation`]), a page tightens the
    /// effective deadline breaker-style instead of only reporting.
    escalate: bool,
    shed_tier: u32,
    clean_windows: u32,
}

/// The serving gateway. See the [module docs](self) for the full model.
///
/// # Examples
///
/// ```
/// use anole_core::gateway::{Gateway, GatewayConfig, SessionSpec};
/// use anole_core::{AnoleConfig, AnoleSystem};
/// use anole_data::{DatasetConfig, DrivingDataset};
/// use anole_tensor::Seed;
///
/// let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(1));
/// let system = AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(2))?;
/// let frames: Vec<_> =
///     dataset.split().test.iter().take(8).map(|&i| dataset.frame(i).clone()).collect();
///
/// let mut gateway = Gateway::new(&system, GatewayConfig::default())?;
/// gateway.admit(SessionSpec::new(frames.clone(), Seed(3)))?;
/// gateway.admit(SessionSpec::new(frames, Seed(4)))?;
/// let report = gateway.run();
/// assert_eq!(report.lost_sessions(), 0);
/// assert_eq!(report.completed, 2);
/// # Ok::<(), anole_core::AnoleError>(())
/// ```
pub struct Gateway<'a> {
    system: &'a AnoleSystem,
    config: GatewayConfig,
    sessions: Vec<Session<'a>>,
    /// Ready-queue index: ids of admitted, non-terminal sessions in
    /// admission order. Scheduler loops walk this instead of scanning the
    /// whole roster, so a window over a mostly-terminal 100k-session run
    /// costs O(live) rather than O(admitted). Ids whose session went
    /// terminal mid-window linger until the end-of-window compaction (every
    /// consumer re-checks `is_terminal`); `active_count` is exact at all
    /// times.
    active_ids: Vec<usize>,
    /// Exact count of admitted, non-terminal sessions (maintained on every
    /// state transition; never scans).
    active_count: usize,
    injector: Option<FaultInjector>,
    rejected: usize,
    breaker: BreakerState,
    breaker_failures: usize,
    breaker_trips: usize,
    breaker_probes: usize,
    breaker_opened_at_ms: f64,
    probe: Option<Probe>,
    session_errors: Vec<(usize, AnoleError)>,
    // Run-level counters (fields, not locals, so a re-entrant `run` on a
    // finished gateway reports consistently instead of zeroing them).
    windows: usize,
    hiccups: usize,
    stalls: usize,
    slow_frames: usize,
    overflows: usize,
    batched_calls: usize,
    batched_frames: usize,
    single_calls: usize,
    watchdog_shed: usize,
    now_ms: f64,
    latency_hist: FixedHistogram,
    depth_hist: FixedHistogram,
    // SLO runtime (`None` unless `with_slos` armed it) plus the cumulative
    // run counters its synthetic snapshots diff window-over-window.
    slo: Option<SloRuntime>,
    frames_processed_run: u64,
    frames_shed_run: u64,
    sessions_quarantined_run: u64,
    // Batched-scoring scratch.
    batch: Matrix,
    ws: Workspace,
    score_buf: Vec<f32>,
}

impl<'a> Gateway<'a> {
    /// Creates an idle gateway over a trained system.
    ///
    /// # Errors
    ///
    /// [`AnoleError::InvalidConfig`] if the configuration is invalid.
    pub fn new(system: &'a AnoleSystem, config: GatewayConfig) -> Result<Self, AnoleError> {
        config.validate()?;
        Ok(Self {
            system,
            config,
            sessions: Vec::new(),
            active_ids: Vec::new(),
            active_count: 0,
            injector: None,
            rejected: 0,
            breaker: BreakerState::Closed,
            breaker_failures: 0,
            breaker_trips: 0,
            breaker_probes: 0,
            breaker_opened_at_ms: 0.0,
            probe: None,
            session_errors: Vec::new(),
            windows: 0,
            hiccups: 0,
            stalls: 0,
            slow_frames: 0,
            overflows: 0,
            batched_calls: 0,
            batched_frames: 0,
            single_calls: 0,
            watchdog_shed: 0,
            now_ms: 0.0,
            latency_hist: FixedHistogram::new(anole_obs::LATENCY_MS_BOUNDS),
            depth_hist: FixedHistogram::new(QUEUE_DEPTH_BOUNDS),
            slo: None,
            frames_processed_run: 0,
            frames_shed_run: 0,
            sessions_quarantined_run: 0,
            batch: Matrix::default(),
            ws: Workspace::new(),
            score_buf: Vec::new(),
        })
    }

    /// Attaches a gateway-level fault plan. Only the gateway fault kinds
    /// ([`FaultKind::QueueOverflow`], [`FaultKind::SlowConsumer`],
    /// [`FaultKind::SessionStall`], [`FaultKind::SchedulerHiccup`]) are
    /// drawn from it; device-level faults belong on each
    /// [`SessionSpec::fault_plan`]. A zero-fault plan leaves the run
    /// bit-identical to no plan at all.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.injector = Some(plan.injector());
        self
    }

    /// Arms declarative SLOs: after every executed scheduling window the
    /// gateway captures its own run counters into a bounded
    /// [`SeriesRecorder`] and evaluates multi-window burn rates
    /// ([`SloEngine`]). Spec metric names resolve against the synthetic
    /// per-gateway series: counters `gateway.frames.processed`,
    /// `gateway.frames.shed`, `gateway.frames.total`,
    /// `gateway.sessions.quarantined`; histograms `gateway.step.latency_ms`
    /// and `gateway.queue.depth`. Fired alerts land in
    /// [`GatewayReport::slo_violations`]. Without
    /// [`Gateway::with_slo_escalation`] this is strictly passive: serving
    /// decisions and every pre-existing report field stay bit-identical to
    /// an unarmed run.
    pub fn with_slos(mut self, specs: Vec<SloSpec>) -> Self {
        let horizon = specs
            .iter()
            .map(|s| s.slow_windows)
            .max()
            .unwrap_or(anole_obs::DEFAULT_SLOW_WINDOWS)
            .max(64);
        self.slo = Some(SloRuntime {
            series: SeriesRecorder::new(horizon),
            engine: SloEngine::new(specs),
            escalate: false,
            shed_tier: 0,
            clean_windows: 0,
        });
        self
    }

    /// Turns pages into load-shedding pressure: each page climbs one shed
    /// tier (halving the effective frame deadline, up to 1/8th of the
    /// configured budget) and 8 clean windows climb back down. No-op unless
    /// [`Gateway::with_slos`] armed the SLO runtime first.
    pub fn with_slo_escalation(mut self) -> Self {
        if let Some(slo) = &mut self.slo {
            slo.escalate = true;
        }
        self
    }

    /// The configuration this gateway runs under.
    pub fn config(&self) -> &GatewayConfig {
        &self.config
    }

    /// Sessions admitted and not yet terminal. O(1): maintained on every
    /// session state transition, never recomputed by scanning the roster.
    pub fn active_sessions(&self) -> usize {
        self.active_count
    }

    /// Fleet-wide prefetcher counters summed over every admitted session's
    /// engine (terminal sessions included). Exposed as an accessor — not a
    /// report field — so the serialized [`GatewayReport`] stays byte-stable
    /// with runs recorded before predictive prefetch existed.
    pub fn fleet_prefetch_stats(&self) -> PrefetchStats {
        let mut total = PrefetchStats::default();
        for s in &self.sessions {
            let p = s.engine.prefetch_stats();
            total.issued += p.issued;
            total.hits += p.hits;
            total.wasted += p.wasted;
            total.late += p.late;
        }
        total
    }

    /// Fleet-wide cache statistics summed over every admitted session's
    /// engine. Like [`Gateway::fleet_prefetch_stats`], an accessor rather
    /// than a report field.
    pub fn fleet_cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in &self.sessions {
            total.merge(&s.engine.cache_stats());
        }
        total
    }

    /// Fleet-wide model-load attempts (each one a cold load priced into
    /// background time) summed over every admitted session's engine.
    pub fn fleet_load_attempts(&self) -> usize {
        self.sessions.iter().map(|s| s.engine.load_attempt_count()).sum()
    }

    /// Fleet-wide fallback-depth histogram (frames served at each tier)
    /// summed over every admitted session's engine.
    pub fn fleet_fallback_depths(&self) -> [usize; 4] {
        let mut total = [0usize; 4];
        for s in &self.sessions {
            for (t, d) in total.iter_mut().zip(s.engine.health_report().fallback_depths) {
                *t += d;
            }
        }
        total
    }

    /// The SLO runtime's time-series rings: one window per executed
    /// scheduling window, queryable for rates, deltas, and merged-histogram
    /// quantiles. `None` unless [`Gateway::with_slos`] armed it.
    pub fn slo_series(&self) -> Option<&SeriesRecorder> {
        self.slo.as_ref().map(|slo| &slo.series)
    }

    /// Current SLO escalation shed tier (0 = serving at the configured
    /// deadline). Always 0 without [`Gateway::with_slo_escalation`].
    pub fn slo_shed_tier(&self) -> u32 {
        self.slo.as_ref().map_or(0, |slo| slo.shed_tier)
    }

    /// Typed errors from quarantined sessions, drained in the order the
    /// sessions died. The gateway absorbs them (quarantine, not abort);
    /// callers that treat a typed error as fatal — the fleet lifecycle does
    /// — pull them from here after the run.
    pub fn take_session_errors(&mut self) -> Vec<(usize, AnoleError)> {
        std::mem::take(&mut self.session_errors)
    }

    /// Admits a session. See [`Gateway::admit_with_handler`].
    ///
    /// # Errors
    ///
    /// As [`Gateway::admit_with_handler`].
    pub fn admit(&mut self, spec: SessionSpec) -> Result<usize, AnoleError> {
        self.admit_inner(spec, None)
    }

    /// Admits a session with a per-frame handler and returns its id.
    ///
    /// # Errors
    ///
    /// * [`AnoleError::SessionRejected`] past the high-water mark.
    /// * [`AnoleError::InvalidFrame`] if a spec frame has the wrong feature
    ///   width (caught at admission, not mid-run).
    pub fn admit_with_handler(
        &mut self,
        spec: SessionSpec,
        handler: FrameHandler<'a>,
    ) -> Result<usize, AnoleError> {
        self.admit_inner(spec, Some(handler))
    }

    fn admit_inner(
        &mut self,
        spec: SessionSpec,
        handler: Option<FrameHandler<'a>>,
    ) -> Result<usize, AnoleError> {
        let active = self.active_sessions();
        if active >= self.config.max_sessions {
            self.rejected += 1;
            anole_obs::counter_add!("gateway.sessions.rejected", 1);
            return Err(AnoleError::SessionRejected { active, limit: self.config.max_sessions });
        }
        let width = self.system.decision().network().input_dim();
        if let Some(at) = spec.frames.iter().position(|f| f.features.len() != width) {
            return Err(AnoleError::InvalidFrame {
                detail: format!(
                    "session frame {at} has feature width {} but the decision model expects {width}",
                    spec.frames[at].features.len()
                ),
            });
        }
        let mut engine = self.system.online_engine(self.config.device, spec.seed);
        if let Some(pinned) = spec.pinned {
            engine = engine.with_pinned_fallback(pinned);
        }
        if let Some(plan) = spec.fault_plan {
            engine = engine.with_fault_injector(plan.injector());
        }
        if self.config.flight_recorder_frames > 0 {
            engine = engine.with_flight_recorder(self.config.flight_recorder_frames);
        }
        if self.breaker != BreakerState::Closed {
            // Admitted into an open breaker: ride the fallback chain until
            // the fleet-wide probe succeeds.
            engine.set_loads_enabled(false);
        }
        if spec.warm {
            engine.warm(&(0..self.system.repository().len()).collect::<Vec<_>>());
        }
        let last_load_failures = engine.load_failure_count();
        let id = self.sessions.len();
        self.active_ids.push(id);
        self.active_count += 1;
        self.sessions.push(Session {
            id,
            state: SessionState::Admitted,
            engine,
            frames: spec.frames,
            next_frame: 0,
            queue: VecDeque::with_capacity(self.config.queue_capacity),
            next_arrival_ms: self.now_ms,
            busy_until_ms: self.now_ms,
            stalled_until_ms: self.now_ms,
            inject_panic: spec.inject_panic,
            handler,
            drift: spec.drift,
            counts: DetectionCounts::default(),
            offered: 0,
            processed: 0,
            shed_frames: 0,
            dropped_frames: 0,
            backpressure_signals: 0,
            peak_queue: 0,
            consecutive_shed: 0,
            first_fault: None,
            last_load_failures,
            quarantine: None,
            quarantine_detail: String::new(),
        });
        anole_obs::counter_add!("gateway.sessions.admitted", 1);
        Ok(id)
    }

    /// Effective window watchdog for the admitted roster.
    fn effective_max_windows(&self) -> usize {
        if self.config.max_windows > 0 {
            return self.config.max_windows;
        }
        let longest = self.sessions.iter().map(|s| s.frames.len()).max().unwrap_or(0);
        longest.saturating_mul(64).max(4096)
    }

    /// Runs every admitted session to a terminal state and reports.
    ///
    /// The scheduler advances virtual time window by window: producers
    /// enqueue due frames (pausing under backpressure), over-deadline
    /// frames are shed, ready frames are stacked into one batched decision
    /// forward (or stepped per-session below `batch_min`), and the circuit
    /// breaker arbitrates model loads. The loop always terminates: total
    /// service work is finite and the window watchdog force-sheds
    /// stragglers, so `report.lost_sessions() == 0` holds structurally.
    pub fn run(&mut self) -> GatewayReport {
        let cfg = self.config;
        let max_windows = self.effective_max_windows();
        let model_count = self.system.repository().len();

        while self.active_count > 0 {
            if self.windows >= max_windows {
                for &idx in &self.active_ids {
                    let s = &mut self.sessions[idx];
                    if !s.state.is_terminal() {
                        s.drop_outstanding();
                        s.state = SessionState::Shed;
                        self.active_count -= 1;
                        self.watchdog_shed += 1;
                        anole_obs::counter_add!("gateway.sessions.watchdog_shed", 1);
                    }
                }
                self.active_ids.clear();
                break;
            }
            self.windows += 1;
            let now = self.now_ms;
            let deadline_ms = self.effective_deadline();
            anole_obs::gauge_set!("gateway.sessions.active", self.active_sessions() as f64);

            // An injected scheduler hiccup skips this whole window: nothing
            // is produced or dispatched, but virtual time still advances —
            // queued frames age toward their deadlines.
            if self.injector.as_mut().is_some_and(FaultInjector::scheduler_hiccups) {
                self.hiccups += 1;
                anole_obs::counter_add!("gateway.faults.scheduler_hiccup", 1);
                self.now_ms += cfg.window_ms;
                continue;
            }

            // ---- Production: enqueue due frames, session-id order (the
            // ready-queue index holds live ids in admission order). ----
            for &idx in &self.active_ids {
                let s = &mut self.sessions[idx];
                if s.state.is_terminal() {
                    continue;
                }
                while s.next_frame < s.frames.len() && s.next_arrival_ms <= now {
                    if s.queue.len() >= cfg.queue_capacity {
                        let forced =
                            self.injector.as_mut().is_some_and(FaultInjector::queue_overflows);
                        if forced {
                            // Injected overflow: the bounded queue holds its
                            // bound by dropping the oldest frame.
                            s.queue.pop_front();
                            s.dropped_frames += 1;
                            self.overflows += 1;
                            s.first_fault.get_or_insert(FaultKind::QueueOverflow);
                            anole_obs::counter_add!("gateway.faults.queue_overflow", 1);
                        } else {
                            // Backpressure: the producer pauses until the
                            // consumer drains; the frame keeps its nominal
                            // arrival and ages toward its deadline.
                            s.backpressure_signals += 1;
                            anole_obs::counter_add!("gateway.backpressure.signals", 1);
                            break;
                        }
                    }
                    s.queue.push_back((s.next_frame, s.next_arrival_ms));
                    s.offered += 1;
                    s.next_frame += 1;
                    s.next_arrival_ms += cfg.frame_interval_ms;
                    s.peak_queue = s.peak_queue.max(s.queue.len());
                }
                if s.state == SessionState::Admitted && s.offered > 0 {
                    s.state = SessionState::Active;
                }
                self.depth_hist.record(s.queue.len() as f64);
                anole_obs::histogram_record!(
                    "gateway.queue.depth",
                    QUEUE_DEPTH_BOUNDS,
                    s.queue.len() as f64
                );
            }

            // ---- Shedding + dispatch selection, session-id order. ----
            let mut candidates: Vec<Candidate> = Vec::new();
            for &idx in &self.active_ids {
                let s = &mut self.sessions[idx];
                if s.state.is_terminal() {
                    continue;
                }
                if deadline_ms.is_finite() {
                    while let Some(&(fidx, arrival)) = s.queue.front() {
                        if now - arrival <= deadline_ms {
                            break;
                        }
                        // Over budget: serve from last-good detections via
                        // the health ladder instead of stalling the fleet.
                        s.queue.pop_front();
                        let out = s.engine.replay_last_good();
                        s.counts.accumulate(&out.detections, &s.frames[fidx].truth);
                        s.shed_frames += 1;
                        s.consecutive_shed += 1;
                        self.frames_shed_run += 1;
                        anole_obs::counter_add!("gateway.frames.shed", 1);
                        if s.consecutive_shed >= cfg.shed_session_after {
                            // The session cannot keep up at all — shed it
                            // rather than let it starve the window forever.
                            s.drop_outstanding();
                            s.state = SessionState::Shed;
                            self.active_count -= 1;
                            anole_obs::counter_add!("gateway.sessions.shed", 1);
                            break;
                        }
                    }
                    if s.state.is_terminal() {
                        continue;
                    }
                }
                if s.queue.is_empty() || now < s.busy_until_ms || now < s.stalled_until_ms {
                    continue;
                }
                if self.injector.as_mut().is_some_and(FaultInjector::session_stalls) {
                    s.stalled_until_ms = now + cfg.stall_windows as f64 * cfg.window_ms;
                    s.first_fault.get_or_insert(FaultKind::SessionStall);
                    self.stalls += 1;
                    anole_obs::counter_add!("gateway.faults.session_stall", 1);
                    continue;
                }
                let slow = self.injector.as_mut().is_some_and(FaultInjector::consumer_slows);
                if slow {
                    s.first_fault.get_or_insert(FaultKind::SlowConsumer);
                    self.slow_frames += 1;
                    anole_obs::counter_add!("gateway.faults.slow_consumer", 1);
                }
                let (frame, arrival_ms) = s.queue.pop_front().expect("queue checked non-empty");
                candidates.push(Candidate { session: idx, frame, arrival_ms, slow });
            }

            // ---- Scoring: one cross-device batched forward when the
            // window gathered enough frames; per-row it is bit-identical to
            // each engine scoring its own frame. ----
            let mut scored = false;
            if candidates.len() >= cfg.batch_min {
                let width = self.system.decision().network().input_dim();
                self.batch.resize_scratch(candidates.len(), width);
                for (row, c) in candidates.iter().enumerate() {
                    let features = &self.sessions[c.session].frames[c.frame].features;
                    self.batch.row_mut(row).copy_from_slice(features);
                }
                match self.system.decision().suitability_ws(&self.batch, &mut self.ws) {
                    Ok(scores) => {
                        self.score_buf.clear();
                        for row in 0..scores.rows() {
                            self.score_buf.extend_from_slice(scores.row(row));
                        }
                        scored = true;
                        self.batched_calls += 1;
                        self.batched_frames += candidates.len();
                        anole_obs::counter_add!("gateway.batch.calls", 1);
                        anole_obs::counter_add!("gateway.batch.frames", candidates.len() as u64);
                    }
                    Err(_) => {
                        // A poisoned batch (non-finite features) falls back
                        // to per-session scoring, where the offending
                        // session earns its own typed error.
                        scored = false;
                    }
                }
            }

            // ---- Dispatch, isolation, accounting. ----
            for (ci, c) in candidates.iter().enumerate() {
                let s = &mut self.sessions[c.session];
                if s.state.is_terminal() {
                    // Can only happen if a prior candidate of this window
                    // quarantined the session; one frame per session per
                    // window makes that impossible, but stay defensive.
                    continue;
                }
                let scores_row: Option<&[f32]> = if scored {
                    Some(&self.score_buf[ci * model_count..(ci + 1) * model_count])
                } else {
                    self.single_calls += 1;
                    None
                };
                let panic_now = s.inject_panic;
                let sid = s.id;
                let frame = &s.frames[c.frame];
                let engine = &mut s.engine;
                let counts = &mut s.counts;
                let handler = s.handler.as_mut();
                let drift = s.drift.as_mut();
                let dispatched = catch_unwind(AssertUnwindSafe(
                    move || -> Result<StepOutcome, AnoleError> {
                        if panic_now {
                            panic!("injected session panic (session {sid})");
                        }
                        let out = match scores_row {
                            Some(row) => engine.step_with_scores(&frame.features, row)?,
                            None => engine.step(&frame.features)?,
                        };
                        counts.accumulate(&out.detections, &frame.truth);
                        if let Some(h) = handler {
                            h(frame, &out)?;
                        }
                        if let Some(d) = drift {
                            // The engine's top-1 routing confidence is the
                            // session-local drift signal.
                            d.observe(out.suitability)?;
                        }
                        Ok(out)
                    },
                ));
                match dispatched {
                    Err(_) => {
                        s.quarantine = Some(QuarantineReason::Panicked);
                        s.quarantine_detail = format!("panicked on frame {}", c.frame);
                        // The in-flight frame is lost too: keep
                        // processed + shed + dropped == frames_total.
                        s.dropped_frames += 1;
                        s.drop_outstanding();
                        s.state = SessionState::Quarantined;
                        self.active_count -= 1;
                        self.sessions_quarantined_run += 1;
                        anole_obs::counter_add!("gateway.sessions.quarantined", 1);
                    }
                    Ok(Err(error)) => {
                        s.quarantine = Some(QuarantineReason::EngineError);
                        s.quarantine_detail = error.to_string();
                        s.dropped_frames += 1;
                        s.drop_outstanding();
                        s.state = SessionState::Quarantined;
                        self.active_count -= 1;
                        self.sessions_quarantined_run += 1;
                        self.session_errors.push((sid, error));
                        anole_obs::counter_add!("gateway.sessions.quarantined", 1);
                    }
                    Ok(Ok(out)) => {
                        let service =
                            out.latency_ms as f64 * if c.slow { cfg.slow_factor } else { 1.0 };
                        let done_at = now + service;
                        s.busy_until_ms = done_at;
                        s.processed += 1;
                        s.consecutive_shed = 0;
                        self.frames_processed_run += 1;
                        self.latency_hist.record(done_at - c.arrival_ms);
                        anole_obs::histogram_record!(
                            "gateway.step.latency_ms",
                            anole_obs::LATENCY_MS_BOUNDS,
                            done_at - c.arrival_ms
                        );
                        anole_obs::counter_add!("gateway.frames.processed", 1);
                        let failures = s.engine.load_failure_count();
                        if failures > s.last_load_failures {
                            if self.breaker == BreakerState::Closed {
                                self.breaker_failures += failures - s.last_load_failures;
                            }
                            s.last_load_failures = failures;
                        }
                    }
                }
            }

            // ---- Terminal transitions. ----
            for &idx in &self.active_ids {
                let s = &mut self.sessions[idx];
                if s.state.is_terminal() {
                    continue;
                }
                if s.next_frame >= s.frames.len() {
                    if s.queue.is_empty() {
                        s.state = SessionState::Completed;
                        self.active_count -= 1;
                        anole_obs::counter_add!("gateway.sessions.completed", 1);
                    } else {
                        s.state = SessionState::Draining;
                    }
                }
            }

            self.tick_breaker(now);
            self.tick_slo(now);
            // Compact the ready-queue index: drop ids that went terminal
            // this window, preserving admission order for the survivors.
            if self.active_ids.len() > self.active_count {
                let sessions = &self.sessions;
                self.active_ids.retain(|&idx| !sessions[idx].state.is_terminal());
            }
            self.now_ms += cfg.window_ms;
        }

        self.report()
    }

    /// Advances the model-load circuit breaker by one window.
    ///
    /// Failures observed while closed accumulate toward the threshold;
    /// tripping suppresses loads fleet-wide. After the cooldown, exactly
    /// one session is re-armed as a half-open probe: a load failure on it
    /// re-opens the breaker, a clean attempted load closes it and re-arms
    /// the whole fleet. Runs with no load failures never enter this code's
    /// side-effectful paths, preserving zero-fault bit-identity.
    fn tick_breaker(&mut self, now: f64) {
        match self.breaker {
            BreakerState::Closed => {
                if self.breaker_failures >= self.config.breaker_threshold {
                    self.breaker = BreakerState::Open;
                    self.breaker_opened_at_ms = now;
                    self.breaker_trips += 1;
                    anole_obs::counter_add!("gateway.breaker.trips", 1);
                    for &idx in &self.active_ids {
                        let s = &mut self.sessions[idx];
                        if !s.state.is_terminal() {
                            s.engine.set_loads_enabled(false);
                        }
                    }
                }
            }
            BreakerState::Open => {
                if now - self.breaker_opened_at_ms >= self.config.breaker_cooldown_ms {
                    if let Some(idx) = self
                        .active_ids
                        .iter()
                        .copied()
                        .find(|&idx| !self.sessions[idx].state.is_terminal())
                    {
                        let s = &mut self.sessions[idx];
                        s.engine.set_loads_enabled(true);
                        self.probe = Some(Probe {
                            session: idx,
                            base_attempts: s.engine.load_attempt_count(),
                            base_failures: s.engine.load_failure_count(),
                        });
                        self.breaker = BreakerState::HalfOpen;
                        self.breaker_probes += 1;
                        anole_obs::counter_add!("gateway.breaker.probes", 1);
                    }
                    // No live session to probe: stay open, the run is over.
                }
            }
            BreakerState::HalfOpen => {
                let Some(probe) = self.probe else {
                    self.breaker = BreakerState::Open;
                    self.breaker_opened_at_ms = now;
                    return;
                };
                let s = &mut self.sessions[probe.session];
                let failures = s.engine.load_failure_count();
                let attempts = s.engine.load_attempt_count();
                if failures > probe.base_failures {
                    // Probe failed: back to open, cooldown restarts.
                    s.last_load_failures = failures;
                    s.engine.set_loads_enabled(false);
                    self.breaker = BreakerState::Open;
                    self.breaker_opened_at_ms = now;
                    self.probe = None;
                } else if attempts > probe.base_attempts {
                    // A load was attempted and none failed: close and
                    // re-arm the fleet.
                    self.breaker = BreakerState::Closed;
                    self.breaker_failures = 0;
                    self.probe = None;
                    for &idx in &self.active_ids {
                        let s2 = &mut self.sessions[idx];
                        if !s2.state.is_terminal() {
                            s2.engine.set_loads_enabled(true);
                        }
                    }
                } else if s.state.is_terminal() {
                    // Probe died before deciding: re-open and pick another
                    // after the next cooldown.
                    self.breaker = BreakerState::Open;
                    self.breaker_opened_at_ms = now;
                    self.probe = None;
                }
            }
        }
    }

    /// Frame deadline for the current window: the configured budget, halved
    /// once per SLO escalation shed tier. Identical to `deadline_ms` unless
    /// escalation is armed and a page has climbed the ladder, so unarmed
    /// (and passive-SLO) runs keep their exact shedding behaviour.
    fn effective_deadline(&self) -> f64 {
        match &self.slo {
            Some(slo) if slo.escalate && slo.shed_tier > 0 => {
                self.config.deadline_ms / f64::from(1u32 << slo.shed_tier.min(MAX_SHED_TIER))
            }
            _ => self.config.deadline_ms,
        }
    }

    /// Synthetic metrics snapshot over the gateway's own run counters —
    /// the SLO recorder's input. Deliberately *not* the process-global obs
    /// registry: these values are per-gateway, deterministic, and present
    /// with the `obs` feature off, so burn-rate alerts never vary with
    /// what else the process measured.
    fn slo_snapshot(&self) -> MetricsSnapshot {
        let processed = self.frames_processed_run;
        let shed = self.frames_shed_run;
        MetricsSnapshot {
            counters: vec![
                CounterSample { name: "gateway.frames.processed".to_string(), value: processed },
                CounterSample { name: "gateway.frames.shed".to_string(), value: shed },
                CounterSample {
                    name: "gateway.frames.total".to_string(),
                    value: processed + shed,
                },
                CounterSample {
                    name: "gateway.sessions.quarantined".to_string(),
                    value: self.sessions_quarantined_run,
                },
            ],
            gauges: vec![GaugeSample {
                name: "gateway.sessions.active".to_string(),
                value: self.active_count as f64,
            }],
            histograms: vec![
                HistogramSample {
                    name: "gateway.queue.depth".to_string(),
                    histogram: self.depth_hist.clone(),
                },
                HistogramSample {
                    name: "gateway.step.latency_ms".to_string(),
                    histogram: self.latency_hist.clone(),
                },
            ],
            ..MetricsSnapshot::default()
        }
    }

    /// Captures this window into the SLO time series and evaluates burn
    /// rates. Hiccup windows skip this (with the rest of the window), so
    /// one recorder window == one executed scheduling window. With
    /// escalation armed, each fired page climbs one shed tier and
    /// [`SLO_DEESCALATE_WINDOWS`] page-free windows climb back down.
    fn tick_slo(&mut self, now: f64) {
        let Some(mut slo) = self.slo.take() else {
            return;
        };
        let snap = self.slo_snapshot();
        slo.series.capture(now as u64, &snap);
        let fired = slo.engine.evaluate(&slo.series);
        let pages = fired.iter().filter(|a| a.severity == AlertSeverity::Page).count();
        let warns = fired.len() - pages;
        if pages > 0 {
            anole_obs::counter_add!("gateway.slo.pages", pages as u64);
        }
        if warns > 0 {
            anole_obs::counter_add!("gateway.slo.warns", warns as u64);
        }
        if slo.escalate {
            if pages > 0 {
                slo.shed_tier = (slo.shed_tier + 1).min(MAX_SHED_TIER);
                slo.clean_windows = 0;
                anole_obs::counter_add!("gateway.slo.escalations", 1);
            } else if slo.shed_tier > 0 && !slo.engine.page_active() {
                slo.clean_windows += 1;
                if slo.clean_windows >= SLO_DEESCALATE_WINDOWS {
                    slo.shed_tier -= 1;
                    slo.clean_windows = 0;
                }
            }
            anole_obs::gauge_set!("gateway.slo.shed_tier", f64::from(slo.shed_tier));
        }
        self.slo = Some(slo);
    }

    /// Builds the deterministic run report from current state.
    fn report(&self) -> GatewayReport {
        let sessions: Vec<SessionReport> = self.sessions.iter().map(Session::report).collect();
        let quarantined = self
            .sessions
            .iter()
            .filter(|s| s.state == SessionState::Quarantined)
            .map(|s| QuarantineRecord {
                session: s.id,
                reason: s.quarantine.unwrap_or(QuarantineReason::Panicked),
                first_fault: s.first_fault,
                detail: s.quarantine_detail.clone(),
                flight: s.flight(),
            })
            .collect();
        GatewayReport {
            admitted: self.sessions.len(),
            rejected: self.rejected,
            completed: sessions.iter().filter(|s| s.state == SessionState::Completed).count(),
            shed_sessions: sessions.iter().filter(|s| s.state == SessionState::Shed).count(),
            quarantined,
            frames_offered: self.sessions.iter().map(|s| s.offered).sum(),
            frames_processed: self.sessions.iter().map(|s| s.processed).sum(),
            frames_shed: self.sessions.iter().map(|s| s.shed_frames).sum(),
            frames_dropped: self.sessions.iter().map(|s| s.dropped_frames).sum(),
            batched_calls: self.batched_calls,
            batched_frames: self.batched_frames,
            single_calls: self.single_calls,
            windows: self.windows,
            hiccups: self.hiccups,
            stalls: self.stalls,
            slow_frames: self.slow_frames,
            overflows: self.overflows,
            backpressure_signals: self.sessions.iter().map(|s| s.backpressure_signals).sum(),
            breaker_trips: self.breaker_trips,
            breaker_probes: self.breaker_probes,
            breaker_state: self.breaker,
            watchdog_shed: self.watchdog_shed,
            peak_queue_depth: self.sessions.iter().map(|s| s.peak_queue).max().unwrap_or(0),
            pressure_evictions: self
                .sessions
                .iter()
                .map(|s| s.engine.pressure_evicted().len() as u64)
                .sum(),
            step_latency_p50_ms: self.latency_hist.quantile(0.5),
            step_latency_p95_ms: self.latency_hist.quantile(0.95),
            step_latency_p99_ms: self.latency_hist.quantile(0.99),
            sim_duration_ms: self.now_ms,
            slo_violations: self.slo.as_ref().map_or_else(Vec::new, |s| s.engine.alerts().to_vec()),
            sessions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AnoleConfig;
    use anole_data::{DatasetConfig, DrivingDataset};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn world() -> (DrivingDataset, AnoleSystem) {
        let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(401));
        let system = AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(402)).unwrap();
        (dataset, system)
    }

    fn test_frames(dataset: &DrivingDataset, n: usize) -> Vec<Frame> {
        dataset.split().test.iter().take(n).map(|&i| dataset.frame(i).clone()).collect()
    }

    /// Fleet-style config: lossless (no deadline, no session shedding).
    fn lossless() -> GatewayConfig {
        GatewayConfig {
            deadline_ms: f64::INFINITY,
            shed_session_after: usize::MAX,
            ..GatewayConfig::default()
        }
    }

    #[test]
    fn batched_sessions_match_sequential_engines_bit_for_bit() {
        let (dataset, system) = world();
        let frames = test_frames(&dataset, 12);
        // Three sessions through the gateway, outcomes recorded by handler.
        let outcomes: Vec<Rc<RefCell<Vec<StepOutcome>>>> =
            (0..3).map(|_| Rc::new(RefCell::new(Vec::new()))).collect();
        let mut gateway =
            Gateway::new(&system, GatewayConfig { batch_min: 1, ..lossless() }).unwrap();
        for (i, sink) in outcomes.iter().enumerate() {
            let sink = Rc::clone(sink);
            gateway
                .admit_with_handler(
                    SessionSpec::new(frames.clone(), Seed(500 + i as u64)),
                    Box::new(move |_, out| {
                        sink.borrow_mut().push(out.clone());
                        Ok(())
                    }),
                )
                .unwrap();
        }
        let report = gateway.run();
        assert_eq!(report.lost_sessions(), 0);
        assert_eq!(report.completed, 3);
        assert!(report.batched_calls > 0, "batch_min=1 must batch every window");
        assert_eq!(report.single_calls, 0);

        // The same frames through bare engines, one step at a time.
        for (i, sink) in outcomes.iter().enumerate() {
            let mut engine =
                system.online_engine(DeviceKind::JetsonTx2Nx, Seed(500 + i as u64));
            engine.warm(&(0..system.repository().len()).collect::<Vec<_>>());
            let expected: Vec<StepOutcome> =
                frames.iter().map(|f| engine.step(&f.features).unwrap()).collect();
            assert_eq!(*sink.borrow(), expected, "session {i} diverged from its bare engine");
            assert_eq!(report.sessions[i].processed, frames.len());
        }
    }

    #[test]
    fn per_session_drift_detectors_report_without_perturbing_serving() {
        let (dataset, system) = world();
        let frames = test_frames(&dataset, 16);

        let mut plain = Gateway::new(&system, lossless()).unwrap();
        plain.admit(SessionSpec::new(frames.clone(), Seed(601))).unwrap();
        let plain_report = plain.run();

        // A floor no confidence can reach: the detector latches on the
        // first window and emits exactly one episode.
        let mut hot = Gateway::new(&system, lossless()).unwrap();
        hot.admit(
            SessionSpec::new(frames.clone(), Seed(601))
                .with_drift_detector(DriftDetector::new(2, 2.0)),
        )
        .unwrap();
        let hot_report = hot.run();
        assert_eq!(hot_report.sessions[0].drift_state, DriftState::Drifting);
        assert_eq!(hot_report.sessions[0].drift_events, 1);
        assert_eq!(hot_report.fleet_drift_events(), 1);
        // Observation is passive: serving outcomes are untouched.
        assert_eq!(hot_report.sessions[0].counts, plain_report.sessions[0].counts);
        assert_eq!(hot_report.sessions[0].processed, plain_report.sessions[0].processed);

        // A floor below any confidence: the detector never latches and the
        // whole report is bit-identical to running without one.
        let mut calm = Gateway::new(&system, lossless()).unwrap();
        calm.admit(
            SessionSpec::new(frames, Seed(601)).with_drift_detector(DriftDetector::new(2, -1.0)),
        )
        .unwrap();
        assert_eq!(calm.run(), plain_report);
    }

    #[test]
    fn admission_control_rejects_past_high_water_mark() {
        let (dataset, system) = world();
        let frames = test_frames(&dataset, 2);
        let mut gateway =
            Gateway::new(&system, GatewayConfig { max_sessions: 2, ..lossless() }).unwrap();
        gateway.admit(SessionSpec::new(frames.clone(), Seed(1))).unwrap();
        gateway.admit(SessionSpec::new(frames.clone(), Seed(2))).unwrap();
        let err = gateway.admit(SessionSpec::new(frames.clone(), Seed(3))).unwrap_err();
        assert!(
            matches!(err, AnoleError::SessionRejected { active: 2, limit: 2 }),
            "{err}"
        );
        let report = gateway.run();
        assert_eq!(report.rejected, 1);
        assert_eq!(report.admitted, 2);
        // Terminal sessions free their slots: a finished gateway admits again.
        gateway.admit(SessionSpec::new(frames, Seed(4))).unwrap();
    }

    #[test]
    fn wrong_width_frames_are_rejected_at_admission() {
        let (dataset, system) = world();
        let mut frames = test_frames(&dataset, 3);
        frames[1].features.push(0.0);
        let mut gateway = Gateway::new(&system, lossless()).unwrap();
        let err = gateway.admit(SessionSpec::new(frames, Seed(1))).unwrap_err();
        assert!(matches!(err, AnoleError::InvalidFrame { .. }), "{err}");
    }

    #[test]
    fn deadline_shedding_serves_late_frames_from_replay() {
        let (dataset, system) = world();
        let frames = test_frames(&dataset, 30);
        // A consumer slowed 20× against a 1 ms deadline: frames pile up in
        // the queue and age out. Session shedding stays off so the run
        // still drains everything frame-by-frame.
        let config = GatewayConfig {
            deadline_ms: 1.0,
            shed_session_after: usize::MAX,
            slow_factor: 20.0,
            ..GatewayConfig::default()
        };
        let mut gateway = Gateway::new(&system, config)
            .unwrap()
            .with_fault_plan(FaultPlan::new(Seed(77)).with_slow_consumer_rate(1.0));
        gateway.admit(SessionSpec::new(frames.clone(), Seed(7))).unwrap();
        let report = gateway.run();
        assert_eq!(report.lost_sessions(), 0);
        assert!(report.frames_shed > 0, "nothing shed: {report:?}");
        assert_eq!(
            report.frames_processed + report.frames_shed,
            frames.len(),
            "every offered frame is either processed or shed"
        );
        assert!(report.sessions[0].state.is_terminal());
    }

    #[test]
    fn hopeless_sessions_are_shed_whole() {
        let (dataset, system) = world();
        let frames = test_frames(&dataset, 40);
        let config = GatewayConfig {
            deadline_ms: 1.0,
            shed_session_after: 3,
            slow_factor: 20.0,
            ..GatewayConfig::default()
        };
        let mut gateway = Gateway::new(&system, config)
            .unwrap()
            .with_fault_plan(FaultPlan::new(Seed(88)).with_slow_consumer_rate(1.0));
        gateway.admit(SessionSpec::new(frames, Seed(8))).unwrap();
        let report = gateway.run();
        assert_eq!(report.lost_sessions(), 0);
        assert_eq!(report.shed_sessions, 1);
        assert_eq!(report.sessions[0].state, SessionState::Shed);
        assert!(report.sessions[0].dropped_frames > 0);
    }

    #[test]
    fn panic_isolation_quarantines_only_the_offender() {
        let (dataset, system) = world();
        let frames = test_frames(&dataset, 6);
        let mut gateway = Gateway::new(&system, lossless()).unwrap();
        gateway.admit(SessionSpec::new(frames.clone(), Seed(1))).unwrap();
        gateway
            .admit(SessionSpec {
                inject_panic: true,
                ..SessionSpec::new(frames.clone(), Seed(2))
            })
            .unwrap();
        gateway.admit(SessionSpec::new(frames.clone(), Seed(3))).unwrap();
        let report = gateway.run();
        assert_eq!(report.lost_sessions(), 0);
        assert_eq!(report.completed, 2);
        assert_eq!(report.quarantined.len(), 1);
        let record = &report.quarantined[0];
        assert_eq!(record.session, 1);
        assert_eq!(record.reason, QuarantineReason::Panicked);
        assert_eq!(report.sessions[1].state, SessionState::Quarantined);
        // The survivors served every frame.
        assert_eq!(report.sessions[0].processed, frames.len());
        assert_eq!(report.sessions[2].processed, frames.len());
        assert!(gateway.take_session_errors().is_empty());
    }

    #[test]
    fn breaker_trips_on_load_failure_bursts_and_fleet_rides_fallback() {
        let (dataset, system) = world();
        let frames = test_frames(&dataset, 40);
        // Cold caches + every load permanently failing: failures accumulate
        // fast, the breaker trips, and sessions ride their pinned fallback.
        let mut gateway = Gateway::new(
            &system,
            GatewayConfig { breaker_threshold: 3, breaker_cooldown_ms: 100.0, ..lossless() },
        )
        .unwrap();
        for i in 0..3 {
            gateway
                .admit(SessionSpec {
                    pinned: Some(0),
                    warm: false,
                    fault_plan: Some(
                        FaultPlan::new(Seed(900 + i)).with_permanent_load_rate(1.0),
                    ),
                    ..SessionSpec::new(frames.clone(), Seed(910 + i))
                })
                .unwrap();
        }
        let report = gateway.run();
        assert_eq!(report.lost_sessions(), 0);
        assert!(report.breaker_trips >= 1, "breaker never tripped: {report:?}");
        // Probes keep failing against a 100% failure rate, so the breaker
        // cannot end closed.
        assert_ne!(report.breaker_state, BreakerState::Closed);
        // Every frame was still served (fallback chain, not starvation).
        assert_eq!(report.frames_processed, 3 * frames.len());
    }

    #[test]
    fn breaker_recloses_after_transient_burst() {
        let (dataset, system) = world();
        let frames = test_frames(&dataset, 60);
        // A scheduled burst of permanent load faults early on, clean after:
        // the breaker trips, cools down, probes successfully, and recloses.
        let mut plan = FaultPlan::new(Seed(950));
        for frame in 0..4 {
            plan = plan.at(frame, FaultKind::PermanentLoadFailure);
        }
        // Pin the *last* repository model so the probe session's cold cache
        // keeps missing on the (usually different) top-ranked model and the
        // half-open probe actually attempts a load.
        let pinned = Some(system.repository().len() - 1);
        let mut gateway = Gateway::new(
            &system,
            GatewayConfig { breaker_threshold: 2, breaker_cooldown_ms: 66.0, ..lossless() },
        )
        .unwrap();
        gateway
            .admit(SessionSpec {
                pinned,
                warm: false,
                fault_plan: Some(plan),
                ..SessionSpec::new(frames.clone(), Seed(951))
            })
            .unwrap();
        gateway
            .admit(SessionSpec {
                pinned,
                warm: false,
                ..SessionSpec::new(frames, Seed(952))
            })
            .unwrap();
        let report = gateway.run();
        assert_eq!(report.lost_sessions(), 0);
        assert!(report.breaker_trips >= 1);
        assert!(report.breaker_probes >= 1);
        assert_eq!(report.breaker_state, BreakerState::Closed);
    }

    #[test]
    fn gateway_faults_inject_and_zero_fault_plan_is_identity() {
        let (dataset, system) = world();
        let frames = test_frames(&dataset, 25);
        let run = |plan: Option<FaultPlan>| {
            let mut gateway = Gateway::new(
                &system,
                GatewayConfig { queue_capacity: 2, ..lossless() },
            )
            .unwrap();
            if let Some(plan) = plan {
                gateway = gateway.with_fault_plan(plan);
            }
            for i in 0..4 {
                gateway.admit(SessionSpec::new(frames.clone(), Seed(700 + i))).unwrap();
            }
            gateway.run()
        };
        let plain = run(None);
        let zero = run(Some(FaultPlan::new(Seed(42))));
        assert_eq!(plain, zero, "a zero-fault plan must be a perfect no-op");

        let chaotic = run(Some(
            FaultPlan::new(Seed(43))
                .with_queue_overflow_rate(0.5)
                .with_slow_consumer_rate(0.3)
                .with_session_stall_rate(0.2)
                .with_scheduler_hiccup_rate(0.2),
        ));
        assert_eq!(chaotic.lost_sessions(), 0);
        assert!(chaotic.hiccups > 0);
        assert!(chaotic.stalls > 0);
        assert!(chaotic.slow_frames > 0);
        assert!(chaotic.windows > plain.windows, "stalls and hiccups stretch the run");
    }

    #[test]
    fn unbatched_run_matches_batched_run_per_session() {
        let (dataset, system) = world();
        let frames = test_frames(&dataset, 10);
        let run = |batch_min: usize| {
            let mut gateway =
                Gateway::new(&system, GatewayConfig { batch_min, ..lossless() }).unwrap();
            for i in 0..3 {
                gateway.admit(SessionSpec::new(frames.clone(), Seed(600 + i))).unwrap();
            }
            gateway.run()
        };
        let batched = run(1);
        let single = run(usize::MAX);
        assert!(batched.batched_calls > 0 && batched.single_calls == 0);
        assert!(single.batched_calls == 0 && single.single_calls > 0);
        // Scoring path is the only difference; everything observable about
        // the sessions is bit-identical.
        assert_eq!(batched.sessions, single.sessions);
    }

    #[test]
    fn watchdog_force_sheds_a_permanently_stalled_fleet() {
        let (dataset, system) = world();
        let frames = test_frames(&dataset, 5);
        // Stall on every draw: no session ever becomes eligible.
        let mut gateway = Gateway::new(
            &system,
            GatewayConfig { max_windows: 50, ..lossless() },
        )
        .unwrap()
        .with_fault_plan(FaultPlan::new(Seed(55)).with_session_stall_rate(1.0));
        gateway.admit(SessionSpec::new(frames, Seed(56))).unwrap();
        let report = gateway.run();
        assert_eq!(report.lost_sessions(), 0);
        assert_eq!(report.watchdog_shed, 1);
        assert_eq!(report.sessions[0].state, SessionState::Shed);
        assert_eq!(report.windows, 50);
    }

    #[test]
    fn invalid_config_is_a_typed_error() {
        let (_dataset, system) = world();
        let err = Gateway::new(
            &system,
            GatewayConfig { window_ms: 0.0, ..GatewayConfig::default() },
        )
        .map(|_| ())
        .unwrap_err();
        assert!(matches!(err, AnoleError::InvalidConfig { what: "window_ms", .. }), "{err}");
        let err = Gateway::new(
            &system,
            GatewayConfig { slow_factor: 0.5, ..GatewayConfig::default() },
        )
        .map(|_| ())
        .unwrap_err();
        assert!(matches!(err, AnoleError::InvalidConfig { what: "slow_factor", .. }), "{err}");
    }

    #[test]
    fn engine_errors_quarantine_and_surface_via_side_channel() {
        let (dataset, system) = world();
        let frames = test_frames(&dataset, 4);
        let mut gateway = Gateway::new(&system, lossless()).unwrap();
        gateway.admit(SessionSpec::new(frames.clone(), Seed(1))).unwrap();
        // A handler error is indistinguishable from an engine error to the
        // scheduler: the session quarantines, the fleet keeps going.
        gateway
            .admit_with_handler(
                SessionSpec::new(frames.clone(), Seed(2)),
                Box::new(|_, _| {
                    Err(AnoleError::InvalidFrame { detail: "handler refused".into() })
                }),
            )
            .unwrap();
        let report = gateway.run();
        assert_eq!(report.lost_sessions(), 0);
        assert_eq!(report.completed, 1);
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].reason, QuarantineReason::EngineError);
        let errors = gateway.take_session_errors();
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].0, 1);
        assert!(matches!(errors[0].1, AnoleError::InvalidFrame { .. }));
        assert!(gateway.take_session_errors().is_empty(), "drained");
    }

    #[test]
    fn report_serializes_to_json() {
        let (dataset, system) = world();
        let frames = test_frames(&dataset, 3);
        let mut gateway = Gateway::new(&system, lossless()).unwrap();
        gateway.admit(SessionSpec::new(frames, Seed(1))).unwrap();
        let report = gateway.run();
        let json = serde_json::to_string(&report).unwrap();
        let back: GatewayReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }

    /// Shed-heavy config shared by the SLO tests: a consumer slowed 20×
    /// against a 1 ms deadline sheds a large fraction of frames, blowing a
    /// 0.1% shed budget by orders of magnitude every window.
    fn slo_world() -> (GatewayConfig, FaultPlan, Vec<SloSpec>) {
        let config = GatewayConfig {
            deadline_ms: 1.0,
            shed_session_after: usize::MAX,
            slow_factor: 20.0,
            ..GatewayConfig::default()
        };
        let plan = FaultPlan::new(Seed(77)).with_slow_consumer_rate(1.0);
        let specs = vec![SloSpec::error_ratio(
            "gateway-shed-ratio",
            "gateway.frames.shed",
            "gateway.frames.total",
            0.001,
        )
        .with_slow_windows(4)];
        (config, plan, specs)
    }

    #[test]
    fn slo_runtime_is_passive_and_alerts_are_byte_stable() {
        let (dataset, system) = world();
        let frames = test_frames(&dataset, 30);
        let run = |specs: Option<Vec<SloSpec>>| {
            let (config, plan, _) = slo_world();
            let mut gateway = Gateway::new(&system, config).unwrap().with_fault_plan(plan);
            if let Some(specs) = specs {
                gateway = gateway.with_slos(specs);
            }
            gateway.admit(SessionSpec::new(frames.clone(), Seed(7))).unwrap();
            gateway.run()
        };
        let plain = run(None);
        let instrumented = run(Some(slo_world().2));

        // The budget is blown every window, so both the fast page and (once
        // the long window fills) the slow warn fire.
        assert!(instrumented.slo_pages() >= 1, "no page: {:?}", instrumented.slo_violations);
        assert!(instrumented.slo_warns() >= 1, "no warn: {:?}", instrumented.slo_violations);
        // Without escalation the runtime is strictly passive: everything
        // except the alert list is bit-identical to the unarmed run, and the
        // unarmed report serializes without any SLO key at all.
        let mut stripped = instrumented.clone();
        stripped.slo_violations.clear();
        assert_eq!(stripped, plain);
        assert!(!serde_json::to_string(&plain).unwrap().contains("slo_violations"));
        // Deterministic: a rerun produces byte-identical alerts.
        let rerun = run(Some(slo_world().2));
        assert_eq!(
            serde_json::to_string(&rerun.slo_violations).unwrap(),
            serde_json::to_string(&instrumented.slo_violations).unwrap(),
        );
    }

    #[test]
    fn slo_escalation_climbs_shed_tiers_and_tightens_the_deadline() {
        let (dataset, system) = world();
        let frames = test_frames(&dataset, 30);
        let (config, plan, specs) = slo_world();
        let mut gateway = Gateway::new(&system, config)
            .unwrap()
            .with_fault_plan(plan)
            .with_slos(specs)
            .with_slo_escalation();
        gateway.admit(SessionSpec::new(frames, Seed(7))).unwrap();
        let report = gateway.run();
        assert_eq!(report.lost_sessions(), 0);
        assert!(report.slo_pages() >= 1);
        // Pages kept firing, so the ladder climbed and stayed up.
        assert!(gateway.slo_shed_tier() > 0, "tier: {}", gateway.slo_shed_tier());
        // The recorder saw every executed window and its rings answer
        // windowed queries.
        let series = gateway.slo_series().unwrap();
        assert_eq!(series.total_windows(), report.windows as u64);
        assert!(series.delta("gateway.frames.shed", report.windows) > 0);
    }

    #[test]
    fn flight_records_attach_to_crashed_sessions_only() {
        let (dataset, system) = world();
        let frames = test_frames(&dataset, 8);
        let config = GatewayConfig { flight_recorder_frames: 4, ..lossless() };
        let mut gateway = Gateway::new(&system, config).unwrap();
        gateway.admit(SessionSpec::new(frames.clone(), Seed(1))).unwrap();
        // Session 1 serves a scheduled sensor dropout at engine frame 2,
        // then its handler refuses frame 5: the quarantine dump must still
        // hold the fault frame.
        let mut served = 0usize;
        gateway
            .admit_with_handler(
                SessionSpec {
                    fault_plan: Some(
                        FaultPlan::new(Seed(2)).at(2, FaultKind::SensorDropout),
                    ),
                    ..SessionSpec::new(frames.clone(), Seed(2))
                },
                Box::new(move |_, _| {
                    served += 1;
                    if served > 5 {
                        Err(AnoleError::InvalidFrame { detail: "handler refused".into() })
                    } else {
                        Ok(())
                    }
                }),
            )
            .unwrap();
        let report = gateway.run();
        assert_eq!(report.quarantined.len(), 1);
        let flight = report.quarantined[0].flight.as_ref().expect("armed recorder dumps");
        assert_eq!(flight.capacity, 4);
        assert!(flight.frames_seen >= 5);
        assert!(
            flight.frames.iter().any(|f| f.faults > 0),
            "fault frame missing from dump: {}",
            flight.render()
        );
        assert_eq!(report.sessions[1].flight, report.quarantined[0].flight);
        // The healthy session recorded too, but its report omits the dump —
        // and the serialized report only carries the quarantined one's.
        assert_eq!(report.sessions[0].flight, None);
        let json = serde_json::to_string(&report).unwrap();
        assert_eq!(json.matches("\"flight\"").count(), 2);

        // Unarmed runs never dump, even for quarantined sessions.
        let mut plain = Gateway::new(&system, lossless()).unwrap();
        plain
            .admit(SessionSpec {
                inject_panic: true,
                ..SessionSpec::new(frames, Seed(3))
            })
            .unwrap();
        let plain_report = plain.run();
        assert_eq!(plain_report.quarantined[0].flight, None);
        assert!(!serde_json::to_string(&plain_report).unwrap().contains("flight"));
        let _ = plain.take_session_errors();
        let _ = gateway.take_session_errors();
    }
}
