//! Adaptive scene sampling (§IV-B): building balanced suitability sets
//! `Ψᵢ^sub` for decision-model training.

use anole_bandit::{RandomSampler, SamplingStrategy, ThompsonSampler};
use anole_data::{DrivingDataset, FrameRef};
use anole_detect::DetectionCounts;
use anole_tensor::{rng_from_seed, Seed};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::osp::{CompressedModel, ModelRepository};
use crate::{AnoleError, SamplingConfig};

/// The sampled suitability sets: training material for `M_decision`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuitabilitySets {
    /// Accepted `(frame, model id)` pairs: frame ∈ Ψᵢ^sub for model i (the
    /// id is the arm whose training set the frame was drawn from).
    pub samples: Vec<(FrameRef, usize)>,
    /// Per accepted frame, the full model-allocation vector `v^x` of §IV-C:
    /// `memberships[s][i]` is 1.0 when the frame also lies in Ψᵢ^sub of
    /// model i. Runs parallel to `samples`.
    pub memberships: Vec<Vec<f32>>,
    /// Accepted samples per model (|Ψᵢ^sub|).
    pub accepted_counts: Vec<usize>,
    /// Raw draws per model (|Sᵢ| in the paper's Fig. 3).
    pub draw_counts: Vec<usize>,
    /// Draws whose model failed the acceptance test.
    pub rejected: usize,
}

impl SuitabilitySets {
    /// Total accepted samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether nothing was accepted.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// Per-frame F1 of one model on a raw frame (also usable for frames outside
/// a dataset, e.g. freshly collected footage during repository expansion).
///
/// # Errors
///
/// Returns a width error if the frame's feature width is wrong.
pub fn frame_f1_of(
    model: &CompressedModel,
    frame: &anole_data::Frame,
    threshold: f32,
) -> Result<f32, AnoleError> {
    let pred = model.detect(&frame.features, threshold)?;
    let mut counts = DetectionCounts::default();
    counts.accumulate(&pred, &frame.truth);
    Ok(counts.f1())
}

/// The adaptive sampler wiring the Thompson scheduler to actual model tests.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveSampler {
    config: SamplingConfig,
    /// Detection threshold used in the per-frame acceptance test.
    threshold: f32,
}

impl AdaptiveSampler {
    /// Creates a sampler.
    pub fn new(config: SamplingConfig, threshold: f32) -> Self {
        Self { config, threshold }
    }

    /// Per-frame F1 of one model on one frame — the §IV-B "satisfactory
    /// prediction accuracy" test.
    ///
    /// # Errors
    ///
    /// Returns a width error if the dataset's feature width is wrong.
    pub fn frame_f1(
        &self,
        model: &CompressedModel,
        dataset: &DrivingDataset,
        r: FrameRef,
    ) -> Result<f32, AnoleError> {
        frame_f1_of(model, dataset.frame(r), self.threshold)
    }

    /// Collects suitability sets with the paper's Thompson-sampling
    /// procedure: each round picks the not-yet-well-sampled training set
    /// with the highest Beta draw, samples one frame from it, and tests only
    /// that model on the frame.
    ///
    /// Stops after `κ` draws or when every arm is well sampled.
    ///
    /// # Errors
    ///
    /// Returns a width error if the dataset's feature width is wrong.
    pub fn collect(
        &self,
        dataset: &DrivingDataset,
        repository: &ModelRepository,
        seed: Seed,
    ) -> Result<SuitabilitySets, AnoleError> {
        let _span = anole_obs::span!("osp.ass.collect");
        let t0 = anole_obs::now();
        let sizes = repository.training_set_sizes();
        let mut scheduler = ThompsonSampler::new(&sizes, self.config.theta);
        let mut rng = rng_from_seed(seed);
        let mut samples = Vec::new();
        let mut memberships = Vec::new();
        let mut accepted_counts = vec![0usize; repository.len()];
        let mut rejected = 0;
        let cap = self.config.max_draws_per_arm.max(1);

        for _ in 0..self.config.kappa {
            let Some(arm) = scheduler.select(&mut rng) else {
                break;
            };
            let model = repository.model(arm);
            let r = model.training_set[rng.gen_range(0..model.training_set.len())];
            if self.frame_f1(model, dataset, r)? > self.config.accept_f1 {
                samples.push((r, arm));
                let mut v = self.membership_vector(dataset, repository, r)?;
                // Weight the arm whose training set the frame came from: the
                // "home" specialist is the scene-stable signal, while the
                // other memberships carry the cross-model structure that
                // helps on unseen scenes.
                let peak = v.iter().cloned().fold(0.0f32, f32::max).max(1.0);
                v[arm] += 2.0 * peak;
                memberships.push(v);
                accepted_counts[arm] += 1;
            } else {
                rejected += 1;
            }
            scheduler.record_sampled(arm);
            if scheduler.counts()[arm] >= cap {
                scheduler.set_exhausted(arm);
            }
        }

        let rounds: usize = scheduler.counts().iter().sum();
        anole_obs::counter_add!("osp.ass.rounds", rounds as u64);
        anole_obs::counter_add!("osp.ass.accepted", samples.len() as u64);
        anole_obs::counter_add!("osp.ass.rejected", rejected as u64);
        let dt_ms = anole_obs::elapsed_ms(t0);
        anole_obs::gauge_set!("osp.ass.duration_ms", dt_ms);
        if dt_ms > 0.0 {
            anole_obs::gauge_set!("osp.ass.rounds_per_sec", rounds as f64 / (dt_ms / 1000.0));
        }
        Ok(SuitabilitySets {
            samples,
            memberships,
            accepted_counts,
            draw_counts: scheduler.counts().to_vec(),
            rejected,
        })
    }

    /// The model-allocation vector `v^x` of one frame: a 0/1 entry per
    /// repository model indicating whether the model predicts the frame
    /// well (§IV-C). Guaranteed non-zero for frames accepted by `collect`.
    ///
    /// # Errors
    ///
    /// Returns a width error if the dataset's feature width is wrong.
    pub fn membership_vector(
        &self,
        dataset: &DrivingDataset,
        repository: &ModelRepository,
        r: FrameRef,
    ) -> Result<Vec<f32>, AnoleError> {
        let mut v = vec![0.0f32; repository.len()];
        for model in repository.models() {
            let f1 = self.frame_f1(model, dataset, r)?;
            if f1 > self.config.accept_f1 {
                // Quality-weighted membership: the paper's v^x is binary;
                // weighting by per-frame F1 sharpens the target toward the
                // best-fitting models, which measurably improves top-1
                // routing in this reproduction (see EXPERIMENTS.md).
                v[model.id] = f1 * f1;
            }
        }
        Ok(v)
    }

    /// The random-sampling baseline of Fig. 3a: draw frames uniformly from
    /// the pooled training data and test *every* model on each; a frame
    /// joins Ψᵢ^sub of every model that predicts it well, so counts mirror
    /// each model's prevalence in the pool.
    ///
    /// # Errors
    ///
    /// Returns a width error if the dataset's feature width is wrong.
    pub fn collect_random(
        &self,
        dataset: &DrivingDataset,
        repository: &ModelRepository,
        pool: &[FrameRef],
        seed: Seed,
    ) -> Result<SuitabilitySets, AnoleError> {
        let mut rng = rng_from_seed(seed);
        // Track prevalence-weighted arm draws through the shared trait so
        // Fig. 3a uses the exact baseline from the bandit crate.
        let mut baseline = RandomSampler::new(&vec![1; repository.len().max(1)]);
        let mut samples = Vec::new();
        let mut memberships = Vec::new();
        let mut accepted_counts = vec![0usize; repository.len()];
        let mut rejected = 0;

        for _ in 0..self.config.kappa {
            if pool.is_empty() {
                break;
            }
            let r = pool[rng.gen_range(0..pool.len())];
            let v = self.membership_vector(dataset, repository, r)?;
            let mut any = false;
            for (id, &member) in v.iter().enumerate() {
                if member > 0.0 {
                    samples.push((r, id));
                    memberships.push(v.clone());
                    accepted_counts[id] += 1;
                    baseline.record_sampled(id);
                    any = true;
                }
            }
            if !any {
                rejected += 1;
            }
        }

        Ok(SuitabilitySets {
            samples,
            memberships,
            accepted_counts,
            draw_counts: baseline.counts().to_vec(),
            rejected,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::osp::SceneModel;
    use crate::{AnoleConfig, SceneModelConfig};
    use anole_data::DatasetConfig;

    fn setup() -> (DrivingDataset, ModelRepository, AnoleConfig) {
        let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(51));
        let split = dataset.split();
        let config = AnoleConfig::fast();
        let mut scfg = SceneModelConfig::default();
        scfg.train.epochs = 10;
        let scene = SceneModel::train(&dataset, &split.train, &scfg, Seed(52)).unwrap();
        let repo = ModelRepository::train(
            &dataset,
            &scene,
            &split.train,
            &split.val,
            &config,
            Seed(53),
        )
        .unwrap();
        (dataset, repo, config)
    }

    #[test]
    fn adaptive_collection_touches_every_model() {
        let (dataset, repo, config) = setup();
        let sampler = AdaptiveSampler::new(config.sampling, config.detector.threshold);
        let sets = sampler.collect(&dataset, &repo, Seed(54)).unwrap();
        assert!(!sets.is_empty());
        assert_eq!(sets.draw_counts.len(), repo.len());
        assert!(sets.draw_counts.iter().all(|&c| c > 0), "{:?}", sets.draw_counts);
        assert_eq!(
            sets.draw_counts.iter().sum::<usize>(),
            sets.len() + sets.rejected
        );
    }

    #[test]
    fn accepted_samples_really_pass_the_test() {
        let (dataset, repo, config) = setup();
        let sampler = AdaptiveSampler::new(config.sampling, config.detector.threshold);
        let sets = sampler.collect(&dataset, &repo, Seed(55)).unwrap();
        for &(r, id) in sets.samples.iter().take(50) {
            let f1 = sampler.frame_f1(repo.model(id), &dataset, r).unwrap();
            assert!(f1 > config.sampling.accept_f1);
        }
    }

    #[test]
    fn labels_are_in_range_and_frames_from_own_training_set() {
        let (dataset, repo, config) = setup();
        let _ = dataset;
        let sampler = AdaptiveSampler::new(config.sampling, config.detector.threshold);
        let sets = sampler.collect(&dataset, &repo, Seed(56)).unwrap();
        for &(r, id) in &sets.samples {
            assert!(id < repo.len());
            assert!(repo.model(id).training_set.contains(&r));
        }
    }

    #[test]
    fn random_collection_is_less_balanced_or_equal() {
        let (dataset, repo, config) = setup();
        let split = dataset.split();
        let sampler = AdaptiveSampler::new(config.sampling, config.detector.threshold);
        let adaptive = sampler.collect(&dataset, &repo, Seed(57)).unwrap();
        let random = sampler
            .collect_random(&dataset, &repo, &split.train, Seed(58))
            .unwrap();
        let b_adaptive = anole_bandit::balance_coefficient(&adaptive.accepted_counts);
        let b_random = anole_bandit::balance_coefficient(&random.accepted_counts);
        // Adaptive sampling exists to improve balance; allow equality for
        // tiny test repositories.
        assert!(
            b_adaptive >= b_random * 0.8,
            "adaptive {b_adaptive:.3} vs random {b_random:.3}"
        );
    }

    #[test]
    fn kappa_bounds_total_draws() {
        let (dataset, repo, mut config) = setup();
        config.sampling.kappa = 50;
        let sampler = AdaptiveSampler::new(config.sampling, config.detector.threshold);
        let sets = sampler.collect(&dataset, &repo, Seed(59)).unwrap();
        assert!(sets.draw_counts.iter().sum::<usize>() <= 50);
    }

    #[test]
    fn deterministic_given_seed() {
        let (dataset, repo, config) = setup();
        let sampler = AdaptiveSampler::new(config.sampling, config.detector.threshold);
        let a = sampler.collect(&dataset, &repo, Seed(60)).unwrap();
        let b = sampler.collect(&dataset, &repo, Seed(60)).unwrap();
        assert_eq!(a, b);
    }
}
