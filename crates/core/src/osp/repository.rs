//! Algorithm 1: compressed-model training with multi-level clustering.
//!
//! Scene embeddings (one mean embedding per semantic scene present in the
//! training data) are clustered with k = 2, 3, …; each cluster defines a
//! candidate scene group, a compressed detector is trained on the group's
//! frames, and the detector is accepted into the repository when its
//! validation F1 exceeds δ — until `n` models exist.

use std::collections::HashSet;

use anole_cluster::MultiLevelClustering;
use anole_data::{DrivingDataset, FrameRef};
use anole_detect::{threshold_probs, DetectionCounts};
use anole_nn::{
    sigmoid, Activation, Mlp, ModelProfile, Precision, QuantizedMlp, ReferenceModel, Trainer,
    Workspace,
};
use anole_tensor::{split_seed, Matrix, Seed};
use serde::{Deserialize, Serialize};

use crate::checkpoint::TrainRecovery;
use crate::osp::SceneModel;
use crate::{AnoleConfig, AnoleError};

/// Where in the multi-level sweep a model came from.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterOrigin {
    /// The k of the clustering level.
    pub k: usize,
    /// The cluster index within that level.
    pub cluster: usize,
    /// The semantic scenes (indices) grouped into this cluster.
    pub scenes: Vec<usize>,
}

/// One compressed scene-specific detector `Mᵢ`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompressedModel {
    /// Repository index.
    pub id: usize,
    /// The detector network.
    pub net: Mlp,
    /// Cost profile (YOLOv3-tiny reference scale).
    pub profile: ModelProfile,
    /// Validation F1 at acceptance time.
    pub validation_f1: f32,
    /// Provenance in the clustering sweep.
    pub origin: ClusterOrigin,
    /// The training set Γᵢ (frame references).
    pub training_set: Vec<FrameRef>,
    /// Int8 serving twin, present when the acceptance gate admitted this
    /// model for quantized serving
    /// ([`AnoleSystem::quantize_models`](crate::AnoleSystem::quantize_models)).
    /// When set, every detection path serves from it instead of `net`.
    /// Deserializes to `None` from repositories saved before quantization
    /// existed.
    #[serde(default)]
    pub quantized: Option<QuantizedMlp>,
}

impl CompressedModel {
    /// Per-cell detection probabilities for a batch of frames, served at
    /// [`CompressedModel::serving_precision`].
    ///
    /// # Errors
    ///
    /// Returns a width error if `x` does not match the feature dimension.
    pub fn detect_probs(&self, x: &Matrix) -> Result<Matrix, AnoleError> {
        match &self.quantized {
            Some(q) => Ok(sigmoid(&q.forward(x)?)),
            None => Ok(sigmoid(&self.net.forward(x)?)),
        }
    }

    /// Workspace-backed variant of [`CompressedModel::detect_probs`]:
    /// bit-identical probabilities with zero steady-state allocations once
    /// the workspace is warm.
    ///
    /// # Errors
    ///
    /// Returns a width error if `x` does not match the feature dimension.
    pub fn detect_probs_ws<'w>(
        &self,
        x: &Matrix,
        ws: &'w mut Workspace,
    ) -> Result<&'w Matrix, AnoleError> {
        match &self.quantized {
            Some(q) => Ok(q.predict_sigmoid_batch(x, ws)?),
            None => Ok(self.net.predict_sigmoid_batch(x, ws)?),
        }
    }

    /// The weight format this model currently serves at.
    pub fn serving_precision(&self) -> Precision {
        if self.quantized.is_some() {
            Precision::Int8
        } else {
            Precision::Fp32
        }
    }

    /// Bytes the serving weights hold resident: the int8 twin's footprint
    /// (~¼ of f32) when quantized, the f32 weights otherwise. This is the
    /// weight the slot cache charges against its byte budget.
    pub fn serving_bytes(&self) -> u64 {
        match &self.quantized {
            Some(q) => q.weight_bytes(),
            None => self.net.weight_bytes(),
        }
    }

    /// Thresholded detections for one frame.
    ///
    /// # Errors
    ///
    /// Returns a width error if the feature width is wrong.
    pub fn detect(&self, features: &[f32], threshold: f32) -> Result<Vec<bool>, AnoleError> {
        let probs = self.detect_probs(&Matrix::row_vector(features))?;
        Ok(threshold_probs(probs.row(0), threshold))
    }

    /// Frame-averaged F1 of this model on the referenced frames.
    ///
    /// # Errors
    ///
    /// Returns a width error if the dataset's feature width is wrong.
    pub fn evaluate_f1(
        &self,
        dataset: &DrivingDataset,
        refs: &[FrameRef],
        threshold: f32,
    ) -> Result<f32, AnoleError> {
        if refs.is_empty() {
            return Ok(0.0);
        }
        let probs = self.detect_probs(&dataset.features_matrix(refs))?;
        let mut counts = DetectionCounts::default();
        for (i, r) in refs.iter().enumerate() {
            let pred = threshold_probs(probs.row(i), threshold);
            counts.accumulate(&pred, &dataset.frame(*r).truth);
        }
        Ok(counts.f1())
    }
}

/// The repository of compressed models produced by Algorithm 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelRepository {
    models: Vec<CompressedModel>,
    /// Levels of the sweep that were examined (diagnostics).
    pub levels_examined: usize,
}

impl ModelRepository {
    /// Runs Algorithm 1.
    ///
    /// `train` and `val` are the 6:2:2 train/validation splits; `scene_model`
    /// must already be trained on `train`.
    ///
    /// Clusters that repeat an already-accepted scene grouping at a later k
    /// are skipped (they would duplicate a model); the paper's procedure
    /// implicitly avoids this by construction of its scene set.
    ///
    /// # Errors
    ///
    /// * [`AnoleError::EmptyRepository`] if no cluster validates above δ.
    /// * Training/clustering errors from the substrates.
    pub fn train(
        dataset: &DrivingDataset,
        scene_model: &SceneModel,
        train: &[FrameRef],
        val: &[FrameRef],
        config: &AnoleConfig,
        seed: Seed,
    ) -> Result<Self, AnoleError> {
        Self::train_with_recovery(dataset, scene_model, train, val, config, seed, None)
    }

    /// Runs Algorithm 1 with per-specialist crash recovery.
    ///
    /// With a [`TrainRecovery`], every trained candidate (model + validation
    /// F1) is checkpointed under its `(k, cluster)` coordinates as it passes
    /// the δ gate's evaluation, and candidates already checkpointed by an
    /// earlier, interrupted run are reloaded instead of retrained. Candidate
    /// seeds are keyed by the same coordinates, so a reloaded candidate is
    /// bit-identical to a retrained one and the resumed repository matches an
    /// uninterrupted run exactly.
    ///
    /// # Errors
    ///
    /// As [`ModelRepository::train`], plus [`AnoleError::Checkpoint`] on real
    /// checkpoint I/O failures (injected write faults are absorbed).
    pub fn train_with_recovery(
        dataset: &DrivingDataset,
        scene_model: &SceneModel,
        train: &[FrameRef],
        val: &[FrameRef],
        config: &AnoleConfig,
        seed: Seed,
        mut recovery: Option<&mut TrainRecovery>,
    ) -> Result<Self, AnoleError> {
        let _span = anole_obs::span!("osp.tcm.train");
        let t0 = anole_obs::now();
        let mut candidates_trained = 0usize;
        // Mean embedding per semantic scene class: the H_i of Algorithm 1.
        let class_count = scene_model.class_count();
        let x_train = dataset.features_matrix(train);
        let emb = scene_model.embed(&x_train)?;
        let train_scenes = dataset.scene_indices(train);
        let mut sums = Matrix::zeros(class_count, emb.cols());
        let mut counts = vec![0usize; class_count];
        for (i, scene) in train_scenes.iter().enumerate() {
            if let Some(class) = scene_model.class_of_semantic(*scene) {
                counts[class] += 1;
                for (s, &v) in sums.row_mut(class).iter_mut().zip(emb.row(i).iter()) {
                    *s += v;
                }
            }
        }
        #[allow(clippy::needless_range_loop)]
        for class in 0..class_count {
            if counts[class] > 0 {
                let inv = 1.0 / counts[class] as f32;
                sums.row_mut(class).iter_mut().for_each(|v| *v *= inv);
            }
        }

        // Pre-index train/val frames per scene class.
        let frames_per_class = |refs: &[FrameRef]| -> Vec<Vec<FrameRef>> {
            let mut per = vec![Vec::new(); class_count];
            for r in refs {
                let scene = dataset.clips()[r.clip].attributes.scene_index();
                if let Some(class) = scene_model.class_of_semantic(scene) {
                    per[class].push(*r);
                }
            }
            per
        };
        let train_per_class = frames_per_class(train);
        let val_per_class = frames_per_class(val);

        let max_k = if config.repository.max_k == 0 {
            class_count
        } else {
            config.repository.max_k.min(class_count)
        };

        let mut models = Vec::new();
        let mut accepted_groups: HashSet<Vec<usize>> = HashSet::new();
        let mut levels_examined = 0;

        let sweep = MultiLevelClustering::new(&sums, split_seed(seed, 0)).with_max_k(max_k);
        for level in sweep {
            if models.len() >= config.repository.target_models {
                break;
            }
            let level = level?;
            levels_examined += 1;

            // Describe this level's candidate clusters (dedup against groups
            // accepted at earlier levels; within one level groups are
            // necessarily distinct).
            struct Candidate {
                cluster: usize,
                scenes: Vec<usize>,
                train: Vec<FrameRef>,
                val: Vec<FrameRef>,
            }
            let mut candidates = Vec::new();
            for cluster in 0..level.k {
                let classes = level.fit.members_of(cluster);
                let mut scenes: Vec<usize> = classes
                    .iter()
                    .map(|&c| scene_model.semantic_scene_of(c))
                    .collect();
                scenes.sort_unstable();
                if accepted_groups.contains(&scenes) {
                    continue;
                }
                let train: Vec<FrameRef> = classes
                    .iter()
                    .flat_map(|&c| train_per_class[c].iter().copied())
                    .collect();
                let val: Vec<FrameRef> = classes
                    .iter()
                    .flat_map(|&c| val_per_class[c].iter().copied())
                    .collect();
                if train.len() < 8 || val.is_empty() {
                    continue;
                }
                candidates.push(Candidate {
                    cluster,
                    scenes,
                    train,
                    val,
                });
            }

            // Train the level's candidates in parallel, bounded by the global
            // [`anole_tensor::ParallelConfig`] rather than one thread per
            // candidate. Seeds are keyed by (k, cluster), not acceptance
            // order, and results are collected in cluster order, so the
            // output is identical to a sequential run for any thread count.
            let threshold = config.detector.threshold;
            let train_candidate = |c: &Candidate,
                                   ws: &mut Workspace|
             -> Result<(CompressedModel, f32), AnoleError> {
                let _span = anole_obs::span!("osp.tcm.train_candidate");
                anole_obs::counter_add!("osp.tcm.candidates_trained", 1);
                let model_seed = split_seed(seed, 100 + level.k as u64 * 131 + c.cluster as u64);
                let candidate = train_compressed(
                    dataset,
                    &c.train,
                    config,
                    0, // ids are assigned at acceptance time
                    ClusterOrigin {
                        k: level.k,
                        cluster: c.cluster,
                        scenes: c.scenes.clone(),
                    },
                    model_seed,
                    ws,
                )?;
                let f1 = candidate.evaluate_f1(dataset, &c.val, threshold)?;
                Ok((candidate, f1))
            };
            // Reload candidates checkpointed by an earlier, interrupted run
            // (main thread only); the fan-out below trains just the misses.
            let mut slots: Vec<Option<(CompressedModel, f32)>> =
                (0..candidates.len()).map(|_| None).collect();
            if let Some(rec) = recovery.as_mut() {
                for (slot, c) in slots.iter_mut().zip(&candidates) {
                    *slot = rec.load_specialist(level.k, c.cluster);
                }
            }
            let misses: Vec<usize> = slots
                .iter()
                .enumerate()
                .filter_map(|(i, s)| s.is_none().then_some(i))
                .collect();
            candidates_trained += misses.len();

            let threads = anole_tensor::parallel_config()
                .effective_threads()
                .clamp(1, misses.len().max(1));
            // Each worker reuses one training workspace across its whole
            // candidate share, so warm-up allocations happen once per worker
            // rather than once per candidate.
            let trained: Vec<(usize, Result<(CompressedModel, f32), AnoleError>)> =
                if threads <= 1 {
                    let mut ws = Workspace::new();
                    misses
                        .iter()
                        .map(|&i| (i, train_candidate(&candidates[i], &mut ws)))
                        .collect()
                } else {
                    let per_worker = misses.len().div_ceil(threads);
                    std::thread::scope(|scope| {
                        let train_candidate = &train_candidate;
                        let candidates = &candidates;
                        let handles: Vec<_> = misses
                            .chunks(per_worker)
                            .map(|chunk| {
                                scope.spawn(move || {
                                    let mut ws = Workspace::new();
                                    chunk
                                        .iter()
                                        .map(|&i| (i, train_candidate(&candidates[i], &mut ws)))
                                        .collect::<Vec<_>>()
                                })
                            })
                            .collect();
                        handles
                            .into_iter()
                            .flat_map(|h| h.join().expect("training thread panicked"))
                            .collect()
                    })
                };
            for (i, result) in trained {
                let pair = result?;
                if let Some(rec) = recovery.as_mut() {
                    rec.save_specialist(level.k, candidates[i].cluster, &pair)?;
                }
                slots[i] = Some(pair);
            }

            // Accept sequentially, in cluster order, until the target.
            for (candidate, f1) in slots.into_iter().flatten() {
                if models.len() >= config.repository.target_models {
                    break;
                }
                if f1 > config.repository.delta {
                    anole_obs::counter_add!("osp.tcm.candidates_accepted", 1);
                    accepted_groups.insert(candidate.origin.scenes.clone());
                    models.push(CompressedModel {
                        id: models.len(),
                        validation_f1: f1,
                        ..candidate
                    });
                }
            }
        }

        if models.is_empty() {
            return Err(AnoleError::EmptyRepository);
        }
        let dt_ms = anole_obs::elapsed_ms(t0);
        anole_obs::gauge_set!("osp.tcm.duration_ms", dt_ms);
        if dt_ms > 0.0 {
            anole_obs::gauge_set!(
                "osp.tcm.candidates_per_sec",
                candidates_trained as f64 / (dt_ms / 1000.0)
            );
        }
        Ok(Self {
            models,
            levels_examined,
        })
    }

    /// The accepted models, in id order.
    pub fn models(&self) -> &[CompressedModel] {
        &self.models
    }

    /// Mutable access for the quantization sweep (crate-internal: callers
    /// must keep `id` fields dense and in slot order).
    pub(crate) fn models_mut(&mut self) -> &mut [CompressedModel] {
        &mut self.models
    }

    /// Number of models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the repository is empty (never true for a trained one).
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Borrows model `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn model(&self, id: usize) -> &CompressedModel {
        &self.models[id]
    }

    /// Sizes of the training sets |Γᵢ|, used by adaptive sampling.
    pub fn training_set_sizes(&self) -> Vec<usize> {
        self.models.iter().map(|m| m.training_set.len()).collect()
    }

    /// Appends an externally trained specialist (online repository
    /// expansion, the §II case-3 remedy), assigning it the next id, which
    /// is returned.
    pub fn push(&mut self, mut model: CompressedModel) -> usize {
        let id = self.models.len();
        model.id = id;
        self.models.push(model);
        id
    }
}

fn train_compressed(
    dataset: &DrivingDataset,
    refs: &[FrameRef],
    config: &AnoleConfig,
    id: usize,
    origin: ClusterOrigin,
    seed: Seed,
    ws: &mut Workspace,
) -> Result<CompressedModel, AnoleError> {
    let x = dataset.features_matrix(refs);
    let y = dataset.truth_matrix(refs);
    let mut net = Mlp::builder(dataset.config().world.feature_dim)
        .hidden(config.detector.compressed_hidden, Activation::Relu)
        .output(dataset.config().world.grid.cells())
        .build(split_seed(seed, 0));
    let mut train_cfg = config.detector.train;
    train_cfg.pos_weight = config.detector.pos_weight;
    Trainer::new(train_cfg).fit_multilabel_ws(&mut net, &x, &y, split_seed(seed, 1), ws)?;
    let profile = ModelProfile::of_mlp(ReferenceModel::Yolov3Tiny, &net);
    Ok(CompressedModel {
        id,
        net,
        profile,
        validation_f1: 0.0,
        origin,
        training_set: refs.to_vec(),
        quantized: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use anole_data::DatasetConfig;
    use crate::SceneModelConfig;

    fn setup() -> (DrivingDataset, SceneModel, ModelRepository, AnoleConfig) {
        let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(41));
        let split = dataset.split();
        let config = AnoleConfig::fast();
        let mut scfg = SceneModelConfig::default();
        scfg.train.epochs = 10;
        let scene = SceneModel::train(&dataset, &split.train, &scfg, Seed(42)).unwrap();
        let repo = ModelRepository::train(
            &dataset,
            &scene,
            &split.train,
            &split.val,
            &config,
            Seed(43),
        )
        .unwrap();
        (dataset, scene, repo, config)
    }

    #[test]
    fn repository_is_populated_up_to_target() {
        let (_, _, repo, config) = setup();
        assert!(repo.len() >= 2, "only {} models", repo.len());
        assert!(repo.len() <= config.repository.target_models);
        assert!(repo.levels_examined >= 1);
    }

    #[test]
    fn accepted_models_beat_delta_on_validation() {
        let (_, _, repo, config) = setup();
        for m in repo.models() {
            assert!(
                m.validation_f1 > config.repository.delta,
                "model {} f1 {}",
                m.id,
                m.validation_f1
            );
        }
    }

    #[test]
    fn scene_groups_are_unique() {
        let (_, _, repo, _) = setup();
        let mut seen = HashSet::new();
        for m in repo.models() {
            assert!(seen.insert(m.origin.scenes.clone()), "duplicate group");
        }
    }

    #[test]
    fn models_are_specialists_on_their_own_clusters() {
        let (dataset, _, repo, config) = setup();
        let split = dataset.split();
        // A model should do at least as well on its own validation scenes as
        // the weakest model does there, and meaningfully better than random.
        for m in repo.models().iter().take(3) {
            let own_val: Vec<FrameRef> = split
                .val
                .iter()
                .copied()
                .filter(|r| {
                    m.origin
                        .scenes
                        .contains(&dataset.clips()[r.clip].attributes.scene_index())
                })
                .collect();
            let f1 = m
                .evaluate_f1(&dataset, &own_val, config.detector.threshold)
                .unwrap();
            assert!(f1 > 0.2, "model {} own-scene f1 {}", m.id, f1);
        }
    }

    #[test]
    fn ids_are_dense_and_training_sets_nonempty() {
        let (_, _, repo, _) = setup();
        for (i, m) in repo.models().iter().enumerate() {
            assert_eq!(m.id, i);
            assert!(!m.training_set.is_empty());
            assert_eq!(
                m.profile.reference,
                ReferenceModel::Yolov3Tiny,
                "compressed models carry the tiny reference profile"
            );
        }
        assert_eq!(repo.training_set_sizes().len(), repo.len());
    }

    #[test]
    fn impossible_delta_yields_empty_repository_error() {
        let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(44));
        let split = dataset.split();
        let mut config = AnoleConfig::fast();
        config.repository.delta = 0.999;
        let mut scfg = SceneModelConfig::default();
        scfg.train.epochs = 5;
        let scene = SceneModel::train(&dataset, &split.train, &scfg, Seed(45)).unwrap();
        let err = ModelRepository::train(
            &dataset,
            &scene,
            &split.train,
            &split.val,
            &config,
            Seed(46),
        )
        .unwrap_err();
        assert_eq!(err, AnoleError::EmptyRepository);
    }
}
