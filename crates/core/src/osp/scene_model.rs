//! The weakly-supervised scene encoder `M_scene` (paper §IV-A).
//!
//! Semantic scenes (attribute combinations) provide the labels; the trained
//! classifier's penultimate activations are the scene representation used
//! for clustering (Algorithm 1) and as the decision model's backbone.

use anole_data::{DrivingDataset, FrameRef};
use anole_detect::ConfusionMatrix;
use anole_nn::{Activation, Mlp, Trainer};
use anole_tensor::{Matrix, Seed};
use serde::{Deserialize, Serialize};

use crate::{AnoleError, SceneModelConfig};

/// The scene-representation model.
///
/// Wraps the classifier network together with the mapping from dense class
/// indices to semantic scene indices (only scenes present in the training
/// data get a class).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneModel {
    net: Mlp,
    /// `class → semantic scene index`.
    scene_of_class: Vec<usize>,
}

impl SceneModel {
    /// Trains `M_scene` on the referenced frames, using each frame's
    /// semantic scene as its label.
    ///
    /// # Errors
    ///
    /// * [`AnoleError::InsufficientData`] if fewer than two distinct
    ///   semantic scenes appear in `refs`.
    /// * Training errors surfaced from the network.
    pub fn train(
        dataset: &DrivingDataset,
        refs: &[FrameRef],
        config: &SceneModelConfig,
        seed: Seed,
    ) -> Result<Self, AnoleError> {
        let _span = anole_obs::span!("osp.scene.train");
        let t0 = anole_obs::now();
        anole_obs::counter_add!("osp.scene.frames", refs.len() as u64);
        let semantic = dataset.scene_indices(refs);
        let mut present: Vec<usize> = semantic.clone();
        present.sort_unstable();
        present.dedup();
        if present.len() < 2 {
            return Err(AnoleError::InsufficientData {
                stage: "scene model",
                detail: format!("{} distinct semantic scenes", present.len()),
            });
        }

        let labels: Vec<usize> = semantic
            .iter()
            .map(|s| present.binary_search(s).expect("present scene"))
            .collect();
        let x = dataset.features_matrix(refs);

        let mut net = Mlp::builder(dataset.config().world.feature_dim)
            .hidden(config.hidden, Activation::Relu)
            .hidden(config.embedding, Activation::Tanh)
            .output(present.len())
            .build(anole_tensor::split_seed(seed, 0));
        Trainer::new(config.train).fit_classifier(
            &mut net,
            &x,
            &labels,
            anole_tensor::split_seed(seed, 1),
        )?;

        let dt_ms = anole_obs::elapsed_ms(t0);
        anole_obs::gauge_set!("osp.scene.duration_ms", dt_ms);
        if dt_ms > 0.0 {
            anole_obs::gauge_set!(
                "osp.scene.frames_per_sec",
                refs.len() as f64 / (dt_ms / 1000.0)
            );
        }
        Ok(Self {
            net,
            scene_of_class: present,
        })
    }

    /// Number of scene classes the encoder distinguishes.
    pub fn class_count(&self) -> usize {
        self.scene_of_class.len()
    }

    /// Semantic scene index of a dense class.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn semantic_scene_of(&self, class: usize) -> usize {
        self.scene_of_class[class]
    }

    /// Dense class of a semantic scene, if it was present at training time.
    pub fn class_of_semantic(&self, scene: usize) -> Option<usize> {
        self.scene_of_class.binary_search(&scene).ok()
    }

    /// The underlying network.
    pub fn network(&self) -> &Mlp {
        &self.net
    }

    /// Width of the scene embedding.
    pub fn embedding_dim(&self) -> usize {
        self.net.embedding_dim()
    }

    /// Embeds samples into the scene-representation space.
    ///
    /// # Errors
    ///
    /// Returns a width error if `x` does not match the feature dimension.
    pub fn embed(&self, x: &Matrix) -> Result<Matrix, AnoleError> {
        Ok(self.net.embed(x)?)
    }

    /// Predicts dense scene classes.
    ///
    /// # Errors
    ///
    /// Returns a width error if `x` does not match the feature dimension.
    pub fn classify(&self, x: &Matrix) -> Result<Vec<usize>, AnoleError> {
        Ok(self.net.classify(x)?)
    }

    /// Scene-classification confusion matrix on a labelled set (Fig. 6a).
    /// Frames whose semantic scene was absent at training time are skipped.
    ///
    /// # Errors
    ///
    /// Returns a width error if features do not match the input dimension.
    pub fn confusion(
        &self,
        dataset: &DrivingDataset,
        refs: &[FrameRef],
    ) -> Result<ConfusionMatrix, AnoleError> {
        let mut cm = ConfusionMatrix::new(self.class_count());
        let kept: Vec<FrameRef> = refs
            .iter()
            .copied()
            .filter(|r| {
                self.class_of_semantic(dataset.clips()[r.clip].attributes.scene_index())
                    .is_some()
            })
            .collect();
        if kept.is_empty() {
            return Ok(cm);
        }
        let x = dataset.features_matrix(&kept);
        let pred = self.classify(&x)?;
        for (r, p) in kept.iter().zip(pred) {
            let truth = self
                .class_of_semantic(dataset.clips()[r.clip].attributes.scene_index())
                .expect("filtered to present scenes");
            cm.record(truth, p);
        }
        Ok(cm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anole_data::DatasetConfig;

    fn setup() -> (DrivingDataset, SceneModel) {
        let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(31));
        let split = dataset.split();
        let mut cfg = SceneModelConfig::default();
        cfg.train.epochs = 15;
        let model = SceneModel::train(&dataset, &split.train, &cfg, Seed(32)).unwrap();
        (dataset, model)
    }

    #[test]
    fn learns_to_separate_scenes() {
        let (dataset, model) = setup();
        let split = dataset.split();
        let cm = model.confusion(&dataset, &split.val).unwrap();
        assert!(
            cm.accuracy() > 0.6,
            "scene validation accuracy {:.3}",
            cm.accuracy()
        );
    }

    #[test]
    fn class_mapping_is_consistent() {
        let (_, model) = setup();
        for class in 0..model.class_count() {
            let scene = model.semantic_scene_of(class);
            assert_eq!(model.class_of_semantic(scene), Some(class));
        }
    }

    #[test]
    fn embeddings_have_configured_width() {
        let (dataset, model) = setup();
        let split = dataset.split();
        let x = dataset.features_matrix(&split.val[..4.min(split.val.len())]);
        let emb = model.embed(&x).unwrap();
        assert_eq!(emb.cols(), model.embedding_dim());
        assert_eq!(emb.cols(), SceneModelConfig::default().embedding);
    }

    #[test]
    fn same_scene_embeddings_are_closer_than_cross_scene() {
        let (dataset, model) = setup();
        // Mean within-clip vs cross-clip embedding distance over a few clips.
        let clips: Vec<usize> = (0..dataset.clips().len().min(4)).collect();
        let mut embeddings = Vec::new();
        for &c in &clips {
            let refs = dataset.clip_frames(c);
            let x = dataset.features_matrix(&refs[..10]);
            embeddings.push(model.embed(&x).unwrap());
        }
        let mut within = 0.0;
        let mut cross = 0.0;
        let mut wn = 0;
        let mut cn = 0;
        for (i, a) in embeddings.iter().enumerate() {
            for r1 in 0..a.rows() {
                for (j, b) in embeddings.iter().enumerate() {
                    for r2 in 0..b.rows() {
                        if i == j && r1 < r2 {
                            within += anole_tensor::l2_distance(a.row(r1), b.row(r2));
                            wn += 1;
                        } else if i < j {
                            let same_scene = dataset.clips()[clips[i]].attributes
                                == dataset.clips()[clips[j]].attributes;
                            if !same_scene {
                                cross += anole_tensor::l2_distance(a.row(r1), b.row(r2));
                                cn += 1;
                            }
                        }
                    }
                }
            }
        }
        if wn > 0 && cn > 0 {
            assert!(within / wn as f32 * 2.0 < cross / cn as f32);
        }
    }

    #[test]
    fn single_scene_dataset_is_rejected() {
        let dataset = DrivingDataset::generate(
            &DatasetConfig {
                kitti_clips: 1,
                bdd_clips: 0,
                shd_clips: 0,
                ..DatasetConfig::small()
            },
            Seed(35),
        );
        // One clip → unseen (hold-out) → no training frames at all, or a
        // single scene; either way training must fail cleanly.
        let split = dataset.split();
        let err = SceneModel::train(&dataset, &split.train, &SceneModelConfig::default(), Seed(0));
        assert!(err.is_err());
    }
}
