//! The decision model `M_decision` (§IV-C): a frozen scene backbone plus a
//! small MLP head predicting per-model suitability.

use anole_data::{DrivingDataset, FrameRef};
use anole_detect::{threshold_probs, ConfusionMatrix, DetectionCounts};
use anole_nn::{
    softmax, Activation, Dense, Mlp, ModelProfile, Precision, QuantizedMlp, ReferenceModel,
    Trainer, Workspace,
};
use anole_tensor::{argmax, split_seed, Matrix, Seed};
use serde::{Deserialize, Serialize};

use crate::osp::{ModelRepository, SceneModel, SuitabilitySets};
use crate::{AnoleError, DecisionConfig};

/// The trained decision model.
///
/// Layout: the scene encoder's layers up to (and including) the embedding
/// layer, frozen, followed by a trainable two-layer head producing one logit
/// per compressed model. Softmax over the logits gives the model allocation
/// vector `v^x` of §V-A.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionModel {
    net: Mlp,
    n_models: usize,
    /// Int8 serving twin, set by [`DecisionModel::quantize_gated`] when
    /// quantized routing agrees closely enough with fp32 routing. When set,
    /// the workspace serving path routes through it. Deserializes to `None`
    /// from models saved before quantization existed.
    #[serde(default)]
    quantized: Option<QuantizedMlp>,
}

impl DecisionModel {
    /// Trains the decision model on the sampled suitability sets.
    ///
    /// # Errors
    ///
    /// * [`AnoleError::InsufficientData`] if the sets contain fewer than two
    ///   distinct model labels (nothing to discriminate).
    /// * Training errors from the network.
    pub fn train(
        dataset: &DrivingDataset,
        scene_model: &SceneModel,
        sets: &SuitabilitySets,
        n_models: usize,
        config: &DecisionConfig,
        seed: Seed,
    ) -> Result<Self, AnoleError> {
        let mut distinct: Vec<usize> = sets.samples.iter().map(|&(_, id)| id).collect();
        distinct.sort_unstable();
        distinct.dedup();
        if distinct.len() < 2 {
            return Err(AnoleError::InsufficientData {
                stage: "decision model",
                detail: format!("{} distinct model labels", distinct.len()),
            });
        }

        let refs: Vec<FrameRef> = sets.samples.iter().map(|&(r, _)| r).collect();
        let x = dataset.features_matrix(&refs);
        // The paper's targets: the (normalized) model-allocation vector v^x.
        // Suitability sets lacking membership vectors fall back to one-hot
        // targets on the arm the sample was drawn for.
        let mut targets = Matrix::zeros(refs.len(), n_models);
        for i in 0..refs.len() {
            let v = sets.memberships.get(i);
            let mass: f32 = v.map(|v| v.iter().sum()).unwrap_or(0.0);
            if let (Some(v), true) = (v, mass > 0.0) {
                for (j, &m) in v.iter().enumerate().take(n_models) {
                    targets.set(i, j, m / mass);
                }
            } else {
                targets.set(i, sets.samples[i].1, 1.0);
            }
        }

        Self::train_from_features(scene_model, &x, &targets, config, seed)
    }

    /// Trains a decision model directly from a feature matrix and soft
    /// per-model target distributions (one row each, rows summing to 1).
    ///
    /// This is the workhorse behind [`DecisionModel::train`]; it is public
    /// so that repository expansion can retrain the head with an extended
    /// target width after a new specialist is added online.
    ///
    /// # Errors
    ///
    /// Surfaces training errors from the network.
    pub fn train_from_features(
        scene_model: &SceneModel,
        x: &Matrix,
        targets: &Matrix,
        config: &DecisionConfig,
        seed: Seed,
    ) -> Result<Self, AnoleError> {
        let _span = anole_obs::span!("osp.tdm.train");
        let t0 = anole_obs::now();
        let n_models = targets.cols();
        // Backbone: every scene-model layer except its classification head.
        let backbone: Vec<Dense> = scene_model.network().layers()
            [..scene_model.network().layers().len() - 1]
            .to_vec();
        let frozen = backbone.len();
        let emb_dim = scene_model.embedding_dim();

        let head = Mlp::builder(emb_dim)
            .hidden(config.head_hidden, Activation::Relu)
            .output(n_models)
            .build(split_seed(seed, 0));
        let mut layers = backbone;
        layers.extend(head.layers().iter().cloned());
        let mut net = Mlp::from_layers(layers);
        net.set_frozen_prefix(frozen);

        let (x, targets) = if config.augment_noise_std > 0.0 {
            // Feature-space jitter: unseen scenes land between the seen
            // ones in embedding space, so training the head on perturbed
            // inputs smooths its decision boundaries toward interpolation.
            let mut rng = anole_tensor::rng_from_seed(split_seed(seed, 7));
            let noise = Matrix::random_normal(x.rows(), x.cols(), config.augment_noise_std, &mut rng);
            let jittered = x + &noise;
            (
                Matrix::vstack(&[x, &jittered]).expect("same widths"),
                tile_rows(targets, 2),
            )
        } else {
            (x.clone(), targets.clone())
        };

        let report = Trainer::new(config.train).fit_soft_classifier(
            &mut net,
            &x,
            &targets,
            split_seed(seed, 1),
        )?;
        let dt_ms = anole_obs::elapsed_ms(t0);
        anole_obs::gauge_set!("osp.tdm.duration_ms", dt_ms);
        anole_obs::gauge_set!("osp.tdm.final_loss", f64::from(report.final_loss));
        anole_obs::counter_add!("osp.tdm.epochs", report.epochs_run as u64);
        if dt_ms > 0.0 {
            anole_obs::gauge_set!(
                "osp.tdm.epochs_per_sec",
                report.epochs_run as f64 / (dt_ms / 1000.0)
            );
        }
        Ok(Self {
            net,
            n_models,
            quantized: None,
        })
    }

    /// Number of compressed models this decision model ranks.
    pub fn model_count(&self) -> usize {
        self.n_models
    }

    /// The underlying network.
    pub fn network(&self) -> &Mlp {
        &self.net
    }

    /// Cost profile of the decision *head* (the backbone is priced as
    /// `M_scene`): the paper's 2-layer MLP (Table II).
    pub fn head_profile(&self) -> ModelProfile {
        ModelProfile::of_mlp(ReferenceModel::DecisionMlp, &self.net)
    }

    /// The model allocation vector `v^x` for a batch: suitability
    /// probabilities per compressed model (softmax over the head logits).
    ///
    /// # Errors
    ///
    /// Returns a width error if `x` does not match the feature dimension.
    pub fn suitability(&self, x: &Matrix) -> Result<Matrix, AnoleError> {
        match &self.quantized {
            Some(q) => Ok(softmax(&q.forward(x)?)),
            None => Ok(softmax(&self.net.forward(x)?)),
        }
    }

    /// Workspace-backed variant of [`DecisionModel::suitability`]:
    /// bit-identical probabilities with zero steady-state allocations once
    /// the workspace is warm.
    ///
    /// # Errors
    ///
    /// Returns a width error if `x` does not match the feature dimension.
    pub fn suitability_ws<'w>(
        &self,
        x: &Matrix,
        ws: &'w mut Workspace,
    ) -> Result<&'w Matrix, AnoleError> {
        match &self.quantized {
            Some(q) => Ok(q.predict_proba_batch(x, ws)?),
            None => Ok(self.net.predict_proba_batch(x, ws)?),
        }
    }

    /// The weight format routing currently serves at.
    pub fn serving_precision(&self) -> Precision {
        if self.quantized.is_some() {
            Precision::Int8
        } else {
            Precision::Fp32
        }
    }

    /// Quantizes the decision network behind a routing-agreement gate:
    /// scores `x` (one gate frame per row) at fp32 and at int8, and adopts
    /// the int8 twin only when the two rankings pick the same top-1 model on
    /// at least `1 − epsilon` of the rows. Routing drift is what hurts a
    /// deployment — a mis-routed frame is served by a worse specialist — so
    /// the gate bounds exactly that, mirroring the per-specialist F1 gate.
    ///
    /// Returns whether int8 was adopted and the measured agreement fraction.
    /// On rejection (or an empty gate set) the model keeps serving at fp32.
    ///
    /// # Errors
    ///
    /// Returns a width error if `x` does not match the feature dimension.
    pub fn quantize_gated(&mut self, x: &Matrix, epsilon: f32) -> Result<(bool, f32), AnoleError> {
        if x.rows() == 0 {
            self.quantized = None;
            return Ok((false, 0.0));
        }
        let q = self.net.quantize();
        let fp = softmax(&self.net.forward(x)?);
        let i8_probs = softmax(&q.forward(x)?);
        let mut agreed = 0usize;
        for i in 0..x.rows() {
            if argmax(fp.row(i)) == argmax(i8_probs.row(i)) {
                agreed += 1;
            }
        }
        let agreement = agreed as f32 / x.rows() as f32;
        let accepted = agreement >= 1.0 - epsilon;
        self.quantized = accepted.then_some(q);
        Ok((accepted, agreement))
    }

    /// Model ids of one frame ranked by decreasing suitability.
    ///
    /// # Errors
    ///
    /// Returns a width error if the feature width is wrong.
    pub fn rank(&self, features: &[f32]) -> Result<Vec<usize>, AnoleError> {
        let probs = self.suitability(&Matrix::row_vector(features))?;
        let row = probs.row(0);
        let mut ids: Vec<usize> = (0..row.len()).collect();
        ids.sort_by(|&a, &b| row[b].partial_cmp(&row[a]).unwrap_or(std::cmp::Ordering::Equal));
        Ok(ids)
    }

    /// The top-1 model and its suitability probability.
    ///
    /// # Errors
    ///
    /// Returns a width error if the feature width is wrong.
    pub fn best_model(&self, features: &[f32]) -> Result<(usize, f32), AnoleError> {
        let probs = self.suitability(&Matrix::row_vector(features))?;
        let row = probs.row(0);
        let best = argmax(row).expect("non-empty suitability row");
        Ok((best, row[best]))
    }

    /// Fig. 6b: confusion of predicted-best vs true-best model on a
    /// labelled set. The true best is the repository model with the highest
    /// per-frame F1 (ties → lowest id); frames where no model scores above
    /// zero are skipped.
    ///
    /// # Errors
    ///
    /// Returns a width error if the dataset's feature width is wrong.
    pub fn confusion(
        &self,
        dataset: &DrivingDataset,
        repository: &ModelRepository,
        refs: &[FrameRef],
        threshold: f32,
    ) -> Result<ConfusionMatrix, AnoleError> {
        let mut cm = ConfusionMatrix::new(self.n_models);
        if refs.is_empty() {
            return Ok(cm);
        }
        // Batch the scoring: one decision forward over all frames and one
        // detector forward per model, instead of per-frame row-vector
        // forwards (n·(m+1) tiny matmuls collapse into m+1 large ones that
        // the tiled kernels can parallelize). Per-row results are
        // bit-identical to the row-vector path, so the matrix is unchanged.
        let x = dataset.features_matrix(refs);
        let suitability = self.suitability(&x)?;
        let mut model_probs = Vec::with_capacity(repository.len());
        for model in repository.models() {
            model_probs.push((model.id, model.detect_probs(&x)?));
        }
        for (i, &r) in refs.iter().enumerate() {
            let frame = dataset.frame(r);
            let mut best = (0usize, 0.0f32);
            for (id, probs) in &model_probs {
                let pred = threshold_probs(probs.row(i), threshold);
                let mut counts = DetectionCounts::default();
                counts.accumulate(&pred, &frame.truth);
                let f1 = counts.f1();
                if f1 > best.1 {
                    best = (*id, f1);
                }
            }
            if best.1 <= 0.0 {
                continue;
            }
            let predicted = argmax(suitability.row(i)).expect("non-empty suitability row");
            cm.record(best.0, predicted);
        }
        Ok(cm)
    }
}

/// Repeats the rows of `m` `times` times (vertically).
fn tile_rows(m: &Matrix, times: usize) -> Matrix {
    if times <= 1 {
        return m.clone();
    }
    let parts: Vec<&Matrix> = std::iter::repeat_n(m, times).collect();
    Matrix::vstack(&parts).expect("identical widths")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::osp::AdaptiveSampler;
    use crate::{AnoleConfig, SceneModelConfig};
    use anole_data::DatasetConfig;

    fn setup() -> (DrivingDataset, ModelRepository, DecisionModel, AnoleConfig) {
        let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(61));
        let split = dataset.split();
        let config = AnoleConfig::fast();
        let mut scfg = SceneModelConfig::default();
        scfg.train.epochs = 10;
        let scene = SceneModel::train(&dataset, &split.train, &scfg, Seed(62)).unwrap();
        let repo = ModelRepository::train(
            &dataset,
            &scene,
            &split.train,
            &split.val,
            &config,
            Seed(63),
        )
        .unwrap();
        let sampler = AdaptiveSampler::new(config.sampling, config.detector.threshold);
        let sets = sampler.collect(&dataset, &repo, Seed(64)).unwrap();
        let decision = DecisionModel::train(
            &dataset,
            &scene,
            &sets,
            repo.len(),
            &config.decision,
            Seed(65),
        )
        .unwrap();
        (dataset, repo, decision, config)
    }

    #[test]
    fn suitability_rows_are_distributions() {
        let (dataset, _, decision, _) = setup();
        let split = dataset.split();
        let x = dataset.features_matrix(&split.val[..8.min(split.val.len())]);
        let probs = decision.suitability(&x).unwrap();
        assert_eq!(probs.cols(), decision.model_count());
        for i in 0..probs.rows() {
            let sum: f32 = probs.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn rank_orders_by_suitability() {
        let (dataset, _, decision, _) = setup();
        let split = dataset.split();
        let frame = dataset.frame(split.val[0]);
        let ranking = decision.rank(&frame.features).unwrap();
        assert_eq!(ranking.len(), decision.model_count());
        let probs = decision
            .suitability(&Matrix::row_vector(&frame.features))
            .unwrap();
        for w in ranking.windows(2) {
            assert!(probs.get(0, w[0]) >= probs.get(0, w[1]));
        }
        let (best, p) = decision.best_model(&frame.features).unwrap();
        assert_eq!(best, ranking[0]);
        assert!(p > 0.0 && p <= 1.0);
    }

    #[test]
    fn decision_beats_uniform_routing_on_validation() {
        let (dataset, repo, decision, config) = setup();
        let split = dataset.split();
        let cm = decision
            .confusion(&dataset, &repo, &split.val, config.detector.threshold)
            .unwrap();
        let uniform = 1.0 / repo.len() as f32;
        assert!(
            cm.accuracy() > uniform,
            "top-1 routing accuracy {:.3} vs uniform {:.3}",
            cm.accuracy(),
            uniform
        );
    }

    #[test]
    fn backbone_is_frozen_scene_prefix() {
        let (dataset, _, decision, _) = setup();
        let _ = dataset;
        assert!(decision.network().frozen_prefix() >= 1);
        assert_eq!(
            decision.head_profile().reference,
            ReferenceModel::DecisionMlp
        );
    }

    #[test]
    fn rejects_degenerate_label_sets() {
        let (dataset, repo, _, config) = setup();
        let split = dataset.split();
        let mut scfg = SceneModelConfig::default();
        scfg.train.epochs = 3;
        let scene = SceneModel::train(&dataset, &split.train, &scfg, Seed(66)).unwrap();
        let degenerate = SuitabilitySets {
            samples: vec![(split.train[0], 0); 10],
            memberships: vec![vec![1.0]; 10],
            accepted_counts: vec![10],
            draw_counts: vec![10],
            rejected: 0,
        };
        let err = DecisionModel::train(
            &dataset,
            &scene,
            &degenerate,
            repo.len(),
            &config.decision,
            Seed(67),
        )
        .unwrap_err();
        assert!(matches!(err, AnoleError::InsufficientData { .. }));
    }
}
