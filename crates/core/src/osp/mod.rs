//! Offline Scene Profiling (paper §IV): everything that runs on the cloud
//! server before deployment.

mod decision;
mod repository;
mod sampling;
mod scene_model;

pub use decision::DecisionModel;
pub use repository::{ClusterOrigin, CompressedModel, ModelRepository};
pub use sampling::{frame_f1_of, AdaptiveSampler, SuitabilitySets};
pub use scene_model::SceneModel;
