//! Cache-based model deployment and per-frame inference (§V-B, §V-C), with
//! fault absorption and graceful degradation.
//!
//! Under fault injection (see [`crate::omi::FaultPlan`]) the engine walks an
//! explicit fallback chain instead of panicking or propagating NaNs:
//!
//! 1. the requested model (cache hit, or synchronous load on a cold cache);
//! 2. the best *cached* model (the paper's CMD fallback);
//! 3. a pinned always-resident fallback model
//!    ([`OnlineEngine::with_pinned_fallback`]);
//! 4. the last-good detections, replayed when no model can run at all.
//!
//! Failed model loads are retried with exponential backoff, priced through
//! the [`LatencyModel`] (retries cost simulated milliseconds, never
//! wall-clock sleeps); models that keep failing are excluded permanently.
//! Health is tracked on a `Healthy → Degraded → Critical` ladder and
//! summarized by [`OnlineEngine::health_report`].

use std::collections::VecDeque;

use anole_cache::{CacheStats, ShardedSlotCache, TransitionModel};
use anole_device::{DeviceKind, LatencyModel};
use anole_nn::{Precision, ReferenceModel, Workspace};
use anole_tensor::{rng_from_seed, Matrix, Seed};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::omi::drift::DriftState;
use crate::omi::faults::{
    FaultCounts, FaultInjector, FrameFaults, HealthReport, HealthState, LoadFault,
};
use crate::{AnoleError, AnoleSystem};

/// Load attempts per load (1 initial + 2 retries) before a strike.
const MAX_LOAD_ATTEMPTS: u32 = 3;
/// Whole-load failures after which a model is excluded permanently.
const MAX_LOAD_STRIKES: u32 = 3;
/// Consecutive clean frames needed to climb one rung of the health ladder.
const RECOVERY_FRAMES: u32 = 8;

/// What happened on one online-inference step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepOutcome {
    /// The model `M_decision` ranked first.
    pub requested: usize,
    /// The model actually used (best-ranked *cached* model on a miss).
    pub used: usize,
    /// Whether the requested model was already resident.
    pub cache_hit: bool,
    /// Thresholded cell detections of the used model (or the fused top-k
    /// maps on a low-confidence, hedged frame).
    pub detections: Vec<bool>,
    /// Number of compressed models executed this frame (>1 when hedged,
    /// 0 when the frame was served from last-good detections).
    pub models_executed: usize,
    /// End-to-end frame latency in milliseconds (decision + detection, plus
    /// a synchronous load when nothing usable was cached).
    pub latency_ms: f32,
    /// Suitability probability of the requested model.
    pub suitability: f32,
    /// Health state after this step.
    pub health: HealthState,
    /// Which tier of the fallback chain served the frame: 0 = requested
    /// model, 1 = best cached model, 2 = pinned fallback model,
    /// 3 = last-good detections replayed.
    pub fallback_depth: usize,
    /// Number of faults injected into this step.
    pub faults: u32,
    /// Weight format of the model that served the frame (`Fp32` on frames
    /// replayed from last-good detections, which run no model). Deserializes
    /// to `Fp32` from logs written before quantized serving existed.
    #[serde(default)]
    pub precision: Precision,
    /// Whether the idle-budget prefetcher issued a background load at the
    /// end of this frame. Never serialized: the serialized outcome stream
    /// stays byte-identical to engines built before prefetch existed.
    #[serde(skip)]
    pub prefetch_issued: bool,
    /// Whether this frame's cache hit was satisfied by a model the
    /// prefetcher loaded ahead of time. Never serialized (see
    /// `prefetch_issued`).
    #[serde(skip)]
    pub prefetch_hit: bool,
}

/// Effectiveness counters for the idle-budget prefetcher.
///
/// `issued` background loads were started; `hits` of them served a later
/// frame before eviction; `wasted` were evicted unused; `late` counts frames
/// whose predicted model could not be prefetched (no idle budget) and was
/// then requested and missed on the very next ranked frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefetchStats {
    /// Background loads issued by the prefetcher.
    pub issued: u64,
    /// Prefetched models that served a frame before being evicted.
    pub hits: u64,
    /// Prefetched models evicted (or excluded) before ever serving a frame.
    pub wasted: u64,
    /// Correct predictions that lacked idle budget and missed next frame.
    pub late: u64,
}

/// One compact wide-event row of the per-session flight recorder: what one
/// frame requested, what actually served it, and every signal that decides
/// its fate (fallback depth, fault draws, health, precision, prefetch
/// outcome). Sized for the ring: 24 bytes of plain scalars.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlightFrame {
    /// Engine frame index (0-based) this event describes.
    pub frame: u32,
    /// Model `M_decision` ranked first.
    pub requested: u16,
    /// Model that actually served the frame.
    pub used: u16,
    pub cache_hit: bool,
    /// Fallback tier that served the frame (0..=3, as in
    /// [`StepOutcome::fallback_depth`]).
    pub fallback_depth: u8,
    /// Compressed models executed (0 on a last-good replay).
    pub models_executed: u8,
    /// Faults injected into this frame (saturated at 255).
    pub faults: u8,
    /// Health state *after* the frame.
    pub health: HealthState,
    /// Weight format of the serving model.
    pub precision: Precision,
    pub prefetch_issued: bool,
    pub prefetch_hit: bool,
    pub latency_ms: f32,
    pub suitability: f32,
}

/// The dumped contents of a session's flight recorder: the last
/// `capacity` frames (of `frames_seen` total) in arrival order, plus the
/// session's drift state at dump time. Produced by
/// [`OnlineEngine::flight_record`]; the serving gateway attaches one to
/// `SessionReport`/`QuarantineRecord` when a session is quarantined, shed,
/// or drift-latched, so post-mortems show the frames that killed the
/// session instead of just counting them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightRecord {
    /// Ring capacity the recorder ran with.
    pub capacity: usize,
    /// Total frames the recorder observed (≥ `frames.len()`).
    pub frames_seen: u64,
    /// Session drift state at dump time (`Nominal` for engines running
    /// outside a drift-monitored gateway session).
    #[serde(default)]
    pub drift_state: DriftState,
    /// The retained frames, oldest first.
    pub frames: Vec<FlightFrame>,
}

impl FlightRecord {
    /// Renders the record as an aligned text table, one line per frame,
    /// for chaos-test failure output and fleet post-mortems.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "# flight: last {} of {} frames (drift: {:?})\n\
             # frame req->used hit depth exec faults health    precision prefetch latency_ms suit\n",
            self.frames.len(),
            self.frames_seen,
            self.drift_state,
        );
        for f in &self.frames {
            let prefetch = match (f.prefetch_issued, f.prefetch_hit) {
                (true, true) => "issue+hit",
                (true, false) => "issued",
                (false, true) => "hit",
                (false, false) => "-",
            };
            let _ = writeln!(
                out,
                "{:>7} {:>4}->{:<4} {:>3} {:>5} {:>4} {:>6} {:<9} {:<9} {:<9} {:>10.3} {:.3}",
                f.frame,
                f.requested,
                f.used,
                if f.cache_hit { "y" } else { "n" },
                f.fallback_depth,
                f.models_executed,
                f.faults,
                format!("{:?}", f.health),
                format!("{:?}", f.precision),
                prefetch,
                f.latency_ms,
                f.suitability,
            );
        }
        out
    }
}

/// Bounded ring behind the engine's flight recorder. Strictly passive:
/// frames are copied in at the end of `finish_step` and nothing is ever
/// read back on the serving path.
#[derive(Debug)]
struct FlightRing {
    cap: usize,
    seen: u64,
    ring: VecDeque<FlightFrame>,
}

impl FlightRing {
    fn new(cap: usize) -> Self {
        Self {
            cap,
            seen: 0,
            ring: VecDeque::with_capacity(cap),
        }
    }

    fn push(&mut self, frame: FlightFrame) {
        self.seen += 1;
        if self.ring.len() == self.cap {
            self.ring.pop_front();
        }
        self.ring.push_back(frame);
    }
}

/// The on-device Anole engine: MSS (rank models per frame), CMD (LFU cache
/// with best-cached fallback), and MI (run the chosen compressed model).
///
/// Model loads on a miss happen in the background (the frame is served by
/// the best cached model); their cost is tracked in
/// [`OnlineEngine::background_load_ms`]. Only when the cache is completely
/// empty does a synchronous load stall the frame.
///
/// Attaching a [`FaultInjector`] ([`OnlineEngine::with_fault_injector`])
/// subjects the engine to that plan's faults; a zero-fault plan leaves
/// every [`StepOutcome`] bit-identical to an un-instrumented engine.
#[derive(Debug)]
pub struct OnlineEngine<'a> {
    system: &'a AnoleSystem,
    cache: ShardedSlotCache<usize>,
    latency: LatencyModel,
    rng: StdRng,
    usage_log: Vec<usize>,
    background_load_ms: f32,
    smoothed_suitability: Option<Vec<f32>>,
    total_latency_ms: f64,
    hedged_frames: usize,
    latency_budget_ms: Option<f32>,
    injector: Option<FaultInjector>,
    pinned: Option<usize>,
    excluded: Vec<bool>,
    load_strikes: Vec<u32>,
    pending_load_fault: Option<LoadFault>,
    last_good: Option<Vec<bool>>,
    health: HealthState,
    clean_streak: u32,
    frames_total: usize,
    frames_by_state: [usize; 3],
    fault_counts: FaultCounts,
    retries: usize,
    strikes_total: usize,
    fallback_depths: [usize; 4],
    /// Gate on `attempt_load`: the serving gateway opens it (sets `false`)
    /// when its model-load circuit breaker trips, so the engine rides the
    /// fallback chain without burning load attempts. Defaults to `true`.
    loads_enabled: bool,
    /// Real load attempts made (suppressed attempts while loads are
    /// disabled are not counted).
    load_attempts: usize,
    /// Model ids evicted by mid-stream memory pressure
    /// (`SlotCache::set_capacity`), in eviction order — surfaced so the
    /// gateway can account for them instead of silently dropping them.
    pressure_evicted: Vec<usize>,
    /// Reusable inference workspace: decision scoring and detection share it
    /// so the steady-state serving path never allocates.
    ws: Workspace,
    /// Staged single-row feature matrix feeding the workspace paths.
    row: Matrix,
    /// First-order scene-transition model over `M_decision`'s per-frame
    /// top-ranked model ids. Always learns (an O(1) counter bump per frame);
    /// only the prefetcher reads its predictions.
    transition: TransitionModel,
    /// Per-model flag: resident because the prefetcher loaded it, and not
    /// yet used by any frame. Cleared on first use (a prefetch hit) or on
    /// eviction (a wasted prefetch).
    prefetched: Vec<bool>,
    /// A confident prediction the prefetcher could not issue last frame for
    /// lack of idle budget; a miss on it next frame counts as `late`.
    prefetch_pending: Option<usize>,
    prefetch_stats: PrefetchStats,
    /// Per-session flight recorder (`None` unless
    /// [`OnlineEngine::with_flight_recorder`] armed it). Write-only on the
    /// serving path; read only by [`OnlineEngine::flight_record`].
    flight: Option<FlightRing>,
}

impl<'a> OnlineEngine<'a> {
    /// Creates an engine with an empty cache on the given device.
    pub fn new(system: &'a AnoleSystem, device: DeviceKind, seed: Seed) -> Self {
        let cache_cfg = system.config().cache;
        let prefetch_cfg = system.config().prefetch;
        let n_models = system.repository().len();
        // One shard and no admission filter is bit-identical to the plain
        // `SlotCache` this engine used before sharding existed. The hash
        // salt only remaps keys to shards, so it is inert at 1 shard; it is
        // seeded per-engine so fleet sessions decorrelate their shard maps.
        let mut cache = match cache_cfg.byte_budget {
            Some(budget) => ShardedSlotCache::with_byte_budget(
                prefetch_cfg.shards,
                cache_cfg.capacity,
                cache_cfg.policy,
                budget,
            ),
            None => {
                ShardedSlotCache::new(prefetch_cfg.shards, cache_cfg.capacity, cache_cfg.policy)
            }
        }
        .with_hash_salt(seed.0);
        if prefetch_cfg.enabled && prefetch_cfg.admission_filter {
            cache = cache.with_admission_filter(n_models.max(16).next_power_of_two());
        }
        Self {
            system,
            cache,
            latency: LatencyModel::for_device(device),
            rng: rng_from_seed(seed),
            usage_log: Vec::new(),
            background_load_ms: 0.0,
            smoothed_suitability: None,
            total_latency_ms: 0.0,
            hedged_frames: 0,
            latency_budget_ms: None,
            injector: None,
            pinned: None,
            excluded: vec![false; n_models],
            load_strikes: vec![0; n_models],
            pending_load_fault: None,
            last_good: None,
            health: HealthState::Healthy,
            clean_streak: 0,
            frames_total: 0,
            frames_by_state: [0; 3],
            fault_counts: FaultCounts::default(),
            retries: 0,
            strikes_total: 0,
            fallback_depths: [0; 4],
            loads_enabled: true,
            load_attempts: 0,
            pressure_evicted: Vec::new(),
            ws: Workspace::new(),
            row: Matrix::default(),
            transition: TransitionModel::new(n_models),
            prefetched: vec![false; n_models],
            prefetch_pending: None,
            prefetch_stats: PrefetchStats::default(),
            flight: None,
        }
    }

    /// Warm-starts the scene-transition model from one shipped in the
    /// deployment bundle (trained offline on clip telemetry), so the
    /// prefetcher predicts usefully from the first frame instead of
    /// relearning transitions online.
    ///
    /// # Panics
    ///
    /// Panics if `model` was trained over a different number of models than
    /// the repository holds.
    pub fn with_transition_model(mut self, model: TransitionModel) -> Self {
        assert_eq!(
            model.states(),
            self.system.repository().len(),
            "transition model states must match the repository size"
        );
        self.transition = model;
        self
    }

    /// Arms the per-session flight recorder: the last `capacity` frames'
    /// wide events are retained in a bounded ring and can be dumped with
    /// [`OnlineEngine::flight_record`]. Strictly passive — the ring is
    /// write-only on the serving path, so an armed recorder changes no
    /// [`StepOutcome`]. A zero capacity leaves the recorder off.
    pub fn with_flight_recorder(mut self, capacity: usize) -> Self {
        self.flight = (capacity > 0).then(|| FlightRing::new(capacity));
        self
    }

    /// Dumps the flight recorder's current contents (`None` when no
    /// recorder was armed). The record's `drift_state` is `Nominal`; a
    /// drift-monitoring caller stamps its own detector state in.
    pub fn flight_record(&self) -> Option<FlightRecord> {
        self.flight.as_ref().map(|ring| FlightRecord {
            capacity: ring.cap,
            frames_seen: ring.seen,
            drift_state: DriftState::Nominal,
            frames: ring.ring.iter().copied().collect(),
        })
    }

    /// Constrains the engine to a per-frame latency budget (§II: "achieve
    /// the best-effort inference accuracy within a specific latency
    /// budget"). The number of compressed models fused per frame is derived
    /// from the budget: as many as fit after the decision stage, at least
    /// one, at most 4 and never more than the configured `hedge_top_k`
    /// permits accuracy-wise.
    ///
    /// # Panics
    ///
    /// Panics if `budget_ms` is not strictly positive.
    pub fn with_latency_budget(mut self, budget_ms: f32) -> Self {
        assert!(budget_ms > 0.0, "latency budget must be positive");
        self.latency_budget_ms = Some(budget_ms);
        self
    }

    /// Subjects the engine to `injector`'s fault plan. The injector owns its
    /// own RNG, so a zero-fault plan changes nothing about the engine's
    /// outputs.
    pub fn with_fault_injector(mut self, injector: FaultInjector) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Pins `model_id` as the always-resident fallback: it serves frames
    /// when nothing usable is cached, is immune to eviction (it lives
    /// outside the slot cache) and to permanent exclusion, and never needs
    /// loading.
    ///
    /// # Panics
    ///
    /// Panics if `model_id` is not a repository model.
    pub fn with_pinned_fallback(mut self, model_id: usize) -> Self {
        assert!(
            model_id < self.system.repository().len(),
            "pinned fallback {model_id} out of range"
        );
        self.pinned = Some(model_id);
        self
    }

    /// The per-frame model-count limit implied by the latency budget (the
    /// configured `hedge_top_k` when no budget is set).
    pub fn models_per_frame_limit(&self) -> usize {
        match self.latency_budget_ms {
            None => self.system.config().decision.hedge_top_k.max(1),
            Some(budget) => {
                let decision = self.latency.mean_scene_decision_ms();
                let tiny = self.latency.mean_inference_ms(ReferenceModel::Yolov3Tiny);
                (((budget - decision) / tiny).floor() as isize).clamp(1, 4) as usize
            }
        }
    }

    /// Mean end-to-end frame latency so far (0.0 before any step).
    pub fn mean_latency_ms(&self) -> f32 {
        if self.usage_log.is_empty() {
            0.0
        } else {
            (self.total_latency_ms / self.usage_log.len() as f64) as f32
        }
    }

    /// Fraction of frames that took the low-confidence hedged path.
    pub fn hedge_rate(&self) -> f32 {
        if self.usage_log.is_empty() {
            0.0
        } else {
            self.hedged_frames as f32 / self.usage_log.len() as f32
        }
    }

    /// Pre-loads the given models (the paper downloads and pre-loads as many
    /// models as memory allows before going online). Each model charges its
    /// serving-precision footprint when a cache byte budget is configured.
    pub fn warm(&mut self, model_ids: &[usize]) {
        for &id in model_ids {
            let bytes = self.system.repository().model(id).serving_bytes();
            let evicted = self.cache.insert_weighted(id, bytes);
            self.note_evicted(&evicted);
        }
    }

    /// Pre-loads models through the fault machinery: excluded models and
    /// loads that exhaust their bounded retries surface as
    /// [`AnoleError::ModelLoadFailed`] instead of being papered over.
    ///
    /// # Errors
    ///
    /// Returns [`AnoleError::ModelLoadFailed`] for the first model that
    /// cannot be made resident.
    pub fn try_warm(&mut self, model_ids: &[usize]) -> Result<(), AnoleError> {
        for &id in model_ids {
            if self.is_excluded(id) {
                return Err(AnoleError::ModelLoadFailed {
                    model: id,
                    attempts: (self.load_strikes.get(id).copied().unwrap_or(0)
                        * MAX_LOAD_ATTEMPTS) as usize,
                });
            }
            if !self.attempt_load(id) {
                return Err(AnoleError::ModelLoadFailed {
                    model: id,
                    attempts: MAX_LOAD_ATTEMPTS as usize,
                });
            }
        }
        Ok(())
    }

    /// Cache statistics so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Prefetcher effectiveness counters so far (all zero while
    /// `prefetch.enabled` is off).
    pub fn prefetch_stats(&self) -> PrefetchStats {
        self.prefetch_stats
    }

    /// The online-learned scene-transition model (ships back into the
    /// bundle so the next deployment warm-starts from it).
    pub fn transition_model(&self) -> &TransitionModel {
        &self.transition
    }

    /// Number of cache shards backing this engine (1 unless configured via
    /// `prefetch.shards`).
    pub fn cache_shards(&self) -> usize {
        self.cache.shard_count()
    }

    /// Prefetch candidates the shared admission filter rejected to protect
    /// proven residents from one-hit-wonder insertions.
    pub fn admission_rejects(&self) -> u64 {
        self.cache.admission_rejects()
    }

    /// The model used on each past step, in order (for Fig. 4b/7a).
    /// Frames served from last-good detections (fallback depth 3) ran no
    /// model and are not logged.
    pub fn usage_log(&self) -> &[usize] {
        &self.usage_log
    }

    /// Total background model-load time incurred by misses (including
    /// retry backoff under fault injection).
    pub fn background_load_ms(&self) -> f32 {
        self.background_load_ms
    }

    /// The engine's latency model (device).
    pub fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    /// Current health state.
    pub fn health(&self) -> HealthState {
        self.health
    }

    /// The pinned always-resident fallback model, if configured.
    pub fn pinned_fallback(&self) -> Option<usize> {
        self.pinned
    }

    /// Whether `model_id` has been permanently excluded.
    pub fn is_excluded(&self, model_id: usize) -> bool {
        self.excluded.get(model_id).copied().unwrap_or(false)
    }

    /// The detections of the last frame a model actually served.
    pub fn last_good(&self) -> Option<&[bool]> {
        self.last_good.as_deref()
    }

    /// Aggregate health story of the run so far.
    pub fn health_report(&self) -> HealthReport {
        HealthReport {
            state: self.health,
            frames: self.frames_total,
            frames_by_state: self.frames_by_state,
            faults: self.fault_counts,
            retries: self.retries,
            load_strikes: self.strikes_total,
            excluded_models: self
                .excluded
                .iter()
                .enumerate()
                .filter_map(|(id, &e)| e.then_some(id))
                .collect(),
            fallback_depths: self.fallback_depths,
            pressure_evicted: self.pressure_evicted.clone(),
        }
    }

    /// Enables or disables model loads. While disabled, `attempt_load`
    /// returns `false` without consuming pending faults or pricing costs —
    /// the engine serves every frame from the fallback chain (best cached →
    /// pinned → last-good). Used by the serving gateway's circuit breaker.
    pub fn set_loads_enabled(&mut self, enabled: bool) {
        self.loads_enabled = enabled;
    }

    /// Whether model loads are currently enabled.
    pub fn loads_enabled(&self) -> bool {
        self.loads_enabled
    }

    /// Real load attempts made so far (excludes attempts suppressed while
    /// loads were disabled).
    pub fn load_attempt_count(&self) -> usize {
        self.load_attempts
    }

    /// Whole-model load failures so far: permanent failures, corrupt
    /// bundles, and transient loads that exhausted their bounded retries.
    /// The gateway's circuit breaker watches the delta of this counter.
    pub fn load_failure_count(&self) -> usize {
        self.fault_counts.permanent_load + self.fault_counts.bundle_corruption + self.strikes_total
    }

    /// Model ids evicted by mid-stream memory pressure, in eviction order.
    pub fn pressure_evicted(&self) -> &[usize] {
        &self.pressure_evicted
    }

    /// Whether `id` can serve a frame right now without a load.
    fn resident(&self, id: usize) -> bool {
        self.cache.contains(&id) || self.pinned == Some(id)
    }

    /// Stages `features` as the single-row matrix the workspace-backed
    /// decision/detection paths read. Reuses the buffer; no allocation once
    /// warm.
    fn stage_row(&mut self, features: &[f32]) {
        self.row.resize_scratch(1, features.len());
        self.row.row_mut(0).copy_from_slice(features);
    }

    /// Permanently excludes `id` from selection and loading. The pinned
    /// fallback is immune.
    fn exclude(&mut self, id: usize) {
        if self.pinned == Some(id) {
            return;
        }
        if let Some(flag) = self.excluded.get_mut(id) {
            *flag = true;
        }
        self.cache.remove(&id);
        self.note_evicted(&[id]);
    }

    /// Accounts models leaving the cache: an unused prefetched model that
    /// gets evicted was a wasted prefetch.
    fn note_evicted(&mut self, evicted: &[usize]) {
        for &id in evicted {
            if let Some(flag) = self.prefetched.get_mut(id) {
                if std::mem::take(flag) {
                    self.prefetch_stats.wasted += 1;
                    anole_obs::counter_add!("omi.engine.prefetch.wasted", 1);
                }
            }
        }
    }

    /// Marks a prefetched model as used (a prefetch hit). Returns whether
    /// `id` was an unused prefetch until now.
    fn note_prefetch_use(&mut self, id: usize) -> bool {
        match self.prefetched.get_mut(id) {
            Some(flag) if *flag => {
                *flag = false;
                self.prefetch_stats.hits += 1;
                anole_obs::counter_add!("omi.engine.prefetch.hits", 1);
                true
            }
            _ => false,
        }
    }

    /// Idle-budget prefetch, run strictly *after* the frame's routing,
    /// detections, and latency are fixed: when the remaining deadline
    /// budget exceeds the device's modelled load time, background-load the
    /// transition model's predicted next model so the coming scene change
    /// hits a warm cache. Charged to `background_load_ms`, never the
    /// critical path; bypasses `attempt_load` so it can never consume a
    /// pending injected load fault armed for a real load. Returns whether a
    /// prefetch was issued.
    fn maybe_prefetch(&mut self, requested: usize, latency_ms: f32) -> bool {
        let cfg = self.system.config().prefetch;
        if !cfg.enabled || !self.loads_enabled {
            return false;
        }
        let Some(next) = self.transition.predict_confident(requested, cfg.min_probability) else {
            return false;
        };
        if next == requested || self.resident(next) || self.is_excluded(next) {
            return false;
        }
        let budget = self.latency_budget_ms.unwrap_or(cfg.budget_ms);
        if !self
            .latency
            .background_load_fits(ReferenceModel::Yolov3Tiny, budget, latency_ms)
        {
            // No idle headroom this frame. Remember the prediction: if it
            // was right and the next ranked frame misses on it, that miss
            // is a *late* prefetch, not a mispredict.
            self.prefetch_pending = Some(next);
            return false;
        }
        let bytes = self.system.repository().model(next).serving_bytes();
        let evicted = self.cache.insert_weighted(next, bytes);
        self.note_evicted(&evicted);
        if !self.cache.contains(&next) {
            // The admission filter vetoed the insert; nothing was loaded.
            return false;
        }
        self.background_load_ms += self.latency.load_ms(ReferenceModel::Yolov3Tiny);
        if let Some(flag) = self.prefetched.get_mut(next) {
            *flag = true;
        }
        self.prefetch_stats.issued += 1;
        anole_obs::counter_add!("omi.engine.prefetch.issued", 1);
        true
    }

    /// Attempts to load `id` into the cache, consuming any pending injected
    /// load fault. Returns whether the model ended up resident. All costs
    /// (including retry backoff) are priced into `background_load_ms`.
    fn attempt_load(&mut self, id: usize) -> bool {
        if !self.loads_enabled {
            // Circuit breaker open: the load is suppressed without consuming
            // the pending fault or pricing any cost, so re-enabling loads
            // resumes exactly where the fault stream left off.
            anole_obs::counter_add!("omi.load.suppressed", 1);
            return false;
        }
        let tiny = ReferenceModel::Yolov3Tiny;
        let bytes = self.system.repository().model(id).serving_bytes();
        self.load_attempts += 1;
        anole_obs::counter_add!("omi.load.attempts", 1);
        match self.pending_load_fault.take() {
            None => {
                let evicted = self.cache.insert_weighted(id, bytes);
                self.note_evicted(&evicted);
                anole_obs::counter_add!("cache.cold_loads", 1);
                self.background_load_ms += self.latency.load_ms(tiny);
                true
            }
            Some(LoadFault::Permanent) => {
                self.fault_counts.permanent_load += 1;
                anole_obs::counter_add!("omi.faults.permanent_load", 1);
                self.background_load_ms += self.latency.load_ms(tiny);
                self.exclude(id);
                false
            }
            Some(LoadFault::Corruption) => {
                self.fault_counts.bundle_corruption += 1;
                anole_obs::counter_add!("omi.faults.bundle_corruption", 1);
                // The checksum check rejects the artifact after reading it.
                self.background_load_ms += self.latency.load_ms(tiny);
                self.exclude(id);
                false
            }
            Some(LoadFault::Transient) => {
                self.fault_counts.transient_load += 1;
                anole_obs::counter_add!("omi.faults.transient_load", 1);
                let mut cost = self.latency.load_retry_ms(tiny, 0);
                let mut attempt = 1u32;
                let mut loaded = false;
                while attempt < MAX_LOAD_ATTEMPTS {
                    self.retries += 1;
                    anole_obs::counter_add!("omi.load.retries", 1);
                    cost += self.latency.load_retry_ms(tiny, attempt);
                    let fails_again =
                        self.injector.as_mut().map(FaultInjector::retry_fails).unwrap_or(false);
                    if !fails_again {
                        loaded = true;
                        break;
                    }
                    attempt += 1;
                }
                self.background_load_ms += cost;
                if loaded {
                    let evicted = self.cache.insert_weighted(id, bytes);
                    self.note_evicted(&evicted);
                    anole_obs::counter_add!("cache.cold_loads", 1);
                } else {
                    self.strikes_total += 1;
                    if let Some(strikes) = self.load_strikes.get_mut(id) {
                        *strikes += 1;
                        if *strikes >= MAX_LOAD_STRIKES {
                            self.exclude(id);
                        }
                    }
                }
                loaded
            }
        }
    }

    /// Serves a deadline-shed frame by replaying the last-good detections
    /// (all-clear before any good frame). The serving gateway calls this
    /// when a queued frame ages past its latency budget: the frame runs no
    /// model, draws no injector faults, and counts against the health
    /// ladder at fallback depth 3 — so sustained shedding degrades the
    /// session to `Critical` exactly like any other starved stream.
    pub fn replay_last_good(&mut self) -> StepOutcome {
        self.degraded_replay(0)
    }

    /// Serves a frame no model can process by replaying the last-good
    /// detections (all-clear before any good frame). Runs no model, so the
    /// usage log and latency accounting are untouched; the frame costs one
    /// watchdog tick.
    fn degraded_replay(&mut self, injected: u32) -> StepOutcome {
        let cells = self.system.repository().model(0).net.output_dim();
        let detections = self.last_good.clone().unwrap_or_else(|| vec![false; cells]);
        let reference = self.usage_log.last().copied().or(self.pinned).unwrap_or(0);
        self.finish_step(StepOutcome {
            requested: reference,
            used: reference,
            cache_hit: false,
            detections,
            models_executed: 0,
            latency_ms: self.latency.mean_inference_ms(ReferenceModel::DecisionMlp),
            suitability: 0.0,
            health: self.health,
            fallback_depth: 3,
            faults: injected,
            precision: Precision::Fp32,
            prefetch_issued: false,
            prefetch_hit: false,
        })
    }

    /// Advances the health ladder and per-run counters, stamping the final
    /// health state into the outcome.
    fn finish_step(&mut self, mut outcome: StepOutcome) -> StepOutcome {
        let previous_health = self.health;
        if outcome.fallback_depth >= 2 {
            self.health = HealthState::Critical;
            self.clean_streak = 0;
        } else if outcome.faults > 0 {
            if self.health == HealthState::Healthy {
                self.health = HealthState::Degraded;
            }
            self.clean_streak = 0;
        } else {
            self.clean_streak += 1;
            if self.clean_streak >= RECOVERY_FRAMES {
                let excluded_any = self.excluded.iter().any(|&e| e);
                self.health = match self.health {
                    HealthState::Critical => {
                        self.clean_streak = 0;
                        HealthState::Degraded
                    }
                    HealthState::Degraded if !excluded_any => HealthState::Healthy,
                    other => other,
                };
            }
        }
        self.frames_total += 1;
        self.frames_by_state[self.health.index()] += 1;
        self.fallback_depths[outcome.fallback_depth.min(3)] += 1;
        outcome.health = self.health;
        anole_obs::counter_add!("omi.step.frames", 1);
        anole_obs::histogram_record!(
            "omi.step.latency_ms",
            anole_obs::LATENCY_MS_BOUNDS,
            f64::from(outcome.latency_ms)
        );
        anole_obs::histogram_record!(
            "omi.fallback.depth",
            anole_obs::DEPTH_BOUNDS,
            outcome.fallback_depth as f64
        );
        if self.health != previous_health {
            anole_obs::counter_add!("omi.health.transitions", 1);
        }
        anole_obs::gauge_set!("omi.health.state", self.health.index() as f64);
        if outcome.precision == Precision::Int8 {
            anole_obs::counter_add!("omi.engine.quant.frames_i8", 1);
        }
        anole_obs::gauge_set!(
            "omi.engine.quant.resident",
            self.quantized_resident() as f64
        );
        if let Some(ring) = &mut self.flight {
            ring.push(FlightFrame {
                frame: (self.frames_total - 1) as u32,
                requested: outcome.requested.min(usize::from(u16::MAX)) as u16,
                used: outcome.used.min(usize::from(u16::MAX)) as u16,
                cache_hit: outcome.cache_hit,
                fallback_depth: outcome.fallback_depth.min(3) as u8,
                models_executed: outcome.models_executed.min(usize::from(u8::MAX)) as u8,
                faults: outcome.faults.min(u32::from(u8::MAX)) as u8,
                health: outcome.health,
                precision: outcome.precision,
                prefetch_issued: outcome.prefetch_issued,
                prefetch_hit: outcome.prefetch_hit,
                latency_ms: outcome.latency_ms,
                suitability: outcome.suitability,
            });
        }
        outcome
    }

    /// Number of cache-resident models currently serving at int8.
    pub fn quantized_resident(&self) -> usize {
        self.cache
            .iter()
            .filter(|&&id| {
                self.system.repository().model(id).serving_precision() == Precision::Int8
            })
            .count()
    }

    /// Runs one frame through the full Anole pipeline.
    ///
    /// # Errors
    ///
    /// * [`AnoleError::InvalidFrame`] if `features` has the wrong width or
    ///   contains NaN/Inf values (they would poison the decision scores).
    /// * [`AnoleError::FaultExhausted`] if every model is excluded and
    ///   neither a pinned fallback nor last-good detections exist.
    pub fn step(&mut self, features: &[f32]) -> Result<StepOutcome, AnoleError> {
        self.step_inner(features, None)
    }

    /// As [`OnlineEngine::step`], but with this frame's raw suitability
    /// probabilities computed externally — the serving gateway stacks frames
    /// from many sessions into one batched `M_decision` forward and hands
    /// each engine its row. Because the batched decision forward is bit-
    /// identical per row to the row-vector path, `step_with_scores(x, row)`
    /// is bit-identical to `step(x)` when `row` is the engine's own scoring
    /// of `x`. Smoothing, ranking, cache traffic, hedging, and latency
    /// pricing all still happen inside the engine.
    ///
    /// # Errors
    ///
    /// As [`OnlineEngine::step`], plus [`AnoleError::InvalidFrame`] when
    /// `scores` does not have one entry per repository model.
    pub fn step_with_scores(
        &mut self,
        features: &[f32],
        scores: &[f32],
    ) -> Result<StepOutcome, AnoleError> {
        let expected = self.system.repository().len();
        if scores.len() != expected {
            return Err(AnoleError::InvalidFrame {
                detail: format!(
                    "suitability width {} but the repository holds {expected} models",
                    scores.len()
                ),
            });
        }
        self.step_inner(features, Some(scores))
    }

    fn step_inner(
        &mut self,
        features: &[f32],
        external_scores: Option<&[f32]>,
    ) -> Result<StepOutcome, AnoleError> {
        let _span = anole_obs::span!("omi.engine.step");
        let expected = self.system.decision().network().input_dim();
        if features.len() != expected {
            return Err(AnoleError::InvalidFrame {
                detail: format!(
                    "feature width {} but the engine expects {expected}",
                    features.len()
                ),
            });
        }
        if let Some(position) = features.iter().position(|v| !v.is_finite()) {
            return Err(AnoleError::InvalidFrame {
                detail: format!("non-finite value at feature {position}"),
            });
        }
        self.stage_row(features);

        let faults = match self.injector.as_mut() {
            Some(injector) => injector.next_frame(),
            None => FrameFaults::default(),
        };
        let injected = faults.count();

        // Memory pressure lands before anything touches the cache.
        if let Some(capacity) = faults.memory_pressure {
            self.fault_counts.memory_pressure += 1;
            anole_obs::counter_add!("omi.faults.memory_pressure", 1);
            let evicted = self.cache.set_capacity(capacity);
            anole_obs::counter_add!("omi.cache.pressure_evicted", evicted.len() as u64);
            self.note_evicted(&evicted);
            self.pressure_evicted.extend(evicted);
        }
        // A load fault arms the next load attempt, whenever that happens.
        if let Some(incoming) = faults.load_fault {
            self.pending_load_fault = Some(match self.pending_load_fault {
                None | Some(LoadFault::Transient) => incoming,
                Some(existing) => existing,
            });
        }
        // An unusable frame cannot run any model — not even the decision
        // stage. Replay the last-good detections.
        if faults.sensor_dropout || faults.nan_frame {
            if faults.sensor_dropout {
                self.fault_counts.sensor_dropout += 1;
                anole_obs::counter_add!("omi.faults.sensor_dropout", 1);
            }
            if faults.nan_frame {
                self.fault_counts.nan_frames += 1;
                anole_obs::counter_add!("omi.faults.nan_frames", 1);
            }
            return Ok(self.degraded_replay(injected));
        }

        // MSS: rank models by (temporally smoothed) suitability. A decision
        // anomaly discards this frame's garbage scores and reuses the last
        // smoothed vector instead of letting nonsense steer routing.
        let smoothed = if faults.decision_anomaly {
            self.fault_counts.decision_anomaly += 1;
            anole_obs::counter_add!("omi.faults.decision_anomaly", 1);
            match self.smoothed_suitability.take() {
                Some(previous) => previous,
                // No trustworthy scores exist yet: serve degraded.
                None => return Ok(self.degraded_replay(injected)),
            }
        } else {
            let current: &[f32] = match external_scores {
                Some(scores) => scores,
                None => self.system.decision().suitability_ws(&self.row, &mut self.ws)?.row(0),
            };
            let alpha = self
                .system
                .config()
                .decision
                .suitability_smoothing
                .clamp(0.0, 0.999);
            match self.smoothed_suitability.take() {
                Some(mut prev) if prev.len() == current.len() && alpha > 0.0 => {
                    for (p, &c) in prev.iter_mut().zip(current.iter()) {
                        *p = alpha * *p + (1.0 - alpha) * c;
                    }
                    prev
                }
                _ => current.to_vec(),
            }
        };
        let mut ranking: Vec<usize> = (0..smoothed.len()).collect();
        ranking.sort_by(|&a, &b| {
            smoothed[b]
                .partial_cmp(&smoothed[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        ranking.retain(|&id| !self.is_excluded(id));
        let requested = match ranking.first() {
            Some(&id) => id,
            None => {
                // Every model excluded: survive on the pinned fallback or
                // last-good detections, or report genuine exhaustion.
                self.smoothed_suitability = Some(smoothed);
                if self.pinned.is_none() && self.last_good.is_none() {
                    return Err(AnoleError::FaultExhausted {
                        detail: format!(
                            "all {} models excluded, no pinned fallback, no last-good detections",
                            self.excluded.len()
                        ),
                    });
                }
                return match self.pinned {
                    Some(pinned) => self.serve_pinned(features, pinned, injected),
                    None => Ok(self.degraded_replay(injected)),
                };
            }
        };
        let suitability = smoothed[requested];
        self.smoothed_suitability = Some(smoothed);
        // The transition model learns the ranked-model stream on every
        // frame (an O(1) counter bump), prefetch on or off — only the
        // prefetcher *reads* its predictions, so learning is output-neutral.
        self.transition.observe(requested);

        // CMD: serve from cache, LFU-update on miss.
        let pinned_hit = self.pinned == Some(requested);
        let cache_hit = self.cache.touch(&requested) || pinned_hit;
        if self.prefetch_pending.take() == Some(requested) && !cache_hit {
            // The prefetcher predicted this model but had no idle budget to
            // load it: a late prefetch, not a mispredict.
            self.prefetch_stats.late += 1;
            anole_obs::counter_add!("omi.engine.prefetch.late", 1);
        }
        let prefetch_hit = cache_hit && self.note_prefetch_use(requested);
        let mut sync_load_ms = 0.0;
        let used = if cache_hit {
            requested
        } else {
            let fallback = ranking.iter().copied().find(|&id| self.resident(id));
            // Background-load the requested model for future frames (an
            // injected load fault fails it here).
            let loaded = self.attempt_load(requested);
            match fallback {
                Some(id) => {
                    self.cache.refresh(&id);
                    self.note_prefetch_use(id);
                    id
                }
                None if loaded => {
                    // Nothing resident at all: stall on the load.
                    anole_obs::counter_add!("omi.load.sync_stalls", 1);
                    sync_load_ms = self.latency.load_ms(ReferenceModel::Yolov3Tiny);
                    requested
                }
                None => {
                    // Load failed with an empty cache: replay last-good.
                    return Ok(self.degraded_replay(injected));
                }
            }
        };

        // MI: run the chosen compressed model — or, on a low-confidence
        // frame, hedge across the top-k cached models (a low top-1
        // suitability signals that no single well-fitting model exists,
        // §II case 3).
        let threshold = self.system.config().detector.threshold;
        let decision_cfg = self.system.config().decision;
        let smoothed = self.smoothed_suitability.as_ref().expect("set above");
        let mut executed = vec![used];
        let fuse_limit = self.models_per_frame_limit();
        if fuse_limit > 1 && suitability < decision_cfg.confidence_threshold {
            for &id in &ranking {
                if executed.len() >= fuse_limit {
                    break;
                }
                if id != used && self.resident(id) {
                    executed.push(id);
                }
            }
        }
        let detections = if executed.len() == 1 {
            let probs = self
                .system
                .repository()
                .model(used)
                .detect_probs_ws(&self.row, &mut self.ws)?;
            anole_detect::threshold_probs(probs.row(0), threshold)
        } else {
            let mut fused: Vec<f32> = Vec::new();
            let mut weight_sum = 0.0f32;
            for &id in &executed {
                let probs = self
                    .system
                    .repository()
                    .model(id)
                    .detect_probs_ws(&self.row, &mut self.ws)?;
                let w = smoothed[id].max(1e-6);
                if fused.is_empty() {
                    fused = vec![0.0; probs.cols()];
                }
                for (f, &p) in fused.iter_mut().zip(probs.row(0).iter()) {
                    *f += w * p;
                }
                weight_sum += w;
            }
            fused.iter_mut().for_each(|f| *f /= weight_sum.max(1e-6));
            // Averaging dilutes the confident model's positives; compensate
            // with a slightly lower detection threshold on fused maps.
            anole_detect::threshold_probs(&fused, threshold * 0.85)
        };

        let mut latency_ms = self.latency.scene_decision_ms(&mut self.rng) + sync_load_ms;
        for _ in &executed {
            latency_ms += self.latency.inference_ms(ReferenceModel::Yolov3Tiny, &mut self.rng);
        }
        for i in 1..executed.len() {
            let id = executed[i];
            self.cache.refresh(&id);
            self.note_prefetch_use(id);
        }

        self.usage_log.push(used);
        self.total_latency_ms += latency_ms as f64;
        if executed.len() > 1 {
            self.hedged_frames += 1;
        }
        let fallback_depth = if used == requested {
            0
        } else if self.cache.contains(&used) {
            1
        } else {
            2
        };
        self.last_good = Some(detections.clone());
        // The prefetcher runs last: routing, detections, and the frame's
        // latency are already fixed, so issuing (or not issuing) a
        // background load cannot change this frame's predictions.
        let prefetch_issued = self.maybe_prefetch(requested, latency_ms);
        Ok(self.finish_step(StepOutcome {
            requested,
            used,
            cache_hit,
            detections,
            models_executed: executed.len(),
            latency_ms,
            suitability,
            health: self.health,
            fallback_depth,
            faults: injected,
            precision: self.system.repository().model(used).serving_precision(),
            prefetch_issued,
            prefetch_hit,
        }))
    }

    /// Serves a frame directly from the pinned fallback model (fallback
    /// depth 2): one decision-free inference, no cache traffic.
    fn serve_pinned(
        &mut self,
        features: &[f32],
        pinned: usize,
        injected: u32,
    ) -> Result<StepOutcome, AnoleError> {
        let threshold = self.system.config().detector.threshold;
        self.stage_row(features);
        let probs = self
            .system
            .repository()
            .model(pinned)
            .detect_probs_ws(&self.row, &mut self.ws)?;
        let detections = anole_detect::threshold_probs(probs.row(0), threshold);
        let latency_ms = self.latency.inference_ms(ReferenceModel::Yolov3Tiny, &mut self.rng);
        self.usage_log.push(pinned);
        self.total_latency_ms += latency_ms as f64;
        self.last_good = Some(detections.clone());
        Ok(self.finish_step(StepOutcome {
            requested: pinned,
            used: pinned,
            cache_hit: false,
            detections,
            models_executed: 1,
            latency_ms,
            suitability: 0.0,
            health: self.health,
            fallback_depth: 2,
            faults: injected,
            precision: self.system.repository().model(pinned).serving_precision(),
            prefetch_issued: false,
            prefetch_hit: false,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::omi::faults::{FaultKind, FaultPlan};
    use crate::AnoleConfig;
    use anole_data::{DatasetConfig, DrivingDataset};

    fn system() -> (DrivingDataset, AnoleSystem) {
        let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(71));
        let system = AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(72)).unwrap();
        (dataset, system)
    }

    #[test]
    fn step_produces_consistent_outcome() {
        let (dataset, system) = system();
        let mut engine = OnlineEngine::new(&system, DeviceKind::JetsonTx2Nx, Seed(73));
        let split = dataset.split();
        let frame = dataset.frame(split.test[0]);
        let out = engine.step(&frame.features).unwrap();
        assert!(out.requested < system.repository().len());
        assert!(out.used < system.repository().len());
        assert_eq!(out.detections.len(), dataset.config().world.grid.cells());
        assert!(out.latency_ms > 0.0);
        assert!(out.suitability > 0.0 && out.suitability <= 1.0);
        assert_eq!(out.health, HealthState::Healthy);
        assert_eq!(out.faults, 0);
        assert_eq!(engine.usage_log().len(), 1);
    }

    #[test]
    fn first_step_on_cold_cache_is_a_synchronous_load() {
        let (dataset, system) = system();
        let mut engine = OnlineEngine::new(&system, DeviceKind::JetsonNano, Seed(74));
        let split = dataset.split();
        let frame = dataset.frame(split.test[0]);
        let out = engine.step(&frame.features).unwrap();
        assert!(!out.cache_hit);
        assert_eq!(out.used, out.requested);
        assert_eq!(out.fallback_depth, 0);
        // Nano loads 34 MB at 80 MB/s → ~425 ms stall.
        assert!(out.latency_ms > 300.0, "latency {}", out.latency_ms);
    }

    #[test]
    fn warm_cache_avoids_the_stall() {
        let (dataset, system) = system();
        let mut engine = OnlineEngine::new(&system, DeviceKind::JetsonTx2Nx, Seed(75));
        engine.warm(&(0..system.repository().len()).collect::<Vec<_>>());
        let split = dataset.split();
        let frame = dataset.frame(split.test[0]);
        let out = engine.step(&frame.features).unwrap();
        assert!(out.cache_hit || out.used != out.requested || out.latency_ms < 100.0);
        // Paper: ~13.9 ms on TX2 (3.1 decision + 10.8 tiny); with the
        // default top-2 hedge a frame costs at most 3.1 + 2 x 10.8 ms.
        assert!(out.latency_ms < 40.0, "latency {}", out.latency_ms);
    }

    #[test]
    fn misses_fall_back_to_best_cached_model() {
        let (dataset, system) = system();
        if system.repository().len() < 2 {
            return; // cannot exercise fallback with a single model
        }
        let mut engine = OnlineEngine::new(&system, DeviceKind::JetsonTx2Nx, Seed(76));
        let split = dataset.split();
        // Run the whole test stream with a tiny cache; any miss after the
        // first frame must be served by a resident model.
        let mut engine_cache_one = {
            let mut sys_cfg = *system.config();
            sys_cfg.cache.capacity = 1;
            engine.cache = ShardedSlotCache::new(1, 1, sys_cfg.cache.policy);
            engine
        };
        let mut fallbacks = 0;
        for r in split.test.iter().take(60) {
            let out = engine_cache_one.step(&dataset.frame(*r).features).unwrap();
            if !out.cache_hit && out.used != out.requested {
                assert_eq!(out.fallback_depth, 1);
                fallbacks += 1;
            }
        }
        let stats = engine_cache_one.cache_stats();
        assert_eq!(stats.lookups(), 60);
        if stats.misses > 1 {
            assert!(fallbacks > 0, "fallback path never exercised: {stats}");
            assert!(engine_cache_one.background_load_ms() > 0.0);
        }
    }

    #[test]
    fn latency_budget_bounds_models_per_frame() {
        let (dataset, system) = system();
        let split = dataset.split();

        // A budget below one tiny inference still runs one model.
        let mut tight = OnlineEngine::new(&system, DeviceKind::JetsonTx2Nx, Seed(80))
            .with_latency_budget(8.0);
        assert_eq!(tight.models_per_frame_limit(), 1);
        tight.warm(&(0..system.repository().len()).collect::<Vec<_>>());
        for r in split.test.iter().take(40) {
            let out = tight.step(&dataset.frame(*r).features).unwrap();
            assert_eq!(out.models_executed, 1);
        }
        // Mean within ~budget plus the decision stage floor.
        assert!(tight.mean_latency_ms() < 16.0, "{}", tight.mean_latency_ms());

        // A generous budget allows up to the clamp of 4.
        let roomy = OnlineEngine::new(&system, DeviceKind::JetsonTx2Nx, Seed(81))
            .with_latency_budget(50.0);
        assert_eq!(roomy.models_per_frame_limit(), 4);

        // No budget: the configured hedge_top_k applies.
        let default = OnlineEngine::new(&system, DeviceKind::JetsonTx2Nx, Seed(82));
        assert_eq!(
            default.models_per_frame_limit(),
            system.config().decision.hedge_top_k
        );
    }

    #[test]
    fn budgeted_engine_stays_under_budget_on_average() {
        let (dataset, system) = system();
        let split = dataset.split();
        for budget in [15.0f32, 26.0, 40.0] {
            let mut engine = OnlineEngine::new(&system, DeviceKind::JetsonTx2Nx, Seed(83))
                .with_latency_budget(budget);
            engine.warm(&(0..system.repository().len()).collect::<Vec<_>>());
            for r in split.test.iter().take(60) {
                engine.step(&dataset.frame(*r).features).unwrap();
            }
            assert!(
                engine.mean_latency_ms() <= budget * 1.1,
                "budget {budget}: mean {}",
                engine.mean_latency_ms()
            );
        }
    }

    #[test]
    #[should_panic(expected = "latency budget must be positive")]
    fn zero_budget_is_rejected() {
        let (_, system) = system();
        let _ = OnlineEngine::new(&system, DeviceKind::JetsonTx2Nx, Seed(84))
            .with_latency_budget(0.0);
    }

    #[test]
    fn usage_log_tracks_every_step() {
        let (dataset, system) = system();
        let mut engine = OnlineEngine::new(&system, DeviceKind::Laptop, Seed(77));
        let split = dataset.split();
        for r in split.test.iter().take(20) {
            engine.step(&dataset.frame(*r).features).unwrap();
        }
        assert_eq!(engine.usage_log().len(), 20);
        assert!(engine.usage_log().iter().all(|&id| id < system.repository().len()));
    }

    #[test]
    fn wrong_width_and_non_finite_frames_are_rejected() {
        let (dataset, system) = system();
        let mut engine = OnlineEngine::new(&system, DeviceKind::JetsonTx2Nx, Seed(170));
        let frame = dataset.frame(dataset.split().test[0]);

        let err = engine.step(&frame.features[..frame.features.len() - 1]).unwrap_err();
        assert!(matches!(err, AnoleError::InvalidFrame { .. }), "{err}");
        assert!(err.to_string().contains("feature width"));

        let mut poisoned = frame.features.clone();
        poisoned[2] = f32::NAN;
        let err = engine.step(&poisoned).unwrap_err();
        assert!(matches!(err, AnoleError::InvalidFrame { .. }), "{err}");
        assert!(err.to_string().contains("feature 2"));

        let mut inf = frame.features.clone();
        inf[0] = f32::INFINITY;
        assert!(engine.step(&inf).is_err());
        // Rejected frames leave no trace in the engine.
        assert_eq!(engine.usage_log().len(), 0);
        assert_eq!(engine.health_report().frames, 0);
    }

    #[test]
    fn zero_fault_injector_is_bit_identical_to_plain_engine() {
        let (dataset, system) = system();
        let split = dataset.split();
        let mut plain = OnlineEngine::new(&system, DeviceKind::JetsonTx2Nx, Seed(200));
        let mut chaos = OnlineEngine::new(&system, DeviceKind::JetsonTx2Nx, Seed(200))
            .with_fault_injector(FaultPlan::new(Seed(201)).injector());
        for r in split.test.iter().take(40) {
            let features = &dataset.frame(*r).features;
            let a = plain.step(features).unwrap();
            let b = chaos.step(features).unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(plain.cache_stats(), chaos.cache_stats());
        assert_eq!(plain.background_load_ms(), chaos.background_load_ms());
        assert_eq!(chaos.health(), HealthState::Healthy);
        assert_eq!(chaos.health_report().faults.total(), 0);
    }

    #[test]
    fn sensor_dropout_replays_last_good_detections() {
        let (dataset, system) = system();
        let split = dataset.split();
        let plan = FaultPlan::new(Seed(210)).at(1, FaultKind::SensorDropout);
        let mut engine = OnlineEngine::new(&system, DeviceKind::JetsonTx2Nx, Seed(211))
            .with_fault_injector(plan.injector());
        engine.warm(&(0..system.repository().len()).collect::<Vec<_>>());

        let good = engine.step(&dataset.frame(split.test[0]).features).unwrap();
        let dropped = engine.step(&dataset.frame(split.test[1]).features).unwrap();
        assert_eq!(dropped.models_executed, 0);
        assert_eq!(dropped.fallback_depth, 3);
        assert_eq!(dropped.detections, good.detections);
        assert_eq!(dropped.health, HealthState::Critical);
        assert_eq!(dropped.faults, 1);
        // The dropped frame ran no model.
        assert_eq!(engine.usage_log().len(), 1);
        let report = engine.health_report();
        assert_eq!(report.faults.sensor_dropout, 1);
        assert_eq!(report.fallback_depths[3], 1);
        assert_eq!(report.frames, 2);
    }

    #[test]
    fn first_frame_dropout_serves_all_clear() {
        let (dataset, system) = system();
        let plan = FaultPlan::new(Seed(212)).at(0, FaultKind::NanFrame);
        let mut engine = OnlineEngine::new(&system, DeviceKind::JetsonTx2Nx, Seed(213))
            .with_fault_injector(plan.injector());
        let out = engine.step(&dataset.frame(dataset.split().test[0]).features).unwrap();
        assert!(out.detections.iter().all(|&d| !d));
        assert_eq!(out.models_executed, 0);
        assert_eq!(engine.health_report().faults.nan_frames, 1);
    }

    #[test]
    fn memory_pressure_shrinks_the_cache_mid_stream() {
        let (dataset, system) = system();
        let split = dataset.split();
        let plan = FaultPlan::new(Seed(220)).at(5, FaultKind::MemoryPressure { capacity: 1 });
        let mut engine = OnlineEngine::new(&system, DeviceKind::JetsonTx2Nx, Seed(221))
            .with_fault_injector(plan.injector());
        engine.warm(&(0..system.repository().len()).collect::<Vec<_>>());
        for r in split.test.iter().take(12) {
            engine.step(&dataset.frame(*r).features).unwrap();
        }
        assert!(engine.cache_stats().evictions as usize >= system.repository().len() - 1);
        assert_eq!(engine.health_report().faults.memory_pressure, 1);
        assert!(engine.health_report().frames_by_state[1] > 0, "never degraded");
    }

    #[test]
    fn permanent_load_failures_exclude_models_and_pinned_survives() {
        let (dataset, system) = system();
        if system.repository().len() < 2 {
            return;
        }
        let split = dataset.split();
        // Pin a model that is NOT the first frame's top pick, so the first
        // request is guaranteed to go through the (failing) load path.
        let top = {
            let mut probe = OnlineEngine::new(&system, DeviceKind::JetsonTx2Nx, Seed(229));
            probe.step(&dataset.frame(split.test[0]).features).unwrap().requested
        };
        let pinned = (top + 1) % system.repository().len();
        let plan = FaultPlan::new(Seed(230)).with_permanent_load_rate(1.0);
        let mut engine = OnlineEngine::new(&system, DeviceKind::JetsonTx2Nx, Seed(231))
            .with_fault_injector(plan.injector())
            .with_pinned_fallback(pinned);
        // Cold cache + every load failing: the engine must keep serving.
        let mut outcomes = Vec::new();
        for r in split.test.iter().take(40) {
            outcomes.push(engine.step(&dataset.frame(*r).features).unwrap());
        }
        let report = engine.health_report();
        assert!(report.faults.permanent_load > 0);
        assert!(report.excluded_models.contains(&top));
        // The pinned model is immune to exclusion.
        assert!(!engine.is_excluded(pinned));
        assert!(!report.excluded_models.contains(&pinned));
        // Every frame was still served, some by the pinned fallback.
        assert_eq!(outcomes.len(), 40);
        assert!(outcomes.iter().all(|o| !o.detections.is_empty()));
        assert!(outcomes.iter().any(|o| o.fallback_depth >= 2));
        // The first frame already fell through to the pinned tier, and with
        // faults on every frame the engine never recovers from Critical.
        assert_eq!(engine.health(), HealthState::Critical);
    }

    #[test]
    fn exhaustion_without_any_fallback_is_a_typed_error() {
        let (dataset, system) = system();
        let split = dataset.split();
        let plan = FaultPlan::new(Seed(240)).with_permanent_load_rate(1.0);
        let mut engine = OnlineEngine::new(&system, DeviceKind::JetsonTx2Nx, Seed(241))
            .with_fault_injector(plan.injector());
        // No pinned fallback, no warm cache, no last-good: every step fails
        // its load until all models are excluded, then the engine reports
        // exhaustion instead of panicking.
        let mut saw_exhaustion = false;
        for r in split.test.iter().take(system.repository().len() + 2) {
            match engine.step(&dataset.frame(*r).features) {
                Ok(out) => assert_eq!(out.models_executed, 0),
                Err(AnoleError::FaultExhausted { .. }) => {
                    saw_exhaustion = true;
                    break;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(saw_exhaustion, "exhaustion never surfaced");
    }

    #[test]
    fn transient_failures_retry_with_priced_backoff() {
        let (dataset, system) = system();
        if system.repository().len() < 2 {
            return;
        }
        let split = dataset.split();
        // A scheduled transient failure on the very first load (the cold
        // cache guarantees frame 0 loads, because the pinned model is picked
        // to differ from frame 0's top-ranked request); with a zero
        // transient *rate* the first retry succeeds deterministically.
        let top = {
            let mut probe = OnlineEngine::new(&system, DeviceKind::JetsonTx2Nx, Seed(249));
            probe.step(&dataset.frame(split.test[0]).features).unwrap().requested
        };
        let plan = FaultPlan::new(Seed(250)).at(0, FaultKind::TransientLoadFailure);
        let mut engine = OnlineEngine::new(&system, DeviceKind::JetsonTx2Nx, Seed(251))
            .with_fault_injector(plan.injector())
            .with_pinned_fallback((top + 1) % system.repository().len());
        for r in split.test.iter().take(60) {
            engine.step(&dataset.frame(*r).features).unwrap();
        }
        let report = engine.health_report();
        assert_eq!(report.faults.transient_load, 1);
        assert!(report.retries > 0, "no retries happened");
        assert_eq!(report.load_strikes, 0, "the retry should have succeeded");
        // Retry backoff is priced into background load time: it must exceed
        // what the same number of clean loads would cost.
        let clean_cost = engine.latency_model().load_ms(ReferenceModel::Yolov3Tiny)
            * engine.cache_stats().insertions as f32;
        assert!(
            engine.background_load_ms() > clean_cost,
            "backoff not priced: {} vs {}",
            engine.background_load_ms(),
            clean_cost
        );
    }

    #[test]
    fn try_warm_surfaces_load_failures() {
        let (dataset, system) = system();
        let split = dataset.split();
        // Exclude a model via a scheduled corruption on the first load.
        let plan = FaultPlan::new(Seed(260)).at(0, FaultKind::BundleCorruption);
        let mut engine = OnlineEngine::new(&system, DeviceKind::JetsonTx2Nx, Seed(261))
            .with_fault_injector(plan.injector());
        let first = engine.step(&dataset.frame(split.test[0]).features).unwrap();
        assert_eq!(first.models_executed, 0, "corrupt first load must not serve a model");
        let report = engine.health_report();
        assert_eq!(report.faults.bundle_corruption, 1);
        let excluded = report.excluded_models[0];
        let err = engine.try_warm(&[excluded]).unwrap_err();
        assert!(matches!(err, AnoleError::ModelLoadFailed { model, .. } if model == excluded));
        // Non-excluded models warm fine.
        let ok_ids: Vec<usize> =
            (0..system.repository().len()).filter(|&id| id != excluded).collect();
        engine.try_warm(&ok_ids).unwrap();
    }

    #[test]
    fn step_with_scores_matches_step_bit_for_bit() {
        use anole_nn::Workspace;

        let (dataset, system) = system();
        let split = dataset.split();
        let mut plain = OnlineEngine::new(&system, DeviceKind::JetsonTx2Nx, Seed(300));
        let mut external = OnlineEngine::new(&system, DeviceKind::JetsonTx2Nx, Seed(300));
        plain.warm(&(0..system.repository().len()).collect::<Vec<_>>());
        external.warm(&(0..system.repository().len()).collect::<Vec<_>>());
        let mut ws = Workspace::new();
        for r in split.test.iter().take(40) {
            let features = &dataset.frame(*r).features;
            let row = Matrix::row_vector(features);
            let scores =
                system.decision().suitability_ws(&row, &mut ws).unwrap().row(0).to_vec();
            let a = plain.step(features).unwrap();
            let b = external.step_with_scores(features, &scores).unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(plain.cache_stats(), external.cache_stats());
        assert_eq!(plain.mean_latency_ms(), external.mean_latency_ms());
        assert_eq!(plain.usage_log(), external.usage_log());

        // A wrong-width score vector is rejected, not misread.
        let frame = dataset.frame(split.test[0]);
        let err = external.step_with_scores(&frame.features, &[0.5]).unwrap_err();
        assert!(matches!(err, AnoleError::InvalidFrame { .. }), "{err}");
    }

    #[test]
    fn disabled_loads_ride_the_fallback_chain() {
        let (dataset, system) = system();
        let split = dataset.split();
        let mut engine = OnlineEngine::new(&system, DeviceKind::JetsonTx2Nx, Seed(310))
            .with_pinned_fallback(0);
        assert!(engine.loads_enabled());
        engine.set_loads_enabled(false);
        // Cold cache + loads disabled: every frame is served by the pinned
        // fallback (directly, or at depth 0 when the pinned model is the
        // top pick), and no load is ever attempted or priced.
        for r in split.test.iter().take(20) {
            let out = engine.step(&dataset.frame(*r).features).unwrap();
            assert!(
                out.fallback_depth >= 2 || out.used == 0,
                "depth {} used {}",
                out.fallback_depth,
                out.used
            );
        }
        assert_eq!(engine.load_attempt_count(), 0);
        assert_eq!(engine.load_failure_count(), 0);
        assert_eq!(engine.background_load_ms(), 0.0);
        assert_eq!(engine.cache_stats().insertions, 0);
        // Warming through the fault machinery surfaces the suppression as a
        // typed load failure rather than papering over it.
        if system.repository().len() >= 2 {
            let err = engine.try_warm(&[1]).unwrap_err();
            assert!(matches!(err, AnoleError::ModelLoadFailed { model: 1, .. }), "{err}");
            // Re-enabling loads resumes normal operation.
            engine.set_loads_enabled(true);
            engine.try_warm(&[1]).unwrap();
            assert!(engine.load_attempt_count() > 0);
            assert!(engine.background_load_ms() > 0.0);
        }
    }

    #[test]
    fn pressure_evictions_are_accounted_not_dropped() {
        let (dataset, system) = system();
        if system.repository().len() < 2 {
            return;
        }
        let split = dataset.split();
        let plan = FaultPlan::new(Seed(320)).at(3, FaultKind::MemoryPressure { capacity: 1 });
        let mut engine = OnlineEngine::new(&system, DeviceKind::JetsonTx2Nx, Seed(321))
            .with_fault_injector(plan.injector());
        engine.warm(&(0..system.repository().len()).collect::<Vec<_>>());
        for r in split.test.iter().take(8) {
            engine.step(&dataset.frame(*r).features).unwrap();
        }
        let evicted = engine.pressure_evicted();
        assert_eq!(evicted.len(), system.repository().len() - 1);
        assert_eq!(engine.cache_stats().capacity_evictions as usize, evicted.len());
        assert_eq!(engine.health_report().pressure_evicted, evicted);
        // Pressure evictions are a subset of total evictions.
        assert!(engine.cache_stats().evictions >= engine.cache_stats().capacity_evictions);
    }

    /// A fast-config system whose every model passed the quantization gate
    /// (ε = 1.0 admits any finite F1 delta; these tests exercise the serving
    /// plumbing, not the gate itself).
    fn quantized_system(data_seed: u64, train_seed: u64) -> (DrivingDataset, AnoleSystem) {
        let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(data_seed));
        let mut cfg = AnoleConfig::fast();
        cfg.quant.epsilon_f1 = 1.0;
        let mut system = AnoleSystem::train(&dataset, &cfg, Seed(train_seed)).unwrap();
        let report = system.quantize_models(&dataset).unwrap();
        assert_eq!(report.accepted.len(), system.repository().len());
        assert!(report.decision_quantized);
        (dataset, system)
    }

    #[test]
    fn outcome_precision_tracks_the_serving_model() {
        let (dataset, system) = quantized_system(330, 331);
        let mut engine = OnlineEngine::new(&system, DeviceKind::JetsonTx2Nx, Seed(332));
        engine.warm(&(0..system.repository().len()).collect::<Vec<_>>());
        let split = dataset.split();
        for r in split.test.iter().take(20) {
            let out = engine.step(&dataset.frame(*r).features).unwrap();
            assert_eq!(
                out.precision,
                system.repository().model(out.used).serving_precision()
            );
            assert_eq!(out.precision, Precision::Int8);
        }
        assert_eq!(engine.quantized_resident(), engine.cache.len());
    }

    #[test]
    fn quantized_models_pack_denser_under_a_byte_budget() {
        let (dataset, mut int8) = quantized_system(340, 341);
        if int8.repository().len() < 4 {
            return; // too few specialists to demonstrate 3× packing
        }
        // The f32 twin of the same system: same nets, no quantized models.
        let mut fp32 = {
            let mut cfg = AnoleConfig::fast();
            cfg.quant.epsilon_f1 = 1.0;
            AnoleSystem::train(&dataset, &cfg, Seed(341)).unwrap()
        };
        let model_bytes = fp32.repository().model(0).serving_bytes();
        assert!(int8.repository().model(0).serving_bytes() * 3 < model_bytes);

        // A budget that fits exactly one f32 specialist.
        let mut cache_cfg = crate::CacheConfig::default();
        cache_cfg.capacity = 64;
        cache_cfg.byte_budget = Some(model_bytes + model_bytes / 3);
        fp32.set_cache_config(cache_cfg);
        int8.set_cache_config(cache_cfg);

        let all: Vec<usize> = (0..fp32.repository().len()).collect();
        let mut e_fp = OnlineEngine::new(&fp32, DeviceKind::JetsonTx2Nx, Seed(342));
        let mut e_i8 = OnlineEngine::new(&int8, DeviceKind::JetsonTx2Nx, Seed(342));
        e_fp.warm(&all);
        e_i8.warm(&all);
        assert_eq!(e_fp.cache.len(), 1, "budget sized for one f32 model");
        assert!(
            e_i8.cache.len() >= 3 * e_fp.cache.len(),
            "int8 {} vs fp32 {} resident at the same byte budget",
            e_i8.cache.len(),
            e_fp.cache.len()
        );
        assert_eq!(e_i8.quantized_resident(), e_i8.cache.len());
        assert_eq!(e_fp.quantized_resident(), 0);
        let budget = cache_cfg.byte_budget.unwrap();
        assert!(e_fp.cache_stats().resident_bytes <= budget);
        assert!(e_i8.cache_stats().resident_bytes <= budget);
    }

    #[test]
    fn engine_recovers_health_after_a_fault_burst() {
        let (dataset, system) = system();
        let split = dataset.split();
        // One dropout burst early, then a clean stream.
        let plan = FaultPlan::new(Seed(270))
            .at(2, FaultKind::SensorDropout)
            .at(3, FaultKind::SensorDropout);
        let mut engine = OnlineEngine::new(&system, DeviceKind::JetsonTx2Nx, Seed(271))
            .with_fault_injector(plan.injector());
        engine.warm(&(0..system.repository().len()).collect::<Vec<_>>());
        for r in split.test.iter().take(40) {
            engine.step(&dataset.frame(*r).features).unwrap();
        }
        // Dropouts made it Critical; the clean tail walks it back to
        // Healthy (no models were excluded).
        assert_eq!(engine.health(), HealthState::Healthy);
        let report = engine.health_report();
        assert!(report.frames_by_state[2] > 0, "never critical");
        assert!(report.frames_by_state[0] > 0, "never recovered");
        assert!(report.excluded_models.is_empty());
    }

    /// Twin systems differing only in the prefetch config (which training
    /// never reads), so their repositories and decision models are
    /// bit-identical.
    fn prefetch_twins(tune: impl Fn(&mut AnoleConfig)) -> (DrivingDataset, AnoleSystem, AnoleSystem) {
        let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(71));
        let mut cfg = AnoleConfig::fast();
        tune(&mut cfg);
        let off = AnoleSystem::train(&dataset, &cfg, Seed(72)).unwrap();
        cfg.prefetch.enabled = true;
        cfg.prefetch.min_probability = 0.0;
        cfg.prefetch.budget_ms = 10_000.0;
        let on = AnoleSystem::train(&dataset, &cfg, Seed(72)).unwrap();
        (dataset, off, on)
    }

    #[test]
    fn prefetch_is_passive_routing_stays_bit_identical() {
        let (dataset, sys_off, sys_on) = prefetch_twins(|_| {});
        let split = dataset.split();
        let mut off = OnlineEngine::new(&sys_off, DeviceKind::JetsonTx2Nx, Seed(400));
        let mut on = OnlineEngine::new(&sys_on, DeviceKind::JetsonTx2Nx, Seed(400));
        for r in split.test.iter().take(80) {
            let features = &dataset.frame(*r).features;
            let a = off.step(features).unwrap();
            let b = on.step(features).unwrap();
            // Routing is computed before the prefetcher runs: the requested
            // model and its suitability are bit-identical with prefetch on.
            assert_eq!(a.requested, b.requested);
            assert_eq!(a.suitability.to_bits(), b.suitability.to_bits());
        }
        // A disabled prefetcher does nothing at all.
        assert_eq!(off.prefetch_stats(), PrefetchStats::default());
        assert!(!off
            .usage_log()
            .is_empty());
    }

    #[test]
    fn prefetcher_hides_cold_loads_on_a_cyclic_scene_schedule() {
        let (dataset, sys_off, sys_on) = prefetch_twins(|cfg| {
            cfg.cache.capacity = 2;
            // Raw argmax routing so the external score schedule fully
            // controls which model each frame requests.
            cfg.decision.suitability_smoothing = 0.0;
            cfg.prefetch.admission_filter = false;
        });
        let n = sys_off.repository().len();
        if n < 3 {
            return; // the cyclic schedule needs three distinct models
        }
        let split = dataset.split();
        let features = dataset.frame(split.test[0]).features.clone();
        let mut off = OnlineEngine::new(&sys_off, DeviceKind::JetsonTx2Nx, Seed(410));
        let mut on = OnlineEngine::new(&sys_on, DeviceKind::JetsonTx2Nx, Seed(410));
        // A,B,C,A,B,C…: a capacity-2 LFU cache cycles (every frame misses),
        // while the learned transition chain A→B→C→A predicts each next
        // model perfectly after one warmup lap.
        let mut scores = vec![0.0f32; n];
        for frame in 0..90usize {
            let target = frame % 3;
            scores.fill(0.0);
            scores[target] = 1.0;
            let a = off.step_with_scores(&features, &scores).unwrap();
            let b = on.step_with_scores(&features, &scores).unwrap();
            assert_eq!(a.requested, target);
            assert_eq!(b.requested, target);
            assert_eq!(a.suitability.to_bits(), b.suitability.to_bits());
        }
        let stats = on.prefetch_stats();
        assert!(stats.issued > 0, "prefetcher never fired: {stats:?}");
        assert!(stats.hits > 0, "prefetches never served a frame: {stats:?}");
        // The headline claim: markedly fewer cold loads and cache misses
        // than the plain LFU engine on the same schedule.
        assert!(
            on.cache_stats().misses * 2 < off.cache_stats().misses,
            "prefetch-on misses {} vs off {}",
            on.cache_stats().misses,
            off.cache_stats().misses
        );
        assert!(
            on.load_attempt_count() < off.load_attempt_count(),
            "prefetch-on loads {} vs off {}",
            on.load_attempt_count(),
            off.load_attempt_count()
        );
    }

    #[test]
    fn transition_model_learns_online_and_warm_starts() {
        let (dataset, sys_off, sys_on) = prefetch_twins(|_| {});
        let split = dataset.split();
        let mut scout = OnlineEngine::new(&sys_off, DeviceKind::JetsonTx2Nx, Seed(420));
        for r in split.test.iter().take(30) {
            scout.step(&dataset.frame(*r).features).unwrap();
        }
        let learned = scout.transition_model().clone();
        assert_eq!(learned.states(), sys_off.repository().len());
        assert!(learned.observations() > 0);
        // The learned model ships into a fresh engine (bundle warm-start).
        let warm = OnlineEngine::new(&sys_on, DeviceKind::JetsonTx2Nx, Seed(421))
            .with_transition_model(learned.clone());
        assert_eq!(warm.transition_model(), &learned);
    }

    #[test]
    #[should_panic(expected = "transition model states must match")]
    fn mismatched_transition_model_is_rejected() {
        let (_, system) = system();
        let wrong = TransitionModel::new(system.repository().len() + 1);
        let _ = OnlineEngine::new(&system, DeviceKind::JetsonTx2Nx, Seed(430))
            .with_transition_model(wrong);
    }

    #[test]
    fn configured_shards_back_the_engine_cache() {
        let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(71));
        let mut cfg = AnoleConfig::fast();
        cfg.prefetch.shards = 4;
        let system = AnoleSystem::train(&dataset, &cfg, Seed(72)).unwrap();
        let mut engine = OnlineEngine::new(&system, DeviceKind::JetsonTx2Nx, Seed(440));
        assert_eq!(engine.cache_shards(), 4);
        let split = dataset.split();
        for r in split.test.iter().take(20) {
            engine.step(&dataset.frame(*r).features).unwrap();
        }
        assert_eq!(engine.usage_log().len(), 20);
        assert_eq!(engine.cache_stats().lookups(), 20);
    }

    #[test]
    fn flight_recorder_is_bounded_and_strictly_passive() {
        let (dataset, system) = system();
        let split = dataset.split();
        let mut plain = OnlineEngine::new(&system, DeviceKind::JetsonTx2Nx, Seed(450));
        let mut recorded = OnlineEngine::new(&system, DeviceKind::JetsonTx2Nx, Seed(450))
            .with_flight_recorder(4);
        assert!(plain.flight_record().is_none());
        let frames = 12;
        for r in split.test.iter().take(frames) {
            let a = plain.step(&dataset.frame(*r).features).unwrap();
            let b = recorded.step(&dataset.frame(*r).features).unwrap();
            assert_eq!(a, b, "an armed recorder must not perturb serving");
        }
        let record = recorded.flight_record().unwrap();
        assert_eq!(record.capacity, 4);
        assert_eq!(record.frames_seen, frames as u64);
        assert_eq!(record.frames.len(), 4, "ring keeps only the last K frames");
        let indices: Vec<u32> = record.frames.iter().map(|f| f.frame).collect();
        assert_eq!(indices, vec![8, 9, 10, 11]);
        assert_eq!(record.drift_state, DriftState::Nominal);
        // Serde round-trip (the gateway ships records inside reports).
        let json = serde_json::to_string(&record).unwrap();
        let back: FlightRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, record);
    }

    #[test]
    fn flight_recorder_retains_the_fault_frames() {
        let (dataset, system) = system();
        let split = dataset.split();
        let plan = FaultPlan::new(Seed(460))
            .at(2, FaultKind::SensorDropout)
            .at(3, FaultKind::SensorDropout);
        let mut engine = OnlineEngine::new(&system, DeviceKind::JetsonTx2Nx, Seed(461))
            .with_fault_injector(plan.injector())
            .with_flight_recorder(8);
        for r in split.test.iter().take(6) {
            engine.step(&dataset.frame(*r).features).unwrap();
        }
        let record = engine.flight_record().unwrap();
        let faulted: Vec<u32> = record
            .frames
            .iter()
            .filter(|f| f.faults > 0)
            .map(|f| f.frame)
            .collect();
        assert_eq!(faulted, vec![2, 3], "the injected frames are in the ring");
        let text = record.render();
        assert!(text.starts_with("# flight: last 6 of 6 frames"));
        assert_eq!(text.lines().count(), 2 + 6, "header + one line per frame");
    }

    #[test]
    fn zero_capacity_flight_recorder_stays_off() {
        let (dataset, system) = system();
        let split = dataset.split();
        let mut engine = OnlineEngine::new(&system, DeviceKind::JetsonTx2Nx, Seed(470))
            .with_flight_recorder(0);
        engine.step(&dataset.frame(split.test[0]).features).unwrap();
        assert!(engine.flight_record().is_none());
    }
}
