//! Cache-based model deployment and per-frame inference (§V-B, §V-C).

use anole_cache::{CacheStats, SlotCache};
use anole_device::{DeviceKind, LatencyModel};
use anole_nn::ReferenceModel;
use anole_tensor::{rng_from_seed, Seed};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::{AnoleError, AnoleSystem};

/// What happened on one online-inference step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepOutcome {
    /// The model `M_decision` ranked first.
    pub requested: usize,
    /// The model actually used (best-ranked *cached* model on a miss).
    pub used: usize,
    /// Whether the requested model was already resident.
    pub cache_hit: bool,
    /// Thresholded cell detections of the used model (or the fused top-k
    /// maps on a low-confidence, hedged frame).
    pub detections: Vec<bool>,
    /// Number of compressed models executed this frame (>1 when hedged).
    pub models_executed: usize,
    /// End-to-end frame latency in milliseconds (decision + detection, plus
    /// a synchronous load when nothing usable was cached).
    pub latency_ms: f32,
    /// Suitability probability of the requested model.
    pub suitability: f32,
}

/// The on-device Anole engine: MSS (rank models per frame), CMD (LFU cache
/// with best-cached fallback), and MI (run the chosen compressed model).
///
/// Model loads on a miss happen in the background (the frame is served by
/// the best cached model); their cost is tracked in
/// [`OnlineEngine::background_load_ms`]. Only when the cache is completely
/// empty does a synchronous load stall the frame.
#[derive(Debug)]
pub struct OnlineEngine<'a> {
    system: &'a AnoleSystem,
    cache: SlotCache<usize>,
    latency: LatencyModel,
    rng: StdRng,
    usage_log: Vec<usize>,
    background_load_ms: f32,
    smoothed_suitability: Option<Vec<f32>>,
    total_latency_ms: f64,
    hedged_frames: usize,
    latency_budget_ms: Option<f32>,
}

impl<'a> OnlineEngine<'a> {
    /// Creates an engine with an empty cache on the given device.
    pub fn new(system: &'a AnoleSystem, device: DeviceKind, seed: Seed) -> Self {
        let cache_cfg = system.config().cache;
        Self {
            system,
            cache: SlotCache::new(cache_cfg.capacity, cache_cfg.policy),
            latency: LatencyModel::for_device(device),
            rng: rng_from_seed(seed),
            usage_log: Vec::new(),
            background_load_ms: 0.0,
            smoothed_suitability: None,
            total_latency_ms: 0.0,
            hedged_frames: 0,
            latency_budget_ms: None,
        }
    }

    /// Constrains the engine to a per-frame latency budget (§II: "achieve
    /// the best-effort inference accuracy within a specific latency
    /// budget"). The number of compressed models fused per frame is derived
    /// from the budget: as many as fit after the decision stage, at least
    /// one, at most 4 and never more than the configured `hedge_top_k`
    /// permits accuracy-wise.
    ///
    /// # Panics
    ///
    /// Panics if `budget_ms` is not strictly positive.
    pub fn with_latency_budget(mut self, budget_ms: f32) -> Self {
        assert!(budget_ms > 0.0, "latency budget must be positive");
        self.latency_budget_ms = Some(budget_ms);
        self
    }

    /// The per-frame model-count limit implied by the latency budget (the
    /// configured `hedge_top_k` when no budget is set).
    pub fn models_per_frame_limit(&self) -> usize {
        match self.latency_budget_ms {
            None => self.system.config().decision.hedge_top_k.max(1),
            Some(budget) => {
                let decision = self.latency.mean_scene_decision_ms();
                let tiny = self.latency.mean_inference_ms(ReferenceModel::Yolov3Tiny);
                (((budget - decision) / tiny).floor() as isize).clamp(1, 4) as usize
            }
        }
    }

    /// Mean end-to-end frame latency so far (0.0 before any step).
    pub fn mean_latency_ms(&self) -> f32 {
        if self.usage_log.is_empty() {
            0.0
        } else {
            (self.total_latency_ms / self.usage_log.len() as f64) as f32
        }
    }

    /// Fraction of frames that took the low-confidence hedged path.
    pub fn hedge_rate(&self) -> f32 {
        if self.usage_log.is_empty() {
            0.0
        } else {
            self.hedged_frames as f32 / self.usage_log.len() as f32
        }
    }

    /// Pre-loads the given models (the paper downloads and pre-loads as many
    /// models as memory allows before going online).
    pub fn warm(&mut self, model_ids: &[usize]) {
        for &id in model_ids {
            self.cache.insert(id);
        }
    }

    /// Cache statistics so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The model used on each past step, in order (for Fig. 4b/7a).
    pub fn usage_log(&self) -> &[usize] {
        &self.usage_log
    }

    /// Total background model-load time incurred by misses.
    pub fn background_load_ms(&self) -> f32 {
        self.background_load_ms
    }

    /// The engine's latency model (device).
    pub fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    /// Runs one frame through the full Anole pipeline.
    ///
    /// # Errors
    ///
    /// Returns a width error if `features` has the wrong dimension.
    pub fn step(&mut self, features: &[f32]) -> Result<StepOutcome, AnoleError> {
        // MSS: rank models by (temporally smoothed) suitability.
        let probs = self
            .system
            .decision()
            .suitability(&anole_tensor::Matrix::row_vector(features))?;
        let alpha = self
            .system
            .config()
            .decision
            .suitability_smoothing
            .clamp(0.0, 0.999);
        let current = probs.row(0);
        let smoothed = match self.smoothed_suitability.take() {
            Some(mut prev) if prev.len() == current.len() && alpha > 0.0 => {
                for (p, &c) in prev.iter_mut().zip(current.iter()) {
                    *p = alpha * *p + (1.0 - alpha) * c;
                }
                prev
            }
            _ => current.to_vec(),
        };
        let mut ranking: Vec<usize> = (0..smoothed.len()).collect();
        ranking.sort_by(|&a, &b| {
            smoothed[b]
                .partial_cmp(&smoothed[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let requested = ranking[0];
        let suitability = smoothed[requested];
        self.smoothed_suitability = Some(smoothed);

        // CMD: serve from cache, LFU-update on miss.
        let cache_hit = self.cache.touch(&requested);
        let mut sync_load_ms = 0.0;
        let used = if cache_hit {
            requested
        } else {
            let fallback = ranking.iter().copied().find(|id| self.cache.contains(id));
            // Background-load the requested model for future frames.
            self.cache.insert(requested);
            self.background_load_ms += self.latency.load_ms(ReferenceModel::Yolov3Tiny);
            match fallback {
                Some(id) => {
                    self.cache.refresh(&id);
                    id
                }
                None => {
                    // Nothing resident at all: stall on the load.
                    sync_load_ms = self.latency.load_ms(ReferenceModel::Yolov3Tiny);
                    requested
                }
            }
        };

        // MI: run the chosen compressed model — or, on a low-confidence
        // frame, hedge across the top-k cached models (a low top-1
        // suitability signals that no single well-fitting model exists,
        // §II case 3).
        let threshold = self.system.config().detector.threshold;
        let decision_cfg = self.system.config().decision;
        let smoothed = self.smoothed_suitability.as_ref().expect("set above");
        let mut executed = vec![used];
        let fuse_limit = self.models_per_frame_limit();
        if fuse_limit > 1 && suitability < decision_cfg.confidence_threshold {
            for &id in &ranking {
                if executed.len() >= fuse_limit {
                    break;
                }
                if id != used && self.cache.contains(&id) {
                    executed.push(id);
                }
            }
        }
        let detections = if executed.len() == 1 {
            self.system.repository().model(used).detect(features, threshold)?
        } else {
            let row = anole_tensor::Matrix::row_vector(features);
            let mut fused: Vec<f32> = Vec::new();
            let mut weight_sum = 0.0f32;
            for &id in &executed {
                let probs = self.system.repository().model(id).detect_probs(&row)?;
                let w = smoothed[id].max(1e-6);
                if fused.is_empty() {
                    fused = vec![0.0; probs.cols()];
                }
                for (f, &p) in fused.iter_mut().zip(probs.row(0).iter()) {
                    *f += w * p;
                }
                weight_sum += w;
            }
            fused.iter_mut().for_each(|f| *f /= weight_sum.max(1e-6));
            // Averaging dilutes the confident model's positives; compensate
            // with a slightly lower detection threshold on fused maps.
            anole_detect::threshold_probs(&fused, threshold * 0.85)
        };

        let mut latency_ms = self.latency.scene_decision_ms(&mut self.rng) + sync_load_ms;
        for _ in &executed {
            latency_ms += self.latency.inference_ms(ReferenceModel::Yolov3Tiny, &mut self.rng);
        }
        for &id in &executed[1..] {
            self.cache.refresh(&id);
        }

        self.usage_log.push(used);
        self.total_latency_ms += latency_ms as f64;
        if executed.len() > 1 {
            self.hedged_frames += 1;
        }
        Ok(StepOutcome {
            requested,
            used,
            cache_hit,
            detections,
            models_executed: executed.len(),
            latency_ms,
            suitability,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AnoleConfig;
    use anole_data::{DatasetConfig, DrivingDataset};

    fn system() -> (DrivingDataset, AnoleSystem) {
        let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(71));
        let system = AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(72)).unwrap();
        (dataset, system)
    }

    #[test]
    fn step_produces_consistent_outcome() {
        let (dataset, system) = system();
        let mut engine = OnlineEngine::new(&system, DeviceKind::JetsonTx2Nx, Seed(73));
        let split = dataset.split();
        let frame = dataset.frame(split.test[0]);
        let out = engine.step(&frame.features).unwrap();
        assert!(out.requested < system.repository().len());
        assert!(out.used < system.repository().len());
        assert_eq!(out.detections.len(), dataset.config().world.grid.cells());
        assert!(out.latency_ms > 0.0);
        assert!(out.suitability > 0.0 && out.suitability <= 1.0);
        assert_eq!(engine.usage_log().len(), 1);
    }

    #[test]
    fn first_step_on_cold_cache_is_a_synchronous_load() {
        let (dataset, system) = system();
        let mut engine = OnlineEngine::new(&system, DeviceKind::JetsonNano, Seed(74));
        let split = dataset.split();
        let frame = dataset.frame(split.test[0]);
        let out = engine.step(&frame.features).unwrap();
        assert!(!out.cache_hit);
        assert_eq!(out.used, out.requested);
        // Nano loads 34 MB at 80 MB/s → ~425 ms stall.
        assert!(out.latency_ms > 300.0, "latency {}", out.latency_ms);
    }

    #[test]
    fn warm_cache_avoids_the_stall() {
        let (dataset, system) = system();
        let mut engine = OnlineEngine::new(&system, DeviceKind::JetsonTx2Nx, Seed(75));
        engine.warm(&(0..system.repository().len()).collect::<Vec<_>>());
        let split = dataset.split();
        let frame = dataset.frame(split.test[0]);
        let out = engine.step(&frame.features).unwrap();
        assert!(out.cache_hit || out.used != out.requested || out.latency_ms < 100.0);
        // Paper: ~13.9 ms on TX2 (3.1 decision + 10.8 tiny); with the
        // default top-2 hedge a frame costs at most 3.1 + 2 x 10.8 ms.
        assert!(out.latency_ms < 40.0, "latency {}", out.latency_ms);
    }

    #[test]
    fn misses_fall_back_to_best_cached_model() {
        let (dataset, system) = system();
        if system.repository().len() < 2 {
            return; // cannot exercise fallback with a single model
        }
        let mut engine = OnlineEngine::new(&system, DeviceKind::JetsonTx2Nx, Seed(76));
        let split = dataset.split();
        // Run the whole test stream with a tiny cache; any miss after the
        // first frame must be served by a resident model.
        let mut engine_cache_one = {
            let mut sys_cfg = *system.config();
            sys_cfg.cache.capacity = 1;
            engine.cache = SlotCache::new(1, sys_cfg.cache.policy);
            engine
        };
        let mut fallbacks = 0;
        for r in split.test.iter().take(60) {
            let out = engine_cache_one.step(&dataset.frame(*r).features).unwrap();
            if !out.cache_hit && out.used != out.requested {
                fallbacks += 1;
            }
        }
        let stats = engine_cache_one.cache_stats();
        assert_eq!(stats.lookups(), 60);
        if stats.misses > 1 {
            assert!(fallbacks > 0, "fallback path never exercised: {stats}");
            assert!(engine_cache_one.background_load_ms() > 0.0);
        }
    }

    #[test]
    fn latency_budget_bounds_models_per_frame() {
        let (dataset, system) = system();
        let split = dataset.split();

        // A budget below one tiny inference still runs one model.
        let mut tight = OnlineEngine::new(&system, DeviceKind::JetsonTx2Nx, Seed(80))
            .with_latency_budget(8.0);
        assert_eq!(tight.models_per_frame_limit(), 1);
        tight.warm(&(0..system.repository().len()).collect::<Vec<_>>());
        for r in split.test.iter().take(40) {
            let out = tight.step(&dataset.frame(*r).features).unwrap();
            assert_eq!(out.models_executed, 1);
        }
        // Mean within ~budget plus the decision stage floor.
        assert!(tight.mean_latency_ms() < 16.0, "{}", tight.mean_latency_ms());

        // A generous budget allows up to the clamp of 4.
        let roomy = OnlineEngine::new(&system, DeviceKind::JetsonTx2Nx, Seed(81))
            .with_latency_budget(50.0);
        assert_eq!(roomy.models_per_frame_limit(), 4);

        // No budget: the configured hedge_top_k applies.
        let default = OnlineEngine::new(&system, DeviceKind::JetsonTx2Nx, Seed(82));
        assert_eq!(
            default.models_per_frame_limit(),
            system.config().decision.hedge_top_k
        );
    }

    #[test]
    fn budgeted_engine_stays_under_budget_on_average() {
        let (dataset, system) = system();
        let split = dataset.split();
        for budget in [15.0f32, 26.0, 40.0] {
            let mut engine = OnlineEngine::new(&system, DeviceKind::JetsonTx2Nx, Seed(83))
                .with_latency_budget(budget);
            engine.warm(&(0..system.repository().len()).collect::<Vec<_>>());
            for r in split.test.iter().take(60) {
                engine.step(&dataset.frame(*r).features).unwrap();
            }
            assert!(
                engine.mean_latency_ms() <= budget * 1.1,
                "budget {budget}: mean {}",
                engine.mean_latency_ms()
            );
        }
    }

    #[test]
    #[should_panic(expected = "latency budget must be positive")]
    fn zero_budget_is_rejected() {
        let (_, system) = system();
        let _ = OnlineEngine::new(&system, DeviceKind::JetsonTx2Nx, Seed(84))
            .with_latency_budget(0.0);
    }

    #[test]
    fn usage_log_tracks_every_step() {
        let (dataset, system) = system();
        let mut engine = OnlineEngine::new(&system, DeviceKind::Laptop, Seed(77));
        let split = dataset.split();
        for r in split.test.iter().take(20) {
            engine.step(&dataset.frame(*r).features).unwrap();
        }
        assert_eq!(engine.usage_log().len(), 20);
        assert!(engine.usage_log().iter().all(|&id| id < system.repository().len()));
    }
}
