//! Fault injection and graceful degradation for the online engine.
//!
//! The paper's premise is a vehicle-mounted device that must keep producing
//! detections under hostile conditions — unstable uplinks, memory pressure,
//! fast scene change (§I, §VI-H). This module makes that robustness property
//! explicit and testable:
//!
//! * [`FaultPlan`] — a deterministic, seeded schedule of faults: per-frame
//!   Bernoulli rates (model-load failures, sensor dropouts, NaN-poisoned
//!   frames, decision-model anomalies) plus exactly-scheduled events
//!   (mid-stream memory pressure, bundle corruption).
//! * [`FaultInjector`] — the plan's runtime: one draw per frame, fully
//!   reproducible from the plan's seed and independent of the engine's own
//!   RNG, so a zero-fault plan leaves the engine bit-identical to an
//!   un-instrumented run.
//! * [`HealthState`] / [`HealthReport`] — the degradation ladder the engine
//!   walks (`Healthy → Degraded → Critical`) and the aggregate story of a
//!   run: fault counts, retries, excluded models, fallback depths.
//!
//! The engine-side behaviour (fallback chain, retry-with-backoff, permanent
//! exclusion) lives in [`crate::omi::OnlineEngine`]; see `docs/robustness.md`
//! for the full taxonomy.

use anole_tensor::{rng_from_seed, Seed};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The engine's degradation ladder.
///
/// `Healthy` means the full Anole pipeline is serving frames. `Degraded`
/// means faults are being absorbed (retries, exclusions) but a real model
/// still serves every frame. `Critical` means the engine is surviving on the
/// pinned fallback model or on replayed last-good detections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HealthState {
    /// Full pipeline, no recent faults.
    Healthy,
    /// Faults absorbed; a cached model still serves every frame.
    Degraded,
    /// Serving from the pinned fallback or last-good detections only.
    Critical,
}

impl HealthState {
    /// All states, mildest first.
    pub const ALL: [HealthState; 3] =
        [HealthState::Healthy, HealthState::Degraded, HealthState::Critical];

    /// Index into per-state counters (0 = healthy).
    pub fn index(self) -> usize {
        match self {
            HealthState::Healthy => 0,
            HealthState::Degraded => 1,
            HealthState::Critical => 2,
        }
    }
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Critical => "critical",
        };
        f.write_str(name)
    }
}

/// How a scheduled or drawn model-load fault fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoadFault {
    /// The load fails but retries may succeed (flaky I/O, transient OOM).
    Transient,
    /// The load fails deterministically (driver wedged, file unreadable).
    Permanent,
    /// The stored artifact fails its checksum — permanently unusable.
    Corruption,
}

/// One injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The next model load fails once; bounded retries may recover it.
    TransientLoadFailure,
    /// The next model load fails permanently; the model is excluded.
    PermanentLoadFailure,
    /// The next model's deployment artifact is checksum-corrupt; the model
    /// is excluded (the device cannot re-download mid-stream).
    BundleCorruption,
    /// The camera produced no usable frame this step.
    SensorDropout,
    /// The frame arrived NaN-poisoned (broken preprocessing, bit flips).
    NanFrame,
    /// Memory pressure: the model cache shrinks to this many slots.
    MemoryPressure {
        /// New slot count of the model cache.
        capacity: usize,
    },
    /// The decision model emits garbage suitability scores this frame.
    DecisionAnomaly,
    /// Server-side: the next checkpoint write fails with an I/O error (the
    /// stage result stays in memory; only resume coverage is lost). The
    /// event index counts checkpoint writes, not frames.
    CheckpointWriteFailure,
    /// Server-side: the next written or downloaded artifact is silently
    /// truncated/corrupted at rest; its checksum must catch it on load.
    /// The event index counts artifacts per context (checkpoint writes or
    /// download arrivals), not frames.
    TruncatedArtifact,
    /// Server-side: the device's download link dies mid-bundle; the session
    /// must reconnect with priced backoff and resume. The event index counts
    /// download chunks, not frames.
    LinkDeath,
    /// Server-side: a fleet device panics during its daily run. The event
    /// index counts device-attempt draws, not frames.
    DevicePanic,
    /// Server-side: the training process is killed right after the stage
    /// with this index completes (and its checkpoint is written). The event
    /// index is the OSP stage index (0 = scene model … 3 = decision model).
    TrainAbort,
    /// Gateway-side: a session's bounded frame queue overflows — the
    /// producer pushes despite backpressure and the oldest queued frame is
    /// force-dropped. The event index counts overflow draws (one per
    /// full-queue push attempt), not frames.
    QueueOverflow,
    /// Gateway-side: a session consumes its next frame slowly (thermal
    /// throttling, competing load); the frame's service time is multiplied
    /// by the gateway's slow factor. The event index counts consumer draws,
    /// not frames.
    SlowConsumer,
    /// Gateway-side: a session stalls and consumes nothing for a few
    /// scheduling windows (GC pause, watchdog reset). The event index counts
    /// stall draws, not frames.
    SessionStall,
    /// Gateway-side: the scheduler itself skips one scheduling window (the
    /// coordinator hiccups); queues age and deadlines keep running. The
    /// event index counts scheduling windows, not frames.
    SchedulerHiccup,
    /// Rollout-side: a device receives a stale bundle — the delivered
    /// manifest predates the candidate being rolled out (CDN lag, a
    /// half-propagated push) — and must be re-served from the last-good
    /// bundle. The event index counts bundle deliveries, not frames.
    StaleBundle,
    /// Rollout-side: the candidate bundle itself is silently regressed
    /// (bad re-profile data, a mis-trained specialist); the canary gate
    /// must catch it and roll the fleet back. The event index counts
    /// rollout candidates, not frames.
    RegressedUpdate,
    /// Server-side: the continual re-profiling run is killed right after
    /// the re-profile step with this index completes (and its checkpoint is
    /// written). The event index is the re-profile step index, mirroring
    /// [`FaultKind::TrainAbort`] for the incremental pipeline.
    ReprofileAbort,
}

/// How a server-side checkpoint write fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CheckpointFault {
    /// The write itself fails (I/O error); no file is produced.
    WriteFailure,
    /// The file is written but truncated — a corrupt artifact at rest.
    Truncated,
}

/// A fault pinned to a specific frame index.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Frame index (0-based step count) at which the fault fires.
    pub frame: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic, seeded fault schedule.
///
/// Rates are per-frame Bernoulli probabilities, clamped to `[0, 1]`;
/// scheduled events fire at exact frame indices. The same plan always
/// produces the same fault stream.
///
/// # Examples
///
/// ```
/// use anole_core::omi::{FaultKind, FaultPlan};
/// use anole_tensor::Seed;
///
/// let plan = FaultPlan::new(Seed(7))
///     .with_transient_load_rate(0.1)
///     .with_sensor_dropout_rate(0.02)
///     .at(120, FaultKind::MemoryPressure { capacity: 2 });
/// assert!(!plan.is_zero_fault());
/// let mut a = plan.clone().injector();
/// let mut b = plan.injector();
/// for frame in 0..200 {
///     assert_eq!(a.next_frame(), b.next_frame(), "frame {frame}");
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    seed: Seed,
    transient_load_rate: f32,
    permanent_load_rate: f32,
    sensor_dropout_rate: f32,
    nan_frame_rate: f32,
    decision_anomaly_rate: f32,
    #[serde(default)]
    checkpoint_write_rate: f32,
    #[serde(default)]
    truncated_artifact_rate: f32,
    #[serde(default)]
    link_death_rate: f32,
    #[serde(default)]
    device_panic_rate: f32,
    #[serde(default)]
    queue_overflow_rate: f32,
    #[serde(default)]
    slow_consumer_rate: f32,
    #[serde(default)]
    session_stall_rate: f32,
    #[serde(default)]
    scheduler_hiccup_rate: f32,
    #[serde(default)]
    stale_bundle_rate: f32,
    #[serde(default)]
    regressed_update_rate: f32,
    scheduled: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan with every rate zero and no scheduled events.
    pub fn new(seed: Seed) -> Self {
        Self {
            seed,
            transient_load_rate: 0.0,
            permanent_load_rate: 0.0,
            sensor_dropout_rate: 0.0,
            nan_frame_rate: 0.0,
            decision_anomaly_rate: 0.0,
            checkpoint_write_rate: 0.0,
            truncated_artifact_rate: 0.0,
            link_death_rate: 0.0,
            device_panic_rate: 0.0,
            queue_overflow_rate: 0.0,
            slow_consumer_rate: 0.0,
            session_stall_rate: 0.0,
            scheduler_hiccup_rate: 0.0,
            stale_bundle_rate: 0.0,
            regressed_update_rate: 0.0,
            scheduled: Vec::new(),
        }
    }

    /// Per-frame probability that a model load fails transiently.
    #[must_use]
    pub fn with_transient_load_rate(mut self, rate: f32) -> Self {
        self.transient_load_rate = clamp_rate(rate);
        self
    }

    /// Per-frame probability that a model load fails permanently.
    #[must_use]
    pub fn with_permanent_load_rate(mut self, rate: f32) -> Self {
        self.permanent_load_rate = clamp_rate(rate);
        self
    }

    /// Per-frame probability of a sensor dropout (no usable frame).
    #[must_use]
    pub fn with_sensor_dropout_rate(mut self, rate: f32) -> Self {
        self.sensor_dropout_rate = clamp_rate(rate);
        self
    }

    /// Per-frame probability of a NaN-poisoned frame.
    #[must_use]
    pub fn with_nan_frame_rate(mut self, rate: f32) -> Self {
        self.nan_frame_rate = clamp_rate(rate);
        self
    }

    /// Per-frame probability of a decision-model anomaly.
    #[must_use]
    pub fn with_decision_anomaly_rate(mut self, rate: f32) -> Self {
        self.decision_anomaly_rate = clamp_rate(rate);
        self
    }

    /// Per-write probability that a server-side checkpoint write fails.
    #[must_use]
    pub fn with_checkpoint_write_rate(mut self, rate: f32) -> Self {
        self.checkpoint_write_rate = clamp_rate(rate);
        self
    }

    /// Per-artifact probability that a written or downloaded artifact is
    /// silently truncated/corrupted.
    #[must_use]
    pub fn with_truncated_artifact_rate(mut self, rate: f32) -> Self {
        self.truncated_artifact_rate = clamp_rate(rate);
        self
    }

    /// Per-chunk probability that the download link dies mid-bundle.
    #[must_use]
    pub fn with_link_death_rate(mut self, rate: f32) -> Self {
        self.link_death_rate = clamp_rate(rate);
        self
    }

    /// Per-attempt probability that a fleet device panics during its run.
    #[must_use]
    pub fn with_device_panic_rate(mut self, rate: f32) -> Self {
        self.device_panic_rate = clamp_rate(rate);
        self
    }

    /// Per-push probability that a full session queue overflows (the oldest
    /// queued frame is force-dropped instead of deferring the producer).
    #[must_use]
    pub fn with_queue_overflow_rate(mut self, rate: f32) -> Self {
        self.queue_overflow_rate = clamp_rate(rate);
        self
    }

    /// Per-draw probability that a session consumes its next frame slowly.
    #[must_use]
    pub fn with_slow_consumer_rate(mut self, rate: f32) -> Self {
        self.slow_consumer_rate = clamp_rate(rate);
        self
    }

    /// Per-draw probability that a session stalls for a few windows.
    #[must_use]
    pub fn with_session_stall_rate(mut self, rate: f32) -> Self {
        self.session_stall_rate = clamp_rate(rate);
        self
    }

    /// Per-window probability that the gateway scheduler skips a window.
    #[must_use]
    pub fn with_scheduler_hiccup_rate(mut self, rate: f32) -> Self {
        self.scheduler_hiccup_rate = clamp_rate(rate);
        self
    }

    /// Per-delivery probability that a device receives a stale bundle during
    /// a rollout.
    #[must_use]
    pub fn with_stale_bundle_rate(mut self, rate: f32) -> Self {
        self.stale_bundle_rate = clamp_rate(rate);
        self
    }

    /// Per-candidate probability that a rollout candidate is silently
    /// regressed.
    #[must_use]
    pub fn with_regressed_update_rate(mut self, rate: f32) -> Self {
        self.regressed_update_rate = clamp_rate(rate);
        self
    }

    /// Schedules `kind` at exact `frame`.
    ///
    /// For the server-side kinds the index counts occurrences of that
    /// category instead of frames: checkpoint writes
    /// ([`FaultKind::CheckpointWriteFailure`]), artifacts in the current
    /// context ([`FaultKind::TruncatedArtifact`]), download chunks
    /// ([`FaultKind::LinkDeath`]), device-attempt draws
    /// ([`FaultKind::DevicePanic`]), or OSP stage indices
    /// ([`FaultKind::TrainAbort`]).
    #[must_use]
    pub fn at(mut self, frame: usize, kind: FaultKind) -> Self {
        self.scheduled.push(FaultEvent { frame, kind });
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> Seed {
        self.seed
    }

    /// Whether this plan can never inject anything (all rates zero, no
    /// scheduled events). Such a plan leaves the engine bit-identical to an
    /// un-instrumented run.
    pub fn is_zero_fault(&self) -> bool {
        self.transient_load_rate == 0.0
            && self.permanent_load_rate == 0.0
            && self.sensor_dropout_rate == 0.0
            && self.nan_frame_rate == 0.0
            && self.decision_anomaly_rate == 0.0
            && self.checkpoint_write_rate == 0.0
            && self.truncated_artifact_rate == 0.0
            && self.link_death_rate == 0.0
            && self.device_panic_rate == 0.0
            && self.queue_overflow_rate == 0.0
            && self.slow_consumer_rate == 0.0
            && self.session_stall_rate == 0.0
            && self.scheduler_hiccup_rate == 0.0
            && self.stale_bundle_rate == 0.0
            && self.regressed_update_rate == 0.0
            && self.scheduled.is_empty()
    }

    /// Builds the runtime injector for this plan.
    pub fn injector(self) -> FaultInjector {
        let rng = rng_from_seed(self.seed);
        FaultInjector {
            plan: self,
            rng,
            frame: 0,
            checkpoint_writes: 0,
            artifacts: 0,
            chunks: 0,
            device_draws: 0,
            overflow_draws: 0,
            consumer_draws: 0,
            stall_draws: 0,
            window_draws: 0,
            delivery_draws: 0,
            candidate_draws: 0,
        }
    }
}

fn clamp_rate(rate: f32) -> f32 {
    if rate.is_nan() {
        0.0
    } else {
        rate.clamp(0.0, 1.0)
    }
}

/// The faults injected into one frame, pre-sorted by how the engine consumes
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FrameFaults {
    /// Cache shrink to this capacity, if a memory-pressure event fired.
    pub memory_pressure: Option<usize>,
    /// The camera produced nothing usable.
    pub sensor_dropout: bool,
    /// The frame is NaN-poisoned.
    pub nan_frame: bool,
    /// The decision model emits garbage this frame.
    pub decision_anomaly: bool,
    /// The next attempted model load fails this way.
    pub load_fault: Option<LoadFault>,
}

impl FrameFaults {
    /// Whether anything at all was injected.
    pub fn any(&self) -> bool {
        self.memory_pressure.is_some()
            || self.sensor_dropout
            || self.nan_frame
            || self.decision_anomaly
            || self.load_fault.is_some()
    }

    /// Number of distinct faults injected this frame.
    pub fn count(&self) -> u32 {
        self.memory_pressure.is_some() as u32
            + self.sensor_dropout as u32
            + self.nan_frame as u32
            + self.decision_anomaly as u32
            + self.load_fault.is_some() as u32
    }
}

/// Runtime of a [`FaultPlan`]: owns its own RNG (never the engine's) and
/// advances one frame per [`FaultInjector::next_frame`] call.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: StdRng,
    frame: usize,
    checkpoint_writes: usize,
    artifacts: usize,
    chunks: usize,
    device_draws: usize,
    overflow_draws: usize,
    consumer_draws: usize,
    stall_draws: usize,
    window_draws: usize,
    delivery_draws: usize,
    candidate_draws: usize,
}

impl FaultInjector {
    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Frames drawn so far.
    pub fn frames_drawn(&self) -> usize {
        self.frame
    }

    /// Draws the faults for the next frame. Exactly five Bernoulli draws are
    /// consumed per call regardless of the rates, so scheduled events never
    /// shift the random stream.
    pub fn next_frame(&mut self) -> FrameFaults {
        let mut faults = FrameFaults::default();
        // Fixed draw order keeps the stream reproducible.
        let transient = self.rng.gen::<f32>() < self.plan.transient_load_rate;
        let permanent = self.rng.gen::<f32>() < self.plan.permanent_load_rate;
        faults.sensor_dropout = self.rng.gen::<f32>() < self.plan.sensor_dropout_rate;
        faults.nan_frame = self.rng.gen::<f32>() < self.plan.nan_frame_rate;
        faults.decision_anomaly = self.rng.gen::<f32>() < self.plan.decision_anomaly_rate;
        if permanent {
            faults.load_fault = Some(LoadFault::Permanent);
        } else if transient {
            faults.load_fault = Some(LoadFault::Transient);
        }
        for event in &self.plan.scheduled {
            if event.frame != self.frame {
                continue;
            }
            match event.kind {
                FaultKind::TransientLoadFailure => {
                    faults.load_fault = Some(worse(faults.load_fault, LoadFault::Transient));
                }
                FaultKind::PermanentLoadFailure => {
                    faults.load_fault = Some(worse(faults.load_fault, LoadFault::Permanent));
                }
                FaultKind::BundleCorruption => {
                    faults.load_fault = Some(worse(faults.load_fault, LoadFault::Corruption));
                }
                FaultKind::SensorDropout => faults.sensor_dropout = true,
                FaultKind::NanFrame => faults.nan_frame = true,
                FaultKind::MemoryPressure { capacity } => {
                    faults.memory_pressure = Some(capacity);
                }
                FaultKind::DecisionAnomaly => faults.decision_anomaly = true,
                // Server-side kinds are drawn by their own category counters
                // (`next_checkpoint_write`, `artifact_arrives_corrupt`,
                // `link_dies`, `device_panics`, `train_abort_after`), never
                // by the per-frame stream.
                FaultKind::CheckpointWriteFailure
                | FaultKind::TruncatedArtifact
                | FaultKind::LinkDeath
                | FaultKind::DevicePanic
                | FaultKind::TrainAbort => {}
                // Gateway kinds likewise draw on their own counters
                // (`queue_overflows`, `consumer_slows`, `session_stalls`,
                // `scheduler_hiccups`).
                FaultKind::QueueOverflow
                | FaultKind::SlowConsumer
                | FaultKind::SessionStall
                | FaultKind::SchedulerHiccup => {}
                // Rollout kinds draw on their own counters too
                // (`bundle_is_stale`, `update_regresses`,
                // `reprofile_abort_after`).
                FaultKind::StaleBundle
                | FaultKind::RegressedUpdate
                | FaultKind::ReprofileAbort => {}
            }
        }
        self.frame += 1;
        faults
    }

    /// Draws the fate of the next checkpoint write. Two Bernoulli draws are
    /// consumed per call regardless of rates; scheduled
    /// [`FaultKind::CheckpointWriteFailure`] / [`FaultKind::TruncatedArtifact`]
    /// events fire when their index equals the number of writes drawn so
    /// far. A write failure dominates a truncation.
    pub fn next_checkpoint_write(&mut self) -> Option<CheckpointFault> {
        let write_fails = self.rng.gen::<f32>() < self.plan.checkpoint_write_rate;
        let truncated = self.rng.gen::<f32>() < self.plan.truncated_artifact_rate;
        let mut fault = if write_fails {
            Some(CheckpointFault::WriteFailure)
        } else if truncated {
            Some(CheckpointFault::Truncated)
        } else {
            None
        };
        for event in &self.plan.scheduled {
            if event.frame != self.checkpoint_writes {
                continue;
            }
            match event.kind {
                FaultKind::CheckpointWriteFailure => fault = Some(CheckpointFault::WriteFailure),
                FaultKind::TruncatedArtifact => {
                    if fault != Some(CheckpointFault::WriteFailure) {
                        fault = Some(CheckpointFault::Truncated);
                    }
                }
                _ => {}
            }
        }
        self.checkpoint_writes += 1;
        fault
    }

    /// Whether the next downloaded artifact arrives corrupt (fails its
    /// manifest checksum on the device). One draw per call; scheduled
    /// [`FaultKind::TruncatedArtifact`] events fire by arrival index.
    pub fn artifact_arrives_corrupt(&mut self) -> bool {
        let corrupt = self.rng.gen::<f32>() < self.plan.truncated_artifact_rate;
        let scheduled = self
            .plan
            .scheduled
            .iter()
            .any(|e| e.frame == self.artifacts && e.kind == FaultKind::TruncatedArtifact);
        self.artifacts += 1;
        corrupt || scheduled
    }

    /// Whether the download link dies before the next chunk transfer. One
    /// draw per call; scheduled [`FaultKind::LinkDeath`] events fire by
    /// chunk index.
    pub fn link_dies(&mut self) -> bool {
        let dies = self.rng.gen::<f32>() < self.plan.link_death_rate;
        let scheduled = self
            .plan
            .scheduled
            .iter()
            .any(|e| e.frame == self.chunks && e.kind == FaultKind::LinkDeath);
        self.chunks += 1;
        dies || scheduled
    }

    /// Whether the next fleet device attempt panics. One draw per call;
    /// scheduled [`FaultKind::DevicePanic`] events fire by draw index (the
    /// supervisor draws once per device attempt in a fixed order).
    pub fn device_panics(&mut self) -> bool {
        let panics = self.rng.gen::<f32>() < self.plan.device_panic_rate;
        let scheduled = self
            .plan
            .scheduled
            .iter()
            .any(|e| e.frame == self.device_draws && e.kind == FaultKind::DevicePanic);
        self.device_draws += 1;
        panics || scheduled
    }

    /// Whether a full session queue's next push overflows (the gateway
    /// force-drops the oldest frame instead of deferring the producer). One
    /// draw per call; scheduled [`FaultKind::QueueOverflow`] events fire by
    /// draw index.
    pub fn queue_overflows(&mut self) -> bool {
        let overflows = self.rng.gen::<f32>() < self.plan.queue_overflow_rate;
        let scheduled = self
            .plan
            .scheduled
            .iter()
            .any(|e| e.frame == self.overflow_draws && e.kind == FaultKind::QueueOverflow);
        self.overflow_draws += 1;
        overflows || scheduled
    }

    /// Whether a session serves its next frame slowly. One draw per call;
    /// scheduled [`FaultKind::SlowConsumer`] events fire by draw index.
    pub fn consumer_slows(&mut self) -> bool {
        let slows = self.rng.gen::<f32>() < self.plan.slow_consumer_rate;
        let scheduled = self
            .plan
            .scheduled
            .iter()
            .any(|e| e.frame == self.consumer_draws && e.kind == FaultKind::SlowConsumer);
        self.consumer_draws += 1;
        slows || scheduled
    }

    /// Whether a session stalls (consumes nothing for a few windows). One
    /// draw per call; scheduled [`FaultKind::SessionStall`] events fire by
    /// draw index.
    pub fn session_stalls(&mut self) -> bool {
        let stalls = self.rng.gen::<f32>() < self.plan.session_stall_rate;
        let scheduled = self
            .plan
            .scheduled
            .iter()
            .any(|e| e.frame == self.stall_draws && e.kind == FaultKind::SessionStall);
        self.stall_draws += 1;
        stalls || scheduled
    }

    /// Whether the gateway scheduler skips the next scheduling window. One
    /// draw per call; scheduled [`FaultKind::SchedulerHiccup`] events fire
    /// by window index.
    pub fn scheduler_hiccups(&mut self) -> bool {
        let hiccups = self.rng.gen::<f32>() < self.plan.scheduler_hiccup_rate;
        let scheduled = self
            .plan
            .scheduled
            .iter()
            .any(|e| e.frame == self.window_draws && e.kind == FaultKind::SchedulerHiccup);
        self.window_draws += 1;
        hiccups || scheduled
    }

    /// Whether the next bundle delivery during a rollout is stale (the
    /// device got an outdated manifest and must be re-served last-good).
    /// One draw per call; scheduled [`FaultKind::StaleBundle`] events fire
    /// by delivery index.
    pub fn bundle_is_stale(&mut self) -> bool {
        let stale = self.rng.gen::<f32>() < self.plan.stale_bundle_rate;
        let scheduled = self
            .plan
            .scheduled
            .iter()
            .any(|e| e.frame == self.delivery_draws && e.kind == FaultKind::StaleBundle);
        self.delivery_draws += 1;
        stale || scheduled
    }

    /// Whether the next rollout candidate is silently regressed (the canary
    /// gate must detect and reject it). One draw per call; scheduled
    /// [`FaultKind::RegressedUpdate`] events fire by candidate index.
    pub fn update_regresses(&mut self) -> bool {
        let regresses = self.rng.gen::<f32>() < self.plan.regressed_update_rate;
        let scheduled = self
            .plan
            .scheduled
            .iter()
            .any(|e| e.frame == self.candidate_draws && e.kind == FaultKind::RegressedUpdate);
        self.candidate_draws += 1;
        regresses || scheduled
    }

    /// Whether a [`FaultKind::ReprofileAbort`] is scheduled right after the
    /// re-profile step with this index. Purely scheduled — consumes no
    /// randomness — mirroring [`FaultInjector::train_abort_after`].
    pub fn reprofile_abort_after(&self, step_index: usize) -> bool {
        self.plan
            .scheduled
            .iter()
            .any(|e| e.frame == step_index && e.kind == FaultKind::ReprofileAbort)
    }

    /// Whether a [`FaultKind::TrainAbort`] is scheduled right after the OSP
    /// stage with this index. Purely scheduled — consumes no randomness —
    /// so checking it never shifts any other fault stream.
    pub fn train_abort_after(&self, stage_index: usize) -> bool {
        self.plan
            .scheduled
            .iter()
            .any(|e| e.frame == stage_index && e.kind == FaultKind::TrainAbort)
    }

    /// Whether one load retry also fails (drawn at the transient rate, so a
    /// flaky link keeps being flaky). Only called by the engine while a
    /// transient load fault is being retried — a zero-fault plan never
    /// reaches this.
    pub fn retry_fails(&mut self) -> bool {
        self.rng.gen::<f32>() < self.plan.transient_load_rate
    }
}

fn worse(current: Option<LoadFault>, incoming: LoadFault) -> LoadFault {
    match current {
        None | Some(LoadFault::Transient) => incoming,
        Some(existing) => existing,
    }
}

/// Per-kind fault counters accumulated by the engine (applied faults, not
/// drawn-and-ignored ones).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounts {
    /// Transient load failures absorbed.
    pub transient_load: usize,
    /// Permanent load failures absorbed.
    pub permanent_load: usize,
    /// Corrupt bundle artifacts detected.
    pub bundle_corruption: usize,
    /// Sensor dropouts absorbed.
    pub sensor_dropout: usize,
    /// NaN-poisoned frames absorbed.
    pub nan_frames: usize,
    /// Memory-pressure events absorbed.
    pub memory_pressure: usize,
    /// Decision-model anomalies absorbed.
    pub decision_anomaly: usize,
}

impl FaultCounts {
    /// Total faults absorbed.
    pub fn total(&self) -> usize {
        self.transient_load
            + self.permanent_load
            + self.bundle_corruption
            + self.sensor_dropout
            + self.nan_frames
            + self.memory_pressure
            + self.decision_anomaly
    }
}

/// Aggregate health story of an online run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthReport {
    /// Health state after the last step.
    pub state: HealthState,
    /// Steps taken.
    pub frames: usize,
    /// Steps spent in each state (`HealthState::index` order).
    pub frames_by_state: [usize; 3],
    /// Faults absorbed, by kind.
    pub faults: FaultCounts,
    /// Load retries performed.
    pub retries: usize,
    /// Whole-frame load failures (every bounded retry exhausted).
    pub load_strikes: usize,
    /// Models permanently excluded from selection.
    pub excluded_models: Vec<usize>,
    /// Frames served at each fallback depth: 0 = requested model,
    /// 1 = best cached model, 2 = pinned fallback model, 3 = last-good
    /// detections.
    pub fallback_depths: [usize; 4],
    /// Model ids evicted by mid-stream memory pressure, in eviction order.
    /// Defaults to empty when deserializing reports from older runs.
    #[serde(default)]
    pub pressure_evicted: Vec<usize>,
}

impl HealthReport {
    /// Fraction of steps spent outside `Healthy`; 0.0 for an empty run.
    pub fn degraded_fraction(&self) -> f32 {
        if self.frames == 0 {
            0.0
        } else {
            (self.frames_by_state[1] + self.frames_by_state[2]) as f32 / self.frames as f32
        }
    }
}

impl std::fmt::Display for HealthReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} after {} frames ({} degraded, {} critical); {} faults, {} retries, {} excluded",
            self.state,
            self.frames,
            self.frames_by_state[1],
            self.frames_by_state[2],
            self.faults.total(),
            self.retries,
            self.excluded_models.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fault_plan_injects_nothing() {
        let mut injector = FaultPlan::new(Seed(1)).injector();
        for _ in 0..500 {
            let faults = injector.next_frame();
            assert!(!faults.any());
            assert_eq!(faults.count(), 0);
        }
        assert!(injector.plan().is_zero_fault());
        assert_eq!(injector.frames_drawn(), 500);
    }

    #[test]
    fn same_plan_same_stream() {
        let plan = FaultPlan::new(Seed(42))
            .with_transient_load_rate(0.3)
            .with_sensor_dropout_rate(0.1)
            .with_nan_frame_rate(0.05)
            .with_decision_anomaly_rate(0.05)
            .at(17, FaultKind::MemoryPressure { capacity: 1 });
        let mut a = plan.clone().injector();
        let mut b = plan.injector();
        for frame in 0..300 {
            assert_eq!(a.next_frame(), b.next_frame(), "diverged at frame {frame}");
        }
    }

    #[test]
    fn rates_produce_roughly_proportional_faults() {
        let mut injector = FaultPlan::new(Seed(7))
            .with_sensor_dropout_rate(0.2)
            .injector();
        let n = 2000;
        let hits = (0..n).filter(|_| injector.next_frame().sensor_dropout).count();
        let rate = hits as f32 / n as f32;
        assert!((rate - 0.2).abs() < 0.04, "observed rate {rate}");
    }

    #[test]
    fn scheduled_events_fire_exactly_once() {
        let mut injector = FaultPlan::new(Seed(9))
            .at(3, FaultKind::MemoryPressure { capacity: 2 })
            .at(5, FaultKind::BundleCorruption)
            .at(5, FaultKind::SensorDropout)
            .injector();
        for frame in 0..10 {
            let faults = injector.next_frame();
            match frame {
                3 => assert_eq!(faults.memory_pressure, Some(2)),
                5 => {
                    assert_eq!(faults.load_fault, Some(LoadFault::Corruption));
                    assert!(faults.sensor_dropout);
                    assert_eq!(faults.count(), 2);
                }
                _ => assert!(!faults.any(), "unexpected fault at frame {frame}"),
            }
        }
    }

    #[test]
    fn permanent_faults_dominate_transient() {
        assert_eq!(worse(Some(LoadFault::Transient), LoadFault::Corruption), LoadFault::Corruption);
        assert_eq!(worse(Some(LoadFault::Permanent), LoadFault::Transient), LoadFault::Permanent);
        assert_eq!(worse(None, LoadFault::Transient), LoadFault::Transient);
    }

    #[test]
    fn rates_are_clamped() {
        let plan = FaultPlan::new(Seed(1))
            .with_transient_load_rate(7.0)
            .with_nan_frame_rate(-3.0)
            .with_sensor_dropout_rate(f32::NAN);
        assert_eq!(plan.transient_load_rate, 1.0);
        assert_eq!(plan.nan_frame_rate, 0.0);
        assert_eq!(plan.sensor_dropout_rate, 0.0);
        // A saturated transient rate fires every frame.
        let mut injector = plan.injector();
        assert_eq!(injector.next_frame().load_fault, Some(LoadFault::Transient));
    }

    #[test]
    fn server_side_categories_use_independent_counters() {
        let plan = FaultPlan::new(Seed(11))
            .at(0, FaultKind::CheckpointWriteFailure)
            .at(1, FaultKind::TruncatedArtifact)
            .at(2, FaultKind::LinkDeath)
            .at(0, FaultKind::DevicePanic)
            .at(3, FaultKind::TrainAbort);
        assert!(!plan.is_zero_fault());
        let mut injector = plan.injector();
        // Checkpoint writes: failure at write 0, truncation at write 1.
        assert_eq!(injector.next_checkpoint_write(), Some(CheckpointFault::WriteFailure));
        assert_eq!(injector.next_checkpoint_write(), Some(CheckpointFault::Truncated));
        assert_eq!(injector.next_checkpoint_write(), None);
        // Download arrivals share the TruncatedArtifact kind on their own
        // counter: arrival 1 is corrupt, others clean.
        assert!(!injector.artifact_arrives_corrupt());
        assert!(injector.artifact_arrives_corrupt());
        assert!(!injector.artifact_arrives_corrupt());
        // Chunks: death only at chunk 2.
        assert!(!injector.link_dies());
        assert!(!injector.link_dies());
        assert!(injector.link_dies());
        // Devices: panic only on draw 0.
        assert!(injector.device_panics());
        assert!(!injector.device_panics());
        // Stage aborts consult the schedule without consuming randomness.
        assert!(injector.train_abort_after(3));
        assert!(!injector.train_abort_after(1));
        // The per-frame stream is untouched by server-side schedules.
        for frame in 0..6 {
            assert!(!injector.next_frame().any(), "frame {frame}");
        }
    }

    #[test]
    fn gateway_categories_use_independent_counters() {
        let plan = FaultPlan::new(Seed(14))
            .at(1, FaultKind::QueueOverflow)
            .at(0, FaultKind::SlowConsumer)
            .at(2, FaultKind::SessionStall)
            .at(1, FaultKind::SchedulerHiccup);
        assert!(!plan.is_zero_fault());
        let mut injector = plan.injector();
        // Each category draws on its own index stream.
        assert!(!injector.queue_overflows());
        assert!(injector.queue_overflows());
        assert!(injector.consumer_slows());
        assert!(!injector.consumer_slows());
        assert!(!injector.session_stalls());
        assert!(!injector.session_stalls());
        assert!(injector.session_stalls());
        assert!(!injector.scheduler_hiccups());
        assert!(injector.scheduler_hiccups());
        // The per-frame stream is untouched by gateway schedules.
        for frame in 0..6 {
            assert!(!injector.next_frame().any(), "frame {frame}");
        }
    }

    #[test]
    fn gateway_rates_draw_proportionally() {
        let mut injector = FaultPlan::new(Seed(15))
            .with_queue_overflow_rate(0.3)
            .with_scheduler_hiccup_rate(0.1)
            .injector();
        assert!(!injector.plan().is_zero_fault());
        let n = 2000;
        let overflows = (0..n).filter(|_| injector.queue_overflows()).count();
        let rate = overflows as f32 / n as f32;
        assert!((rate - 0.3).abs() < 0.05, "observed {rate}");
        let hiccups = (0..n).filter(|_| injector.scheduler_hiccups()).count();
        let rate = hiccups as f32 / n as f32;
        assert!((rate - 0.1).abs() < 0.04, "observed {rate}");
    }

    #[test]
    fn rollout_categories_use_independent_counters() {
        let plan = FaultPlan::new(Seed(16))
            .at(1, FaultKind::StaleBundle)
            .at(0, FaultKind::RegressedUpdate)
            .at(2, FaultKind::ReprofileAbort);
        assert!(!plan.is_zero_fault());
        let mut injector = plan.injector();
        // Deliveries: stale only at delivery 1.
        assert!(!injector.bundle_is_stale());
        assert!(injector.bundle_is_stale());
        assert!(!injector.bundle_is_stale());
        // Candidates: regression only on candidate 0.
        assert!(injector.update_regresses());
        assert!(!injector.update_regresses());
        // Re-profile aborts consult the schedule without consuming
        // randomness.
        assert!(injector.reprofile_abort_after(2));
        assert!(!injector.reprofile_abort_after(0));
        // The per-frame stream is untouched by rollout schedules.
        for frame in 0..6 {
            assert!(!injector.next_frame().any(), "frame {frame}");
        }
    }

    #[test]
    fn rollout_rates_draw_proportionally() {
        let mut injector = FaultPlan::new(Seed(17))
            .with_stale_bundle_rate(0.2)
            .with_regressed_update_rate(0.15)
            .injector();
        assert!(!injector.plan().is_zero_fault());
        let n = 2000;
        let stale = (0..n).filter(|_| injector.bundle_is_stale()).count();
        let rate = stale as f32 / n as f32;
        assert!((rate - 0.2).abs() < 0.04, "observed {rate}");
        let regressed = (0..n).filter(|_| injector.update_regresses()).count();
        let rate = regressed as f32 / n as f32;
        assert!((rate - 0.15).abs() < 0.04, "observed {rate}");
    }

    #[test]
    fn scheduled_write_failure_dominates_truncation() {
        let mut injector = FaultPlan::new(Seed(12))
            .at(0, FaultKind::TruncatedArtifact)
            .at(0, FaultKind::CheckpointWriteFailure)
            .injector();
        assert_eq!(injector.next_checkpoint_write(), Some(CheckpointFault::WriteFailure));
    }

    #[test]
    fn server_side_rates_draw_proportionally() {
        let mut injector = FaultPlan::new(Seed(13))
            .with_link_death_rate(0.25)
            .injector();
        let n = 2000;
        let deaths = (0..n).filter(|_| injector.link_dies()).count();
        let rate = deaths as f32 / n as f32;
        assert!((rate - 0.25).abs() < 0.05, "observed {rate}");
        assert!(!injector.plan().is_zero_fault());
    }

    #[test]
    fn health_state_index_and_display() {
        for (i, s) in HealthState::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        assert_eq!(HealthState::Critical.to_string(), "critical");
    }

    #[test]
    fn report_summarizes() {
        let report = HealthReport {
            state: HealthState::Degraded,
            frames: 10,
            frames_by_state: [6, 3, 1],
            faults: FaultCounts { sensor_dropout: 2, ..FaultCounts::default() },
            retries: 1,
            load_strikes: 0,
            excluded_models: vec![4],
            fallback_depths: [7, 1, 1, 1],
            pressure_evicted: Vec::new(),
        };
        assert!((report.degraded_fraction() - 0.4).abs() < 1e-6);
        let text = report.to_string();
        assert!(text.contains("degraded after 10 frames"));
        assert!(text.contains("2 faults"));
    }
}
