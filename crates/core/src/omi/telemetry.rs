//! Structured per-frame telemetry for online runs.
//!
//! Operators debugging a deployment need the per-frame record — which model
//! the router asked for, which one served, whether the cache hit, how
//! confident the decision was, what it cost, and how healthy the engine was
//! while serving it — not just aggregate F1. [`Telemetry`] collects
//! [`StepOutcome`]s (plus the ground-truth F1 when available) and renders
//! them as CSV for offline analysis.

use anole_detect::DetectionCounts;
use anole_nn::Precision;
use anole_obs::FixedHistogram;
use serde::{Deserialize, Serialize};

use crate::omi::{DriftState, HealthState, StepOutcome};

/// One telemetry record: a [`StepOutcome`] plus optional ground-truth score.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryRecord {
    /// Frame index within the run.
    pub frame: usize,
    /// Model the decision model ranked first.
    pub requested: usize,
    /// Model that actually served the frame.
    pub used: usize,
    /// Whether the requested model was cache-resident.
    pub cache_hit: bool,
    /// Compressed models executed (>1 on hedged frames, 0 on frames served
    /// from last-good detections).
    pub models_executed: usize,
    /// End-to-end latency in milliseconds.
    pub latency_ms: f32,
    /// Top-1 suitability probability.
    pub suitability: f32,
    /// Engine health after this frame.
    pub health: HealthState,
    /// Fallback tier that served the frame (0 = requested model,
    /// 1 = best cached, 2 = pinned fallback, 3 = last-good detections).
    pub fallback_depth: usize,
    /// Faults injected into this frame.
    pub faults: u32,
    /// Id of the engine's `omi.engine.step` span that served this frame
    /// (0 when observability is disabled), linking the record to the span
    /// trace. Defaults to 0 when deserializing logs from older runs.
    #[serde(default)]
    pub span_id: u64,
    /// Weight format of the model that served the frame (`fp32` or `i8` in
    /// the CSV). Deserializes to `Fp32` from logs written before quantized
    /// serving existed.
    #[serde(default)]
    pub precision: Precision,
    /// Drift judgement in force while this frame was served (as reported to
    /// [`Telemetry::note_drift`]; `Nominal` when no detector is wired in).
    /// Deserializes to `Nominal` from logs written before drift detection.
    #[serde(default)]
    pub drift_state: DriftState,
    /// Whether the idle-budget prefetcher issued a background load at the
    /// end of this frame. Defaults to `false` for logs written before
    /// predictive prefetch existed.
    #[serde(default)]
    pub prefetch_issued: bool,
    /// Whether this frame's cache hit was served by a prefetched model.
    /// Defaults to `false` for logs written before predictive prefetch.
    #[serde(default)]
    pub prefetch_hit: bool,
    /// Per-frame F1 against ground truth, when truth was supplied.
    pub f1: Option<f32>,
}

/// A per-frame telemetry log.
///
/// # Examples
///
/// ```
/// use anole_core::omi::Telemetry;
///
/// let telemetry = Telemetry::new();
/// assert!(telemetry.is_empty());
/// assert!(telemetry.to_csv().starts_with("frame,requested,used"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Telemetry {
    records: Vec<TelemetryRecord>,
    #[serde(default)]
    current_drift: DriftState,
}

impl Telemetry {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Borrows the records.
    pub fn records(&self) -> &[TelemetryRecord] {
        &self.records
    }

    /// Appends an outcome, scoring it against `truth` when provided.
    pub fn record(&mut self, outcome: &StepOutcome, truth: Option<&[bool]>) {
        let f1 = truth.map(|t| {
            let mut counts = DetectionCounts::default();
            counts.accumulate(&outcome.detections, t);
            counts.f1()
        });
        self.records.push(TelemetryRecord {
            frame: self.records.len(),
            requested: outcome.requested,
            used: outcome.used,
            cache_hit: outcome.cache_hit,
            models_executed: outcome.models_executed,
            latency_ms: outcome.latency_ms,
            suitability: outcome.suitability,
            health: outcome.health,
            fallback_depth: outcome.fallback_depth,
            faults: outcome.faults,
            span_id: anole_obs::last_root_span_id(),
            precision: outcome.precision,
            drift_state: self.current_drift,
            prefetch_issued: outcome.prefetch_issued,
            prefetch_hit: outcome.prefetch_hit,
            f1,
        });
    }

    /// Notes the detector's current judgement; subsequent [`Telemetry::record`]
    /// calls stamp it on their rows until the next note. Feed it from a
    /// [`DriftDetector`](crate::omi::DriftDetector) alongside the engine loop.
    pub fn note_drift(&mut self, state: DriftState) {
        self.current_drift = state;
        anole_obs::gauge_set!(
            "omi.engine.drift.state",
            match state {
                DriftState::Nominal => 0.0,
                DriftState::Drifting => 1.0,
            }
        );
    }

    /// Frames recorded while the engine was not `Healthy`.
    pub fn degraded_frames(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.health != HealthState::Healthy)
            .count()
    }

    /// Total faults injected across the recorded frames.
    pub fn fault_total(&self) -> u64 {
        self.records.iter().map(|r| u64::from(r.faults)).sum()
    }

    /// Renders the log as CSV (header + one row per frame).
    ///
    /// The output buffer is preallocated from the record count and rows are
    /// formatted straight into it (no per-row intermediate `String`s), so
    /// exporting a long run is one allocation in the common case.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;

        const HEADER: &str =
            "frame,requested,used,cache_hit,models_executed,latency_ms,suitability,health,\
             fallback_depth,faults,span_id,precision,drift_state,prefetch_issued,prefetch_hit,\
             f1\n";
        // Generous per-row estimate: twelve numeric/enum fields plus
        // separators stay well under this for realistic runs, so growth is
        // rare.
        const ROW_ESTIMATE: usize = 120;
        let mut out = String::with_capacity(HEADER.len() + self.records.len() * ROW_ESTIMATE);
        out.push_str(HEADER);
        for r in &self.records {
            // Floats use `{:?}` (shortest round-trip representation), so a
            // parsed CSV reproduces the recorded values bit-for-bit instead
            // of rounding to a fixed number of decimals.
            // Infallible for String; keep the row loop panic-free.
            let _ = write!(
                out,
                "{},{},{},{},{},{:?},{:?},{},{},{},{},{},{},{},{},",
                r.frame,
                r.requested,
                r.used,
                r.cache_hit,
                r.models_executed,
                r.latency_ms,
                r.suitability,
                r.health,
                r.fallback_depth,
                r.faults,
                r.span_id,
                r.precision,
                r.drift_state,
                r.prefetch_issued,
                r.prefetch_hit,
            );
            if let Some(f1) = r.f1 {
                let _ = write!(out, "{f1:?}");
            }
            out.push('\n');
        }
        out
    }

    /// Aggregate summary over the log. All-zero for an empty log; mean F1
    /// covers only scored frames. Latency percentiles come from a
    /// [`FixedHistogram`] over [`anole_obs::LATENCY_MS_BOUNDS`], so they are
    /// bucket upper bounds — the same resolution the live
    /// `omi.step.latency_ms` histogram exports.
    pub fn summary(&self) -> TelemetrySummary {
        if self.records.is_empty() {
            return TelemetrySummary::default();
        }
        let n = self.records.len() as f32;
        let mut latency = FixedHistogram::new(anole_obs::LATENCY_MS_BOUNDS);
        for r in &self.records {
            latency.record(f64::from(r.latency_ms));
        }
        let mean_latency_ms = self.records.iter().map(|r| r.latency_ms).sum::<f32>() / n;
        let hit_rate = self.records.iter().filter(|r| r.cache_hit).count() as f32 / n;
        let mean_fallback_depth =
            self.records.iter().map(|r| r.fallback_depth as f32).sum::<f32>() / n;
        let i8_frames = self.records.iter().filter(|r| r.precision == Precision::Int8).count();
        let prefetch_issued = self.records.iter().filter(|r| r.prefetch_issued).count();
        let prefetch_hits = self.records.iter().filter(|r| r.prefetch_hit).count();
        let scored: Vec<f32> = self.records.iter().filter_map(|r| r.f1).collect();
        let mean_f1 = if scored.is_empty() {
            0.0
        } else {
            scored.iter().sum::<f32>() / scored.len() as f32
        };
        // Rising edges of the drift state: distinct drift episodes, not
        // frames spent drifting.
        let mut drift_events = 0usize;
        let mut prev = DriftState::Nominal;
        for r in &self.records {
            if prev == DriftState::Nominal && r.drift_state == DriftState::Drifting {
                drift_events += 1;
            }
            prev = r.drift_state;
        }
        TelemetrySummary {
            frames: self.records.len(),
            mean_latency_ms,
            p50_latency_ms: latency.quantile(0.5),
            p95_latency_ms: latency.quantile(0.95),
            p99_latency_ms: latency.quantile(0.99),
            hit_rate,
            mean_fallback_depth,
            mean_f1,
            i8_frame_fraction: i8_frames as f32 / n,
            drift_events,
            prefetch_issued,
            prefetch_hits,
        }
    }
}

/// Aggregates produced by [`Telemetry::summary`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySummary {
    /// Frames recorded.
    pub frames: usize,
    /// Mean end-to-end frame latency (ms).
    pub mean_latency_ms: f32,
    /// Median frame latency (ms), as a histogram bucket upper bound.
    pub p50_latency_ms: f64,
    /// 95th-percentile frame latency (ms), as a bucket upper bound.
    pub p95_latency_ms: f64,
    /// 99th-percentile frame latency (ms), as a bucket upper bound.
    pub p99_latency_ms: f64,
    /// Fraction of frames whose requested model was cache-resident.
    pub hit_rate: f32,
    /// Mean fallback-chain tier that served the frames (0 = always the
    /// requested model).
    pub mean_fallback_depth: f32,
    /// Mean per-frame F1 over the scored frames (0 when none were scored).
    pub mean_f1: f32,
    /// Fraction of frames served by an int8 model. Deserializes to 0 from
    /// summaries written before quantized serving existed.
    #[serde(default)]
    pub i8_frame_fraction: f32,
    /// Distinct drift episodes (Nominal→Drifting edges) across the log.
    /// Deserializes to 0 from summaries written before drift detection.
    #[serde(default)]
    pub drift_events: usize,
    /// Frames on which the prefetcher issued a background load.
    /// Deserializes to 0 from summaries written before predictive prefetch.
    #[serde(default)]
    pub prefetch_issued: usize,
    /// Frames served by a model the prefetcher had loaded ahead of time.
    /// Deserializes to 0 from summaries written before predictive prefetch.
    #[serde(default)]
    pub prefetch_hits: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AnoleConfig, AnoleSystem};
    use anole_data::{DatasetConfig, DrivingDataset};
    use anole_device::DeviceKind;
    use anole_tensor::Seed;

    #[test]
    fn records_and_renders_a_live_run() {
        let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(191));
        let system = AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(192)).unwrap();
        let mut engine = system.online_engine(DeviceKind::JetsonTx2Nx, Seed(193));
        engine.warm(&(0..system.repository().len()).collect::<Vec<_>>());

        let split = dataset.split();
        let mut telemetry = Telemetry::new();
        for &r in split.test.iter().take(25) {
            let frame = dataset.frame(r);
            let out = engine.step(&frame.features).unwrap();
            telemetry.record(&out, Some(&frame.truth));
        }
        assert_eq!(telemetry.len(), 25);
        let csv = telemetry.to_csv();
        assert_eq!(csv.lines().count(), 26);
        assert!(csv.lines().nth(1).unwrap().split(',').count() == 16);
        assert!(csv.lines().nth(1).unwrap().contains("fp32"));
        // A fault-free run stays healthy throughout.
        assert_eq!(telemetry.degraded_frames(), 0);
        assert_eq!(telemetry.fault_total(), 0);
        assert!(csv.lines().nth(1).unwrap().contains("healthy"));
        assert!(csv.lines().nth(1).unwrap().contains(",nominal,"));

        let summary = telemetry.summary();
        assert_eq!(summary.frames, 25);
        assert!(summary.mean_latency_ms > 0.0);
        assert!(summary.p50_latency_ms <= summary.p95_latency_ms);
        assert!(summary.p95_latency_ms <= summary.p99_latency_ms);
        assert!((0.0..=1.0).contains(&summary.hit_rate));
        assert!((0.0..=1.0).contains(&summary.mean_f1));
        assert!(summary.mean_fallback_depth >= 0.0);
        assert_eq!(summary.drift_events, 0);
        // Frame indices are sequential.
        for (i, r) in telemetry.records().iter().enumerate() {
            assert_eq!(r.frame, i);
        }
    }

    #[test]
    fn unscored_frames_leave_f1_empty() {
        let outcome = StepOutcome {
            requested: 1,
            used: 2,
            cache_hit: false,
            detections: vec![true, false],
            models_executed: 1,
            latency_ms: 10.0,
            suitability: 0.4,
            health: HealthState::Degraded,
            fallback_depth: 1,
            faults: 2,
            precision: Precision::Int8,
            prefetch_issued: false,
            prefetch_hit: false,
        };
        let mut t = Telemetry::new();
        t.record(&outcome, None);
        assert_eq!(t.records()[0].f1, None);
        assert!(t.to_csv().lines().nth(1).unwrap().ends_with(','));
        assert!(t.to_csv().lines().nth(1).unwrap().contains("degraded"));
        assert_eq!(t.degraded_frames(), 1);
        assert_eq!(t.fault_total(), 2);
        assert_eq!(t.summary().mean_f1, 0.0);
        assert_eq!(t.summary().i8_frame_fraction, 1.0);
        assert!(t.to_csv().lines().nth(1).unwrap().contains(",i8,"));
    }

    #[test]
    fn empty_log_summary_is_zero() {
        assert_eq!(Telemetry::new().summary(), TelemetrySummary::default());
    }

    #[test]
    fn csv_floats_round_trip() {
        let outcome = StepOutcome {
            requested: 0,
            used: 0,
            cache_hit: true,
            detections: vec![true],
            models_executed: 1,
            latency_ms: 12.345_678,
            suitability: 0.123_456_79,
            health: HealthState::Healthy,
            fallback_depth: 0,
            faults: 0,
            precision: Precision::Fp32,
            prefetch_issued: true,
            prefetch_hit: true,
        };
        let mut t = Telemetry::new();
        t.record(&outcome, Some(&[true]));
        let row = t.to_csv().lines().nth(1).unwrap().to_string();
        let cols: Vec<&str> = row.split(',').collect();
        assert_eq!(cols[5].parse::<f32>().unwrap(), outcome.latency_ms);
        assert_eq!(cols[6].parse::<f32>().unwrap(), outcome.suitability);
        assert_eq!(cols[11], "fp32");
        assert_eq!(cols[12], "nominal");
        assert_eq!(cols[13], "true");
        assert_eq!(cols[14], "true");
        assert_eq!(cols[15].parse::<f32>().unwrap(), t.records()[0].f1.unwrap());
        assert_eq!(t.summary().prefetch_issued, 1);
        assert_eq!(t.summary().prefetch_hits, 1);
    }

    #[test]
    fn noted_drift_state_stamps_rows_and_counts_episodes() {
        let outcome = StepOutcome {
            requested: 0,
            used: 0,
            cache_hit: true,
            detections: vec![true],
            models_executed: 1,
            latency_ms: 5.0,
            suitability: 0.9,
            health: HealthState::Healthy,
            fallback_depth: 0,
            faults: 0,
            precision: Precision::Fp32,
            prefetch_issued: false,
            prefetch_hit: false,
        };
        let mut t = Telemetry::new();
        t.record(&outcome, None);
        t.note_drift(DriftState::Drifting);
        t.record(&outcome, None);
        t.record(&outcome, None);
        t.note_drift(DriftState::Nominal);
        t.record(&outcome, None);
        t.note_drift(DriftState::Drifting);
        t.record(&outcome, None);

        let csv = t.to_csv();
        assert!(csv
            .lines()
            .next()
            .unwrap()
            .ends_with("drift_state,prefetch_issued,prefetch_hit,f1"));
        assert!(csv.lines().nth(1).unwrap().contains(",nominal,"));
        assert!(csv.lines().nth(2).unwrap().contains(",drifting,"));
        // Two distinct episodes despite three drifting frames.
        assert_eq!(t.summary().drift_events, 2);

        // Older serialized logs (without the field) still load, as nominal.
        let json = serde_json::to_string(&t).unwrap();
        let back: Telemetry = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
