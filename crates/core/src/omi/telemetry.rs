//! Structured per-frame telemetry for online runs.
//!
//! Operators debugging a deployment need the per-frame record — which model
//! the router asked for, which one served, whether the cache hit, how
//! confident the decision was, what it cost, and how healthy the engine was
//! while serving it — not just aggregate F1. [`Telemetry`] collects
//! [`StepOutcome`]s (plus the ground-truth F1 when available) and renders
//! them as CSV for offline analysis.

use anole_detect::DetectionCounts;
use serde::{Deserialize, Serialize};

use crate::omi::{HealthState, StepOutcome};

/// One telemetry record: a [`StepOutcome`] plus optional ground-truth score.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryRecord {
    /// Frame index within the run.
    pub frame: usize,
    /// Model the decision model ranked first.
    pub requested: usize,
    /// Model that actually served the frame.
    pub used: usize,
    /// Whether the requested model was cache-resident.
    pub cache_hit: bool,
    /// Compressed models executed (>1 on hedged frames, 0 on frames served
    /// from last-good detections).
    pub models_executed: usize,
    /// End-to-end latency in milliseconds.
    pub latency_ms: f32,
    /// Top-1 suitability probability.
    pub suitability: f32,
    /// Engine health after this frame.
    pub health: HealthState,
    /// Fallback tier that served the frame (0 = requested model,
    /// 1 = best cached, 2 = pinned fallback, 3 = last-good detections).
    pub fallback_depth: usize,
    /// Faults injected into this frame.
    pub faults: u32,
    /// Per-frame F1 against ground truth, when truth was supplied.
    pub f1: Option<f32>,
}

/// A per-frame telemetry log.
///
/// # Examples
///
/// ```
/// use anole_core::omi::Telemetry;
///
/// let telemetry = Telemetry::new();
/// assert!(telemetry.is_empty());
/// assert!(telemetry.to_csv().starts_with("frame,requested,used"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Telemetry {
    records: Vec<TelemetryRecord>,
}

impl Telemetry {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Borrows the records.
    pub fn records(&self) -> &[TelemetryRecord] {
        &self.records
    }

    /// Appends an outcome, scoring it against `truth` when provided.
    pub fn record(&mut self, outcome: &StepOutcome, truth: Option<&[bool]>) {
        let f1 = truth.map(|t| {
            let mut counts = DetectionCounts::default();
            counts.accumulate(&outcome.detections, t);
            counts.f1()
        });
        self.records.push(TelemetryRecord {
            frame: self.records.len(),
            requested: outcome.requested,
            used: outcome.used,
            cache_hit: outcome.cache_hit,
            models_executed: outcome.models_executed,
            latency_ms: outcome.latency_ms,
            suitability: outcome.suitability,
            health: outcome.health,
            fallback_depth: outcome.fallback_depth,
            faults: outcome.faults,
            f1,
        });
    }

    /// Frames recorded while the engine was not `Healthy`.
    pub fn degraded_frames(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.health != HealthState::Healthy)
            .count()
    }

    /// Total faults injected across the recorded frames.
    pub fn fault_total(&self) -> u64 {
        self.records.iter().map(|r| u64::from(r.faults)).sum()
    }

    /// Renders the log as CSV (header + one row per frame).
    ///
    /// The output buffer is preallocated from the record count and rows are
    /// formatted straight into it (no per-row intermediate `String`s), so
    /// exporting a long run is one allocation in the common case.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;

        const HEADER: &str = "frame,requested,used,cache_hit,models_executed,latency_ms,\
                              suitability,health,fallback_depth,faults,f1\n";
        // Generous per-row estimate: ten numeric/enum fields plus separators
        // stay well under this for realistic runs, so growth is rare.
        const ROW_ESTIMATE: usize = 96;
        let mut out = String::with_capacity(HEADER.len() + self.records.len() * ROW_ESTIMATE);
        out.push_str(HEADER);
        for r in &self.records {
            // Infallible for String; keep the row loop panic-free.
            let _ = write!(
                out,
                "{},{},{},{},{},{:.3},{:.4},{},{},{},",
                r.frame,
                r.requested,
                r.used,
                r.cache_hit,
                r.models_executed,
                r.latency_ms,
                r.suitability,
                r.health,
                r.fallback_depth,
                r.faults,
            );
            if let Some(f1) = r.f1 {
                let _ = write!(out, "{f1:.4}");
            }
            out.push('\n');
        }
        out
    }

    /// Aggregate summary over the log: `(mean latency, hit rate, mean F1)`.
    /// All zeros for an empty log; mean F1 covers only scored frames.
    pub fn summary(&self) -> (f32, f32, f32) {
        if self.records.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        let n = self.records.len() as f32;
        let latency = self.records.iter().map(|r| r.latency_ms).sum::<f32>() / n;
        let hits = self.records.iter().filter(|r| r.cache_hit).count() as f32 / n;
        let scored: Vec<f32> = self.records.iter().filter_map(|r| r.f1).collect();
        let f1 = if scored.is_empty() {
            0.0
        } else {
            scored.iter().sum::<f32>() / scored.len() as f32
        };
        (latency, hits, f1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AnoleConfig, AnoleSystem};
    use anole_data::{DatasetConfig, DrivingDataset};
    use anole_device::DeviceKind;
    use anole_tensor::Seed;

    #[test]
    fn records_and_renders_a_live_run() {
        let dataset = DrivingDataset::generate(&DatasetConfig::small(), Seed(191));
        let system = AnoleSystem::train(&dataset, &AnoleConfig::fast(), Seed(192)).unwrap();
        let mut engine = system.online_engine(DeviceKind::JetsonTx2Nx, Seed(193));
        engine.warm(&(0..system.repository().len()).collect::<Vec<_>>());

        let split = dataset.split();
        let mut telemetry = Telemetry::new();
        for &r in split.test.iter().take(25) {
            let frame = dataset.frame(r);
            let out = engine.step(&frame.features).unwrap();
            telemetry.record(&out, Some(&frame.truth));
        }
        assert_eq!(telemetry.len(), 25);
        let csv = telemetry.to_csv();
        assert_eq!(csv.lines().count(), 26);
        assert!(csv.lines().nth(1).unwrap().split(',').count() == 11);
        // A fault-free run stays healthy throughout.
        assert_eq!(telemetry.degraded_frames(), 0);
        assert_eq!(telemetry.fault_total(), 0);
        assert!(csv.lines().nth(1).unwrap().contains("healthy"));

        let (latency, hit_rate, f1) = telemetry.summary();
        assert!(latency > 0.0);
        assert!((0.0..=1.0).contains(&hit_rate));
        assert!((0.0..=1.0).contains(&f1));
        // Frame indices are sequential.
        for (i, r) in telemetry.records().iter().enumerate() {
            assert_eq!(r.frame, i);
        }
    }

    #[test]
    fn unscored_frames_leave_f1_empty() {
        let outcome = StepOutcome {
            requested: 1,
            used: 2,
            cache_hit: false,
            detections: vec![true, false],
            models_executed: 1,
            latency_ms: 10.0,
            suitability: 0.4,
            health: HealthState::Degraded,
            fallback_depth: 1,
            faults: 2,
        };
        let mut t = Telemetry::new();
        t.record(&outcome, None);
        assert_eq!(t.records()[0].f1, None);
        assert!(t.to_csv().lines().nth(1).unwrap().ends_with(','));
        assert!(t.to_csv().lines().nth(1).unwrap().contains("degraded"));
        assert_eq!(t.degraded_frames(), 1);
        assert_eq!(t.fault_total(), 2);
        let (_, _, f1) = t.summary();
        assert_eq!(f1, 0.0);
    }

    #[test]
    fn empty_log_summary_is_zero() {
        assert_eq!(Telemetry::new().summary(), (0.0, 0.0, 0.0));
    }
}
