//! Scene-duration analysis of the online run (paper Fig. 7a).
//!
//! A "scene", from the decision model's point of view, is a maximal run of
//! consecutive frames served by the same compressed model. Fig. 7a shows
//! these runs are short on fast-changing streams (mean < 20 frames, 80%
//! under 40), which is why the model cache matters.

use serde::{Deserialize, Serialize};

/// Run lengths of consecutive identical entries in a usage log.
///
/// # Examples
///
/// ```
/// let durations = anole_core::omi::scene_durations(&[1, 1, 2, 2, 2, 1]);
/// assert_eq!(durations, vec![2, 3, 1]);
/// ```
pub fn scene_durations(usage_log: &[usize]) -> Vec<usize> {
    let mut durations = Vec::new();
    let mut iter = usage_log.iter();
    let Some(mut current) = iter.next() else {
        return durations;
    };
    let mut run = 1usize;
    for model in iter {
        if model == current {
            run += 1;
        } else {
            durations.push(run);
            current = model;
            run = 1;
        }
    }
    durations.push(run);
    durations
}

/// Summary statistics of scene durations (the boxplot of Fig. 7a).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwitchStats {
    /// Number of model switches (runs − 1).
    pub switches: usize,
    /// Mean run length in frames.
    pub mean: f32,
    /// Median run length.
    pub median: usize,
    /// 80th-percentile run length.
    pub p80: usize,
    /// Longest run.
    pub max: usize,
}

impl SwitchStats {
    /// Computes the statistics of a usage log.
    ///
    /// Returns an all-zero summary for an empty log.
    pub fn of(usage_log: &[usize]) -> Self {
        let mut durations = scene_durations(usage_log);
        if durations.is_empty() {
            return Self {
                switches: 0,
                mean: 0.0,
                median: 0,
                p80: 0,
                max: 0,
            };
        }
        durations.sort_unstable();
        let n = durations.len();
        Self {
            switches: n - 1,
            mean: durations.iter().sum::<usize>() as f32 / n as f32,
            median: durations[n / 2],
            p80: durations[(n * 8 / 10).min(n - 1)],
            max: durations[n - 1],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_of_empty_log() {
        assert!(scene_durations(&[]).is_empty());
        let s = SwitchStats::of(&[]);
        assert_eq!(s.switches, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn durations_of_constant_log() {
        assert_eq!(scene_durations(&[3, 3, 3, 3]), vec![4]);
        let s = SwitchStats::of(&[3, 3, 3, 3]);
        assert_eq!(s.switches, 0);
        assert_eq!(s.max, 4);
        assert_eq!(s.mean, 4.0);
    }

    #[test]
    fn durations_of_alternating_log() {
        assert_eq!(scene_durations(&[0, 1, 0, 1]), vec![1, 1, 1, 1]);
        let s = SwitchStats::of(&[0, 1, 0, 1]);
        assert_eq!(s.switches, 3);
        assert_eq!(s.median, 1);
    }

    #[test]
    fn durations_sum_to_log_length() {
        let log = [5, 5, 1, 2, 2, 2, 5, 1, 1, 1];
        let durations = scene_durations(&log);
        assert_eq!(durations.iter().sum::<usize>(), log.len());
        assert_eq!(durations, vec![2, 1, 3, 1, 3]);
    }

    #[test]
    fn percentiles_are_ordered() {
        let log: Vec<usize> = (0..100).map(|i| i / 7).collect();
        let s = SwitchStats::of(&log);
        assert!(s.median as f32 <= s.mean + 1.0);
        assert!(s.median <= s.p80);
        assert!(s.p80 <= s.max);
    }
}
