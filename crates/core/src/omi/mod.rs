//! Online Model Inference (paper §V): what runs on the mobile device.

mod deployment;
mod drift;
mod faults;
mod realtime;
mod switching;
mod telemetry;

pub use deployment::{FlightFrame, FlightRecord, OnlineEngine, PrefetchStats, StepOutcome};
pub use drift::{
    normalized_entropy, BaselineConfusion, DriftDetector, DriftEvent, DriftSignal, DriftState,
    SceneDistanceScorer,
};
pub use faults::{
    CheckpointFault, FaultCounts, FaultEvent, FaultInjector, FaultKind, FaultPlan, FrameFaults,
    HealthReport, HealthState, LoadFault,
};
pub use realtime::{run_realtime, FrameProcessor, RealTimeReport, TimedMethod};
pub use switching::{scene_durations, SwitchStats};
pub use telemetry::{Telemetry, TelemetryRecord, TelemetrySummary};
